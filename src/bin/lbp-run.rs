//! `lbp-run` — compile/assemble a program and execute it on the LBP
//! simulator.
//!
//! ```text
//! lbp-run program.c  --cores 4 --dump v:8
//! lbp-run program.s  --cores 16 --trace trace.txt
//! lbp-run program.c  --emit-asm
//! ```
//!
//! `.c` inputs go through the Deterministic OpenMP translator
//! (`lbp-cc`); `.s`/`.asm` inputs go straight to the assembler. After
//! the run the tool prints the machine statistics and any requested
//! memory dumps.

use std::fmt::Write as _;
use std::process::ExitCode;

use lbp::sim::{LbpConfig, Machine};

struct Options {
    input: String,
    cores: usize,
    max_cycles: u64,
    trace: Option<String>,
    dumps: Vec<(String, u32)>,
    emit_asm: bool,
    disasm: bool,
    profile: Option<usize>,
}

fn usage() -> ! {
    eprintln!(
        "usage: lbp-run <program.c|program.s> [options]\n\
         \n\
         options:\n\
           --cores N          machine size in cores (default 4)\n\
           --max-cycles N     cycle budget (default 100000000)\n\
           --trace FILE       record the cycle trace to FILE ('-' = stdout)\n\
           --dump SYM[:N]     print N words of memory at symbol SYM after the run\n\
           --emit-asm         print the generated assembly and exit\n\
           --disasm           print the assembled image's disassembly and exit\n\
           --profile [N]      print the N hottest instructions after the run (default 15)"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        input: String::new(),
        cores: 4,
        max_cycles: 100_000_000,
        trace: None,
        dumps: Vec::new(),
        emit_asm: false,
        disasm: false,
        profile: None,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cores" => {
                opts.cores = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--max-cycles" => {
                opts.max_cycles = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--trace" => opts.trace = Some(args.next().unwrap_or_else(|| usage())),
            "--dump" => {
                let spec = args.next().unwrap_or_else(|| usage());
                let (sym, n) = match spec.split_once(':') {
                    Some((s, n)) => (s.to_owned(), n.parse().unwrap_or_else(|_| usage())),
                    None => (spec, 1),
                };
                opts.dumps.push((sym, n));
            }
            "--emit-asm" => opts.emit_asm = true,
            "--disasm" => opts.disasm = true,
            "--profile" => opts.profile = Some(15),
            "--help" | "-h" => usage(),
            other if opts.input.is_empty() && !other.starts_with('-') => {
                opts.input = other.to_owned();
            }
            _ => usage(),
        }
    }
    if opts.input.is_empty() {
        usage();
    }
    if opts.cores == 0 || opts.cores > 4096 {
        eprintln!("lbp-run: --cores must be between 1 and 4096");
        std::process::exit(2);
    }
    opts
}

fn main() -> ExitCode {
    let opts = parse_args();
    let source = match std::fs::read_to_string(&opts.input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lbp-run: cannot read `{}`: {e}", opts.input);
            return ExitCode::from(2);
        }
    };

    // Front end by extension.
    let (asm_text, image) = if opts.input.ends_with(".c") {
        match lbp::cc::compile(&source) {
            Ok(c) => (c.asm, c.image),
            Err(e) => {
                eprintln!("lbp-run: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match lbp::asm::assemble(&source) {
            Ok(img) => (source, img),
            Err(e) => {
                eprintln!("lbp-run: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    if opts.emit_asm {
        print!("{asm_text}");
        return ExitCode::SUCCESS;
    }
    if opts.disasm {
        print!("{}", image.disassemble());
        return ExitCode::SUCCESS;
    }

    let mut cfg = LbpConfig::cores(opts.cores);
    if opts.trace.is_some() || opts.profile.is_some() {
        cfg = cfg.with_trace();
    }
    let mut machine = match Machine::new(cfg, &image) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("lbp-run: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match machine.run(opts.max_cycles) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lbp-run: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("exited:   {}", report.exited);
    println!("cycles:   {}", report.stats.cycles);
    println!("retired:  {}", report.stats.retired());
    println!(
        "IPC:      {:.3} (peak {}.0)",
        report.stats.ipc(),
        opts.cores
    );
    println!("forks:    {}", report.stats.forks);
    println!("locality: {:.2}", report.stats.locality());

    for (sym, n) in &opts.dumps {
        match image.symbol(sym) {
            None => eprintln!("lbp-run: no symbol `{sym}`"),
            Some(addr) => {
                print!("{sym}:");
                for i in 0..*n {
                    match machine.peek_shared(addr + 4 * i) {
                        Ok(v) => print!(" {}", v as i32),
                        Err(e) => {
                            print!(" <{e}>");
                            break;
                        }
                    }
                }
                println!();
            }
        }
    }

    if let Some(top_n) = opts.profile {
        use std::collections::HashMap;
        let mut by_pc: HashMap<u32, u64> = HashMap::new();
        let mut total = 0u64;
        for e in machine.trace().events() {
            if let lbp::sim::EventKind::Commit { pc } = e.kind {
                *by_pc.entry(pc).or_default() += 1;
                total += 1;
            }
        }
        let mut hot: Vec<(u32, u64)> = by_pc.into_iter().collect();
        hot.sort_by_key(|&(pc, n)| (std::cmp::Reverse(n), pc));
        println!("\nhottest instructions ({total} commits):");
        for (pc, n) in hot.into_iter().take(top_n) {
            let text = image
                .text_word(pc)
                .and_then(|w| lbp::isa::Instr::decode(w).ok())
                .map(|i| i.to_string())
                .unwrap_or_else(|| "<data>".to_owned());
            println!(
                "  {pc:#010x}  {n:>9} ({:5.1}%)  {text}",
                100.0 * n as f64 / total as f64
            );
        }
    }

    if let Some(path) = &opts.trace {
        let mut text = String::new();
        for e in machine.trace().events() {
            let _ = writeln!(
                text,
                "{:>10}  {:<8} {:?}",
                e.cycle,
                e.hart.to_string(),
                e.kind
            );
        }
        if path == "-" {
            print!("{text}");
        } else if let Err(e) = std::fs::write(path, text) {
            eprintln!("lbp-run: cannot write trace: {e}");
            return ExitCode::FAILURE;
        } else {
            println!("trace:    {} events -> {path}", machine.trace().len());
        }
    }
    ExitCode::SUCCESS
}
