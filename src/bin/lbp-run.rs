//! `lbp-run` — compile/assemble a program and execute it on the LBP
//! simulator.
//!
//! ```text
//! lbp-run program.c  --cores 4 --dump v:8
//! lbp-run program.s  --cores 16 --trace trace.jsonl --trace-format jsonl
//! lbp-run program.c  --stats-json - --interval 1000
//! lbp-run program.c  --emit-asm
//! ```
//!
//! `.c` inputs go through the Deterministic OpenMP translator
//! (`lbp-cc`); `.s`/`.asm` inputs go straight to the assembler. After
//! the run the tool prints the machine statistics and any requested
//! memory dumps. `--stats-json` additionally emits the full
//! machine-readable report (schema `lbp-stats-v1`), and `--trace`
//! streams the cycle trace to disk as it is produced, so tracing
//! multi-million-cycle runs needs O(1) memory.
//!
//! Robustness tooling:
//!
//! - `--fault SPEC` (repeatable) injects a deterministic fault
//!   (`flip-reg:HART:REG:BIT:CYCLE`, `flip-mem:ADDR:BIT:CYCLE`,
//!   `corrupt-instr:PC:XOR:CYCLE`, `drop-msg:NTH`, `delay-msg:NTH:CYCLES`);
//! - `--dump-on-error FILE` writes an `lbp-dump-v1` crash dump when the
//!   run fails;
//! - `--lockstep` checks the run instruction-by-instruction against the
//!   sequential ISS oracle (single-hart programs only);
//! - `--verify` statically checks the program instead of running it:
//!   `.c` inputs go through the source-level determinism lint and the
//!   binary fork-protocol verifier, `.s` inputs through the binary
//!   verifier alone. Diagnostics print to stdout; `--diag-json FILE`
//!   additionally writes the machine-readable `lbp-diag-v1` report.
//! - `--race-witness` arms the dynamic race-witness collector: every
//!   shared access is checked against other harts' footprints under the
//!   machine's delivery ordering, and any concrete overlap is reported
//!   (exit 10) — the dynamic cross-validation of `--verify`'s `M` codes;
//! - `--wall-ms MS` arms a wall-clock watchdog: a run still going after
//!   MS milliseconds of host time is cancelled *cooperatively* at a
//!   cycle boundary — the machine stays valid, `--dump-on-error` still
//!   writes a well-formed `lbp-dump-v1` report of the partial run — and
//!   the process exits 11;
//! - the exit code encodes the error class: 0 ok, 2 usage, 1 front-end or
//!   I/O failure, 4 timeout, 5 deadlock, 6 protocol violation, 7 decode
//!   fault, 8 memory fault, 9 lockstep divergence, 10 verification
//!   rejection, 11 wall-clock cancellation.

use std::io::Write as _;
use std::process::ExitCode;

use lbp::sim::{
    ChromeSink, Fault, FaultPlan, JsonlSink, LbpConfig, LockstepError, Machine, MachineDump,
    RunPause, RunReport, SimError, SimFailure, TextSink, TraceSink,
};

#[derive(Clone, Copy, PartialEq)]
enum TraceFormat {
    Text,
    Jsonl,
    Chrome,
}

struct Options {
    input: String,
    cores: usize,
    max_cycles: u64,
    trace: Option<String>,
    trace_format: TraceFormat,
    stats_json: Option<String>,
    interval: u64,
    dumps: Vec<(String, u32)>,
    emit_asm: bool,
    disasm: bool,
    profile: Option<String>,
    dump_on_error: Option<String>,
    faults: Vec<Fault>,
    lockstep: bool,
    verify: bool,
    race_witness: bool,
    diag_json: Option<String>,
    checkpoint_every: u64,
    checkpoint_prefix: String,
    resume_from: Option<String>,
    bisect: bool,
    wall_ms: Option<u64>,
    warm: Option<u64>,
    roi: bool,
    warm_snap: Option<String>,
    snap_info: Option<String>,
    bisect_snaps: Option<(String, String)>,
    hybrid_bisect: bool,
    sabotage: Vec<(u32, u32)>,
}

fn usage() -> ! {
    eprintln!(
        "usage: lbp-run <program.c|program.s> [options]\n\
         \n\
         options:\n\
           --cores N          machine size in cores (default 4)\n\
           --max-cycles N     cycle budget (default 100000000)\n\
           --trace FILE       stream the cycle trace to FILE ('-' = stdout)\n\
           --trace-format F   trace format: text, jsonl or chrome (default text)\n\
           --stats-json FILE  write the run report as JSON to FILE ('-' = stdout)\n\
           --interval N       record an interval sample every N cycles\n\
           --dump SYM[:N]     print N words of memory at symbol SYM after the run\n\
           --emit-asm         print the generated assembly and exit\n\
           --disasm           print the assembled image's disassembly and exit\n\
           --profile DIR      profile the run: per-pc cycle attribution, traffic\n\
                              matrices and the fork-tree timeline. Writes\n\
                              DIR/profile.json (lbp-prof-v1), DIR/folded.txt\n\
                              (flamegraph folded stacks) and DIR/timeline.json\n\
                              (chrome://tracing), and prints the per-function\n\
                              hot-spot table\n\
           --fault SPEC       inject a deterministic fault (repeatable); specs:\n\
                              flip-reg:HART:REG:BIT:CYCLE  flip-mem:ADDR:BIT:CYCLE\n\
                              corrupt-instr:PC:XOR:CYCLE   drop-msg:NTH\n\
                              delay-msg:NTH:CYCLES\n\
           --dump-on-error F  write an lbp-dump-v1 crash dump to F if the run fails\n\
           --lockstep         check against the sequential ISS oracle (1 hart)\n\
           --verify           statically verify the program instead of running it\n\
           --diag-json FILE   with --verify, write the lbp-diag-v1 report ('-' = stdout)\n\
           --race-witness     collect per-epoch shared-write footprints during the\n\
                              run and report concrete cross-hart overlaps; any\n\
                              witness exits 10\n\
           --checkpoint-every N  write an lbp-snap-v1 snapshot every N cycles\n\
           --checkpoint-prefix P checkpoint files are P<cycle>.lbpsnap (default ckpt-)\n\
           --resume-from FILE continue a run from a checkpoint (the snapshot's\n\
                              configuration wins; the program may be omitted)\n\
           --bisect           with --fault: binary-search the clean and faulted\n\
                              runs for the first divergent cycle and event\n\
           --wall-ms MS       cancel the run cooperatively after MS milliseconds\n\
                              of host time; exits 11 (0 cancels at first poll)\n\
           --warm N           fast-forward the first N retired instructions on the\n\
                              functional engine (clamped to the next rendezvous\n\
                              boundary), then hand off to the cycle-exact engine\n\
           --roi              like --warm, but fast-forward until the program's\n\
                              `__roi_start` marker (a label; `.c` inputs write it\n\
                              with `__roi_start();`)\n\
           --warm-snap FILE   with --warm/--roi, save the handoff snapshot to FILE\n\
                              (container records the functional engine)\n\
           --snap-info FILE   print a snapshot container's metadata (format\n\
                              version, producing engine, cycle, cores) and exit\n\
           --bisect-snaps A B bisect two same-cycle snapshots of diverging runs;\n\
                              refuses mixed container versions or engines\n\
           --hybrid-bisect    run the functional and cycle-exact engines side by\n\
                              side and localize their first divergence to the\n\
                              exact instruction (commit-stream comparison)\n\
           --sabotage PC:XOR  with --hybrid-bisect: XOR a code word in the\n\
                              functional copy only (repeatable; seeded-divergence\n\
                              validation of the localizer)\n\
         \n\
         exit codes: 0 ok, 2 usage, 1 front-end/I/O, 4 timeout, 5 deadlock,\n\
         6 protocol, 7 decode, 8 memory fault, 9 lockstep divergence,\n\
         10 verification rejection, 11 wall-clock cancellation"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        input: String::new(),
        cores: 4,
        max_cycles: 100_000_000,
        trace: None,
        trace_format: TraceFormat::Text,
        stats_json: None,
        interval: 0,
        dumps: Vec::new(),
        emit_asm: false,
        disasm: false,
        profile: None,
        dump_on_error: None,
        faults: Vec::new(),
        lockstep: false,
        verify: false,
        race_witness: false,
        diag_json: None,
        checkpoint_every: 0,
        checkpoint_prefix: "ckpt-".to_owned(),
        resume_from: None,
        bisect: false,
        wall_ms: None,
        warm: None,
        roi: false,
        warm_snap: None,
        snap_info: None,
        bisect_snaps: None,
        hybrid_bisect: false,
        sabotage: Vec::new(),
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cores" => {
                opts.cores = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--max-cycles" => {
                opts.max_cycles = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--trace" => opts.trace = Some(args.next().unwrap_or_else(|| usage())),
            "--trace-format" => {
                opts.trace_format = match args.next().as_deref() {
                    Some("text") => TraceFormat::Text,
                    Some("jsonl") => TraceFormat::Jsonl,
                    Some("chrome") => TraceFormat::Chrome,
                    _ => usage(),
                };
            }
            "--stats-json" => opts.stats_json = Some(args.next().unwrap_or_else(|| usage())),
            "--interval" => {
                opts.interval = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--dump" => {
                let spec = args.next().unwrap_or_else(|| usage());
                let (sym, n) = match spec.split_once(':') {
                    Some((s, n)) => (s.to_owned(), n.parse().unwrap_or_else(|_| usage())),
                    None => (spec, 1),
                };
                opts.dumps.push((sym, n));
            }
            "--emit-asm" => opts.emit_asm = true,
            "--disasm" => opts.disasm = true,
            "--profile" => opts.profile = Some(args.next().unwrap_or_else(|| usage())),
            "--fault" => {
                let spec = args.next().unwrap_or_else(|| usage());
                match Fault::parse(&spec) {
                    Ok(fault) => opts.faults.push(fault),
                    Err(e) => {
                        eprintln!("lbp-run: bad fault spec `{spec}`: {e}");
                        std::process::exit(2);
                    }
                }
            }
            "--dump-on-error" => {
                opts.dump_on_error = Some(args.next().unwrap_or_else(|| usage()));
            }
            "--lockstep" => opts.lockstep = true,
            "--verify" => opts.verify = true,
            "--race-witness" => opts.race_witness = true,
            "--diag-json" => opts.diag_json = Some(args.next().unwrap_or_else(|| usage())),
            "--checkpoint-every" => {
                opts.checkpoint_every = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--checkpoint-prefix" => {
                opts.checkpoint_prefix = args.next().unwrap_or_else(|| usage());
            }
            "--resume-from" => opts.resume_from = Some(args.next().unwrap_or_else(|| usage())),
            "--bisect" => opts.bisect = true,
            "--wall-ms" => {
                opts.wall_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--warm" => {
                opts.warm = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--roi" => opts.roi = true,
            "--warm-snap" => opts.warm_snap = Some(args.next().unwrap_or_else(|| usage())),
            "--snap-info" => opts.snap_info = Some(args.next().unwrap_or_else(|| usage())),
            "--bisect-snaps" => {
                let a = args.next().unwrap_or_else(|| usage());
                let b = args.next().unwrap_or_else(|| usage());
                opts.bisect_snaps = Some((a, b));
            }
            "--hybrid-bisect" => opts.hybrid_bisect = true,
            "--sabotage" => {
                let spec = args.next().unwrap_or_else(|| usage());
                let parse_u32 = |s: &str| -> Option<u32> {
                    s.strip_prefix("0x")
                        .map(|h| u32::from_str_radix(h, 16).ok())
                        .unwrap_or_else(|| s.parse().ok())
                };
                match spec
                    .split_once(':')
                    .and_then(|(pc, xor)| Some((parse_u32(pc)?, parse_u32(xor)?)))
                {
                    Some(pair) => opts.sabotage.push(pair),
                    None => {
                        eprintln!("lbp-run: bad --sabotage spec `{spec}` (want PC:XOR)");
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => usage(),
            other if opts.input.is_empty() && !other.starts_with('-') => {
                opts.input = other.to_owned();
            }
            _ => usage(),
        }
    }
    // --snap-info and --bisect-snaps operate on containers alone.
    if opts.snap_info.is_some() || opts.bisect_snaps.is_some() {
        return opts;
    }
    if opts.input.is_empty() && opts.resume_from.is_none() {
        usage();
    }
    // Every mode that compiles or statically inspects the program needs
    // one; only a plain resumed run can do without.
    if opts.input.is_empty()
        && (opts.verify
            || opts.lockstep
            || opts.bisect
            || opts.emit_asm
            || opts.disasm
            || opts.hybrid_bisect
            || opts.warm.is_some()
            || opts.roi)
    {
        usage();
    }
    if opts.bisect && opts.faults.is_empty() {
        eprintln!("lbp-run: --bisect needs at least one --fault to diverge from the clean run");
        std::process::exit(2);
    }
    if opts.warm.is_some() && opts.roi {
        eprintln!("lbp-run: --warm and --roi both set the fast-forward target; pick one");
        std::process::exit(2);
    }
    if opts.warm.is_some() || opts.roi {
        // These modes are defined against cycle-exact execution from
        // reset; a functional warm phase has no timing (or, for
        // --resume-from, no warm phase at all).
        let flag = if opts.roi { "--roi" } else { "--warm" };
        let conflicts: [(&str, bool); 5] = [
            ("--lockstep", opts.lockstep),
            ("--verify", opts.verify),
            ("--race-witness", opts.race_witness),
            ("--bisect", opts.bisect),
            ("--resume-from", opts.resume_from.is_some()),
        ];
        for (name, on) in conflicts {
            if on {
                eprintln!(
                    "lbp-run: {flag} cannot combine with {name}: the warm phase runs \
                     functionally, outside what {name} checks; run the whole program \
                     cycle-exact instead"
                );
                std::process::exit(2);
            }
        }
    }
    if opts.warm_snap.is_some() && opts.warm.is_none() && !opts.roi {
        eprintln!("lbp-run: --warm-snap needs --warm or --roi to produce the handoff snapshot");
        std::process::exit(2);
    }
    if !opts.sabotage.is_empty() && !opts.hybrid_bisect {
        eprintln!("lbp-run: --sabotage only makes sense with --hybrid-bisect");
        std::process::exit(2);
    }
    if opts.cores == 0 || opts.cores > 4096 {
        eprintln!("lbp-run: --cores must be between 1 and 4096");
        std::process::exit(2);
    }
    opts
}

/// Opens `path` for streaming output; `-` means stdout.
fn open_out(path: &str) -> std::io::Result<Box<dyn std::io::Write>> {
    if path == "-" {
        Ok(Box::new(std::io::stdout()))
    } else {
        let file = std::fs::File::create(path)?;
        Ok(Box::new(std::io::BufWriter::new(file)))
    }
}

/// Maps an error class to the process exit code documented in `usage`.
fn sim_exit_code(e: &SimError) -> u8 {
    match e {
        SimError::Timeout { .. } => 4,
        SimError::Deadlock { .. } => 5,
        SimError::Protocol { .. } => 6,
        SimError::Decode { .. } => 7,
        SimError::Mem(_) => 8,
    }
}

/// Writes the `lbp-dump-v1` crash dump as pretty JSON (`-` = stdout).
fn write_dump(path: &str, dump: &MachineDump) {
    let mut text = String::new();
    dump.to_json().write_pretty(&mut text);
    text.push('\n');
    let result = open_out(path).and_then(|mut out| {
        out.write_all(text.as_bytes())?;
        out.flush()
    });
    match result {
        Ok(()) => {
            if path != "-" {
                eprintln!("lbp-run: crash dump written to {path}");
            }
        }
        Err(e) => eprintln!("lbp-run: cannot write crash dump to `{path}`: {e}"),
    }
}

/// `--lockstep`: run the machine and verify it commit-by-commit against
/// the sequential ISS oracle.
fn run_lockstep_mode(cfg: LbpConfig, image: &lbp::asm::Image, opts: &Options) -> ExitCode {
    match lbp::sim::run_lockstep(cfg, image, opts.max_cycles) {
        Ok(ls) => {
            println!("lockstep: OK ({} commits verified)", ls.commits);
            println!("exited:   {}", ls.report.exited);
            println!("cycles:   {}", ls.report.stats.cycles);
            println!("retired:  {}", ls.report.stats.retired());
            ExitCode::SUCCESS
        }
        Err(LockstepError::Setup(e)) => {
            eprintln!("lbp-run: {e}");
            ExitCode::from(sim_exit_code(&e))
        }
        Err(LockstepError::Machine(fail)) => {
            eprintln!("lbp-run: {}", fail.error);
            if let Some(path) = &opts.dump_on_error {
                write_dump(path, &fail.dump);
            }
            ExitCode::from(sim_exit_code(&fail.error))
        }
        Err(e @ LockstepError::Parallel { .. }) => {
            eprintln!("lbp-run: {e}");
            ExitCode::from(2)
        }
        Err(e) => {
            // An oracle fault or an architectural divergence.
            eprintln!("lbp-run: {e}");
            ExitCode::from(9)
        }
    }
}

/// `--verify`: statically verify the program and report the verdict
/// instead of running it. Exit code 10 on rejection.
fn run_verify_mode(opts: &Options, source: &str) -> ExitCode {
    let mut diags = Vec::new();
    if opts.input.ends_with(".c") {
        match lbp::cc::lint(source) {
            Ok(d) => diags.extend(d),
            Err(e) => {
                eprintln!("lbp-run: {e}");
                return ExitCode::FAILURE;
            }
        }
        // Only a source-accepted program compiles to an image worth
        // checking at the binary layer.
        if lbp::verify::accepted(&diags) {
            match lbp::cc::compile(source) {
                Ok(c) => diags.extend(lbp::verify::verify_image(&c.image)),
                Err(e) => {
                    eprintln!("lbp-run: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    } else {
        match lbp::asm::assemble(source) {
            Ok(image) => diags.extend(lbp::verify::verify_image(&image)),
            Err(e) => {
                eprintln!("lbp-run: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    // `--diag-json -` owns stdout: the JSON must stay parseable, so the
    // human-readable rendering is suppressed.
    let json_to_stdout = opts.diag_json.as_deref() == Some("-");
    let ok = lbp::verify::accepted(&diags);
    if !json_to_stdout {
        for d in &diags {
            println!("{d}");
        }
        let mut counts: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
        for d in &diags {
            *counts.entry(d.code.as_str()).or_insert(0) += 1;
        }
        let breakdown = if counts.is_empty() {
            String::new()
        } else {
            let parts: Vec<String> = counts.iter().map(|(c, n)| format!("{c} x{n}")).collect();
            format!(": {}", parts.join(", "))
        };
        println!(
            "verify:   {} ({} diagnostic{}{breakdown})",
            if ok { "accepted" } else { "rejected" },
            diags.len(),
            if diags.len() == 1 { "" } else { "s" }
        );
    }
    if let Some(path) = &opts.diag_json {
        let text = lbp::verify::report_json(&opts.input, &diags);
        let result = open_out(path).and_then(|mut out| {
            out.write_all(text.as_bytes())?;
            out.flush()
        });
        if let Err(e) = result {
            eprintln!("lbp-run: cannot write diag JSON to `{path}`: {e}");
            return ExitCode::FAILURE;
        }
        if path != "-" {
            println!("diags:    {path}");
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(10)
    }
}

/// `--checkpoint-every N`: run in N-cycle legs, writing an `lbp-snap-v1`
/// snapshot after each one. Checkpointing never changes the run — the
/// machine is cycle-deterministic and `run_to` stops on exact cycle
/// boundaries — so the final report equals an uncheckpointed run's.
fn run_with_checkpoints(
    machine: &mut Machine,
    opts: &Options,
) -> Result<RunReport, Box<SimFailure>> {
    loop {
        let cur = machine.stats().cycles;
        if cur >= opts.max_cycles {
            // Out of budget: let run_diagnosed raise the timeout with its
            // crash dump attached.
            return machine.run_diagnosed(opts.max_cycles);
        }
        let target = cur
            .saturating_add(opts.checkpoint_every)
            .min(opts.max_cycles);
        if machine.run_to(target)? {
            return Ok(machine.report());
        }
        let state = machine.snapshot();
        let path = format!("{}{}.lbpsnap", opts.checkpoint_prefix, state.cycle());
        match lbp::snap::save(&state, &path) {
            Ok(()) => eprintln!("lbp-run: checkpoint written to {path}"),
            Err(e) => eprintln!("lbp-run: cannot write checkpoint `{path}`: {e}"),
        }
    }
}

/// `--wall-ms MS`: run cooperatively, polling the host clock at cycle
/// boundaries. A run past its wall budget is cancelled *gracefully* —
/// the machine stays valid, so a partial `lbp-dump-v1` report can still
/// be taken — and the caller maps it to exit code 11. Composes with
/// `--checkpoint-every`: legs shrink to the checkpoint interval and a
/// snapshot is written after each completed leg.
fn run_with_wall_clock(
    machine: &mut Machine,
    opts: &Options,
    wall_ms: u64,
) -> Result<Option<RunReport>, Box<SimFailure>> {
    let deadline = std::time::Instant::now() + std::time::Duration::from_millis(wall_ms);
    let slice = if opts.checkpoint_every > 0 {
        opts.checkpoint_every
    } else {
        10_000
    };
    let pause = machine.run_cooperative(opts.max_cycles, slice, |m| {
        if opts.checkpoint_every > 0 && m.stats().cycles < opts.max_cycles {
            let state = m.snapshot();
            let path = format!("{}{}.lbpsnap", opts.checkpoint_prefix, state.cycle());
            match lbp::snap::save(&state, &path) {
                Ok(()) => eprintln!("lbp-run: checkpoint written to {path}"),
                Err(e) => eprintln!("lbp-run: cannot write checkpoint `{path}`: {e}"),
            }
        }
        std::time::Instant::now() < deadline
    })?;
    match pause {
        RunPause::Exited => Ok(Some(machine.report())),
        // Out of cycle budget before wall budget: re-raise the timeout
        // with its crash dump attached, as the plain run path would.
        RunPause::Target => machine.run_diagnosed(opts.max_cycles).map(Some),
        RunPause::Cancelled => Ok(None),
    }
}

/// `--snap-info FILE`: print a container's metadata without restoring
/// the machine.
fn run_snap_info(path: &str) -> ExitCode {
    match lbp::snap::peek_file(path) {
        Ok(meta) => {
            println!("snapshot: {path}");
            println!("format:   lbp-snap v{}", meta.version);
            println!("engine:   {}", meta.engine);
            println!("cycle:    {}", meta.cycle);
            println!("cores:    {}", meta.cores);
            println!("payload:  {} bytes", meta.payload_len);
            println!("hash:     {:#018x}", meta.content_hash);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("lbp-run: cannot inspect `{path}`: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `--bisect-snaps A B`: bisect two same-cycle snapshots of diverging
/// runs, refusing incompatible container versions or engines first.
fn run_bisect_snaps(a: &str, b: &str, max_cycles: u64) -> ExitCode {
    let (meta_a, meta_b) = match (lbp::snap::peek_file(a), lbp::snap::peek_file(b)) {
        (Ok(x), Ok(y)) => (x, y),
        (Err(e), _) => {
            eprintln!("lbp-run: cannot inspect `{a}`: {e}");
            return ExitCode::FAILURE;
        }
        (_, Err(e)) => {
            eprintln!("lbp-run: cannot inspect `{b}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = lbp::snap::ensure_bisect_compatible(&meta_a, &meta_b) {
        eprintln!("lbp-run: {e}");
        return ExitCode::from(2);
    }
    let (sa, sb) = match (lbp::snap::load(a), lbp::snap::load(b)) {
        (Ok(x), Ok(y)) => (x, y),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("lbp-run: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stride = (max_cycles / 100).clamp(16, 65_536);
    match lbp::snap::first_divergence(&sa, &sb, max_cycles, stride) {
        Ok(Some(d)) => {
            println!("{d}");
            ExitCode::SUCCESS
        }
        Ok(None) => {
            println!("no divergence: the two runs stayed state-identical for {max_cycles} cycles");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("lbp-run: bisection failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `--warm N` / `--roi`: fast-forward on the functional engine, print
/// the warm summary, and materialize the cycle-exact machine at the
/// handoff boundary.
fn warm_forward(
    cfg: LbpConfig,
    image: &lbp::asm::Image,
    opts: &Options,
) -> Result<Machine, ExitCode> {
    use lbp::sim::{FastEngine, FastStop};
    let stop = if opts.roi {
        match image.symbol("__roi_start") {
            Some(pc) => FastStop::Pc(pc),
            None => {
                eprintln!(
                    "lbp-run: --roi needs a `__roi_start` marker; add `__roi_start();` to \
                     the C source (or a `__roi_start:` label in assembly)"
                );
                return Err(ExitCode::from(2));
            }
        }
    } else {
        FastStop::Retired(opts.warm.unwrap_or(0))
    };
    let mut fast = match FastEngine::new(cfg, image) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("lbp-run: {e}");
            return Err(ExitCode::from(sim_exit_code(&e)));
        }
    };
    let started = std::time::Instant::now();
    let summary = match fast.run(stop, opts.max_cycles) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lbp-run: warm phase failed: {e}");
            return Err(ExitCode::from(sim_exit_code(&e)));
        }
    };
    let secs = started.elapsed().as_secs_f64();
    eprintln!(
        "lbp-run: warm phase retired {} instructions (virtual cycle {}) in {:.1}ms \
         ({:.1} Minstr/s)",
        summary.retired,
        summary.virtual_cycle,
        secs * 1e3,
        summary.retired as f64 / secs.max(1e-9) / 1e6
    );
    if summary.clamped > 0 {
        eprintln!(
            "lbp-run: warm target fell mid-rendezvous; clamped {} instructions forward \
             to the next rendezvous boundary",
            summary.clamped
        );
    }
    if summary.at_exit {
        eprintln!(
            "lbp-run: warm phase reached the exit boundary; the cycle-exact window only \
             retires the exit p_ret"
        );
    }
    let machine = match fast.materialize(image) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("lbp-run: {e}");
            return Err(ExitCode::from(sim_exit_code(&e)));
        }
    };
    if let Some(path) = &opts.warm_snap {
        let state = machine.snapshot();
        match lbp::snap::save_with_engine(&state, lbp::snap::Engine::Functional, path) {
            Ok(()) => eprintln!(
                "lbp-run: handoff snapshot written to {path} (functional, cycle {})",
                state.cycle()
            ),
            Err(e) => eprintln!("lbp-run: cannot write handoff snapshot `{path}`: {e}"),
        }
    }
    Ok(machine)
}

/// `--hybrid-bisect`: run the functional and cycle-exact engines side by
/// side and localize their first commit-stream divergence.
fn run_hybrid_bisect(opts: &Options, image: &lbp::asm::Image) -> ExitCode {
    let cfg = LbpConfig::cores(opts.cores);
    match lbp::snap::hybrid_divergence(cfg, image, opts.max_cycles, &opts.sabotage) {
        Ok(Some(d)) => {
            println!("{d}");
            ExitCode::SUCCESS
        }
        Ok(None) => {
            println!(
                "no divergence: the functional and cycle-exact engines retire identical \
                 per-hart instruction streams"
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("lbp-run: {e}");
            ExitCode::from(sim_exit_code(&e))
        }
    }
}

/// `--bisect`: build a clean machine and one with the `--fault` plan,
/// then binary-search their runs (over snapshots) for the first cycle —
/// and the first traced event — where they diverge.
fn run_bisect_mode(opts: &Options, image: &lbp::asm::Image) -> ExitCode {
    let mut base = LbpConfig::cores(opts.cores);
    if opts.interval > 0 {
        base = base.with_interval(opts.interval);
    }
    let faulted_cfg = base
        .clone()
        .with_faults(opts.faults.iter().copied().collect::<FaultPlan>());
    let (clean, faulted) = match (Machine::new(base, image), Machine::new(faulted_cfg, image)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("lbp-run: {e}");
            return ExitCode::from(sim_exit_code(&e));
        }
    };
    let stride = (opts.max_cycles / 100).clamp(16, 65_536);
    match lbp::snap::first_divergence(
        &clean.snapshot(),
        &faulted.snapshot(),
        opts.max_cycles,
        stride,
    ) {
        Ok(Some(d)) => {
            println!("{d}");
            ExitCode::SUCCESS
        }
        Ok(None) => {
            println!(
                "no divergence: the faulted run stayed state-identical to the clean run \
                 for {} cycles",
                opts.max_cycles
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("lbp-run: bisection failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let opts = parse_args();
    if let Some(path) = &opts.snap_info {
        return run_snap_info(path);
    }
    if let Some((a, b)) = &opts.bisect_snaps {
        return run_bisect_snaps(a, b, opts.max_cycles);
    }
    // With --resume-from the program is optional — the snapshot carries
    // the whole machine. When given anyway, it still feeds --dump and
    // --profile symbol lookups.
    let front = if opts.input.is_empty() {
        None
    } else {
        let source = match std::fs::read_to_string(&opts.input) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("lbp-run: cannot read `{}`: {e}", opts.input);
                return ExitCode::from(2);
            }
        };
        if opts.verify {
            return run_verify_mode(&opts, &source);
        }
        // Front end by extension.
        if opts.input.ends_with(".c") {
            match lbp::cc::compile(&source) {
                Ok(c) => Some((c.asm, c.image)),
                Err(e) => {
                    eprintln!("lbp-run: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            match lbp::asm::assemble(&source) {
                Ok(img) => Some((source, img)),
                Err(e) => {
                    eprintln!("lbp-run: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    if opts.emit_asm {
        print!("{}", front.expect("checked by parse_args").0);
        return ExitCode::SUCCESS;
    }
    if opts.disasm {
        print!("{}", front.expect("checked by parse_args").1.disassemble());
        return ExitCode::SUCCESS;
    }

    let mut cfg = LbpConfig::cores(opts.cores);
    if opts.interval > 0 {
        cfg = cfg.with_interval(opts.interval);
    }
    if !opts.faults.is_empty() {
        cfg = cfg.with_faults(opts.faults.iter().copied().collect::<FaultPlan>());
    }
    if opts.bisect {
        let image = &front.as_ref().expect("checked by parse_args").1;
        return run_bisect_mode(&opts, image);
    }
    if opts.hybrid_bisect {
        let image = &front.as_ref().expect("checked by parse_args").1;
        return run_hybrid_bisect(&opts, image);
    }
    if opts.lockstep {
        let image = &front.as_ref().expect("checked by parse_args").1;
        return run_lockstep_mode(cfg, image, &opts);
    }
    let mut machine = if opts.warm.is_some() || opts.roi {
        let image = &front.as_ref().expect("checked by parse_args").1;
        match warm_forward(cfg, image, &opts) {
            Ok(m) => m,
            Err(code) => return code,
        }
    } else {
        match &opts.resume_from {
            Some(path) => {
                let state = match lbp::snap::load(path) {
                    Ok(state) => state,
                    Err(e) => {
                        eprintln!("lbp-run: cannot load checkpoint `{path}`: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                match Machine::restore(&state) {
                    Ok(m) => {
                        eprintln!("lbp-run: resumed from {path} at cycle {}", state.cycle());
                        m
                    }
                    Err(e) => {
                        eprintln!("lbp-run: cannot restore `{path}`: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            None => {
                let image = &front
                    .as_ref()
                    .expect("a program or --resume-from is required")
                    .1;
                match Machine::new(cfg, image) {
                    Ok(m) => m,
                    Err(e) => {
                        eprintln!("lbp-run: {e}");
                        return ExitCode::from(sim_exit_code(&e));
                    }
                }
            }
        }
    };
    if opts.profile.is_some() {
        machine.enable_profiling();
    }
    if opts.race_witness {
        machine.enable_race_witness();
    }
    if let Some(path) = &opts.trace {
        let out = match open_out(path) {
            Ok(w) => w,
            Err(e) => {
                eprintln!("lbp-run: cannot open trace `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        };
        let sink: Box<dyn TraceSink> = match opts.trace_format {
            TraceFormat::Text => Box::new(TextSink::new(out)),
            TraceFormat::Jsonl => Box::new(JsonlSink::new(out)),
            TraceFormat::Chrome => Box::new(ChromeSink::new(out)),
        };
        machine.set_sink(sink);
    }
    let run_result = if let Some(wall_ms) = opts.wall_ms {
        run_with_wall_clock(&mut machine, &opts, wall_ms)
    } else if opts.checkpoint_every > 0 {
        run_with_checkpoints(&mut machine, &opts).map(Some)
    } else {
        machine.run_diagnosed(opts.max_cycles).map(Some)
    };
    let report = match run_result {
        Ok(Some(r)) => r,
        Ok(None) => {
            // The wall-clock watchdog cancelled the run at a cycle
            // boundary; the machine is still valid, so the partial run
            // can be dumped like any other diagnosed stop.
            let cycle = machine.stats().cycles;
            let msg = format!(
                "run cancelled: wall-clock budget of {}ms exceeded at cycle {cycle}",
                opts.wall_ms.unwrap_or(0)
            );
            eprintln!("lbp-run: {msg}");
            if let Some(path) = &opts.dump_on_error {
                write_dump(path, &machine.dump_with("cancelled", msg));
            }
            let _ = machine.finish_trace();
            return ExitCode::from(11);
        }
        Err(fail) => {
            eprintln!("lbp-run: {}", fail.error);
            if let Some(path) = &opts.dump_on_error {
                write_dump(path, &fail.dump);
            }
            let _ = machine.finish_trace();
            return ExitCode::from(sim_exit_code(&fail.error));
        }
    };
    if let Err(e) = machine.finish_trace() {
        eprintln!("lbp-run: cannot write trace: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(path) = &opts.trace {
        if path != "-" {
            println!("trace:    streamed to {path}");
        }
    }

    println!("exited:   {}", report.exited);
    println!("cycles:   {}", report.stats.cycles);
    println!("retired:  {}", report.stats.retired());
    println!(
        "IPC:      {:.3} (peak {}.0)",
        report.stats.ipc(),
        machine.config().cores
    );
    println!("forks:    {}", report.stats.forks);
    println!("locality: {:.2}", report.stats.locality());
    let mut raced = false;
    if opts.race_witness {
        let witnesses = machine.race_witnesses();
        if witnesses.is_empty() {
            println!("races:    none observed");
        } else {
            for w in witnesses {
                println!("race:     {w}");
            }
            println!(
                "races:    {} concrete overlap{} observed",
                witnesses.len(),
                if witnesses.len() == 1 { "" } else { "s" }
            );
            raced = true;
        }
    }

    if let Some(path) = &opts.stats_json {
        let mut text = String::new();
        report.to_json().write_pretty(&mut text);
        text.push('\n');
        let write_result = open_out(path).and_then(|mut out| {
            out.write_all(text.as_bytes())?;
            out.flush()
        });
        if let Err(e) = write_result {
            eprintln!("lbp-run: cannot write stats JSON to `{path}`: {e}");
            return ExitCode::FAILURE;
        }
        if path != "-" {
            println!("stats:    {path}");
        }
    }

    if !opts.dumps.is_empty() && front.is_none() {
        eprintln!("lbp-run: --dump needs the program for its symbols; none was given");
    }
    for (sym, n) in &opts.dumps {
        let Some((_, image)) = &front else { break };
        match image.symbol(sym) {
            None => eprintln!("lbp-run: no symbol `{sym}`"),
            Some(addr) => {
                print!("{sym}:");
                for i in 0..*n {
                    match machine.peek_shared(addr + 4 * i) {
                        Ok(v) => print!(" {}", v as i32),
                        Err(e) => {
                            print!(" <{e}>");
                            break;
                        }
                    }
                }
                println!();
            }
        }
    }

    if let Some(dir) = &opts.profile {
        let prof = machine.profile().expect("profiling was enabled");
        // Symbolize through the program when we have one; a resumed run
        // without a program falls back to raw pc names.
        let sym = match &front {
            Some((_, image)) => lbp::prof::SymTab::from_image(image),
            None => lbp::prof::SymTab::empty(),
        };
        let report_json = lbp::prof::build_report(&opts.input, &report.stats, prof, &sym);
        let mut profile_text = String::new();
        report_json.write_pretty(&mut profile_text);
        profile_text.push('\n');
        let folded = lbp::prof::folded_stacks(prof, &sym);
        let timeline = lbp::prof::timeline_json(prof, report.stats.cycles);
        let write_all = || -> std::io::Result<()> {
            std::fs::create_dir_all(dir)?;
            let at = |name: &str| format!("{dir}/{name}");
            std::fs::write(at("profile.json"), &profile_text)?;
            std::fs::write(at("folded.txt"), &folded)?;
            std::fs::write(at("timeline.json"), &timeline)?;
            Ok(())
        };
        if let Err(e) = write_all() {
            eprintln!("lbp-run: cannot write profile to `{dir}`: {e}");
            return ExitCode::FAILURE;
        }
        println!("\nhot spots by function:");
        print!("{}", lbp::prof::hotspot_table(&report_json, 15));
        println!("profile:  {dir}/profile.json (+ folded.txt, timeline.json)");
    }

    if raced {
        // Determinism violated at runtime: same class as a static
        // verification rejection.
        return ExitCode::from(10);
    }
    ExitCode::SUCCESS
}
