//! `lbp-cc` — the Deterministic OpenMP front end as a standalone tool.
//!
//! ```text
//! lbp-cc program.c                  # compile, print PISC assembly
//! lbp-cc program.c -o program.s     # compile to a file
//! lbp-cc program.c --lint           # static determinism lint, no codegen
//! lbp-cc program.c --lint --diag-json report.json
//! lbp-cc program.c --interp         # run the executable semantics
//! lbp-cc program.c --diff           # interpret AND simulate, compare
//! ```
//!
//! `--lint` runs the source-level determinism analysis: every variable
//! in a parallel region is classified private / shared / reduction, and
//! shared writes that two harts can both reach are rejected with a
//! hart-pair witness and a fix hint. When the source level accepts, the
//! program is also compiled and the binary-level analyses (protocol
//! B-codes and the shared-memory M-pass) run over the generated image,
//! merged into the same report. Diagnostics print to stdout;
//! `--diag-json FILE` additionally writes the machine-readable
//! `lbp-diag-v1` report. A lint rejection exits with code 10, the same
//! verification exit class as `lbp-run --verify`.
//!
//! `--interp` runs the program under lbp-sema's executable semantics —
//! no code generation involved beyond laying globals out where the
//! image would — and prints the canonical observable outcome with its
//! content hash. `--diff` additionally compiles and simulates the
//! program and demands the simulator reproduce every global word of the
//! interpreted outcome; a divergence exits with code 12 (and is, by
//! construction, a compiler or simulator bug). `--sabotage
//! codegen:<kind>` injects a deliberate miscompilation into the
//! compiled side (`chunk-bounds`, `index-shift` or `const-fold`) so the
//! differential harness can be watched catching it.

use std::io::Write as _;
use std::process::ExitCode;

struct Options {
    input: String,
    output: Option<String>,
    lint: bool,
    diag_json: Option<String>,
    interp: bool,
    diff: bool,
    sabotage: Option<lbp::cc::CodegenSabotage>,
    max_cycles: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: lbp-cc <program.c> [options]\n\
         \n\
         options:\n\
           -o FILE            write the generated assembly to FILE ('-' = stdout)\n\
           --lint             run the static determinism lint instead of compiling\n\
           --diag-json FILE   with --lint, write the lbp-diag-v1 report ('-' = stdout)\n\
           --interp           run the executable semantics, print the outcome + hash\n\
           --diff             interpret AND compile-and-simulate, compare observables\n\
           --sabotage codegen:KIND\n\
                              inject a deliberate miscompilation into generated code\n\
                              (chunk-bounds | index-shift | const-fold)\n\
           --max-cycles N     simulation budget for --diff (default 100000000)\n\
         \n\
         exit codes: 0 ok, 1 front-end/I/O, 2 usage, 10 lint rejection,\n\
                     12 observable divergence (--diff)"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        input: String::new(),
        output: None,
        lint: false,
        diag_json: None,
        interp: false,
        diff: false,
        sabotage: None,
        max_cycles: 100_000_000,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-o" => opts.output = Some(args.next().unwrap_or_else(|| usage())),
            "--lint" => opts.lint = true,
            "--diag-json" => opts.diag_json = Some(args.next().unwrap_or_else(|| usage())),
            "--interp" => opts.interp = true,
            "--diff" => opts.diff = true,
            "--sabotage" => {
                let spec = args.next().unwrap_or_else(|| usage());
                let kind = spec
                    .strip_prefix("codegen:")
                    .and_then(lbp::cc::CodegenSabotage::parse);
                match kind {
                    Some(k) => opts.sabotage = Some(k),
                    None => {
                        eprintln!("lbp-cc: unknown sabotage `{spec}`");
                        usage()
                    }
                }
            }
            "--max-cycles" => {
                let n = args.next().unwrap_or_else(|| usage());
                opts.max_cycles = n.parse().unwrap_or_else(|_| usage());
            }
            "--help" | "-h" => usage(),
            other if opts.input.is_empty() && !other.starts_with('-') => {
                opts.input = other.to_owned();
            }
            _ => usage(),
        }
    }
    if opts.input.is_empty() {
        usage();
    }
    opts
}

/// Opens `path` for output; `-` means stdout.
fn open_out(path: &str) -> std::io::Result<Box<dyn std::io::Write>> {
    if path == "-" {
        Ok(Box::new(std::io::stdout()))
    } else {
        let file = std::fs::File::create(path)?;
        Ok(Box::new(std::io::BufWriter::new(file)))
    }
}

fn write_out(path: &str, text: &str) -> std::io::Result<()> {
    let mut out = open_out(path)?;
    out.write_all(text.as_bytes())?;
    out.flush()
}

fn run_lint(opts: &Options, source: &str) -> ExitCode {
    let mut diags = match lbp::cc::lint(source) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("lbp-cc: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Cross-check the source verdict at the binary level: compile the
    // program (when the source lint accepted it) and run the image-level
    // analyses, including the shared-memory M-pass, over the generated
    // code. The two layers speak the same `lbp-diag-v1` format, so the
    // reports merge; line numbers of binary diags refer to the generated
    // assembly, which is why they also carry a `pc`.
    if lbp::verify::accepted(&diags) {
        if let Ok(compiled) = lbp::cc::compile(source) {
            diags.extend(lbp::verify::verify_image(&compiled.image));
            diags.sort_by(|a, b| (a.line, a.code.as_str()).cmp(&(b.line, b.code.as_str())));
        }
    }
    // `--diag-json -` owns stdout: the JSON must stay parseable, so the
    // human-readable rendering is suppressed.
    let json_to_stdout = opts.diag_json.as_deref() == Some("-");
    let ok = lbp::verify::accepted(&diags);
    if !json_to_stdout {
        for d in &diags {
            println!("{d}");
        }
        println!(
            "lint:     {} ({} diagnostic{})",
            if ok { "accepted" } else { "rejected" },
            diags.len(),
            if diags.len() == 1 { "" } else { "s" }
        );
    }
    if let Some(path) = &opts.diag_json {
        let text = lbp::verify::report_json(&opts.input, &diags);
        if let Err(e) = write_out(path, &text) {
            eprintln!("lbp-cc: cannot write diag JSON to `{path}`: {e}");
            return ExitCode::FAILURE;
        }
        if path != "-" {
            println!("diags:    {path}");
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(10)
    }
}

fn run_interp(source: &str) -> ExitCode {
    match lbp::sema::diff::interp_source(source, &Default::default()) {
        Ok(outcome) => {
            print!("{}", outcome.render());
            println!("hash {:016x}", outcome.content_hash());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("lbp-cc: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_diff(opts: &Options, source: &str) -> ExitCode {
    let cc_opts = lbp::cc::CcOptions {
        sabotage: opts.sabotage,
    };
    match lbp::sema::diff::diff_source_with(
        source,
        &cc_opts,
        None,
        opts.max_cycles,
        &Default::default(),
    ) {
        Ok(report) => {
            print!("{}", report.outcome.render());
            println!("hash {:016x}", report.hash());
            println!(
                "diff:     observables agree (simulated in {} cycles)",
                report.cycles
            );
            ExitCode::SUCCESS
        }
        Err(lbp::sema::diff::DiffError::Divergence(d)) => {
            eprintln!("lbp-cc: observable divergence: {d}");
            ExitCode::from(12)
        }
        Err(e) => {
            eprintln!("lbp-cc: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let opts = parse_args();
    if !opts.input.ends_with(".c") {
        eprintln!("lbp-cc: input must be a `.c` file, got `{}`", opts.input);
        return ExitCode::from(2);
    }
    let source = match std::fs::read_to_string(&opts.input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lbp-cc: cannot read `{}`: {e}", opts.input);
            return ExitCode::from(2);
        }
    };
    if opts.lint {
        return run_lint(&opts, &source);
    }
    if opts.diff {
        return run_diff(&opts, &source);
    }
    if opts.interp {
        return run_interp(&source);
    }
    let compiled = match lbp::cc::compile_with(
        &source,
        &lbp::cc::CcOptions {
            sabotage: opts.sabotage,
        },
    ) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("lbp-cc: {e}");
            return ExitCode::FAILURE;
        }
    };
    let dest = opts.output.as_deref().unwrap_or("-");
    if let Err(e) = write_out(dest, &compiled.asm) {
        eprintln!("lbp-cc: cannot write assembly to `{dest}`: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
