//! `lbp-cc` — the Deterministic OpenMP front end as a standalone tool.
//!
//! ```text
//! lbp-cc program.c                  # compile, print PISC assembly
//! lbp-cc program.c -o program.s     # compile to a file
//! lbp-cc program.c --lint           # static determinism lint, no codegen
//! lbp-cc program.c --lint --diag-json report.json
//! ```
//!
//! `--lint` runs the source-level determinism analysis: every variable
//! in a parallel region is classified private / shared / reduction, and
//! shared writes that two harts can both reach are rejected with a
//! hart-pair witness and a fix hint. When the source level accepts, the
//! program is also compiled and the binary-level analyses (protocol
//! B-codes and the shared-memory M-pass) run over the generated image,
//! merged into the same report. Diagnostics print to stdout;
//! `--diag-json FILE` additionally writes the machine-readable
//! `lbp-diag-v1` report. A lint rejection exits with code 10, the same
//! verification exit class as `lbp-run --verify`.

use std::io::Write as _;
use std::process::ExitCode;

struct Options {
    input: String,
    output: Option<String>,
    lint: bool,
    diag_json: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: lbp-cc <program.c> [options]\n\
         \n\
         options:\n\
           -o FILE            write the generated assembly to FILE ('-' = stdout)\n\
           --lint             run the static determinism lint instead of compiling\n\
           --diag-json FILE   with --lint, write the lbp-diag-v1 report ('-' = stdout)\n\
         \n\
         exit codes: 0 ok, 1 front-end/I/O, 2 usage, 10 lint rejection"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        input: String::new(),
        output: None,
        lint: false,
        diag_json: None,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-o" => opts.output = Some(args.next().unwrap_or_else(|| usage())),
            "--lint" => opts.lint = true,
            "--diag-json" => opts.diag_json = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other if opts.input.is_empty() && !other.starts_with('-') => {
                opts.input = other.to_owned();
            }
            _ => usage(),
        }
    }
    if opts.input.is_empty() {
        usage();
    }
    opts
}

/// Opens `path` for output; `-` means stdout.
fn open_out(path: &str) -> std::io::Result<Box<dyn std::io::Write>> {
    if path == "-" {
        Ok(Box::new(std::io::stdout()))
    } else {
        let file = std::fs::File::create(path)?;
        Ok(Box::new(std::io::BufWriter::new(file)))
    }
}

fn write_out(path: &str, text: &str) -> std::io::Result<()> {
    let mut out = open_out(path)?;
    out.write_all(text.as_bytes())?;
    out.flush()
}

fn run_lint(opts: &Options, source: &str) -> ExitCode {
    let mut diags = match lbp::cc::lint(source) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("lbp-cc: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Cross-check the source verdict at the binary level: compile the
    // program (when the source lint accepted it) and run the image-level
    // analyses, including the shared-memory M-pass, over the generated
    // code. The two layers speak the same `lbp-diag-v1` format, so the
    // reports merge; line numbers of binary diags refer to the generated
    // assembly, which is why they also carry a `pc`.
    if lbp::verify::accepted(&diags) {
        if let Ok(compiled) = lbp::cc::compile(source) {
            diags.extend(lbp::verify::verify_image(&compiled.image));
            diags.sort_by(|a, b| (a.line, a.code.as_str()).cmp(&(b.line, b.code.as_str())));
        }
    }
    // `--diag-json -` owns stdout: the JSON must stay parseable, so the
    // human-readable rendering is suppressed.
    let json_to_stdout = opts.diag_json.as_deref() == Some("-");
    let ok = lbp::verify::accepted(&diags);
    if !json_to_stdout {
        for d in &diags {
            println!("{d}");
        }
        println!(
            "lint:     {} ({} diagnostic{})",
            if ok { "accepted" } else { "rejected" },
            diags.len(),
            if diags.len() == 1 { "" } else { "s" }
        );
    }
    if let Some(path) = &opts.diag_json {
        let text = lbp::verify::report_json(&opts.input, &diags);
        if let Err(e) = write_out(path, &text) {
            eprintln!("lbp-cc: cannot write diag JSON to `{path}`: {e}");
            return ExitCode::FAILURE;
        }
        if path != "-" {
            println!("diags:    {path}");
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(10)
    }
}

fn main() -> ExitCode {
    let opts = parse_args();
    if !opts.input.ends_with(".c") {
        eprintln!("lbp-cc: input must be a `.c` file, got `{}`", opts.input);
        return ExitCode::from(2);
    }
    let source = match std::fs::read_to_string(&opts.input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lbp-cc: cannot read `{}`: {e}", opts.input);
            return ExitCode::from(2);
        }
    };
    if opts.lint {
        return run_lint(&opts, &source);
    }
    let compiled = match lbp::cc::compile(&source) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("lbp-cc: {e}");
            return ExitCode::FAILURE;
        }
    };
    let dest = opts.output.as_deref().unwrap_or("-");
    if let Err(e) = write_out(dest, &compiled.asm) {
        eprintln!("lbp-cc: cannot write assembly to `{dest}`: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
