//! Umbrella crate re-exporting the LBP stack.

#![forbid(unsafe_code)]

pub use lbp_asm as asm;
pub use lbp_baseline as baseline;
pub use lbp_cc as cc;
pub use lbp_isa as isa;
pub use lbp_kernels as kernels;
pub use lbp_omp as omp;
pub use lbp_prof as prof;
pub use lbp_sema as sema;
pub use lbp_sim as sim;
pub use lbp_snap as snap;
pub use lbp_verify as verify;
