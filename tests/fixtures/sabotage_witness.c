/* A minimal program whose observables diverge under EVERY
 * `--sabotage codegen:*` kind, used by the CLI red checks (CI
 * semantics-smoke) and the differential suite:
 *
 *   - chunk-bounds: the team of 4 loses its last member, so acc[3]
 *     keeps its initial zero instead of 4.
 *   - index-shift: each member writes its neighbour's slot.
 *   - const-fold:  `W - 1` is an immediate-immediate subtraction the
 *     sabotaged folder turns into an addition (4 becomes 6).
 *
 * Unsabotaged it diffs clean, like every shipped example.
 */
#define W 5
int acc[8];
void main(void) {
    int t;
    omp_set_num_threads(4);
#pragma omp parallel for
    for (t = 0; t < 4; t++) {
        acc[t] = t + 1;
    }
    acc[4] = acc[0] + (W - 1);
}
