//! Whole-stack integration tests: C source → translator → assembler →
//! simulator, and runtime-generated programs across machine sizes.

use lbp::cc;
use lbp::kernels::matmul::{Matmul, Version};
use lbp::omp::DetOmp;
use lbp::sim::{LbpConfig, Machine};

#[test]
fn c_program_through_the_whole_stack() {
    let compiled = cc::compile(
        "#define NT 8
int data[NT];
int total[1];
void work(int t) { data[t] = (t + 1) * (t + 1); }
void main(void) {
    int t; int i; int s;
#pragma omp parallel for
    for (t = 0; t < NT; t++) work(t);
    s = 0;
    for (i = 0; i < NT; i++) s += data[i];
    total[0] = s;
}",
    )
    .expect("compiles");
    let mut m = Machine::new(LbpConfig::cores(2), &compiled.image).expect("machine");
    let report = m.run(10_000_000).expect("runs");
    assert!(report.exited);
    let total = m
        .peek_shared(compiled.image.symbol("total").unwrap())
        .unwrap();
    assert_eq!(total, (1..=8u32).map(|x| x * x).sum());
}

#[test]
fn runtime_and_compiler_agree_on_the_protocol() {
    // The same semantics expressed through the DetOmp builder and through
    // C must produce the same memory contents.
    let n = 8u32;
    let via_builder = {
        let p = DetOmp::new(n as usize)
            .data_space("v", n * 4)
            .function(
                "thread",
                "la   a2, v
                 slli a3, a0, 2
                 add  a2, a2, a3
                 slli a4, a0, 1
                 sw   a4, 0(a2)
                 p_ret",
            )
            .parallel_for("thread");
        let image = p.build().unwrap();
        let mut m = Machine::new(LbpConfig::cores(2), &image).unwrap();
        m.run(10_000_000).unwrap();
        let v = image.symbol("v").unwrap();
        (0..n)
            .map(|t| m.peek_shared(v + 4 * t).unwrap())
            .collect::<Vec<_>>()
    };
    let via_c = {
        let compiled = cc::compile(
            "int v[8];
void main(void) {
    int t;
#pragma omp parallel for
    for (t = 0; t < 8; t++) { v[t] = t * 2; }
}",
        )
        .unwrap();
        let mut m = Machine::new(LbpConfig::cores(2), &compiled.image).unwrap();
        m.run(10_000_000).unwrap();
        let v = compiled.image.symbol("v").unwrap();
        (0..n)
            .map(|t| m.peek_shared(v + 4 * t).unwrap())
            .collect::<Vec<_>>()
    };
    assert_eq!(via_builder, via_c);
}

#[test]
fn matmul_kernels_match_a_host_reference_with_random_inputs() {
    let mut rng = lbp_testutil::Rng::new(7);
    for version in [Version::Base, Version::Tiled, Version::Distributed] {
        let mm = Matmul::new(16, version);
        let image = mm.build();
        let mut m = Machine::new(mm.config(), &image).unwrap();
        let l = mm.layout();
        // Random small inputs instead of the paper's all-ones.
        let mut x = vec![0i64; (l.n * l.m) as usize];
        let mut y = vec![0i64; (l.m * l.n) as usize];
        for i in 0..l.n {
            for k in 0..l.m {
                let v = rng.range_i64(-9, 8);
                x[(i * l.m + k) as usize] = v;
                m.poke_shared(l.x(i, k), v as u32).unwrap();
            }
        }
        for k in 0..l.m {
            for j in 0..l.n {
                let v = rng.range_i64(-9, 8);
                y[(k * l.n + j) as usize] = v;
                m.poke_shared(l.y(k, j), v as u32).unwrap();
            }
        }
        m.run(100_000_000).unwrap();
        for i in 0..l.n {
            for j in 0..l.n {
                let want: i64 = (0..l.m)
                    .map(|k| x[(i * l.m + k) as usize] * y[(k * l.n + j) as usize])
                    .sum();
                let got = m.peek_shared(l.z(i, j)).unwrap() as i32 as i64;
                assert_eq!(got, want, "{} Z[{i}][{j}]", version.name());
            }
        }
    }
}

#[test]
fn region_team_larger_than_machine_is_a_clean_error() {
    // 8 members need 2 cores; on a single-core machine the p_fn hits the
    // end of the core line: a protocol error, not a hang.
    let p = DetOmp::new(8).function("f", "p_ret").parallel_for("f");
    let image = p.build().unwrap();
    let mut m = Machine::new(LbpConfig::cores(1), &image).unwrap();
    let err = m.run(1_000_000).unwrap_err();
    assert!(matches!(err, lbp::sim::SimError::Protocol { .. }));
}

#[test]
fn umbrella_crate_reexports_work() {
    // The public API is reachable through the umbrella crate.
    let _cfg = lbp::sim::LbpConfig::cores(4);
    let _reg: lbp::isa::Reg = lbp::isa::Reg::A0;
    let _ = lbp::asm::assemble("main: nop").unwrap();
    let _ = lbp::baseline::PhiModel::paper_calibrated();
}
