//! Pins `lbp-run`'s documented exit-code contract: 0 ok, 2 usage,
//! 1 front-end/I-O, 4 timeout, 5 deadlock, 6 protocol, 7 decode,
//! 8 memory fault, 9 lockstep divergence, 10 verification rejection,
//! 11 wall-clock cancellation.
//! Scripts and CI match on these numbers, so they are load-bearing API.

use std::path::PathBuf;
use std::process::Command;

use lbp_testutil::harness;

fn lbp_run() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lbp-run"))
}

fn example(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("examples/asm")
        .join(name)
}

/// Writes a scratch program and returns its path.
fn scratch(name: &str, text: &str) -> PathBuf {
    harness::scratch_file("exit-codes", name, text)
}

fn code(cmd: &mut Command) -> i32 {
    cmd.output().expect("lbp-run spawns").status.code().unwrap()
}

#[test]
fn exit_0_clean_run() {
    assert_eq!(
        code(lbp_run().arg(example("mul.s")).args(["--cores", "1"])),
        0
    );
}

#[test]
fn exit_2_usage_errors() {
    assert_eq!(code(&mut lbp_run()), 2, "no arguments");
    assert_eq!(code(lbp_run().arg("--no-such-flag")), 2, "unknown flag");
    assert_eq!(
        code(lbp_run().arg(example("mul.s")).args(["--cores", "0"])),
        2,
        "zero cores"
    );
    assert_eq!(
        code(lbp_run().arg(example("mul.s")).arg("--bisect")),
        2,
        "--bisect without --fault"
    );
}

#[test]
fn exit_1_front_end_failure() {
    let bad = scratch("bad.c", "int main( { this is not C }\n");
    assert_eq!(code(lbp_run().arg(bad)), 1);
}

#[test]
fn exit_4_timeout() {
    assert_eq!(
        code(
            lbp_run()
                .arg(example("mul.s"))
                .args(["--cores", "1", "--max-cycles", "5"])
        ),
        4
    );
}

#[test]
fn exit_5_deadlock() {
    assert_eq!(
        code(lbp_run().arg(example("hung.s")).args(["--cores", "1"])),
        5
    );
}

#[test]
fn exit_6_protocol_violation() {
    // p_fn on the last core: the forward line does not wrap.
    let p = scratch("proto.s", "main:\n  p_fn t6\n  p_ret\n");
    assert_eq!(code(lbp_run().arg(p).args(["--cores", "1"])), 6);
}

#[test]
fn exit_7_decode_fault() {
    // Corrupt the first code word into something undecodable.
    assert_eq!(
        code(lbp_run().arg(example("mul.s")).args([
            "--cores",
            "1",
            "--fault",
            "corrupt-instr:0x0:0xffffffff:1"
        ])),
        7
    );
}

#[test]
fn exit_8_memory_fault() {
    let p = scratch(
        "memf.s",
        "main:
  li a0, 0x40000002
  lw a1, 0(a0)      # misaligned word load
  li t0, -1
  li a0, 0
  p_ret a0, t0
",
    );
    assert_eq!(code(lbp_run().arg(p).args(["--cores", "1"])), 8);
}

#[test]
fn exit_9_lockstep_divergence() {
    // Flip a2 after `mul` wrote it: only the differential check sees it.
    assert_eq!(
        code(lbp_run().arg(example("mul.s")).args([
            "--cores",
            "1",
            "--lockstep",
            "--fault",
            "flip-reg:0:a2:4:14"
        ])),
        9
    );
}

#[test]
fn exit_10_verification_rejection() {
    assert_eq!(code(lbp_run().arg(example("hung.s")).arg("--verify")), 10);
}

#[test]
fn exit_11_wall_clock_cancellation() {
    // `--wall-ms 0` arms an already-expired watchdog: the run is
    // cancelled at the first cooperative poll, deterministically.
    let p = scratch("spin.s", "main:\nloop:\n  j loop\n");
    let dir = harness::scratch_dir("wall-cli");
    let dump = dir.join("partial.json");
    let out = lbp_run()
        .arg(&p)
        .args(["--cores", "1", "--max-cycles", "1000000", "--wall-ms", "0"])
        .args(["--dump-on-error", dump.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(11));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("wall-clock budget"),
        "cancellation must be named on stderr: {stderr}"
    );
    // Graceful cancellation still yields a valid partial dump.
    let text = std::fs::read_to_string(&dump).unwrap();
    assert!(
        text.contains("\"lbp-dump-v1\"") && text.contains("\"cancelled\""),
        "partial dump must be a well-formed lbp-dump-v1 report: {text}"
    );
    harness::scratch_cleanup(&dir);
}

#[test]
fn wall_clock_budget_that_fits_the_run_changes_nothing() {
    // A generous budget must not perturb the run: same stdout as the
    // plain path, exit 0.
    let plain = lbp_run()
        .arg(example("mul.s"))
        .args(["--cores", "1"])
        .output()
        .unwrap();
    assert!(plain.status.success());
    let watched = lbp_run()
        .arg(example("mul.s"))
        .args(["--cores", "1", "--wall-ms", "60000"])
        .output()
        .unwrap();
    assert_eq!(watched.status.code(), Some(0));
    assert_eq!(
        String::from_utf8_lossy(&plain.stdout),
        String::from_utf8_lossy(&watched.stdout),
        "an unexpired watchdog must not change the run"
    );
}

#[test]
fn checkpoint_resume_reaches_the_same_state() {
    // End-to-end over the CLI: checkpoint a run, resume it, and compare
    // the printed stats line-for-line with the uninterrupted run.
    let dir = harness::scratch_dir("ckpt-cli");
    let prefix = dir.join("ck-");
    let full = lbp_run()
        .arg(example("mul.s"))
        .args(["--cores", "1"])
        .output()
        .unwrap();
    assert!(full.status.success());
    let ckpt = lbp_run()
        .arg(example("mul.s"))
        .args(["--cores", "1", "--checkpoint-every", "10"])
        .args(["--checkpoint-prefix", prefix.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(ckpt.status.success());
    assert_eq!(
        String::from_utf8_lossy(&full.stdout),
        String::from_utf8_lossy(&ckpt.stdout),
        "checkpointing must not change the run"
    );
    let resumed = lbp_run()
        .args(["--resume-from", &format!("{}10.lbpsnap", prefix.display())])
        .output()
        .unwrap();
    assert!(resumed.status.success());
    assert_eq!(
        String::from_utf8_lossy(&full.stdout),
        String::from_utf8_lossy(&resumed.stdout),
        "a resumed run must report the same stats as the original"
    );
    harness::scratch_cleanup(&dir);
}

#[test]
fn bisect_reports_the_divergent_cycle() {
    let out = lbp_run()
        .arg(example("mul.s"))
        .args(["--cores", "1", "--fault", "flip-reg:0:a2:4:14", "--bisect"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("first divergence at cycle 14"),
        "bisect must name the fault's trigger cycle, got:\n{text}"
    );
}
