//! Cross-crate determinism tests, including the §6 claim: semantic
//! determinism survives non-deterministic device timing, and closed
//! programs are cycle-deterministic end to end.

use lbp::cc;
use lbp::kernels::sensor::SensorApp;
use lbp::sim::{LbpConfig, Machine};

#[test]
fn sensor_outputs_are_invariant_under_every_tested_jitter() {
    let app = SensorApp::new(2);
    let image = app.program().build().unwrap();
    let values = [[3, 7, 11, 15], [2, 4, 6, 8]];
    let expected = app.expected(&values);
    // A spread of adversarial schedules: in-order, reverse, bursty,
    // one-laggard.
    let schedules: [[Vec<(u64, u32)>; 4]; 4] = [
        [
            vec![(5, 3), (900, 2)],
            vec![(6, 7), (901, 4)],
            vec![(7, 11), (902, 6)],
            vec![(8, 15), (903, 8)],
        ],
        [
            vec![(800, 3), (4000, 2)],
            vec![(600, 7), (3000, 4)],
            vec![(400, 11), (2000, 6)],
            vec![(200, 15), (1500, 8)],
        ],
        [
            vec![(100, 3), (101, 2)],
            vec![(100, 7), (102, 4)],
            vec![(100, 11), (103, 6)],
            vec![(100, 15), (104, 8)],
        ],
        [
            vec![(5, 3), (600, 2)],
            vec![(6, 7), (700, 4)],
            vec![(7, 11), (800, 6)],
            vec![(9000, 15), (20000, 8)],
        ],
    ];
    for (i, schedule) in schedules.into_iter().enumerate() {
        let mut m = Machine::new(LbpConfig::cores(1), &image).unwrap();
        let out = app.attach_devices(&mut m, schedule);
        m.run(10_000_000).unwrap();
        assert_eq!(
            m.io_mut().output(out).values(),
            expected,
            "schedule #{i} changed the fused values"
        );
    }
}

#[test]
fn identical_device_schedules_give_identical_cycles() {
    // With the SAME schedule, even the cycle count is reproducible: the
    // non-determinism is entirely in the environment, never the machine.
    let app = SensorApp::new(2);
    let image = app.program().build().unwrap();
    let schedule = || {
        [
            vec![(123, 1), (777, 5)],
            vec![(50, 2), (900, 6)],
            vec![(400, 3), (801, 7)],
            vec![(9, 4), (1500, 8)],
        ]
    };
    let run = || {
        let mut m = Machine::new(LbpConfig::cores(1).with_trace(), &image).unwrap();
        let out = app.attach_devices(&mut m, schedule());
        let r = m.run(10_000_000).unwrap();
        (
            r.stats.cycles,
            m.io_mut().output(out).values(),
            m.trace().len(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn compiled_c_programs_are_cycle_deterministic() {
    let compiled = cc::compile(
        "int v[16];
int acc[1];
void step(int t) { v[t] = v[t] + t; }
void main(void) {
    int t; int i; int s;
#pragma omp parallel for
    for (t = 0; t < 16; t++) step(t);
#pragma omp parallel for
    for (t = 0; t < 16; t++) step(t);
    s = 0;
    for (i = 0; i < 16; i++) s += v[i];
    acc[0] = s;
}",
    )
    .unwrap();
    let run = || {
        let mut m = Machine::new(LbpConfig::cores(4).with_trace(), &compiled.image).unwrap();
        let r = m.run(10_000_000).unwrap();
        (
            r.stats.cycles,
            r.stats.retired(),
            m.peek_shared(compiled.image.symbol("acc").unwrap())
                .unwrap(),
            m.trace().clone(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.2, 2 * (0..16).sum::<u32>());
    assert_eq!(a, b);
}
