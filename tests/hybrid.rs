//! The hybrid handoff property: `materialize(fast_forward(N))` then
//! running cycle-exactly to completion must reach the *bit-identical
//! architectural state* a pure cycle-exact run reaches — for every
//! example program, at every warm target (including 0, mid-rendezvous
//! values, and past-end), and with faults scheduled inside the
//! cycle-exact window.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use lbp::asm::Image;
use lbp::kernels::matmul::{Matmul, Version};
use lbp::sim::{
    Event, EventKind, FastEngine, FastStop, Fault, FaultPlan, LbpConfig, Machine, TraceSink,
};

const MAX_CYCLES: u64 = 100_000_000;
const MAX_STEPS: u64 = 100_000_000;

fn repo(rel: &str) -> String {
    format!("{}/{rel}", env!("CARGO_MANIFEST_DIR"))
}

/// Every example program the suite proves the handoff on: assembly
/// examples, compiled C samples, and a kernels-built fork tree.
fn example_images() -> Vec<(String, Image, usize)> {
    let mut out = Vec::new();
    for (file, cores) in [("examples/asm/mul.s", 1), ("examples/asm/fork2.s", 2)] {
        let src = std::fs::read_to_string(repo(file)).unwrap();
        out.push((file.to_owned(), lbp::asm::assemble(&src).unwrap(), cores));
    }
    for (file, cores) in [
        ("examples/c/hello_team.c", 2),
        ("examples/c/matmul.c", 4),
        ("examples/c/set_get.c", 4),
        ("examples/c/reduce.c", 2),
    ] {
        let src = std::fs::read_to_string(repo(file)).unwrap();
        let compiled = lbp::cc::compile(&src).unwrap();
        out.push((file.to_owned(), compiled.image, cores));
    }
    let mm = Matmul::new(16, Version::Base);
    out.push(("kernels/matmul-base-16".to_owned(), mm.build(), mm.cores()));
    out
}

fn pure_run(image: &Image, cores: usize) -> (u64, u64) {
    let mut m = Machine::new(LbpConfig::cores(cores), image).unwrap();
    let report = m.run(MAX_CYCLES).unwrap();
    assert!(report.exited);
    (report.stats.retired(), m.arch_hash())
}

/// Fast-forwards to `stop`, materializes, finishes cycle-exactly, and
/// returns the final architectural hash plus the finished machine.
fn hybrid_run(image: &Image, cores: usize, stop: FastStop) -> (u64, Machine) {
    let mut fast = FastEngine::new(LbpConfig::cores(cores), image).unwrap();
    fast.run(stop, MAX_STEPS).unwrap();
    let mut m = fast.materialize(image).unwrap();
    let report = m.run(MAX_CYCLES).unwrap();
    assert!(report.exited);
    (m.arch_hash(), m)
}

#[test]
fn hybrid_handoff_matches_pure_cycle_exact() {
    for (name, image, cores) in example_images() {
        let (retired, pure_hash) = pure_run(&image, cores);
        for warm in [0, retired / 2, retired.saturating_sub(1), u64::MAX] {
            let (hash, m) = hybrid_run(&image, cores, FastStop::Retired(warm));
            assert_eq!(
                hash, pure_hash,
                "{name}: hybrid warm={warm} diverged from pure cycle-exact"
            );
            assert_eq!(
                m.stats().retired(),
                retired,
                "{name}: hybrid warm={warm} retired a different instruction count"
            );
        }
        let (hash, _) = hybrid_run(&image, cores, FastStop::Exit);
        assert_eq!(hash, pure_hash, "{name}: exit-boundary handoff diverged");
    }
}

/// Every warm target in 0..=retired for a forking program — mid-rendezvous
/// targets included — must clamp cleanly, never panic, and still converge.
#[test]
fn every_warm_target_clamps_and_converges() {
    let src = std::fs::read_to_string(repo("examples/asm/fork2.s")).unwrap();
    let image = lbp::asm::assemble(&src).unwrap();
    let (retired, pure_hash) = pure_run(&image, 2);
    for warm in 0..=retired {
        let mut fast = FastEngine::new(LbpConfig::cores(2), &image).unwrap();
        let summary = fast.run(FastStop::Retired(warm), MAX_STEPS).unwrap();
        assert!(
            summary.rendezvous_clean,
            "warm={warm}: drain left a fork pending"
        );
        let mut m = fast.materialize(&image).unwrap();
        let report = m.run(MAX_CYCLES).unwrap();
        assert!(report.exited, "warm={warm}: hybrid run did not exit");
        assert_eq!(m.arch_hash(), pure_hash, "warm={warm}: diverged");
    }
}

/// `__roi_start();` compiles to a label the hybrid driver can target:
/// fast-forwarding to its pc parks before the marker, and finishing
/// cycle-exactly still converges to the pure run's state.
#[test]
fn roi_marker_compiles_to_a_targetable_label() {
    let src = "\
#define NUM_HART 8
#include <det_omp.h>

int data[NUM_HART];
int out[1];

void fill(int t) { data[t] = t * 3; }

void main(void) {
    int t; int s;
    omp_set_num_threads(NUM_HART);
#pragma omp parallel for
    for (t = 0; t < NUM_HART; t++) fill(t);
    __roi_start();
    s = 0;
    for (t = 0; t < NUM_HART; t++) s += data[t];
    out[0] = s;
    __roi_end();
}
";
    let compiled = lbp::cc::compile(src).unwrap();
    let start = compiled
        .image
        .symbol("__roi_start")
        .expect("__roi_start(); lowers to a label");
    assert!(
        compiled.image.symbol("__roi_end").is_some(),
        "__roi_end(); lowers to a label"
    );
    let (retired, pure_hash) = pure_run(&compiled.image, 2);
    let mut fast = FastEngine::new(LbpConfig::cores(2), &compiled.image).unwrap();
    let summary = fast.run(FastStop::Pc(start), MAX_STEPS).unwrap();
    assert!(
        summary.retired > 0,
        "the warm phase covered the fork region"
    );
    assert!(summary.retired < retired, "the ROI tail stayed cycle-exact");
    let mut m = fast.materialize(&compiled.image).unwrap();
    let report = m.run(MAX_CYCLES).unwrap();
    assert!(report.exited);
    assert_eq!(m.arch_hash(), pure_hash, "ROI handoff diverged");
}

#[test]
fn warm_zero_materializes_bit_identical_to_fresh() {
    for (name, image, cores) in example_images() {
        let cfg = LbpConfig::cores(cores);
        let mut fast = FastEngine::new(cfg.clone(), &image).unwrap();
        let summary = fast.run(FastStop::Retired(0), MAX_STEPS).unwrap();
        assert_eq!(summary.retired, 0, "{name}: warm=0 executed instructions");
        let m = fast.materialize(&image).unwrap();
        let fresh = Machine::new(cfg, &image).unwrap();
        assert_eq!(
            m.snapshot().as_bytes(),
            fresh.snapshot().as_bytes(),
            "{name}: warm=0 materialization is not bit-identical to a fresh machine"
        );
    }
}

/// A sink collecting per-hart committed pcs (the cycle-exact half of the
/// commit-stream concatenation property).
struct PerHartCommits {
    streams: Rc<RefCell<Vec<VecDeque<u32>>>>,
}

impl TraceSink for PerHartCommits {
    fn record(&mut self, event: &Event) {
        if let EventKind::Commit { pc } = event.kind {
            self.streams.borrow_mut()[event.hart.global() as usize].push_back(pc);
        }
    }
}

fn commit_streams(m: &mut Machine, harts: usize) -> Rc<RefCell<Vec<VecDeque<u32>>>> {
    let streams = Rc::new(RefCell::new(vec![VecDeque::new(); harts]));
    m.set_sink(Box::new(PerHartCommits {
        streams: Rc::clone(&streams),
    }));
    streams
}

/// Per hart: pure commit-pc stream == functional commit log ++ hybrid
/// window commit stream. This is the property the divergence bisector
/// relies on to localize a functional bug to one instruction.
#[test]
fn per_hart_commit_streams_concatenate() {
    let src = std::fs::read_to_string(repo("examples/asm/fork2.s")).unwrap();
    let image = lbp::asm::assemble(&src).unwrap();
    let cfg = LbpConfig::cores(2);
    let harts = cfg.harts();

    let mut pure = Machine::new(cfg.clone(), &image).unwrap();
    let pure_streams = commit_streams(&mut pure, harts);
    pure.run(MAX_CYCLES).unwrap();

    let (retired, _) = pure_run(&image, 2);
    let mut fast = FastEngine::new(cfg.clone(), &image).unwrap();
    fast.enable_commit_log();
    fast.run(FastStop::Retired(retired / 2), MAX_STEPS).unwrap();
    let mut hybrid = fast.materialize(&image).unwrap();
    let window_streams = commit_streams(&mut hybrid, harts);
    hybrid.run(MAX_CYCLES).unwrap();

    for h in 0..harts {
        let mut expect: Vec<u32> = fast.commit_log()[h].clone();
        expect.extend(window_streams.borrow()[h].iter().copied());
        let got: Vec<u32> = pure_streams.borrow()[h].iter().copied().collect();
        assert_eq!(
            got, expect,
            "hart {h}: pure commit stream != functional log ++ window stream"
        );
    }
}

#[test]
fn faults_inside_the_window_ride_through() {
    // A long countdown whose `cookie` word the program never touches
    // after load time: flipping one of its bits at cycle 2000 — inside
    // the cycle-exact window for a warm target of 200 retired
    // instructions — must survive to the final state.
    let image = lbp::asm::assemble(
        "main:
            li   a0, 5000
            la   a1, counter
        loop:
            addi a0, a0, -1
            sw   a0, 0(a1)
            bne  a0, zero, loop
            li   t0, -1
            li   ra, 0
            p_ret
        .data
        counter: .word 0
        cookie:  .word 0",
    )
    .unwrap();
    let cookie = lbp::isa::SHARED_BASE + 4;
    let plan: FaultPlan = [Fault::parse(&format!("flip-mem:{cookie:#x}:0:2000")).unwrap()]
        .into_iter()
        .collect();
    let cfg = LbpConfig::cores(1).with_faults(plan);

    let run_faulted = || {
        let mut fast = FastEngine::new(cfg.clone(), &image).unwrap();
        fast.run(FastStop::Retired(200), MAX_STEPS).unwrap();
        let mut m = fast.materialize(&image).unwrap();
        m.run(MAX_CYCLES).unwrap();
        (m.arch_hash(), m.stats().clone())
    };
    let (h1, s1) = run_faulted();
    let (h2, s2) = run_faulted();
    assert_eq!(h1, h2, "faulted hybrid runs must be deterministic");
    assert_eq!(s1, s2);
    // Sanity: the fault is actually observable vs an unfaulted hybrid run.
    let (unfaulted, _) = hybrid_run(&image, 1, FastStop::Retired(200));
    assert_ne!(h1, unfaulted, "the in-window fault must change final state");
}

#[test]
fn warm_phase_faults_are_refused_with_a_clear_diagnostic() {
    let src = std::fs::read_to_string(repo("examples/asm/mul.s")).unwrap();
    let image = lbp::asm::assemble(&src).unwrap();
    // A register flip at cycle 1 lands inside any nonzero warm phase.
    let early: FaultPlan = [Fault::parse("flip-reg:0:a0:0:1").unwrap()]
        .into_iter()
        .collect();
    let cfg = LbpConfig::cores(1).with_faults(early);
    let mut fast = FastEngine::new(cfg, &image).unwrap();
    fast.run(FastStop::Retired(3), MAX_STEPS).unwrap();
    let err = fast.materialize(&image).unwrap_err().to_string();
    assert!(
        err.contains("warm"),
        "warm-phase fault refusal must say why: {err}"
    );

    // Message faults count fabric traffic the warm phase never sends.
    let drops: FaultPlan = [Fault::parse("drop-msg:0").unwrap()].into_iter().collect();
    let cfg = LbpConfig::cores(1).with_faults(drops);
    let fast = FastEngine::new(cfg, &image).unwrap();
    let err = fast.materialize(&image).unwrap_err().to_string();
    assert!(
        err.contains("functional"),
        "message-fault refusal must say why: {err}"
    );
}
