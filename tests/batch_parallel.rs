//! Acceptance test for `lbp-batch`: a 16-job `matmul.c` sweep must
//! produce the same results (modulo line order) on four workers as on
//! one, and the pool must actually buy wall-clock time on a
//! multi-core host.

use std::time::{Duration, Instant};

use lbp_batch::{load_manifest, run_batch, BatchJob, SourceKind};

/// The 16-job sweep: 4 core counts x 4 cycle budgets, all distinct work.
fn sweep() -> Vec<BatchJob> {
    let source = std::fs::read_to_string(format!(
        "{}/examples/c/matmul.c",
        env!("CARGO_MANIFEST_DIR")
    ))
    .expect("matmul.c ships with the repo");
    let mut jobs = Vec::new();
    // matmul.c forks a four-wide team, so 4 cores is the floor.
    for &cores in &[4usize, 8, 16, 32] {
        for &max_cycles in &[2_000_000u64, 3_000_000, 4_000_000, 5_000_000] {
            jobs.push(BatchJob {
                id: format!("matmul-c{cores}-m{max_cycles}"),
                source: source.clone(),
                kind: SourceKind::C,
                cores,
                max_cycles,
                faults: Vec::new(),
                profile: false,
                warm: None,
            });
        }
    }
    jobs
}

/// Runs the sweep and returns (sorted result lines, elapsed time).
fn run(jobs: &[BatchJob], workers: usize) -> (Vec<String>, Duration) {
    let mut out = Vec::new();
    let started = Instant::now();
    let summary = run_batch(jobs, workers, &mut out).expect("in-memory writer");
    let elapsed = started.elapsed();
    assert_eq!(summary.jobs, 16);
    assert_eq!(summary.unique, 16, "every sweep point is distinct work");
    assert_eq!(summary.failed, 0);
    let mut lines: Vec<String> = String::from_utf8(out)
        .unwrap()
        .lines()
        .map(str::to_owned)
        .collect();
    assert_eq!(lines.len(), 16, "one JSONL line per job");
    lines.sort();
    (lines, elapsed)
}

#[test]
fn four_workers_match_one_worker_line_for_line() {
    let jobs = sweep();
    let (serial, serial_time) = run(&jobs, 1);
    let (parallel, parallel_time) = run(&jobs, 4);
    assert_eq!(
        serial, parallel,
        "worker count must not change any result line"
    );
    for line in &serial {
        assert!(line.contains("\"status\":\"ok\""), "job failed: {line}");
    }
    // The speedup claim only holds where the hardware can deliver it, and
    // wall-clock comparisons are only meaningful when they do.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores >= 4 {
        assert!(
            parallel_time < serial_time,
            "4 workers ({parallel_time:.2?}) should beat 1 worker ({serial_time:.2?}) on a {cores}-way host"
        );
    }
}

#[test]
fn manifest_driven_sweep_agrees_with_programmatic_jobs() {
    // The same sweep expressed as an lbp-batch-manifest-v1 document must
    // load into byte-equal jobs (hash-for-hash) and results.
    let mut manifest = String::from("{\"schema\": \"lbp-batch-manifest-v1\", \"jobs\": [");
    for (i, job) in sweep().iter().enumerate() {
        if i > 0 {
            manifest.push(',');
        }
        manifest.push_str(&format!(
            "{{\"id\": \"{}\", \"program\": \"examples/c/matmul.c\", \
             \"cores\": {}, \"max_cycles\": {}}}",
            job.id, job.cores, job.max_cycles
        ));
    }
    manifest.push_str("]}");
    let loaded = load_manifest(&manifest, std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("manifest loads");
    let direct = sweep();
    assert_eq!(loaded.len(), direct.len());
    for (a, b) in loaded.iter().zip(&direct) {
        assert_eq!(lbp_batch::job_hash(a), lbp_batch::job_hash(b), "{}", a.id);
    }
}
