//! Property test for graceful cancellation: a run cancelled
//! cooperatively at *any* cycle boundary, snapshotted through the
//! `lbp-snap-v1` container, and resumed in a fresh machine must be
//! bit-identical to the uninterrupted run — same report, same final
//! state bytes. This is the invariant the crash-recoverable batch
//! service leans on: a worker killed or cancelled mid-job loses wall
//! time, never determinism.
//!
//! Seeded trials vary both the cooperative slice width and the poll at
//! which cancellation fires, so cut points land on many different cycle
//! boundaries. Set `LBP_CANCEL_SEED` to replay a particular sequence.

use lbp::sim::{Machine, RunPause, RunReport, SimError};
use lbp::snap;
use lbp_testutil::{harness, Rng};

const MAX_CYCLES: u64 = 2_000_000;

/// A run's observable end, comparable across executions.
#[derive(PartialEq, Debug)]
struct Outcome {
    result: String,
    state: Vec<u8>,
}

fn finish(m: &mut Machine, outcome: Result<RunReport, SimError>) -> Outcome {
    Outcome {
        result: match outcome {
            Ok(report) => report.to_json().to_string(),
            Err(e) => e.to_string(),
        },
        state: m.snapshot().as_bytes().to_vec(),
    }
}

/// Cancels a fresh run after `polls` cooperative polls of width `slice`,
/// round-trips the snapshot through encode/decode, resumes, and returns
/// the resumed outcome. `None` if the program finished before the cut.
fn cancel_and_resume(
    image: &lbp::asm::Image,
    cores: usize,
    slice: u64,
    polls: u64,
) -> Option<Outcome> {
    let mut seen = 0u64;
    let mut prefix = harness::machine_from_image(image, cores);
    let pause = prefix
        .run_cooperative(MAX_CYCLES, slice, |_| {
            seen += 1;
            seen < polls
        })
        .expect("cooperative run failed before the cut");
    match pause {
        RunPause::Cancelled => {}
        RunPause::Exited | RunPause::Target => return None,
    }
    let cut = prefix.stats().cycles;
    assert!(cut > 0, "cancellation must land on a real cycle boundary");

    let bytes = snap::encode(&prefix.snapshot());
    let state = snap::decode(&bytes).unwrap_or_else(|e| panic!("snapshot at cycle {cut}: {e}"));
    let mut resumed = Machine::restore(&state).unwrap();
    assert_eq!(resumed.stats().cycles, cut, "resume must start at the cut");
    let outcome = resumed.run(MAX_CYCLES);
    Some(finish(&mut resumed, outcome))
}

fn check_program(name: &str, image: &lbp::asm::Image, cores: usize, rng: &mut Rng) {
    let mut full = harness::machine_from_image(image, cores);
    let outcome = full.run(MAX_CYCLES);
    let total = full.stats().cycles;
    let reference = finish(&mut full, outcome);

    let mut cancelled = 0;
    for trial in 0..24 {
        let slice = 1 + rng.below(total.max(2) / 2);
        let polls = 1 + rng.below((total / slice).max(1) + 1);
        let Some(replay) = cancel_and_resume(image, cores, slice, polls) else {
            continue; // the cut fell past the program's natural end
        };
        cancelled += 1;
        assert_eq!(
            reference, replay,
            "{name}: trial {trial} (slice {slice}, cancel at poll {polls}) \
             diverged from the uninterrupted run"
        );
    }
    assert!(
        cancelled >= 8,
        "{name}: only {cancelled}/24 trials actually cancelled; the \
         sampler is not exercising the property"
    );
}

#[test]
fn cancelled_then_resumed_runs_are_bit_identical() {
    let seed = std::env::var("LBP_CANCEL_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xcafe);
    let mut rng = Rng::new(seed);
    for name in ["mul.s", "fork2.s"] {
        let path = format!("{}/examples/asm/{name}", env!("CARGO_MANIFEST_DIR"));
        let source = std::fs::read_to_string(&path).unwrap();
        let image = lbp::asm::assemble(&source).unwrap_or_else(|e| panic!("{name}: {e}"));
        check_program(name, &image, 4, &mut rng);
    }
    let source = format!("{}/examples/c/reduce.c", env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(&source).unwrap();
    let compiled = lbp::cc::compile(&source).unwrap();
    check_program("reduce.c", &compiled.image, 4, &mut rng);
}

#[test]
fn back_to_back_cancellations_compose() {
    // Cancel, resume, cancel the resumed run, resume again — two cuts
    // in one lineage must still land on the uninterrupted outcome.
    let path = format!("{}/examples/asm/mul.s", env!("CARGO_MANIFEST_DIR"));
    let image = lbp::asm::assemble(&std::fs::read_to_string(&path).unwrap()).unwrap();

    let mut full = harness::machine_from_image(&image, 4);
    let outcome = full.run(MAX_CYCLES);
    let total = full.stats().cycles;
    assert!(total > 12, "program too short for two cuts");
    let reference = finish(&mut full, outcome);

    let mut machine = harness::machine_from_image(&image, 4);
    for cut in [total / 4, total / 2] {
        let pause = machine
            .run_cooperative(MAX_CYCLES, cut - machine.stats().cycles, |_| false)
            .unwrap();
        assert_eq!(pause, RunPause::Cancelled);
        let bytes = snap::encode(&machine.snapshot());
        machine = Machine::restore(&snap::decode(&bytes).unwrap()).unwrap();
        assert_eq!(machine.stats().cycles, cut);
    }
    let outcome = machine.run(MAX_CYCLES);
    assert_eq!(reference, finish(&mut machine, outcome));
}
