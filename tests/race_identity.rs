//! Zero-cost-instrumentation property for the race-witness collector:
//! collecting witnesses changes nothing observable.
//!
//! For every shipped example (assembly and C), a collected run and a
//! plain run must agree bit for bit: identical run outcome, identical
//! serialized `lbp-stats-v1` report, identical final-state content
//! hash. On top of the identity, the collector must hold up its end of
//! the M-pass bargain: zero witnesses on every statically accepted
//! program, and a concrete witness on the fixture the static pass can
//! only accept with an unknown-provenance warning.

use lbp::sim::{LbpConfig, Machine, SimError};

/// The budget is modest on purpose: `hung.s` deadlocks, and both runs
/// must reach the *same* error in reasonable time.
const MAX_CYCLES: u64 = 2_000_000;

fn image_of(path: &str) -> lbp::asm::Image {
    let source = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{path}: {e}"));
    if path.ends_with(".c") {
        lbp::cc::compile(&source)
            .unwrap_or_else(|e| panic!("{path}: {e}"))
            .image
    } else {
        lbp::asm::assemble(&source).unwrap_or_else(|e| panic!("{path}: {e}"))
    }
}

/// Runs the image and returns what an observer can compare: the outcome
/// (exit flag or error text), the serialized stats report, the
/// final-state hash, and the machine (for witness inspection).
fn observe(
    image: &lbp::asm::Image,
    cores: usize,
    collected: bool,
) -> (String, String, u64, Machine) {
    let mut m = Machine::new(LbpConfig::cores(cores), image).expect("machine builds");
    if collected {
        m.enable_race_witness();
    }
    let outcome = match m.run(MAX_CYCLES) {
        Ok(report) => format!("exited={}", report.exited),
        Err(e @ SimError::Timeout { .. }) => panic!("budget too small: {e}"),
        Err(e) => format!("error={e}"),
    };
    let mut stats_json = String::new();
    m.stats().to_json().write(&mut stats_json);
    let hash = lbp::snap::fnv1a64(m.snapshot().dynamic_bytes());
    (outcome, stats_json, hash, m)
}

/// Identity half of the property: a collected and a plain run must be
/// indistinguishable. Returns the collected machine for witness checks.
fn check_identity(path: &str, cores: usize) -> Machine {
    let full = format!("{}/{path}", env!("CARGO_MANIFEST_DIR"));
    let image = image_of(&full);
    let (plain_outcome, plain_stats, plain_hash, plain) = observe(&image, cores, false);
    let (coll_outcome, coll_stats, coll_hash, m) = observe(&image, cores, true);
    assert_eq!(plain_outcome, coll_outcome, "{path}: outcome differs");
    assert_eq!(
        plain_stats, coll_stats,
        "{path}: lbp-stats-v1 report differs"
    );
    assert_eq!(plain_hash, coll_hash, "{path}: final state differs");
    // A machine that never enabled collection reports no witnesses.
    assert!(plain.race_witnesses().is_empty());
    m
}

/// A committed (statically accepted) example must be witness-free.
fn check_clean(path: &str, cores: usize) {
    let m = check_identity(path, cores);
    assert!(
        m.race_witnesses().is_empty(),
        "{path}: committed example produced race witnesses: {}",
        m.race_witnesses()
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join("; ")
    );
}

#[test]
fn asm_examples_collect_bit_identically() {
    check_clean("examples/asm/mul.s", 1);
    check_clean("examples/asm/fork2.s", 2);
    // Deadlocks: both runs must fail identically; the witnesses
    // collected up to the deadlock still must not perturb the run.
    check_identity("examples/asm/hung.s", 1);
}

#[test]
fn c_examples_collect_bit_identically() {
    check_clean("examples/c/hello_team.c", 2);
    check_clean("examples/c/matmul.c", 4);
    check_clean("examples/c/set_get.c", 4);
    check_clean("examples/c/reduce.c", 2);
}

/// The precision boundary, dynamic half: the fixture the M-pass can
/// only warn about (LBP-M004, statically accepted) produces a concrete
/// write-write witness at runtime — and the identity still holds, so
/// catching it costs nothing observable.
#[test]
fn dynamic_only_race_is_witnessed_without_perturbation() {
    let m = check_identity("crates/lbp-verify/tests/fixtures/race_dynamic_only.s", 1);
    let witnesses = m.race_witnesses();
    assert!(
        !witnesses.is_empty(),
        "the dynamic-only fixture must produce a witness"
    );
    let rendered = witnesses[0].to_string();
    assert!(
        rendered.contains("write-write race"),
        "both members store to the same word: {rendered}"
    );
}
