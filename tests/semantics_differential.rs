//! The differential acceptance suite for lbp-sema's executable
//! semantics (ISSUE 10's headline property): for every shipped example,
//! a battery of hand-written kernels, and a 200-case seeded sweep of
//! generated Deterministic-OpenMP programs, the interpreter's
//! observable outcome is **bit-identical** to compiling the same source
//! with `lbp-cc` and running it on the cycle-exact simulator.
//!
//! The arithmetic-edge tests pin the tricky corners — wrapping
//! overflow, division and remainder by negative numbers and by zero,
//! shift widths — to the same answers on both paths, so the semantics
//! can never silently fork from the hardware.

use lbp::sema::diff::{diff_source, interp_source, required_cores, DiffError};
use lbp::sema::{InterpOptions, Schedule};

/// Differential check with the default budget, panicking with the
/// program attached on any failure.
fn diff_ok(name: &str, src: &str) -> lbp::sema::diff::DiffReport {
    diff_source(src, None, 100_000_000)
        .unwrap_or_else(|e| panic!("{name}: {e}\n--- source ---\n{src}"))
}

// ---------------------------------------------------------------------------
// Shipped examples
// ---------------------------------------------------------------------------

/// Every `.c` file shipped under `examples/c/` must pass the
/// differential check — including ones added after this test was
/// written.
#[test]
fn every_shipped_example_is_differentially_clean() {
    let dir = format!("{}/examples/c", env!("CARGO_MANIFEST_DIR"));
    let mut checked = 0;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("examples/c")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "c"))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(&path).unwrap();
        let report = diff_ok(&name, &src);
        assert!(report.cycles > 0, "{name}: simulated run took no cycles");
        checked += 1;
    }
    assert!(
        checked >= 4,
        "expected the four shipped samples, got {checked}"
    );
}

/// The canonical example's observable effects, pinned as a golden
/// trace: region structure is part of the observable outcome, not just
/// the final store.
#[test]
fn hello_team_effect_trace_is_golden() {
    let path = format!("{}/examples/c/hello_team.c", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap();
    let outcome = interp_source(&src, &InterpOptions::default()).expect("interp");
    let effects: Vec<String> = outcome.effects.iter().map(|e| e.to_string()).collect();
    assert_eq!(
        effects,
        ["set_num_threads 8", "fork team=8", "join team=8", "exit"]
    );
    // The content hash is exactly the FNV-1a of the canonical
    // rendering — the same convention as the simulator's snapshot
    // content hash, so tooling can treat them interchangeably.
    assert_eq!(
        outcome.content_hash(),
        lbp::snap::fnv1a64(outcome.render().as_bytes())
    );
}

// ---------------------------------------------------------------------------
// Hand-written kernels
// ---------------------------------------------------------------------------

#[test]
fn scale_kernel_diffs_clean() {
    let src = "\
#define N 32
int x[N];
int y[N];
void main(void) {
    int t; int i;
    for (i = 0; i < N; i++) x[i] = i - 16;
    omp_set_num_threads(8);
#pragma omp parallel for
    for (t = 0; t < 8; t++) {
        int j;
        for (j = t * 4; j < t * 4 + 4; j++) y[j] = 3 * x[j] + 1;
    }
}";
    let report = diff_ok("scale", src);
    let y = report.outcome.global("y").unwrap();
    assert_eq!(y[0], 3 * -16 + 1);
    assert_eq!(y[31], 3 * 15 + 1);
}

#[test]
fn dot_product_kernel_diffs_clean() {
    let src = "\
#define N 16
int a[N];
int b[N];
int partial[4];
int dot[1];
void main(void) {
    int t; int i; int s;
    for (i = 0; i < N; i++) { a[i] = i + 1; b[i] = 2 * i - 3; }
    omp_set_num_threads(4);
#pragma omp parallel for
    for (t = 0; t < 4; t++) {
        int j; int acc;
        acc = 0;
        for (j = t * 4; j < t * 4 + 4; j++) acc = acc + a[j] * b[j];
        partial[t] = acc;
    }
    s = 0;
    for (i = 0; i < 4; i++) s = s + partial[i];
    dot[0] = s;
}";
    let report = diff_ok("dot", src);
    let expect: i32 = (0..16).map(|i| (i + 1) * (2 * i - 3)).sum();
    assert_eq!(report.outcome.global("dot").unwrap()[0], expect);
}

#[test]
fn stencil_kernel_reads_the_entry_snapshot() {
    // Members read cells their neighbours write in the same region:
    // under deterministic consistency every member sees the
    // region-entry snapshot, so the result is a *jacobi* step, not a
    // gauss-seidel one — on both the interpreter and the machine.
    let src = "\
#define N 16
int u[N];
int v[N];
void main(void) {
    int t; int i;
    for (i = 0; i < N; i++) u[i] = i * i;
    omp_set_num_threads(4);
#pragma omp parallel for
    for (t = 0; t < 4; t++) {
        int j;
        for (j = t * 4; j < t * 4 + 4; j++) {
            if (j == 0) { v[j] = u[j]; }
            else { if (j == N - 1) { v[j] = u[j]; } else { v[j] = u[j - 1] + u[j + 1]; } }
        }
    }
}";
    let report = diff_ok("stencil", src);
    let v = report.outcome.global("v").unwrap();
    assert_eq!(v[0], 0);
    for (j, &got) in v.iter().enumerate().take(15).skip(1) {
        let (l, r) = ((j as i32 - 1).pow(2), (j as i32 + 1).pow(2));
        assert_eq!(got, l + r, "v[{j}]");
    }
    assert_eq!(v[15], 225);
}

#[test]
fn sections_kernel_diffs_clean() {
    let src = "\
int r[4];
void main(void) {
    omp_set_num_threads(2);
#pragma omp parallel sections
    {
#pragma omp section
        { r[0] = 11; r[1] = 22; }
#pragma omp section
        { r[2] = 33; r[3] = 44; }
    }
}";
    let report = diff_ok("sections", src);
    assert_eq!(report.outcome.global("r").unwrap(), &[11, 22, 33, 44]);
}

// ---------------------------------------------------------------------------
// Arithmetic edges, pinned identically on both paths
// ---------------------------------------------------------------------------

/// Signed overflow wraps (two's complement), on the interpreter and the
/// RV32IM datapath alike.
#[test]
fn wrapping_overflow_is_identical_on_both_paths() {
    let src = "\
int r[4];
void main(void) {
    int big;
    big = 2147483647;
    r[0] = big + 1;
    r[1] = 0 - big - 2;
    r[2] = big * 2;
    r[3] = (0 - big - 1) * (0 - 1);
}";
    let report = diff_ok("wrap", src);
    assert_eq!(
        report.outcome.global("r").unwrap(),
        &[i32::MIN, i32::MAX, -2, i32::MIN]
    );
}

/// Division and remainder follow RISC-V M: trunc-toward-zero, div by
/// zero yields -1, rem by zero yields the dividend, MIN/-1 wraps.
#[test]
fn division_edges_are_identical_on_both_paths() {
    let src = "\
int r[8];
void main(void) {
    int min; int z;
    min = 0 - 2147483647 - 1;
    z = 0;
    r[0] = 7 / (0 - 2);
    r[1] = (0 - 7) / 2;
    r[2] = 7 % (0 - 2);
    r[3] = (0 - 7) % 2;
    r[4] = 5 / z;
    r[5] = 5 % z;
    r[6] = min / (0 - 1);
    r[7] = min % (0 - 1);
}";
    let report = diff_ok("divmod", src);
    assert_eq!(
        report.outcome.global("r").unwrap(),
        &[-3, -3, 1, -1, -1, 5, i32::MIN, 0]
    );
}

/// Shift amounts are masked to 5 bits; right shift of a negative value
/// is arithmetic.
#[test]
fn shift_width_edges_are_identical_on_both_paths() {
    let src = "\
int r[5];
void main(void) {
    int n; int w;
    n = 0 - 8;
    w = 33;
    r[0] = 1 << 31;
    r[1] = 1 << w;
    r[2] = n >> 1;
    r[3] = n >> 31;
    r[4] = 6 >> w;
}";
    let report = diff_ok("shift", src);
    assert_eq!(
        report.outcome.global("r").unwrap(),
        &[i32::MIN, 2, -4, -1, 3]
    );
}

// ---------------------------------------------------------------------------
// Schedule independence
// ---------------------------------------------------------------------------

/// Deterministic consistency makes the member interleaving
/// unobservable: the interpreter run under four different seeded
/// schedules (and round-robin) lands on one content hash, which is also
/// the hash the simulator agrees with.
#[test]
fn outcome_is_independent_of_the_interpreter_schedule() {
    let path = format!("{}/examples/c/matmul.c", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap();
    let reference = interp_source(&src, &InterpOptions::default())
        .expect("round-robin")
        .content_hash();
    for seed in [1u64, 7, 42, 0xdead_beef] {
        let opts = InterpOptions {
            schedule: Schedule::Seeded(seed),
            ..InterpOptions::default()
        };
        let hash = interp_source(&src, &opts).expect("seeded").content_hash();
        assert_eq!(hash, reference, "seed {seed} changed the outcome");
    }
    let report = diff_source(&src, None, 100_000_000).expect("diff");
    assert_eq!(report.hash(), reference);
}

// ---------------------------------------------------------------------------
// 200-case generated sweep
// ---------------------------------------------------------------------------

/// The acceptance sweep: 200 generated Deterministic-OpenMP programs
/// (seed 42), every one interpreted AND compiled-and-simulated, with
/// bit-identical observables demanded each time. Uses the same
/// generator and case-seed derivation as `lbp-fuzz --seed 42 --kinds c
/// --count 200`, so any failure here replays there.
#[test]
fn two_hundred_generated_programs_diff_clean() {
    use lbp_fuzz::gen::{generate, GenConfig, Kind};
    let cfg = GenConfig {
        kinds: vec![Kind::C],
        ..GenConfig::default()
    };
    for case in 0..200u64 {
        let mut rng = lbp_testutil::Rng::new(lbp_fuzz::case_seed(42, case));
        let program = generate(&mut rng, &cfg, case);
        let src = program.render();
        let report = diff_source(&src, Some(program.cores), program.max_cycles)
            .unwrap_or_else(|e| panic!("case {case}: {e}\n--- source ---\n{src}"));
        assert!(report.cycles > 0, "case {case}");
    }
}

// ---------------------------------------------------------------------------
// Sabotage witness
// ---------------------------------------------------------------------------

/// The committed witness program trips every `codegen:*` sabotage kind
/// (this is the file the CI red loop drives through `lbp-cc --diff
/// --sabotage`), and diffs clean when compiled honestly.
#[test]
fn sabotage_witness_diverges_under_every_kind_and_is_otherwise_clean() {
    let path = format!(
        "{}/tests/fixtures/sabotage_witness.c",
        env!("CARGO_MANIFEST_DIR")
    );
    let src = std::fs::read_to_string(&path).unwrap();
    diff_ok("sabotage_witness (clean)", &src);
    let cores = required_cores(&lbp::cc::front_end(&src).expect("front end"));
    for kind in lbp::cc::CodegenSabotage::ALL {
        let cc = lbp::cc::CcOptions {
            sabotage: Some(kind),
        };
        let image = lbp::cc::compile_with(&src, &cc).expect("compile").image;
        let err = lbp::sema::diff::diff_compiled(
            &src,
            &image,
            cores,
            100_000_000,
            &InterpOptions::default(),
        )
        .expect_err("sabotaged binary must diverge");
        assert!(
            matches!(err, DiffError::Divergence(_)),
            "{}: expected a divergence, got {err}",
            kind.name()
        );
    }
}

// ---------------------------------------------------------------------------
// Harness self-checks
// ---------------------------------------------------------------------------

/// `required_cores` sizes the machine from the widest region.
#[test]
fn required_cores_matches_the_widest_region() {
    let cx = lbp::cc::front_end(
        "void main(void) {\nint t;\n#pragma omp parallel for\nfor (t = 0; t < 16; t++) { }\n}",
    )
    .unwrap();
    assert_eq!(
        required_cores(&cx),
        16usize.div_ceil(lbp::isa::HARTS_PER_CORE)
    );
}

/// A program whose meaning is undefined (uninitialized read) is
/// rejected by the interpreter rather than silently compared.
#[test]
fn undefined_programs_trap_instead_of_diffing() {
    let err = diff_source("int g;\nvoid main(void) { int x; g = x; }", None, 1_000_000)
        .expect_err("uninit read must trap");
    match err {
        DiffError::Trap(t) => assert_eq!(t.class, "uninit"),
        other => panic!("expected a trap, got {other}"),
    }
}
