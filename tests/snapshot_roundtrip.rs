//! Snapshot round-trip smoke over every shipped example program:
//! for each `examples/asm/*.s` and `examples/c/*.c`, checkpoint the run
//! at two cycles through the `lbp-snap-v1` container, resume, and demand
//! the resumed run is bit-identical to the uninterrupted one — run
//! report, spliced trace events, and the machine's entire final state
//! (compared as snapshot bytes, which cover all memory and statistics).

use lbp::sim::{Event, Machine, RunReport, SimError};
use lbp::snap;
use lbp_testutil::harness;

/// How a run ended, in a form we can compare across the two executions.
#[derive(PartialEq, Debug)]
struct Outcome {
    /// Report JSON for clean exits, error text otherwise (hung.s deadlocks).
    result: String,
    /// Full machine state: every register, queue, bank and counter.
    state: Vec<u8>,
}

fn finish(m: &mut Machine, outcome: Result<RunReport, SimError>) -> Outcome {
    Outcome {
        result: match outcome {
            Ok(report) => report.to_json().to_string(),
            Err(e) => e.to_string(),
        },
        state: m.snapshot().as_bytes().to_vec(),
    }
}

const MAX_CYCLES: u64 = 2_000_000;

/// Runs `image` from reset and split at `at`, asserting both paths agree.
fn check_round_trip(name: &str, image: &lbp::asm::Image, cores: usize) {
    let mut full = harness::machine_from_image(image, cores);
    let outcome = full.run(MAX_CYCLES);
    let total = full.stats().cycles;
    assert!(total > 4, "{name}: too short to checkpoint meaningfully");
    let reference = finish(&mut full, outcome);
    let events: Vec<Event> = full.trace().events().to_vec();

    for at in [total / 3, (2 * total) / 3] {
        let at = at.max(1).min(total - 1);
        let mut prefix = harness::machine_from_image(image, cores);
        let exited = prefix
            .run_to(at)
            .unwrap_or_else(|e| panic!("{name}: prefix run failed: {e}"));
        assert!(!exited, "{name}: program exited before checkpoint {at}");

        // Through the file container: encode, verify content hash, decode.
        let state = prefix.snapshot();
        let bytes = snap::encode(&state);
        let decoded = snap::decode(&bytes).unwrap_or_else(|e| panic!("{name}@{at}: {e}"));
        assert_eq!(snap::content_hash(&decoded), snap::content_hash(&state));

        let mut resumed = Machine::restore(&decoded).unwrap();
        let outcome = resumed.run(MAX_CYCLES);
        let replay = finish(&mut resumed, outcome);
        assert_eq!(
            reference.result, replay.result,
            "{name}: outcome diverged across a checkpoint at cycle {at}"
        );
        assert_eq!(
            reference.state, replay.state,
            "{name}: final machine state diverged across a checkpoint at cycle {at}"
        );
        let mut spliced = prefix.trace().events().to_vec();
        spliced.extend_from_slice(resumed.trace().events());
        assert_eq!(
            events, spliced,
            "{name}: trace diverged across a checkpoint at cycle {at}"
        );
    }
}

fn examples(subdir: &str, ext: &str) -> Vec<(String, String)> {
    let dir = format!("{}/examples/{subdir}", env!("CARGO_MANIFEST_DIR"));
    let mut programs: Vec<(String, String)> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("{dir}: {e}"))
        .filter_map(|entry| {
            let path = entry.unwrap().path();
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            name.ends_with(ext)
                .then(|| (name, std::fs::read_to_string(&path).unwrap()))
        })
        .collect();
    programs.sort();
    assert!(!programs.is_empty(), "no {ext} programs under {dir}");
    programs
}

#[test]
fn every_asm_example_round_trips() {
    for (name, source) in examples("asm", ".s") {
        let image = lbp::asm::assemble(&source).unwrap_or_else(|e| panic!("{name}: {e}"));
        check_round_trip(&name, &image, 4);
    }
}

#[test]
fn every_c_example_round_trips() {
    for (name, source) in examples("c", ".c") {
        let compiled = lbp::cc::compile(&source).unwrap_or_else(|e| panic!("{name}: {e}"));
        check_round_trip(&name, &compiled.image, 4);
    }
}
