//! Zero-cost-instrumentation property: profiling a run changes nothing
//! observable.
//!
//! For every shipped example (assembly and C), a profiled run and a
//! plain run must agree bit for bit: identical run outcome, identical
//! serialized `lbp-stats-v1` report, identical final-state content hash.
//! On top of the identity, the profiled run's per-pc attribution must
//! partition exactly: per core, attributed retired plus attributed and
//! unattributed stalls equals machine cycles (the same exactness
//! invariant the six-bucket stall partition keeps at machine level).

use lbp::sim::{LbpConfig, Machine, SimError};

/// The budget is modest on purpose: `hung.s` deadlocks, and both runs
/// must reach the *same* error in reasonable time.
const MAX_CYCLES: u64 = 2_000_000;

fn image_of(path: &str) -> lbp::asm::Image {
    let source = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{path}: {e}"));
    if path.ends_with(".c") {
        lbp::cc::compile(&source)
            .unwrap_or_else(|e| panic!("{path}: {e}"))
            .image
    } else {
        lbp::asm::assemble(&source).unwrap_or_else(|e| panic!("{path}: {e}"))
    }
}

/// Runs the image and returns what an observer can compare: the outcome
/// (exit flag or error text), the serialized stats report, the
/// final-state hash, and the machine (for the profiled run's invariant
/// checks).
fn observe(
    image: &lbp::asm::Image,
    cores: usize,
    profiled: bool,
) -> (String, String, u64, Machine) {
    let mut m = Machine::new(LbpConfig::cores(cores), image).expect("machine builds");
    if profiled {
        m.enable_profiling();
    }
    let outcome = match m.run(MAX_CYCLES) {
        Ok(report) => format!("exited={}", report.exited),
        Err(e @ SimError::Timeout { .. }) => panic!("budget too small: {e}"),
        Err(e) => format!("error={e}"),
    };
    let mut stats_json = String::new();
    m.stats().to_json().write(&mut stats_json);
    let hash = lbp::snap::fnv1a64(m.snapshot().dynamic_bytes());
    (outcome, stats_json, hash, m)
}

/// Identity half of the property: a profiled and a plain run must be
/// indistinguishable. Returns the profiled machine for exactness checks.
fn check_identity(path: &str, cores: usize) -> Machine {
    let full = format!("{}/{path}", env!("CARGO_MANIFEST_DIR"));
    let image = image_of(&full);
    let (plain_outcome, plain_stats, plain_hash, _) = observe(&image, cores, false);
    let (prof_outcome, prof_stats, prof_hash, m) = observe(&image, cores, true);
    assert_eq!(plain_outcome, prof_outcome, "{path}: outcome differs");
    assert_eq!(
        plain_stats, prof_stats,
        "{path}: lbp-stats-v1 report differs"
    );
    assert_eq!(plain_hash, prof_hash, "{path}: final state differs");
    m
}

fn check_example(path: &str, cores: usize) {
    let m = check_identity(path, cores);
    // Exactness: the per-pc attribution partitions every core's cycles.
    let prof = m.profile().expect("profiling was enabled");
    let stats = m.stats();
    for core in 0..prof.cores() {
        assert_eq!(
            prof.attributed_cycles(core),
            stats.cycles,
            "{path}: core {core} attribution does not sum to the cycle count"
        );
        let mut retired = 0;
        let mut stalls = 0;
        for (_, counters) in prof.per_pc(core) {
            retired += counters.retired;
            stalls += counters.stalls.total();
        }
        assert_eq!(
            retired,
            stats.retired_by_core(core),
            "{path}: core {core} attributed retired differs from stats"
        );
        assert_eq!(
            stalls + prof.unattributed(core).total(),
            stats.stalls_of_core(core).total(),
            "{path}: core {core} attributed stalls differ from stats"
        );
    }
}

#[test]
fn asm_examples_profile_bit_identically() {
    check_example("examples/asm/mul.s", 1);
    check_example("examples/asm/fork2.s", 2);
    // Deadlocks: both runs must fail identically, and attribution must
    // still partition the cycles that did elapse.
    check_example("examples/asm/hung.s", 1);
    // On one core, fork2 trips the fork-protocol check mid-cycle. The
    // machine treats an erroring cycle as never having happened (the
    // cycle counter is not advanced), so exactness is only promised for
    // whole cycles — but the runs must still be bit-identical.
    check_identity("examples/asm/fork2.s", 1);
}

#[test]
fn c_examples_profile_bit_identically() {
    check_example("examples/c/hello_team.c", 2);
    check_example("examples/c/matmul.c", 4);
    check_example("examples/c/set_get.c", 4);
    check_example("examples/c/reduce.c", 2);
}
