//! Compiles and runs every shipped C sample in `examples/c/`, checking
//! their documented results — so the samples a user tries first can never
//! rot.
//!
//! Every sample now runs *differentially*: the documented result is
//! asserted against the interpreted outcome (lbp-sema's executable
//! semantics), and the differential harness independently demands the
//! compiled-and-simulated binary reproduce that outcome word for word.
//! A sample passing here therefore certifies compiler, simulator and
//! interpreter all agree on what the program means.

use lbp::sema::diff::{diff_source, DiffReport};

fn diff_sample(name: &str) -> DiffReport {
    let path = format!("{}/examples/c/{name}", env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    diff_source(&source, None, 100_000_000).unwrap_or_else(|e| panic!("{name}: {e}"))
}

fn global(report: &DiffReport, name: &str) -> Vec<i32> {
    report
        .outcome
        .global(name)
        .unwrap_or_else(|| panic!("global {name}"))
        .to_vec()
}

#[test]
fn hello_team_sample() {
    let report = diff_sample("hello_team.c");
    let v = global(&report, "v");
    assert_eq!(v, (1..=8).map(|x| x * x).collect::<Vec<i32>>());
}

#[test]
fn matmul_sample() {
    let report = diff_sample("matmul.c");
    let z = global(&report, "Z");
    assert_eq!(z.len(), 256);
    assert!(z.iter().all(|&v| v == 8), "Z must be all 8");
}

#[test]
fn set_get_sample() {
    let report = diff_sample("set_get.c");
    let w = global(&report, "w");
    assert_eq!(w.len(), 64);
    for (i, &v) in w.iter().enumerate() {
        assert_eq!(v, 3 * i as i32, "w[{i}]");
    }
}

#[test]
fn reduce_sample() {
    let report = diff_sample("reduce.c");
    let total = global(&report, "total")[0];
    let expect: i32 = (0..256).map(|i| i % 10).sum();
    assert_eq!(total, expect);
}
