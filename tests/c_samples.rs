//! Compiles and runs every shipped C sample in `examples/c/`, checking
//! their documented results — so the samples a user tries first can never
//! rot.

use lbp::cc;
use lbp::sim::{LbpConfig, Machine};

fn run_sample(name: &str, cores: usize) -> (Machine, lbp::asm::Image) {
    let path = format!("{}/examples/c/{name}", env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    let compiled = cc::compile(&source).unwrap_or_else(|e| panic!("{name}: {e}"));
    let mut m = Machine::new(LbpConfig::cores(cores), &compiled.image).expect("machine");
    let report = m.run(100_000_000).unwrap_or_else(|e| panic!("{name}: {e}"));
    assert!(report.exited, "{name} must exit");
    (m, compiled.image)
}

fn words(m: &mut Machine, image: &lbp::asm::Image, sym: &str, n: u32) -> Vec<i32> {
    let base = image.symbol(sym).unwrap_or_else(|| panic!("symbol {sym}"));
    (0..n)
        .map(|i| m.peek_shared(base + 4 * i).unwrap() as i32)
        .collect()
}

#[test]
fn hello_team_sample() {
    let (mut m, img) = run_sample("hello_team.c", 2);
    let v = words(&mut m, &img, "v", 8);
    assert_eq!(v, (1..=8).map(|x| x * x).collect::<Vec<i32>>());
}

#[test]
fn matmul_sample() {
    let (mut m, img) = run_sample("matmul.c", 4);
    let z = words(&mut m, &img, "Z", 256);
    assert!(z.iter().all(|&v| v == 8), "Z must be all 8");
}

#[test]
fn set_get_sample() {
    let (mut m, img) = run_sample("set_get.c", 4);
    let w = words(&mut m, &img, "w", 64);
    for (i, &v) in w.iter().enumerate() {
        assert_eq!(v, 3 * i as i32, "w[{i}]");
    }
}

#[test]
fn reduce_sample() {
    let (mut m, img) = run_sample("reduce.c", 2);
    let total = words(&mut m, &img, "total", 1)[0];
    let expect: i32 = (0..256).map(|i| i % 10).sum();
    assert_eq!(total, expect);
}
