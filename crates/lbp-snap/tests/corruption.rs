//! Red fixtures for the two ways a snapshot file gets damaged in the
//! field: a torn write that truncates the container, and bit rot that
//! alters payload bytes under an intact length. Each must be rejected
//! with its *specific* diagnostic — recovery code in `lbp-batch` picks
//! a fallback checkpoint based on which one it sees — and never with a
//! generic parse error or a panic.

use std::path::PathBuf;

use lbp_sim::{LbpConfig, Machine};
use lbp_snap::{SnapFileError, CONTAINER_HEADER_BYTES};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lbp-snap-corruption-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A real mid-run snapshot written through the public API.
fn fixture(name: &str) -> (PathBuf, Vec<u8>) {
    let image = lbp_asm::assemble(
        "main:
            li   t1, 40
            li   t2, 0
        loop:
            addi t2, t2, 1
            bne  t2, t1, loop
            li   t0, -1
            li   a0, 0
            p_ret a0, t0",
    )
    .unwrap();
    let mut m = Machine::new(LbpConfig::cores(2), &image).unwrap();
    assert!(!m.run_to(20).unwrap(), "fixture program is still running");
    let state = m.snapshot();
    let path = scratch(name);
    lbp_snap::save(&state, &path).unwrap();
    (path.clone(), std::fs::read(&path).unwrap())
}

#[test]
fn truncated_container_reports_short_read_with_byte_counts() {
    let (path, bytes) = fixture("truncated.lbpsnap");
    let total = bytes.len() as u64;
    // A torn write can stop anywhere: inside the header, one byte in,
    // or one byte short of complete. Every cut must classify as a
    // short read carrying the exact byte accounting.
    for cut in [
        0,
        1,
        CONTAINER_HEADER_BYTES - 1,
        CONTAINER_HEADER_BYTES,
        bytes.len() - 1,
    ] {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        match lbp_snap::load(&path) {
            Err(SnapFileError::ShortRead { expected, got }) => {
                assert_eq!(got, cut as u64, "cut at {cut}: wrong `got`");
                let want = if cut < CONTAINER_HEADER_BYTES {
                    CONTAINER_HEADER_BYTES as u64
                } else {
                    total
                };
                assert_eq!(expected, want, "cut at {cut}: wrong `expected`");
            }
            other => panic!("cut at {cut}: expected ShortRead, got {other:?}"),
        }
    }
    // The message names the failure mode so operators can tell a torn
    // write from bit rot without reading source.
    std::fs::write(&path, &bytes[..bytes.len() - 1]).unwrap();
    let msg = lbp_snap::load(&path).unwrap_err().to_string();
    assert!(msg.contains("truncated"), "diagnostic was: {msg}");
    assert!(msg.contains("torn"), "diagnostic was: {msg}");
}

#[test]
fn bit_flipped_container_reports_hash_mismatch_with_both_hashes() {
    let (path, bytes) = fixture("flipped.lbpsnap");
    // Flip single bits across the payload (first, middle, last byte).
    let first = CONTAINER_HEADER_BYTES;
    let mid = CONTAINER_HEADER_BYTES + (bytes.len() - CONTAINER_HEADER_BYTES) / 2;
    let last = bytes.len() - 1;
    for at in [first, mid, last] {
        let mut damaged = bytes.clone();
        damaged[at] ^= 0x10;
        std::fs::write(&path, &damaged).unwrap();
        match lbp_snap::load(&path) {
            Err(SnapFileError::HashMismatch { expected, got }) => {
                assert_ne!(expected, got, "flip at {at}: hashes must differ");
            }
            other => panic!("flip at {at}: expected HashMismatch, got {other:?}"),
        }
    }
    let mut damaged = bytes.clone();
    damaged[mid] ^= 0x10;
    std::fs::write(&path, &damaged).unwrap();
    let msg = lbp_snap::load(&path).unwrap_err().to_string();
    assert!(
        msg.contains("content-hash mismatch"),
        "diagnostic was: {msg}"
    );

    // Undamaged bytes still load — the fixture itself is green.
    std::fs::write(&path, &bytes).unwrap();
    assert!(lbp_snap::load(&path).is_ok());
}

#[test]
fn header_hash_field_flip_is_a_mismatch_not_a_parse_error() {
    // Flipping the *recorded* hash (header offset 35..43) leaves the
    // payload intact; the diagnostic must still be HashMismatch with
    // `expected` carrying the altered header value.
    let (path, bytes) = fixture("header-hash.lbpsnap");
    let mut damaged = bytes.clone();
    damaged[35] ^= 0x01;
    std::fs::write(&path, &damaged).unwrap();
    assert!(matches!(
        lbp_snap::load(&path),
        Err(SnapFileError::HashMismatch { .. })
    ));
}
