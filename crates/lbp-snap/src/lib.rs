//! # lbp-snap — deterministic checkpoint/restore for LBP machines
//!
//! A versioned, content-hashed file container (`lbp-snap-v1`) around
//! [`lbp_sim::MachineState`], plus a divergence bisector that
//! binary-searches two runs for the first cycle — and the first traced
//! event — where their evolutions part ways.
//!
//! The container prepends a fixed header to the raw machine payload:
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"LBPSNAP1"
//!      8     2  format version (little-endian u16, currently 1)
//!     10     8  snapshot cycle
//!     18     8  core count
//!     26     8  payload length in bytes
//!     34     8  FNV-1a-64 hash of the payload
//!     42     …  payload (the `MachineState` bytes)
//! ```
//!
//! The hash makes snapshots *content-addressed*: two machines in the same
//! state produce byte-identical files with the same
//! [`content_hash`], which `lbp-batch` exploits to deduplicate jobs.
//!
//! # Examples
//!
//! ```
//! use lbp_sim::{LbpConfig, Machine};
//!
//! let image = lbp_asm::assemble(
//!     "main:
//!         li   t0, -1
//!         li   a0, 0
//!         p_ret a0, t0",
//! )?;
//! let mut m = Machine::new(LbpConfig::cores(1), &image)?;
//! m.run_to(2)?;
//! let bytes = lbp_snap::encode(&m.snapshot());
//! let restored = Machine::restore(&lbp_snap::decode(&bytes)?)?;
//! assert_eq!(restored.snapshot().as_bytes(), m.snapshot().as_bytes());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::{Read, Write};
use std::path::Path;

use lbp_sim::{MachineState, SnapError};

mod bisect;

pub use bisect::{first_divergence, DivergencePoint};

/// The container magic, spelling the format name.
pub const MAGIC: [u8; 8] = *b"LBPSNAP1";

/// The current container format version.
pub const FORMAT_VERSION: u16 = 1;

/// Bytes of container header before the payload.
pub const CONTAINER_HEADER_BYTES: usize = 42;

/// A failure to read or write a snapshot container.
///
/// The two corruption modes a crashing writer can leave behind get
/// their own variants so recovery code can tell them apart: a torn
/// write truncates the file ([`SnapFileError::ShortRead`]), while media
/// or memory damage flips bits under an intact length
/// ([`SnapFileError::HashMismatch`]). Everything else that fails
/// structural parsing stays [`SnapFileError::Format`].
#[derive(Debug)]
pub enum SnapFileError {
    /// The underlying I/O operation failed.
    Io(std::io::Error),
    /// The container ends early: a torn or truncated write. `expected`
    /// is the byte count the header promised (or the header size itself
    /// when not even the header is complete), `got` what is there.
    ShortRead {
        /// Bytes the container should hold.
        expected: u64,
        /// Bytes actually present.
        got: u64,
    },
    /// The payload bytes do not hash to the header's integrity hash:
    /// the container is complete but its content was altered.
    HashMismatch {
        /// The FNV-1a-64 hash the header recorded at write time.
        expected: u64,
        /// The hash of the payload as read.
        got: u64,
    },
    /// The bytes are not a well-formed `lbp-snap-v1` container (bad
    /// magic, unsupported version, header/payload disagreement).
    Format(String),
    /// The payload does not describe a valid machine.
    Snap(SnapError),
}

impl std::fmt::Display for SnapFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapFileError::Io(e) => write!(f, "snapshot i/o failed: {e}"),
            SnapFileError::ShortRead { expected, got } => write!(
                f,
                "truncated lbp-snap-v1 container: {got} of {expected} bytes present \
                 (torn or interrupted write)"
            ),
            SnapFileError::HashMismatch { expected, got } => write!(
                f,
                "lbp-snap-v1 content-hash mismatch: header says {expected:#018x}, \
                 payload hashes to {got:#018x} (the snapshot bytes were altered)"
            ),
            SnapFileError::Format(what) => write!(f, "not an lbp-snap-v1 container: {what}"),
            SnapFileError::Snap(e) => write!(f, "snapshot payload rejected: {e}"),
        }
    }
}

impl std::error::Error for SnapFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapFileError::Io(e) => Some(e),
            SnapFileError::Snap(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapFileError {
    fn from(e: std::io::Error) -> SnapFileError {
        SnapFileError::Io(e)
    }
}

impl From<SnapError> for SnapFileError {
    fn from(e: SnapError) -> SnapFileError {
        SnapFileError::Snap(e)
    }
}

/// FNV-1a 64-bit over `bytes` — the format's (non-cryptographic)
/// integrity and content-addressing hash. Stable across platforms.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The content hash of a machine state — equal for machines in equal
/// states, whatever run produced them.
pub fn content_hash(state: &MachineState) -> u64 {
    fnv1a64(state.as_bytes())
}

/// Serializes a machine state into an `lbp-snap-v1` container.
pub fn encode(state: &MachineState) -> Vec<u8> {
    let payload = state.as_bytes();
    let mut out = Vec::with_capacity(CONTAINER_HEADER_BYTES + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&state.cycle().to_le_bytes());
    out.extend_from_slice(&(state.cores() as u64).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Parses an `lbp-snap-v1` container back into a [`MachineState`],
/// verifying the magic, version, length and integrity hash.
///
/// # Errors
///
/// [`SnapFileError::ShortRead`] when the container ends before the
/// header's declared size (torn write), [`SnapFileError::HashMismatch`]
/// when the payload is complete but its bytes were altered,
/// [`SnapFileError::Format`] on any other container-level violation,
/// [`SnapFileError::Snap`] if the verified payload still fails machine
/// validation.
pub fn decode(bytes: &[u8]) -> Result<MachineState, SnapFileError> {
    let bad = |what: String| Err(SnapFileError::Format(what));
    if bytes.len() < CONTAINER_HEADER_BYTES {
        return Err(SnapFileError::ShortRead {
            expected: CONTAINER_HEADER_BYTES as u64,
            got: bytes.len() as u64,
        });
    }
    if bytes[..8] != MAGIC {
        return bad("bad magic".to_owned());
    }
    let u16_at = |at: usize| u16::from_le_bytes(bytes[at..at + 2].try_into().unwrap());
    let u64_at = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
    let version = u16_at(8);
    if version != FORMAT_VERSION {
        return bad(format!("unsupported format version {version}"));
    }
    let (cycle, cores, len, hash) = (u64_at(10), u64_at(18), u64_at(26), u64_at(34));
    let payload = &bytes[CONTAINER_HEADER_BYTES..];
    if (payload.len() as u64) < len {
        return Err(SnapFileError::ShortRead {
            expected: CONTAINER_HEADER_BYTES as u64 + len,
            got: bytes.len() as u64,
        });
    }
    if payload.len() as u64 > len {
        return bad(format!(
            "header declares {len} payload bytes, container holds {} (trailing bytes)",
            payload.len()
        ));
    }
    let got_hash = fnv1a64(payload);
    if got_hash != hash {
        return Err(SnapFileError::HashMismatch {
            expected: hash,
            got: got_hash,
        });
    }
    let state = MachineState::from_bytes(payload.to_vec())?;
    if state.cycle() != cycle || state.cores() as u64 != cores {
        return bad(format!(
            "container header (cycle {cycle}, {cores} cores) disagrees with the payload \
             (cycle {}, {} cores)",
            state.cycle(),
            state.cores()
        ));
    }
    Ok(state)
}

/// Writes a machine state to `path` as an `lbp-snap-v1` container.
///
/// # Errors
///
/// Any I/O failure creating or writing the file.
pub fn save(state: &MachineState, path: impl AsRef<Path>) -> Result<(), SnapFileError> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(&encode(state))?;
    Ok(())
}

/// Reads and verifies an `lbp-snap-v1` container from `path`.
///
/// # Errors
///
/// I/O failures, container-format violations, or payload rejection.
pub fn load(path: impl AsRef<Path>) -> Result<MachineState, SnapFileError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    decode(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbp_sim::{LbpConfig, Machine};

    fn snapped() -> MachineState {
        let image = lbp_asm::assemble(
            "main:
                li   t0, -1
                li   a0, 0
                p_ret a0, t0",
        )
        .unwrap();
        let mut m = Machine::new(LbpConfig::cores(1), &image).unwrap();
        m.run_to(2).unwrap();
        m.snapshot()
    }

    #[test]
    fn container_round_trips() {
        let state = snapped();
        let bytes = encode(&state);
        let back = decode(&bytes).unwrap();
        assert_eq!(back.as_bytes(), state.as_bytes());
        assert_eq!(back.cycle(), 2);
    }

    #[test]
    fn equal_states_hash_equal() {
        let a = snapped();
        let b = snapped();
        assert_eq!(content_hash(&a), content_hash(&b));
        assert_eq!(encode(&a), encode(&b));
    }

    #[test]
    fn damage_is_detected_and_classified() {
        let mut bytes = encode(&snapped());
        // Cut inside the header: short read against the header size.
        assert!(matches!(
            decode(&bytes[..CONTAINER_HEADER_BYTES - 1]),
            Err(SnapFileError::ShortRead { expected, got })
                if expected == CONTAINER_HEADER_BYTES as u64
                    && got == CONTAINER_HEADER_BYTES as u64 - 1
        ));
        // Cut inside the payload: short read against the declared total.
        assert!(matches!(
            decode(&bytes[..bytes.len() - 3]),
            Err(SnapFileError::ShortRead { expected, got })
                if expected == bytes.len() as u64 && got == bytes.len() as u64 - 3
        ));
        // Bit flip under an intact length: a hash mismatch, not a short
        // read and not a generic format error.
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        assert!(matches!(
            decode(&bytes),
            Err(SnapFileError::HashMismatch { expected, got }) if expected != got
        ));
        bytes[last] ^= 1;
        bytes[0] = b'X';
        assert!(matches!(decode(&bytes), Err(SnapFileError::Format(_))));
    }

    #[test]
    fn save_and_load() {
        let dir = std::env::temp_dir().join("lbp-snap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("t-{}.lbpsnap", std::process::id()));
        let state = snapped();
        save(&state, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.as_bytes(), state.as_bytes());
        std::fs::remove_file(&path).unwrap();
    }
}
