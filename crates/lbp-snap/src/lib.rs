//! # lbp-snap — deterministic checkpoint/restore for LBP machines
//!
//! A versioned, content-hashed file container (`lbp-snap`, format v2)
//! around [`lbp_sim::MachineState`], plus a divergence bisector that
//! binary-searches two runs for the first cycle — and the first traced
//! event — where their evolutions part ways.
//!
//! The container prepends a fixed header to the raw machine payload:
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"LBPSNAP1"
//!      8     2  format version (little-endian u16, currently 2)
//!     10     1  producing engine (0 = cycle-exact, 1 = functional)
//!     11     8  snapshot cycle
//!     19     8  core count
//!     27     8  payload length in bytes
//!     35     8  FNV-1a-64 hash of the payload
//!     43     …  payload (the `MachineState` bytes)
//! ```
//!
//! Version-1 containers (no engine byte; every snapshot implicitly
//! cycle-exact) still decode. The engine byte records *provenance*: a
//! snapshot materialized from the functional fast-forward engine
//! ([`lbp_sim::FastEngine`]) carries approximate timing (its cycle is a
//! retirement lower bound, its stall ledger synthetic), so tools that
//! compare timing — the bisector above all — must refuse to mix the two.
//!
//! The hash makes snapshots *content-addressed*: two machines in the same
//! state produce byte-identical files with the same
//! [`content_hash`], which `lbp-batch` exploits to deduplicate jobs.
//!
//! # Examples
//!
//! ```
//! use lbp_sim::{LbpConfig, Machine};
//!
//! let image = lbp_asm::assemble(
//!     "main:
//!         li   t0, -1
//!         li   a0, 0
//!         p_ret a0, t0",
//! )?;
//! let mut m = Machine::new(LbpConfig::cores(1), &image)?;
//! m.run_to(2)?;
//! let bytes = lbp_snap::encode(&m.snapshot());
//! let restored = Machine::restore(&lbp_snap::decode(&bytes)?)?;
//! assert_eq!(restored.snapshot().as_bytes(), m.snapshot().as_bytes());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::{Read, Write};
use std::path::Path;

use lbp_sim::{MachineState, SnapError};

mod bisect;

pub use bisect::{first_divergence, hybrid_divergence, DivergencePoint, HybridDivergence};

/// The container magic, spelling the format name.
pub const MAGIC: [u8; 8] = *b"LBPSNAP1";

/// The current container format version.
pub const FORMAT_VERSION: u16 = 2;

/// Bytes of container header before the payload (current format).
pub const CONTAINER_HEADER_BYTES: usize = 43;

/// Header size of the legacy version-1 container (no engine byte).
pub const V1_HEADER_BYTES: usize = 42;

/// Which simulation engine produced a snapshot.
///
/// Functional snapshots come from the fast-forward interpreter: their
/// architectural state is exact, but the cycle count is a retirement
/// lower bound and the stall ledger synthetic. Timing-sensitive tools
/// (the bisector) must not compare them against cycle-exact snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The full pipeline/NoC/bank model — exact cycles.
    CycleExact,
    /// The functional fast-forward interpreter — exact architecture,
    /// virtual cycles.
    Functional,
}

impl Engine {
    fn to_byte(self) -> u8 {
        match self {
            Engine::CycleExact => 0,
            Engine::Functional => 1,
        }
    }

    fn from_byte(b: u8) -> Option<Engine> {
        match b {
            0 => Some(Engine::CycleExact),
            1 => Some(Engine::Functional),
            _ => None,
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Engine::CycleExact => "cycle-exact",
            Engine::Functional => "functional",
        })
    }
}

/// Container metadata, readable without restoring the machine.
#[derive(Debug, Clone, Copy)]
pub struct Meta {
    /// The container format version (1 or 2).
    pub version: u16,
    /// The engine that produced the snapshot (v1 containers predate the
    /// field and are always cycle-exact).
    pub engine: Engine,
    /// The cycle the machine was snapshotted at.
    pub cycle: u64,
    /// The machine's core count.
    pub cores: u64,
    /// Payload length in bytes.
    pub payload_len: u64,
    /// The FNV-1a-64 content hash of the payload.
    pub content_hash: u64,
}

/// A failure to read or write a snapshot container.
///
/// The two corruption modes a crashing writer can leave behind get
/// their own variants so recovery code can tell them apart: a torn
/// write truncates the file ([`SnapFileError::ShortRead`]), while media
/// or memory damage flips bits under an intact length
/// ([`SnapFileError::HashMismatch`]). Everything else that fails
/// structural parsing stays [`SnapFileError::Format`].
#[derive(Debug)]
pub enum SnapFileError {
    /// The underlying I/O operation failed.
    Io(std::io::Error),
    /// The container ends early: a torn or truncated write. `expected`
    /// is the byte count the header promised (or the header size itself
    /// when not even the header is complete), `got` what is there.
    ShortRead {
        /// Bytes the container should hold.
        expected: u64,
        /// Bytes actually present.
        got: u64,
    },
    /// The payload bytes do not hash to the header's integrity hash:
    /// the container is complete but its content was altered.
    HashMismatch {
        /// The FNV-1a-64 hash the header recorded at write time.
        expected: u64,
        /// The hash of the payload as read.
        got: u64,
    },
    /// The bytes are not a well-formed `lbp-snap` container (bad
    /// magic, unsupported version, header/payload disagreement).
    Format(String),
    /// The payload does not describe a valid machine.
    Snap(SnapError),
}

impl std::fmt::Display for SnapFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapFileError::Io(e) => write!(f, "snapshot i/o failed: {e}"),
            SnapFileError::ShortRead { expected, got } => write!(
                f,
                "truncated lbp-snap container: {got} of {expected} bytes present \
                 (torn or interrupted write)"
            ),
            SnapFileError::HashMismatch { expected, got } => write!(
                f,
                "lbp-snap content-hash mismatch: header says {expected:#018x}, \
                 payload hashes to {got:#018x} (the snapshot bytes were altered)"
            ),
            SnapFileError::Format(what) => write!(f, "not a valid lbp-snap container: {what}"),
            SnapFileError::Snap(e) => write!(f, "snapshot payload rejected: {e}"),
        }
    }
}

impl std::error::Error for SnapFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapFileError::Io(e) => Some(e),
            SnapFileError::Snap(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapFileError {
    fn from(e: std::io::Error) -> SnapFileError {
        SnapFileError::Io(e)
    }
}

impl From<SnapError> for SnapFileError {
    fn from(e: SnapError) -> SnapFileError {
        SnapFileError::Snap(e)
    }
}

/// FNV-1a 64-bit over `bytes` — the format's (non-cryptographic)
/// integrity and content-addressing hash. Stable across platforms.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The content hash of a machine state — equal for machines in equal
/// states, whatever run produced them.
pub fn content_hash(state: &MachineState) -> u64 {
    fnv1a64(state.as_bytes())
}

/// Serializes a machine state into the current container format,
/// recording a cycle-exact producing engine.
pub fn encode(state: &MachineState) -> Vec<u8> {
    encode_with_engine(state, Engine::CycleExact)
}

/// Serializes a machine state, recording which engine produced it.
pub fn encode_with_engine(state: &MachineState, engine: Engine) -> Vec<u8> {
    let payload = state.as_bytes();
    let mut out = Vec::with_capacity(CONTAINER_HEADER_BYTES + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.push(engine.to_byte());
    out.extend_from_slice(&state.cycle().to_le_bytes());
    out.extend_from_slice(&(state.cores() as u64).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Reads and verifies the container header without touching the payload
/// beyond hashing it — cheap inspection of cycle, cores and producing
/// engine. Accepts both format versions.
///
/// # Errors
///
/// [`SnapFileError::ShortRead`], [`SnapFileError::HashMismatch`] or
/// [`SnapFileError::Format`] exactly as [`decode`] classifies them.
pub fn peek(bytes: &[u8]) -> Result<Meta, SnapFileError> {
    let bad = |what: String| Err(SnapFileError::Format(what));
    if bytes.len() < V1_HEADER_BYTES {
        // Too short for any header; report against the declared version
        // when readable, else the current format's size.
        let expected = if bytes.len() >= 10 && bytes[8..10] == 1u16.to_le_bytes() {
            V1_HEADER_BYTES
        } else {
            CONTAINER_HEADER_BYTES
        };
        return Err(SnapFileError::ShortRead {
            expected: expected as u64,
            got: bytes.len() as u64,
        });
    }
    if bytes[..8] != MAGIC {
        return bad("bad magic".to_owned());
    }
    let version = u16::from_le_bytes(bytes[8..10].try_into().unwrap());
    // v1 has no engine byte; numeric fields start right after the
    // version and every snapshot is implicitly cycle-exact.
    let (engine, header) = match version {
        1 => (Engine::CycleExact, V1_HEADER_BYTES),
        2 => {
            if bytes.len() < CONTAINER_HEADER_BYTES {
                return Err(SnapFileError::ShortRead {
                    expected: CONTAINER_HEADER_BYTES as u64,
                    got: bytes.len() as u64,
                });
            }
            match Engine::from_byte(bytes[10]) {
                Some(e) => (e, CONTAINER_HEADER_BYTES),
                None => return bad(format!("unknown producing engine {}", bytes[10])),
            }
        }
        v => return bad(format!("unsupported format version {v}")),
    };
    let base = header - 32;
    let u64_at = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
    let (cycle, cores, len, hash) = (
        u64_at(base),
        u64_at(base + 8),
        u64_at(base + 16),
        u64_at(base + 24),
    );
    let payload = &bytes[header..];
    if (payload.len() as u64) < len {
        return Err(SnapFileError::ShortRead {
            expected: header as u64 + len,
            got: bytes.len() as u64,
        });
    }
    if payload.len() as u64 > len {
        return bad(format!(
            "header declares {len} payload bytes, container holds {} (trailing bytes)",
            payload.len()
        ));
    }
    let got_hash = fnv1a64(payload);
    if got_hash != hash {
        return Err(SnapFileError::HashMismatch {
            expected: hash,
            got: got_hash,
        });
    }
    Ok(Meta {
        version,
        engine,
        cycle,
        cores,
        payload_len: len,
        content_hash: hash,
    })
}

/// Parses a container back into a [`MachineState`], verifying the
/// magic, version, length and integrity hash. Both format versions are
/// accepted; use [`peek`] first when the producing engine matters.
///
/// # Errors
///
/// [`SnapFileError::ShortRead`] when the container ends before the
/// header's declared size (torn write), [`SnapFileError::HashMismatch`]
/// when the payload is complete but its bytes were altered,
/// [`SnapFileError::Format`] on any other container-level violation,
/// [`SnapFileError::Snap`] if the verified payload still fails machine
/// validation.
pub fn decode(bytes: &[u8]) -> Result<MachineState, SnapFileError> {
    let meta = peek(bytes)?;
    if meta.version < FORMAT_VERSION {
        // The v2 payload gained the per-core hart free queue; a v1
        // payload lacks it and cannot be restored by this build.
        return Err(SnapFileError::Format(format!(
            "snapshot container v{} predates this build's machine-state layout: \
             re-run the producing simulation to regenerate the snapshot",
            meta.version
        )));
    }
    let state = MachineState::from_bytes(bytes[CONTAINER_HEADER_BYTES..].to_vec())?;
    if state.cycle() != meta.cycle || state.cores() as u64 != meta.cores {
        return Err(SnapFileError::Format(format!(
            "container header (cycle {}, {} cores) disagrees with the payload \
             (cycle {}, {} cores)",
            meta.cycle,
            meta.cores,
            state.cycle(),
            state.cores()
        )));
    }
    Ok(state)
}

/// Checks that two snapshots may be bisected against each other.
///
/// Bisection compares *timing* evolution, so both snapshots must come
/// from the same container format version and the same engine; a
/// functional snapshot's virtual cycle cannot be lined up against a
/// cycle-exact one's.
///
/// # Errors
///
/// [`SnapFileError::Format`] naming the mismatched field and both
/// values, with the fix (re-snapshot, or bisect within one engine).
pub fn ensure_bisect_compatible(a: &Meta, b: &Meta) -> Result<(), SnapFileError> {
    if a.version != b.version {
        return Err(SnapFileError::Format(format!(
            "cannot bisect across container format versions (one snapshot is v{}, the \
             other v{}); re-save the older snapshot with this tool to upgrade it",
            a.version, b.version
        )));
    }
    if a.engine != b.engine {
        return Err(SnapFileError::Format(format!(
            "cannot bisect a {} snapshot against a {} one: functional snapshots carry \
             virtual cycles, not pipeline timing; take both snapshots from the same \
             engine (e.g. re-run the warm phase cycle-exact)",
            a.engine, b.engine
        )));
    }
    Ok(())
}

/// Writes a machine state to `path` as a cycle-exact container.
///
/// # Errors
///
/// Any I/O failure creating or writing the file.
pub fn save(state: &MachineState, path: impl AsRef<Path>) -> Result<(), SnapFileError> {
    save_with_engine(state, Engine::CycleExact, path)
}

/// Writes a machine state to `path`, recording its producing engine.
///
/// # Errors
///
/// Any I/O failure creating or writing the file.
pub fn save_with_engine(
    state: &MachineState,
    engine: Engine,
    path: impl AsRef<Path>,
) -> Result<(), SnapFileError> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(&encode_with_engine(state, engine))?;
    Ok(())
}

/// Reads and verifies a snapshot container from `path`.
///
/// # Errors
///
/// I/O failures, container-format violations, or payload rejection.
pub fn load(path: impl AsRef<Path>) -> Result<MachineState, SnapFileError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    decode(&bytes)
}

/// Reads and verifies only the container metadata from `path`.
///
/// # Errors
///
/// I/O failures or container-format violations.
pub fn peek_file(path: impl AsRef<Path>) -> Result<Meta, SnapFileError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    peek(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbp_sim::{LbpConfig, Machine};

    fn snapped() -> MachineState {
        let image = lbp_asm::assemble(
            "main:
                li   t0, -1
                li   a0, 0
                p_ret a0, t0",
        )
        .unwrap();
        let mut m = Machine::new(LbpConfig::cores(1), &image).unwrap();
        m.run_to(2).unwrap();
        m.snapshot()
    }

    #[test]
    fn container_round_trips() {
        let state = snapped();
        let bytes = encode(&state);
        let back = decode(&bytes).unwrap();
        assert_eq!(back.as_bytes(), state.as_bytes());
        assert_eq!(back.cycle(), 2);
    }

    #[test]
    fn equal_states_hash_equal() {
        let a = snapped();
        let b = snapped();
        assert_eq!(content_hash(&a), content_hash(&b));
        assert_eq!(encode(&a), encode(&b));
    }

    #[test]
    fn damage_is_detected_and_classified() {
        let mut bytes = encode(&snapped());
        // Cut inside the header: short read against the header size.
        assert!(matches!(
            decode(&bytes[..CONTAINER_HEADER_BYTES - 1]),
            Err(SnapFileError::ShortRead { expected, got })
                if expected == CONTAINER_HEADER_BYTES as u64
                    && got == CONTAINER_HEADER_BYTES as u64 - 1
        ));
        // Cut inside the payload: short read against the declared total.
        assert!(matches!(
            decode(&bytes[..bytes.len() - 3]),
            Err(SnapFileError::ShortRead { expected, got })
                if expected == bytes.len() as u64 && got == bytes.len() as u64 - 3
        ));
        // Bit flip under an intact length: a hash mismatch, not a short
        // read and not a generic format error.
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        assert!(matches!(
            decode(&bytes),
            Err(SnapFileError::HashMismatch { expected, got }) if expected != got
        ));
        bytes[last] ^= 1;
        bytes[0] = b'X';
        assert!(matches!(decode(&bytes), Err(SnapFileError::Format(_))));
    }

    #[test]
    fn engine_provenance_round_trips() {
        let state = snapped();
        let bytes = encode_with_engine(&state, Engine::Functional);
        let meta = peek(&bytes).unwrap();
        assert_eq!(meta.version, FORMAT_VERSION);
        assert_eq!(meta.engine, Engine::Functional);
        assert_eq!(meta.cycle, 2);
        assert_eq!(meta.engine.to_string(), "functional");
        assert_eq!(peek(&encode(&state)).unwrap().engine, Engine::CycleExact);
        // Provenance does not perturb the payload.
        assert_eq!(decode(&bytes).unwrap().as_bytes(), state.as_bytes());
    }

    #[test]
    fn v1_containers_peek_as_cycle_exact_but_refuse_decode() {
        let state = snapped();
        let payload = state.as_bytes();
        // Hand-build a legacy v1 container (42-byte header, no engine).
        let mut v1 = Vec::new();
        v1.extend_from_slice(&MAGIC);
        v1.extend_from_slice(&1u16.to_le_bytes());
        v1.extend_from_slice(&state.cycle().to_le_bytes());
        v1.extend_from_slice(&(state.cores() as u64).to_le_bytes());
        v1.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        v1.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        v1.extend_from_slice(payload);
        let meta = peek(&v1).unwrap();
        assert_eq!(meta.version, 1);
        assert_eq!(meta.engine, Engine::CycleExact);
        // The v2 machine-state layout (hart free queues) is not present
        // in a v1 payload, so decode refuses rather than misparsing.
        let msg = decode(&v1).unwrap_err().to_string();
        assert!(msg.contains("v1") && msg.contains("re-run"), "{msg}");
    }

    #[test]
    fn bisect_refuses_mixed_engines_and_versions() {
        let state = snapped();
        let exact = peek(&encode(&state)).unwrap();
        let fast = peek(&encode_with_engine(&state, Engine::Functional)).unwrap();
        assert!(ensure_bisect_compatible(&exact, &exact).is_ok());
        let msg = ensure_bisect_compatible(&exact, &fast)
            .unwrap_err()
            .to_string();
        assert!(
            msg.contains("cycle-exact") && msg.contains("functional"),
            "{msg}"
        );
        let mut v1 = exact;
        v1.version = 1;
        let msg = ensure_bisect_compatible(&v1, &exact)
            .unwrap_err()
            .to_string();
        assert!(msg.contains("v1") && msg.contains("v2"), "{msg}");
    }

    #[test]
    fn save_and_load() {
        let dir = std::env::temp_dir().join("lbp-snap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("t-{}.lbpsnap", std::process::id()));
        let state = snapped();
        save(&state, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.as_bytes(), state.as_bytes());
        std::fs::remove_file(&path).unwrap();
    }
}
