//! Divergence bisection over checkpoints.
//!
//! Given two machines whose evolutions are *expected* to differ — e.g. a
//! clean run and one with an injected fault, or the two replicas of a
//! lockstep pair that reported a late divergence — the bisector finds the
//! **first cycle** where their dynamic states part ways without replaying
//! either run cycle-by-cycle from reset: a coarse scan advances both
//! machines `stride` cycles at a time comparing snapshots, then the last
//! interval that started equal is replayed one cycle at a time, and the
//! divergent cycle is replayed once more with tracing on to name the
//! first differing event (typically the corrupted commit or the dropped
//! message's missing delivery).
//!
//! Snapshots compare by their *dynamic* section only
//! ([`MachineState::dynamic_bytes`]), so two machines that differ in
//! configuration-level fault plans — but not yet in behaviour — are
//! still "equal".

use std::cell::RefCell;
use std::rc::Rc;

use lbp_sim::{FastEngine, FastStop, Machine, MachineState, SimError, SnapError};

/// Where two runs first part ways.
#[derive(Debug, Clone)]
pub struct DivergencePoint {
    /// The first cycle at whose end the two machines' states differ.
    pub cycle: u64,
    /// The first traced event of machine A on that cycle that machine B
    /// does not produce (`None` when A emits a strict prefix of B's
    /// events, or when the state difference is silent — e.g. a flipped
    /// register bit that no event reports).
    pub event_a: Option<String>,
    /// The first differing traced event of machine B, likewise.
    pub event_b: Option<String>,
    /// Machine A's run status at the divergent cycle (`running`,
    /// `exited`, or `error: …`).
    pub outcome_a: String,
    /// Machine B's run status at the divergent cycle.
    pub outcome_b: String,
}

impl std::fmt::Display for DivergencePoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "first divergence at cycle {}", self.cycle)?;
        match (&self.event_a, &self.event_b) {
            (None, None) => writeln!(
                f,
                "  no traced event differs — the divergence is silent state \
                 (e.g. a corrupted value not yet observed)"
            )?,
            (a, b) => {
                if let Some(a) = a {
                    writeln!(f, "  run A: {a}")?;
                }
                if let Some(b) = b {
                    writeln!(f, "  run B: {b}")?;
                }
            }
        }
        write!(f, "  status: A {} | B {}", self.outcome_a, self.outcome_b)
    }
}

/// One machine being stepped through the bisection, with its last
/// captured state and run status.
struct Stepper {
    machine: Machine,
    /// `running`, `exited`, or `error: …` — once a machine errors it is
    /// frozen and keeps reporting the same outcome.
    outcome: String,
}

impl Stepper {
    fn restore(state: &MachineState) -> Result<Stepper, SnapError> {
        Ok(Stepper {
            machine: Machine::restore(state)?,
            outcome: "running".to_owned(),
        })
    }

    /// Advances to `target` cycles (or exit/error, whichever first).
    fn advance(&mut self, target: u64) {
        if self.outcome.starts_with("error") {
            return;
        }
        match self.machine.run_to(target) {
            Ok(true) => self.outcome = "exited".to_owned(),
            Ok(false) => self.outcome = "running".to_owned(),
            Err(failure) => self.outcome = format!("error: {}", failure.error),
        }
    }

    fn state(&self) -> MachineState {
        self.machine.snapshot()
    }
}

/// Whether two steppers are still evolving identically.
fn in_sync(a: &Stepper, b: &Stepper) -> bool {
    a.outcome == b.outcome && a.state().dynamic_bytes() == b.state().dynamic_bytes()
}

/// Finds the first cycle at which two runs diverge, comparing their
/// dynamic state after every cycle.
///
/// `a0` and `b0` are starting checkpoints taken **at the same cycle** of
/// two runs believed identical up to that point (cycle-0 snapshots of two
/// freshly built machines are the common case). Both runs are advanced up
/// to `a0.cycle() + max_cycles`; `stride` controls the coarse scan's
/// checkpoint spacing (clamped to at least 1).
///
/// Returns `None` when the runs never diverge within the budget — they
/// stayed state-identical every `stride` cycles and ended with the same
/// outcome.
///
/// # Errors
///
/// [`SnapError`] if either checkpoint fails to restore, or if the two
/// checkpoints are not at the same cycle or already differ.
pub fn first_divergence(
    a0: &MachineState,
    b0: &MachineState,
    max_cycles: u64,
    stride: u64,
) -> Result<Option<DivergencePoint>, SnapError> {
    if a0.cycle() != b0.cycle() {
        return Err(SnapError::Corrupt(format!(
            "checkpoints are at different cycles ({} vs {})",
            a0.cycle(),
            b0.cycle()
        )));
    }
    if a0.dynamic_bytes() != b0.dynamic_bytes() {
        return Err(SnapError::Corrupt(
            "the starting checkpoints already differ — bisect from an earlier one".to_owned(),
        ));
    }
    let stride = stride.max(1);
    let start = a0.cycle();
    let end = start.saturating_add(max_cycles);
    let mut a = Stepper::restore(a0)?;
    let mut b = Stepper::restore(b0)?;
    // Coarse scan: advance both by `stride`, remembering the last cycle
    // where the states still matched.
    let mut last_equal = (a0.clone(), b0.clone());
    let mut cursor = start;
    loop {
        if cursor >= end {
            return Ok(None); // budget exhausted, still in sync
        }
        let target = (cursor + stride).min(end);
        a.advance(target);
        b.advance(target);
        if !in_sync(&a, &b) {
            break; // diverged somewhere in (cursor, target]
        }
        if a.outcome != "running" {
            return Ok(None); // both finished identically
        }
        last_equal = (a.state(), b.state());
        cursor = target;
    }
    // Fine scan: replay the guilty interval one cycle at a time from the
    // last equal checkpoint.
    let mut a = Stepper::restore(&last_equal.0)?;
    let mut b = Stepper::restore(&last_equal.1)?;
    let mut cycle = last_equal.0.cycle();
    loop {
        let before = (a.state(), b.state());
        cycle += 1;
        a.advance(cycle);
        b.advance(cycle);
        if !in_sync(&a, &b) {
            let (event_a, event_b) = divergent_events(&before.0, &before.1, cycle)?;
            return Ok(Some(DivergencePoint {
                cycle,
                event_a,
                event_b,
                outcome_a: a.outcome,
                outcome_b: b.outcome,
            }));
        }
        if a.outcome != "running" {
            // The coarse scan saw a divergence but the replay reached the
            // same common end: impossible for a deterministic machine.
            return Err(SnapError::Corrupt(
                "replayed interval did not reproduce the divergence — \
                 the machine is not deterministic"
                    .to_owned(),
            ));
        }
    }
}

/// Replays the single divergent cycle with tracing on and returns the
/// first event each machine produces that the other does not.
fn divergent_events(
    a_before: &MachineState,
    b_before: &MachineState,
    cycle: u64,
) -> Result<(Option<String>, Option<String>), SnapError> {
    let trace_one = |state: &MachineState| -> Result<Vec<lbp_sim::Event>, SnapError> {
        let mut m = Machine::restore(state)?;
        m.set_trace(true);
        let _ = m.run_to(cycle); // errors still leave the partial trace
        Ok(m.trace().events().to_vec())
    };
    let ea = trace_one(a_before)?;
    let eb = trace_one(b_before)?;
    let split = ea.iter().zip(eb.iter()).take_while(|(x, y)| x == y).count();
    Ok((
        ea.get(split).map(lbp_sim::Event::describe),
        eb.get(split).map(lbp_sim::Event::describe),
    ))
}

/// Where the functional fast-forward engine first parts ways with the
/// cycle-exact machine on the same image — localized to the exact
/// instruction, not just a cycle.
///
/// Both engines retire the same per-hart instruction streams when they
/// agree (the functional engine's correctness contract), so the first
/// difference in any hart's commit stream *is* the divergent
/// instruction.
#[derive(Debug, Clone)]
pub struct HybridDivergence {
    /// The global index of the hart whose streams differ.
    pub hart: u32,
    /// How many instructions of that hart's stream matched before the
    /// divergence.
    pub index: usize,
    /// The functional engine's pc at that position (`None` when its
    /// stream ended early).
    pub functional_pc: Option<u32>,
    /// The cycle-exact machine's pc at that position, likewise.
    pub cycle_exact_pc: Option<u32>,
    /// The last pc both engines retired before parting ways — with a
    /// corrupted branch or a mis-modeled instruction, this *is* the
    /// guilty instruction.
    pub last_common_pc: Option<u32>,
}

impl std::fmt::Display for HybridDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "engines diverge at hart {}, commit #{}",
            self.hart, self.index
        )?;
        let side = |pc: Option<u32>| match pc {
            Some(pc) => format!("retires pc {pc:#010x}"),
            None => "has already stopped".to_owned(),
        };
        writeln!(f, "  functional:  {}", side(self.functional_pc))?;
        write!(f, "  cycle-exact: {}", side(self.cycle_exact_pc))?;
        if let Some(pc) = self.last_common_pc {
            write!(f, "\n  last agreed instruction: pc {pc:#010x}")?;
        }
        Ok(())
    }
}

/// Collects each hart's committed pcs in program order.
struct CommitStreams(Rc<RefCell<Vec<Vec<u32>>>>);

impl lbp_sim::TraceSink for CommitStreams {
    fn record(&mut self, event: &lbp_sim::Event) {
        if let lbp_sim::EventKind::Commit { pc } = event.kind {
            self.0.borrow_mut()[event.hart.global() as usize].push(pc);
        }
    }
}

/// Runs `image` on both the functional engine and the cycle-exact
/// machine and localizes their first divergence to the exact
/// instruction, comparing per-hart commit streams.
///
/// `sabotage` XORs instruction words into the *functional copy only*
/// (`(pc, xor)` pairs) — the seeded-divergence workflow for validating
/// the localizer; pass `&[]` to check a suspect image as-is. Returns
/// `None` when every hart's streams match (and, with no sabotage, that
/// is the expected verdict for any deterministic program).
///
/// Both runs are tolerant of errors: a sabotaged functional run may
/// deadlock or fault, and the commit streams up to that point still
/// localize where it left the cycle-exact trajectory.
///
/// # Errors
///
/// [`SimError`] when the *clean* setup fails (either engine rejects the
/// image or configuration).
pub fn hybrid_divergence(
    cfg: lbp_sim::LbpConfig,
    image: &lbp_asm::Image,
    max_cycles: u64,
    sabotage: &[(u32, u32)],
) -> Result<Option<HybridDivergence>, SimError> {
    let harts = cfg.harts();
    let mut fast = FastEngine::new(cfg.clone(), image)?;
    fast.enable_commit_log();
    for &(pc, xor) in sabotage {
        fast.sabotage_code(pc, xor);
    }
    let _ = fast.run(FastStop::Exit, max_cycles.saturating_mul(4).max(max_cycles));

    let mut machine = Machine::new(cfg, image)?;
    let streams = Rc::new(RefCell::new(vec![Vec::new(); harts]));
    machine.set_sink(Box::new(CommitStreams(Rc::clone(&streams))));
    machine.set_trace(true);
    let _ = machine.run(max_cycles);

    let exact = streams.borrow();
    for h in 0..harts {
        let f = &fast.commit_log()[h];
        let e = &exact[h];
        // The functional engine parks before the exit p_ret, so the
        // cycle-exact stream legitimately carries it as a suffix; only
        // compare the overlap plus a functional surplus.
        let n = f.len().min(e.len());
        for i in 0..n {
            if f[i] != e[i] {
                return Ok(Some(HybridDivergence {
                    hart: h as u32,
                    index: i,
                    functional_pc: Some(f[i]),
                    cycle_exact_pc: Some(e[i]),
                    last_common_pc: i.checked_sub(1).map(|p| f[p]),
                }));
            }
        }
        if f.len() > e.len() {
            return Ok(Some(HybridDivergence {
                hart: h as u32,
                index: n,
                functional_pc: Some(f[n]),
                cycle_exact_pc: None,
                last_common_pc: n.checked_sub(1).map(|p| f[p]),
            }));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbp_sim::{Fault, FaultPlan, LbpConfig, Machine};

    fn machine(faults: &[&str]) -> Machine {
        let image = lbp_asm::assemble(
            "main:
                li   t0, -1
                li   a0, 0
                li   a1, 5
                la   a2, out
            loop:
                mul  a3, a1, a1
                sw   a3, 0(a2)
                addi a1, a1, -1
                bnez a1, loop
                p_ret a0, t0
            .data
            out: .word 0",
        )
        .unwrap();
        let plan: FaultPlan = faults.iter().map(|s| Fault::parse(s).unwrap()).collect();
        Machine::new(LbpConfig::cores(1).with_faults(plan), &image).unwrap()
    }

    #[test]
    fn identical_runs_never_diverge() {
        let a = machine(&[]).snapshot();
        let b = machine(&[]).snapshot();
        assert!(first_divergence(&a, &b, 100_000, 16).unwrap().is_none());
    }

    #[test]
    fn fault_is_located_at_its_trigger_cycle() {
        let a = machine(&[]).snapshot();
        let b = machine(&["flip-mem:0x80000000:3:10"]).snapshot();
        let d = first_divergence(&a, &b, 100_000, 16)
            .unwrap()
            .expect("a flipped bit must diverge");
        assert_eq!(d.cycle, 10, "{d}");
    }

    #[test]
    fn mismatched_checkpoints_are_rejected() {
        let a = machine(&[]).snapshot();
        let mut m = machine(&[]);
        m.run_to(3).unwrap();
        assert!(first_divergence(&a, &m.snapshot(), 100, 4).is_err());
    }

    /// The countdown loop from `machine()`, as a standalone image.
    fn loop_image() -> lbp_asm::Image {
        lbp_asm::assemble(
            "main:
                li   t0, -1
                li   a0, 0
                li   a1, 5
                la   a2, out
            loop:
                mul  a3, a1, a1
                sw   a3, 0(a2)
                addi a1, a1, -1
                bnez a1, loop
                p_ret a0, t0
            .data
            out: .word 0",
        )
        .unwrap()
    }

    #[test]
    fn agreeing_engines_report_no_hybrid_divergence() {
        let d = hybrid_divergence(LbpConfig::cores(1), &loop_image(), 100_000, &[]).unwrap();
        assert!(d.is_none(), "clean engines must agree: {d:?}");
    }

    #[test]
    fn sabotage_is_localized_to_the_exact_instruction() {
        let image = loop_image();
        // Corrupt the loop's closing branch in the functional copy:
        // flipping bit 10 of `bnez a1, loop` changes its offset, so the
        // first commit *after* the branch lands somewhere else.
        let branch_pc = image
            .symbol("loop")
            .map(|a| a + 12)
            .expect("the loop label resolves");
        let d = hybrid_divergence(
            LbpConfig::cores(1),
            &image,
            100_000,
            &[(branch_pc, 1 << 10)],
        )
        .unwrap()
        .expect("a corrupted branch must diverge");
        assert_eq!(
            d.last_common_pc,
            Some(branch_pc),
            "the last agreed instruction is the sabotaged branch: {d}"
        );
        assert_ne!(d.functional_pc, d.cycle_exact_pc, "{d}");
    }
}
