//! # lbp-prof — guest-program profiler reports and simulator self-metrics
//!
//! The machine side of profiling lives in `lbp-sim`
//! ([`ProfData`] collects per-pc cycle attribution,
//! traffic matrices and the fork-tree timeline while the machine runs).
//! This crate is the reporting side:
//!
//! * [`SymTab`] maps program counters back to functions and source lines
//!   through the assembled [`Image`]'s symbol table, hiding the
//!   compiler-internal labels `lbp-cc` and the `lbp-asm` builder invent.
//! * [`build_report`] turns the collectors into a versioned
//!   **`lbp-prof-v1`** JSON report ([`PROF_SCHEMA`]); [`validate`]
//!   rejects unknown versions and malformed rows with stable
//!   `LBP-P*` diagnostics in the `lbp-diag-v1` style.
//! * [`folded_stacks`] emits `core;function count` lines consumable by
//!   standard flamegraph tooling, and [`timeline_json`] renders the
//!   fork tree as a `chrome://tracing` file of hart-lifetime spans.
//! * [`hotspot_table`] prints the per-function hot-spot table.
//! * [`BenchRow`] is the simulator *self*-metrics record (sim-cycles/sec,
//!   host-ns/sim-cycle, events/sec, peak-RSS proxy) shared by the
//!   `lbp-bench` throughput suite and the converted benches; a set of
//!   rows plus an overhead check forms the committed `BENCH_*.json`
//!   trajectory (kind `bench-suite`).
//!
//! Everything serializes through the dependency-free
//! [`lbp_sim::json::Json`] writer, so reports are bit-identical across
//! runs of the same program — profiling inherits the determinism claim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use lbp_asm::Image;
use lbp_sim::{CoreStalls, Json, ProfData, ProfEventKind, Stats};

/// The profiler report schema version tag.
pub const PROF_SCHEMA: &str = "lbp-prof-v1";

/// The function-name fallback for a pc with no covering symbol.
fn anon_name(pc: u32) -> String {
    format!("pc_{pc:#x}")
}

/// A pc → (function, source line) mapping extracted from an assembled
/// image.
///
/// A *function* is the nearest preceding user-visible text label: labels
/// the toolchain invents for control flow — `_cc_*` from `lbp-cc`,
/// `_L_*` from the `lbp-asm` builder (used by `lbp-omp`) — are folded
/// into the enclosing function so hot-spot tables speak the programmer's
/// vocabulary.
#[derive(Debug, Clone, Default)]
pub struct SymTab {
    /// (address, name) of user-visible text labels, sorted by address.
    funcs: Vec<(u32, String)>,
    /// Source line of each text word, indexed from `text_base`.
    lines: Vec<usize>,
    text_base: u32,
}

impl SymTab {
    /// Builds the mapping from an assembled image.
    pub fn from_image(image: &Image) -> SymTab {
        let text_end = image.text_end();
        let mut funcs: Vec<(u32, String)> = image
            .symbols
            .iter()
            .filter(|&(name, &addr)| {
                addr < text_end && !name.starts_with("_cc_") && !name.starts_with("_L_")
            })
            .map(|(name, &addr)| (addr, name.clone()))
            .collect();
        // Address order; ties (aliased labels) resolve to the
        // lexicographically first name so the choice is deterministic.
        funcs.sort();
        funcs.dedup_by_key(|&mut (addr, _)| addr);
        SymTab {
            funcs,
            lines: image.lines.clone(),
            text_base: lbp_isa::CODE_BASE,
        }
    }

    /// An empty table: every pc symbolizes to its `pc_0x…` fallback.
    /// Used when profiling a restored snapshot with no program at hand.
    pub fn empty() -> SymTab {
        SymTab::default()
    }

    /// The function containing `pc`: the nearest preceding user-visible
    /// label, or `None` when no label covers the pc.
    pub fn function_of(&self, pc: u32) -> Option<&str> {
        let idx = self.funcs.partition_point(|&(addr, _)| addr <= pc);
        idx.checked_sub(1).map(|i| self.funcs[i].1.as_str())
    }

    /// [`SymTab::function_of`] with the `pc_0x…` fallback applied.
    pub fn function_name(&self, pc: u32) -> String {
        self.function_of(pc)
            .map(str::to_owned)
            .unwrap_or_else(|| anon_name(pc))
    }

    /// The source line of the instruction at `pc` (0 for generated code,
    /// `None` when out of range).
    pub fn line_of(&self, pc: u32) -> Option<usize> {
        let off = pc.checked_sub(self.text_base)?;
        if !pc.is_multiple_of(4) {
            return None;
        }
        self.lines.get((off / 4) as usize).copied()
    }
}

/// One row of the per-function hot-spot aggregation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncRow {
    /// Function name (a text label, or the `pc_0x…` fallback).
    pub name: String,
    /// Cycles retiring instructions of this function, summed over cores.
    pub retired: u64,
    /// Stall slots blamed on the function's instructions, by bucket.
    pub stalls: CoreStalls,
}

impl FuncRow {
    /// Total cycles attributed to the function.
    pub fn cycles(&self) -> u64 {
        self.retired + self.stalls.total()
    }
}

/// Aggregates the per-pc attribution into per-function rows, sorted
/// hottest first (ties broken by name for determinism).
pub fn function_rows(prof: &ProfData, sym: &SymTab) -> Vec<FuncRow> {
    let mut rows: Vec<FuncRow> = Vec::new();
    for core in 0..prof.cores() {
        for (pc, counters) in prof.per_pc(core) {
            let name = sym.function_name(pc);
            let row = match rows.iter_mut().find(|r| r.name == name) {
                Some(row) => row,
                None => {
                    rows.push(FuncRow {
                        name,
                        retired: 0,
                        stalls: CoreStalls::default(),
                    });
                    rows.last_mut().expect("just pushed")
                }
            };
            row.retired += counters.retired;
            row.stalls = row.stalls.add(&counters.stalls);
        }
    }
    rows.sort_by(|a, b| b.cycles().cmp(&a.cycles()).then(a.name.cmp(&b.name)));
    rows
}

/// Renders a row-major square matrix as an array of row arrays.
fn matrix_json(flat: &[u64], cores: usize) -> Json {
    Json::Arr(
        (0..cores)
            .map(|r| {
                Json::Arr(
                    flat[r * cores..(r + 1) * cores]
                        .iter()
                        .map(|&v| Json::U64(v))
                        .collect(),
                )
            })
            .collect(),
    )
}

/// Builds the `lbp-prof-v1` profile report for one finished run.
///
/// Layout (`kind` distinguishes the three record shapes of the schema
/// family — `"profile"` here, `"bench"` / `"bench-suite"` for the
/// self-metrics):
///
/// ```json
/// { "schema": "lbp-prof-v1", "kind": "profile", "program": ...,
///   "cores": N, "cycles": C, "retired": R,
///   "functions": [ {"name", "retired", "cycles", "share", "stalls"} ],
///   "per_core":  [ {"core", "retired", "attributed", "unattributed",
///                   "pcs": [ {"pc", "function", "line", "retired",
///                             "stalls"} ]} ],
///   "noc":            {"cores": N, "rows": [[u64; N]; N]},
///   "bank_conflicts": {"cores": N, "rows": [[u64; N]; N]},
///   "fork_tree": [ {"cycle", "event", "hart", ...} ],
///   "intervals": [ {"cycle", "interval", "noc", "bank_conflicts"} ] }
/// ```
pub fn build_report(program: &str, stats: &Stats, prof: &ProfData, sym: &SymTab) -> Json {
    let cores = prof.cores();
    let cycles = stats.cycles;
    let total = cycles.max(1) as f64 * cores as f64;
    let functions: Vec<Json> = function_rows(prof, sym)
        .into_iter()
        .map(|row| {
            Json::obj([
                ("name", Json::Str(row.name.clone())),
                ("retired", Json::U64(row.retired)),
                ("cycles", Json::U64(row.cycles())),
                ("share", Json::F64(row.cycles() as f64 / total)),
                ("stalls", row.stalls.to_json()),
            ])
        })
        .collect();
    let per_core: Vec<Json> = (0..cores)
        .map(|core| {
            let pcs: Vec<Json> = prof
                .per_pc(core)
                .map(|(pc, c)| {
                    Json::obj([
                        ("pc", Json::U64(pc as u64)),
                        ("function", Json::Str(sym.function_name(pc))),
                        (
                            "line",
                            match sym.line_of(pc) {
                                Some(l) => Json::U64(l as u64),
                                None => Json::Null,
                            },
                        ),
                        ("retired", Json::U64(c.retired)),
                        ("stalls", c.stalls.to_json()),
                    ])
                })
                .collect();
            Json::obj([
                ("core", Json::U64(core as u64)),
                ("retired", Json::U64(stats.retired_by_core(core))),
                ("attributed", Json::U64(prof.attributed_cycles(core))),
                ("unattributed", prof.unattributed(core).to_json()),
                ("pcs", Json::Arr(pcs)),
            ])
        })
        .collect();
    let fork_tree: Vec<Json> = prof
        .timeline()
        .iter()
        .map(|ev| {
            let mut pairs = vec![
                ("cycle".to_owned(), Json::U64(ev.cycle)),
                ("event".to_owned(), Json::Str(ev.kind.name().to_owned())),
                ("hart".to_owned(), Json::U64(ev.kind.hart().global() as u64)),
            ];
            match ev.kind {
                ProfEventKind::Fork { parent, .. } => {
                    pairs.push(("parent".to_owned(), Json::U64(parent.global() as u64)));
                }
                ProfEventKind::Start { pc, .. } | ProfEventKind::Join { pc, .. } => {
                    pairs.push(("pc".to_owned(), Json::U64(pc as u64)));
                }
                ProfEventKind::End { .. } | ProfEventKind::Exit { .. } => {}
            }
            Json::Obj(pairs)
        })
        .collect();
    let intervals: Vec<Json> = prof
        .intervals()
        .iter()
        .map(|iv| {
            Json::obj([
                ("cycle", Json::U64(iv.cycle)),
                ("interval", Json::U64(iv.interval)),
                ("noc", matrix_json(&iv.noc_requests, cores)),
                ("bank_conflicts", matrix_json(&iv.bank_conflicts, cores)),
            ])
        })
        .collect();
    Json::obj([
        ("schema", Json::Str(PROF_SCHEMA.to_owned())),
        ("kind", Json::Str("profile".to_owned())),
        ("program", Json::Str(program.to_owned())),
        ("cores", Json::U64(cores as u64)),
        ("cycles", Json::U64(cycles)),
        ("retired", Json::U64(stats.retired())),
        ("functions", Json::Arr(functions)),
        ("per_core", Json::Arr(per_core)),
        (
            "noc",
            Json::obj([
                ("cores", Json::U64(cores as u64)),
                ("rows", matrix_json(prof.noc_matrix(), cores)),
            ]),
        ),
        (
            "bank_conflicts",
            Json::obj([
                ("cores", Json::U64(cores as u64)),
                ("rows", matrix_json(prof.conflict_matrix(), cores)),
            ]),
        ),
        ("fork_tree", Json::Arr(fork_tree)),
        ("intervals", Json::Arr(intervals)),
    ])
}

/// Folded-stack lines for flamegraph tooling: one
/// `core<i>;<function> <cycles>` line per (core, function) pair with a
/// nonzero cycle count, plus a `core<i>;[unattributed] <n>` frame for
/// stall slots no instruction could be blamed for. Feed the output to
/// `flamegraph.pl` (or any folded-stack consumer) unchanged.
pub fn folded_stacks(prof: &ProfData, sym: &SymTab) -> String {
    let mut out = String::new();
    for core in 0..prof.cores() {
        // Aggregate per function, deterministically (BTreeMap iteration
        // is pc-ordered; fold into name order for output).
        let mut by_func: Vec<(String, u64)> = Vec::new();
        for (pc, counters) in prof.per_pc(core) {
            let name = sym.function_name(pc);
            match by_func.iter_mut().find(|(n, _)| *n == name) {
                Some((_, c)) => *c += counters.cycles(),
                None => by_func.push((name, counters.cycles())),
            }
        }
        by_func.sort();
        for (name, cycles) in by_func {
            if cycles > 0 {
                out.push_str(&format!("core{core};{name} {cycles}\n"));
            }
        }
        let un = prof.unattributed(core).total();
        if un > 0 {
            out.push_str(&format!("core{core};[unattributed] {un}\n"));
        }
    }
    out
}

/// Renders the fork-tree timeline as a `chrome://tracing` JSON file:
/// one `"X"` (complete) event per hart lifetime — hart 0.0 opens at
/// cycle 0; a `start` opens a span, `end`/`exit` closes it, spans still
/// open at `final_cycle` close there — plus one `"i"` (instant) event
/// per fork and join. `pid` is the core, `tid` the hart slot.
pub fn timeline_json(prof: &ProfData, final_cycle: u64) -> String {
    let mut events: Vec<Json> = Vec::new();
    // (hart, open-cycle) spans awaiting their close.
    let mut open: Vec<(lbp_isa::HartId, u64)> = vec![(lbp_isa::HartId::FIRST, 0)];
    let span = |hart: lbp_isa::HartId, from: u64, to: u64| {
        Json::obj([
            (
                "name",
                Json::Str(format!("hart {}.{}", hart.core(), hart.local())),
            ),
            ("ph", Json::Str("X".to_owned())),
            ("ts", Json::U64(from)),
            ("dur", Json::U64(to.saturating_sub(from))),
            ("pid", Json::U64(hart.core() as u64)),
            ("tid", Json::U64(hart.local() as u64)),
        ])
    };
    for ev in prof.timeline() {
        let hart = ev.kind.hart();
        match ev.kind {
            ProfEventKind::Start { .. } => open.push((hart, ev.cycle)),
            ProfEventKind::End { .. } | ProfEventKind::Exit { .. } => {
                if let Some(i) = open.iter().position(|&(h, _)| h == hart) {
                    let (_, from) = open.remove(i);
                    events.push(span(hart, from, ev.cycle));
                }
            }
            ProfEventKind::Fork { parent, child } => {
                events.push(Json::obj([
                    ("name", Json::Str("fork".to_owned())),
                    ("ph", Json::Str("i".to_owned())),
                    ("s", Json::Str("t".to_owned())),
                    ("ts", Json::U64(ev.cycle)),
                    ("pid", Json::U64(parent.core() as u64)),
                    ("tid", Json::U64(parent.local() as u64)),
                    (
                        "args",
                        Json::obj([("child", Json::U64(child.global() as u64))]),
                    ),
                ]));
            }
            ProfEventKind::Join { pc, .. } => {
                events.push(Json::obj([
                    ("name", Json::Str("join".to_owned())),
                    ("ph", Json::Str("i".to_owned())),
                    ("s", Json::Str("t".to_owned())),
                    ("ts", Json::U64(ev.cycle)),
                    ("pid", Json::U64(hart.core() as u64)),
                    ("tid", Json::U64(hart.local() as u64)),
                    ("args", Json::obj([("pc", Json::U64(pc as u64))])),
                ]));
            }
        }
    }
    for (hart, from) in open {
        events.push(span(hart, from, final_cycle));
    }
    let doc = Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ns".to_owned())),
    ]);
    let mut out = String::new();
    doc.write(&mut out);
    out.push('\n');
    out
}

/// Formats the per-function hot-spot table of a `"profile"` report:
/// the `top` hottest functions with their cycle totals, shares and
/// dominant stall buckets.
pub fn hotspot_table(report: &Json, top: usize) -> String {
    let mut out = String::new();
    let funcs = report
        .get("functions")
        .and_then(Json::as_arr)
        .unwrap_or_default();
    out.push_str(&format!(
        "{:<24} {:>12} {:>12} {:>7}  dominant stall\n",
        "function", "cycles", "retired", "share"
    ));
    for f in funcs.iter().take(top) {
        let name = f.get("name").and_then(Json::as_str).unwrap_or("?");
        let cycles = f.get("cycles").and_then(Json::as_u64).unwrap_or(0);
        let retired = f.get("retired").and_then(Json::as_u64).unwrap_or(0);
        let share = f.get("share").and_then(Json::as_f64).unwrap_or(0.0);
        let dominant = f
            .get("stalls")
            .and_then(|s| match s {
                Json::Obj(pairs) => pairs
                    .iter()
                    .filter_map(|(k, v)| v.as_u64().map(|n| (k.as_str(), n)))
                    .filter(|&(_, n)| n > 0)
                    .max_by_key(|&(_, n)| n),
                _ => None,
            })
            .map(|(k, n)| format!("{k} ({n})"))
            .unwrap_or_else(|| "-".to_owned());
        out.push_str(&format!(
            "{name:<24} {cycles:>12} {retired:>12} {:>6.1}%  {dominant}\n",
            share * 100.0
        ));
    }
    out
}

/// A stable validation diagnostic, in the `lbp-diag-v1` spirit: a
/// machine-checkable `LBP-P*` code plus a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfError {
    /// Stable diagnostic code (`LBP-P001` unknown schema, `LBP-P002`
    /// unknown kind, `LBP-P003` missing field, `LBP-P004` malformed row,
    /// `LBP-P005` matrix shape mismatch).
    pub code: &'static str,
    /// What exactly is wrong.
    pub message: String,
}

impl ProfError {
    fn new(code: &'static str, message: impl Into<String>) -> ProfError {
        ProfError {
            code,
            message: message.into(),
        }
    }
}

impl fmt::Display for ProfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error [{}]: {}", self.code, self.message)
    }
}

impl std::error::Error for ProfError {}

fn require_u64(v: &Json, key: &str, ctx: &str) -> Result<u64, ProfError> {
    v.get(key)
        .ok_or_else(|| ProfError::new("LBP-P003", format!("{ctx} is missing field `{key}`")))?
        .as_u64()
        .ok_or_else(|| {
            ProfError::new(
                "LBP-P004",
                format!("{ctx} field `{key}` is not a non-negative integer"),
            )
        })
}

fn require_str<'j>(v: &'j Json, key: &str, ctx: &str) -> Result<&'j str, ProfError> {
    v.get(key)
        .ok_or_else(|| ProfError::new("LBP-P003", format!("{ctx} is missing field `{key}`")))?
        .as_str()
        .ok_or_else(|| ProfError::new("LBP-P004", format!("{ctx} field `{key}` is not a string")))
}

fn check_matrix(v: &Json, key: &str, cores: u64) -> Result<(), ProfError> {
    let m = v
        .get(key)
        .ok_or_else(|| ProfError::new("LBP-P003", format!("report is missing matrix `{key}`")))?;
    let rows = m
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| ProfError::new("LBP-P004", format!("matrix `{key}` has no `rows` array")))?;
    if rows.len() as u64 != cores {
        return Err(ProfError::new(
            "LBP-P005",
            format!("matrix `{key}` has {} rows for {cores} cores", rows.len()),
        ));
    }
    for (i, row) in rows.iter().enumerate() {
        let cells = row.as_arr().ok_or_else(|| {
            ProfError::new(
                "LBP-P004",
                format!("matrix `{key}` row {i} is not an array"),
            )
        })?;
        if cells.len() as u64 != cores {
            return Err(ProfError::new(
                "LBP-P005",
                format!(
                    "matrix `{key}` row {i} has {} cells for {cores} cores",
                    cells.len()
                ),
            ));
        }
        if let Some(j) = cells.iter().position(|c| c.as_u64().is_none()) {
            return Err(ProfError::new(
                "LBP-P004",
                format!("matrix `{key}` cell [{i}][{j}] is not a non-negative integer"),
            ));
        }
    }
    Ok(())
}

/// Validates the shared envelope of one `lbp-prof-v1` record and
/// returns its `kind`. Rejects unknown schema versions (`LBP-P001`) and
/// unknown kinds (`LBP-P002`).
pub fn validate_envelope(record: &Json) -> Result<&str, ProfError> {
    let schema = record
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| ProfError::new("LBP-P003", "record has no `schema` string"))?;
    if schema != PROF_SCHEMA {
        return Err(ProfError::new(
            "LBP-P001",
            format!("unknown schema `{schema}` (this tool reads `{PROF_SCHEMA}`)"),
        ));
    }
    let kind = require_str(record, "kind", "record")?;
    if !matches!(kind, "profile" | "bench" | "bench-suite") {
        return Err(ProfError::new(
            "LBP-P002",
            format!("unknown record kind `{kind}`"),
        ));
    }
    Ok(kind)
}

/// Validates one `lbp-prof-v1` record of any kind: envelope, required
/// fields, row shapes, matrix dimensions. Returns the record's kind.
pub fn validate(record: &Json) -> Result<&str, ProfError> {
    let kind = validate_envelope(record)?;
    match kind {
        "profile" => {
            require_str(record, "program", "profile record")?;
            let cores = require_u64(record, "cores", "profile record")?;
            require_u64(record, "cycles", "profile record")?;
            require_u64(record, "retired", "profile record")?;
            let funcs = record
                .get("functions")
                .and_then(Json::as_arr)
                .ok_or_else(|| {
                    ProfError::new("LBP-P003", "profile record has no `functions` array")
                })?;
            for (i, f) in funcs.iter().enumerate() {
                let ctx = format!("functions[{i}]");
                require_str(f, "name", &ctx)?;
                require_u64(f, "retired", &ctx)?;
                require_u64(f, "cycles", &ctx)?;
            }
            let per_core = record
                .get("per_core")
                .and_then(Json::as_arr)
                .ok_or_else(|| {
                    ProfError::new("LBP-P003", "profile record has no `per_core` array")
                })?;
            if per_core.len() as u64 != cores {
                return Err(ProfError::new(
                    "LBP-P005",
                    format!(
                        "`per_core` has {} entries for {cores} cores",
                        per_core.len()
                    ),
                ));
            }
            for (i, c) in per_core.iter().enumerate() {
                let ctx = format!("per_core[{i}]");
                require_u64(c, "attributed", &ctx)?;
                let pcs = c.get("pcs").and_then(Json::as_arr).ok_or_else(|| {
                    ProfError::new("LBP-P003", format!("{ctx} has no `pcs` array"))
                })?;
                for (j, p) in pcs.iter().enumerate() {
                    let pctx = format!("{ctx}.pcs[{j}]");
                    require_u64(p, "pc", &pctx)?;
                    require_u64(p, "retired", &pctx)?;
                }
            }
            check_matrix(record, "noc", cores)?;
            check_matrix(record, "bank_conflicts", cores)?;
        }
        "bench" => {
            validate_bench_row(record)?;
        }
        "bench-suite" => {
            require_str(record, "bench_id", "bench-suite record")?;
            require_str(record, "invocation", "bench-suite record")?;
            let rows = record.get("rows").and_then(Json::as_arr).ok_or_else(|| {
                ProfError::new("LBP-P003", "bench-suite record has no `rows` array")
            })?;
            for (i, row) in rows.iter().enumerate() {
                validate_bench_row(row)
                    .map_err(|e| ProfError::new(e.code, format!("rows[{i}]: {}", e.message)))?;
            }
        }
        _ => unreachable!("validate_envelope admits only known kinds"),
    }
    Ok(kind)
}

fn validate_bench_row(row: &Json) -> Result<(), ProfError> {
    require_str(row, "name", "bench row")?;
    require_u64(row, "sim_cycles", "bench row")?;
    require_u64(row, "retired", "bench row")?;
    require_u64(row, "events", "bench row")?;
    require_u64(row, "host_ns", "bench row")?;
    for key in ["sim_cycles_per_sec", "host_ns_per_cycle", "events_per_sec"] {
        row.get(key)
            .ok_or_else(|| {
                ProfError::new("LBP-P003", format!("bench row is missing field `{key}`"))
            })?
            .as_f64()
            .ok_or_else(|| {
                ProfError::new(
                    "LBP-P004",
                    format!("bench row field `{key}` is not a number"),
                )
            })?;
    }
    Ok(())
}

/// One simulator self-metrics measurement: how fast the *host* simulated
/// one workload (schema kind `"bench"`).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Workload name, e.g. `matmul/tiled/h16`.
    pub name: String,
    /// Harts the guest program ran with.
    pub harts: u32,
    /// Cores of the simulated machine.
    pub cores: u32,
    /// Guest cycles simulated.
    pub sim_cycles: u64,
    /// Guest instructions retired.
    pub retired: u64,
    /// Simulation events processed: retired instructions + memory
    /// operations + link hops + forks + joins (the unit of the
    /// events/sec throughput figure).
    pub events: u64,
    /// Host wall-clock nanoseconds for the measured run.
    pub host_ns: u64,
    /// Serialized machine-state size in bytes — the deterministic
    /// memory-footprint proxy (identical across hosts, unlike RSS).
    pub state_bytes: u64,
    /// Host peak RSS in KiB (`VmHWM` of `/proc/self/status`), when the
    /// platform exposes it. Host-dependent; reported but never compared.
    pub peak_rss_kb: Option<u64>,
}

impl BenchRow {
    /// Counts the events of a finished run from its statistics.
    pub fn events_of(stats: &Stats) -> u64 {
        stats.retired() + stats.mem_ops() + stats.link_hops + stats.forks + stats.joins
    }

    /// Simulated guest cycles per host second.
    pub fn sim_cycles_per_sec(&self) -> f64 {
        self.sim_cycles as f64 / (self.host_ns.max(1) as f64 / 1e9)
    }

    /// Host nanoseconds spent per simulated guest cycle.
    pub fn host_ns_per_cycle(&self) -> f64 {
        self.host_ns as f64 / self.sim_cycles.max(1) as f64
    }

    /// Simulation events processed per host second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / (self.host_ns.max(1) as f64 / 1e9)
    }

    /// Serializes the row as an `lbp-prof-v1` record of kind `"bench"`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Str(PROF_SCHEMA.to_owned())),
            ("kind", Json::Str("bench".to_owned())),
            ("name", Json::Str(self.name.clone())),
            ("harts", Json::U64(self.harts as u64)),
            ("cores", Json::U64(self.cores as u64)),
            ("sim_cycles", Json::U64(self.sim_cycles)),
            ("retired", Json::U64(self.retired)),
            ("events", Json::U64(self.events)),
            ("host_ns", Json::U64(self.host_ns)),
            ("sim_cycles_per_sec", Json::F64(self.sim_cycles_per_sec())),
            ("host_ns_per_cycle", Json::F64(self.host_ns_per_cycle())),
            ("events_per_sec", Json::F64(self.events_per_sec())),
            ("state_bytes", Json::U64(self.state_bytes)),
            (
                "peak_rss_kb",
                match self.peak_rss_kb {
                    Some(kb) => Json::U64(kb),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// The host process's peak resident set size in KiB, read from
/// `/proc/self/status` (`VmHWM`). `None` on platforms without procfs —
/// the bench reports it as `null` rather than guessing.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches("kB").trim().parse().ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image() -> Image {
        lbp_asm::assemble(
            "main:
                li   t0, 5
                addi t0, t0, 1
            helper:
                li   t1, 7
            _L_gen_0:
                li   t2, 9
                li   t0, -1
                p_set t0
                p_ret
            ",
        )
        .unwrap()
    }

    #[test]
    fn symtab_filters_internal_labels() {
        let sym = SymTab::from_image(&image());
        let main = sym.funcs.iter().find(|(_, n)| n == "main");
        assert!(main.is_some());
        assert!(!sym.funcs.iter().any(|(_, n)| n.starts_with("_L_")));
        // pcs inside `_L_gen_0` fold into `helper`.
        let helper_addr = sym.funcs.iter().find(|(_, n)| n == "helper").unwrap().0;
        assert_eq!(sym.function_of(helper_addr + 8), Some("helper"));
        assert_eq!(sym.function_of(helper_addr), Some("helper"));
    }

    #[test]
    fn empty_symtab_falls_back_to_pc_names() {
        let sym = SymTab::empty();
        assert_eq!(sym.function_of(0x40), None);
        assert_eq!(sym.function_name(0x40), "pc_0x40");
    }

    #[test]
    fn bench_row_round_trips_and_validates() {
        let row = BenchRow {
            name: "spin/h4".to_owned(),
            harts: 4,
            cores: 1,
            sim_cycles: 1000,
            retired: 800,
            events: 900,
            host_ns: 2000,
            state_bytes: 4096,
            peak_rss_kb: Some(1234),
        };
        let j = row.to_json();
        assert_eq!(validate(&j).unwrap(), "bench");
        assert!((j.get("host_ns_per_cycle").unwrap().as_f64().unwrap() - 2.0).abs() < 1e-9);
        let mut s = String::new();
        j.write(&mut s);
        let back = Json::parse(&s).unwrap();
        assert_eq!(validate(&back).unwrap(), "bench");
    }

    #[test]
    fn unknown_schema_rejected_with_p001() {
        let j = Json::obj([
            ("schema", Json::Str("lbp-prof-v9".to_owned())),
            ("kind", Json::Str("profile".to_owned())),
        ]);
        let err = validate(&j).unwrap_err();
        assert_eq!(err.code, "LBP-P001");
        assert!(err.to_string().contains("lbp-prof-v9"));
    }

    #[test]
    fn unknown_kind_rejected_with_p002() {
        let j = Json::obj([
            ("schema", Json::Str(PROF_SCHEMA.to_owned())),
            ("kind", Json::Str("trace".to_owned())),
        ]);
        assert_eq!(validate(&j).unwrap_err().code, "LBP-P002");
    }

    #[test]
    fn malformed_bench_row_rejected() {
        let j = Json::obj([
            ("schema", Json::Str(PROF_SCHEMA.to_owned())),
            ("kind", Json::Str("bench".to_owned())),
            ("name", Json::Str("x".to_owned())),
            ("sim_cycles", Json::Str("many".to_owned())),
        ]);
        let err = validate(&j).unwrap_err();
        assert_eq!(err.code, "LBP-P004");
        assert!(err.message.contains("sim_cycles"));
    }
}
