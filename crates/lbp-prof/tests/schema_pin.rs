//! Schema pin for `lbp-prof-v1`, in the style of the `lbp-diag-v1`
//! fixtures: every `fixtures/red-*.json` file must be rejected with the
//! exact diagnostic code its filename carries, and the records the
//! toolchain actually produces must validate clean.

use lbp_prof::{build_report, validate, BenchRow, SymTab};
use lbp_sim::{Json, LbpConfig, Machine};

/// `red-p003-missing-field.json` → `LBP-P003`.
fn expected_code(filename: &str) -> String {
    let tag = filename
        .strip_prefix("red-")
        .and_then(|s| s.get(..4))
        .unwrap_or_else(|| panic!("red fixture `{filename}` does not name a code"));
    format!("LBP-{}", tag.to_uppercase())
}

#[test]
fn every_red_fixture_is_rejected_with_its_code() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures");
    let mut seen = 0;
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("fixtures directory is checked in")
        .map(|e| e.expect("readable entry").path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().unwrap().to_str().unwrap();
        if !name.starts_with("red-") {
            continue;
        }
        seen += 1;
        let text = std::fs::read_to_string(&path).expect("fixture reads");
        let record = Json::parse(&text).unwrap_or_else(|e| panic!("{name}: not JSON: {e}"));
        let err = validate(&record)
            .err()
            .unwrap_or_else(|| panic!("{name}: validated clean, expected a rejection"));
        assert_eq!(err.code, expected_code(name), "{name}: {err}");
        // The rendered diagnostic is machine-greppable, lbp-diag style.
        assert!(
            err.to_string()
                .starts_with(&format!("error [{}]: ", err.code)),
            "{name}: diagnostic format drifted: {err}"
        );
    }
    assert!(seen >= 5, "red fixture corpus shrank to {seen} files");
}

/// The records the toolchain emits must pass their own validator: a
/// profile report from a real (tiny) run, and a bench row.
#[test]
fn produced_records_validate_clean() {
    let image =
        lbp_asm::assemble("main:\n  li t0, -1\n  li a0, 0\n  mul a1, a0, a0\n  p_ret a0, t0\n")
            .expect("assembles");
    let mut m = Machine::new(LbpConfig::cores(1), &image).expect("machine");
    m.enable_profiling();
    let report = m.run(100_000).expect("runs");
    assert!(report.exited);
    let sym = SymTab::from_image(&image);
    let prof = m.profile().expect("profiling enabled");
    let record = build_report("pin.s", &report.stats, prof, &sym);
    assert_eq!(validate(&record), Ok("profile"));

    let row = BenchRow {
        name: "pin/h4".to_owned(),
        harts: 4,
        cores: 1,
        sim_cycles: report.stats.cycles,
        retired: report.stats.retired(),
        events: BenchRow::events_of(&report.stats),
        host_ns: 12_345,
        state_bytes: 1024,
        peak_rss_kb: None,
    };
    assert_eq!(validate(&row.to_json()), Ok("bench"));
}
