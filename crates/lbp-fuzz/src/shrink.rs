//! Delta-debugging shrinker.
//!
//! A failing case is reduced with ddmin (Zeller & Hildebrandt, TSE
//! 2002) over the program's *removable units* — the generator
//! guarantees any subset of units still renders a well-formed program,
//! so the shrinker never has to reason about syntax. A candidate is
//! kept when the oracle battery fails the **same way** (same oracle,
//! same class — see [`Failure::same_bug`]); a candidate that passes, or
//! fails differently, is discarded.
//!
//! The attempt budget bounds worst-case work on pathological programs:
//! shrinking is a debugging aid, not a soundness requirement, so the
//! minimizer stops early rather than stall a fuzz run.

use crate::gen::GenProgram;
use crate::oracle::{check, Failure};

/// The result of a shrink pass.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The minimized program (original if no unit could be removed).
    pub program: GenProgram,
    /// Units in the original program.
    pub units_before: usize,
    /// Units remaining after minimization.
    pub units_after: usize,
    /// Oracle-battery evaluations spent.
    pub attempts: usize,
}

/// Minimizes `program` while preserving `failure`'s (oracle, class)
/// signature, evaluating the battery at most `max_attempts` times.
pub fn shrink(program: &GenProgram, failure: &Failure, max_attempts: usize) -> Shrunk {
    let units_before = program.unit_count();
    let mut keep = vec![true; units_before];
    let mut attempts = 0usize;

    // Does the program restricted to `mask` still exhibit the bug?
    let still_fails = |mask: &[bool], attempts: &mut usize| -> bool {
        *attempts += 1;
        match check(&program.with_units(mask)) {
            Err(f) => f.same_bug(failure),
            Ok(_) => false,
        }
    };

    // ddmin: try removing chunks of the currently-kept units, halving
    // the chunk size until single units; restart the sweep whenever a
    // removal sticks.
    let mut chunk = units_before.div_ceil(2).max(1);
    while chunk >= 1 && attempts < max_attempts {
        let mut removed_any = false;
        let live: Vec<usize> = (0..units_before).filter(|&i| keep[i]).collect();
        for window in live.chunks(chunk) {
            if attempts >= max_attempts {
                break;
            }
            let mut candidate = keep.clone();
            for &i in window {
                candidate[i] = false;
            }
            if still_fails(&candidate, &mut attempts) {
                keep = candidate;
                removed_any = true;
            }
        }
        if !removed_any {
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        // On success keep the same granularity: the live set shrank, so
        // the same chunk size now covers proportionally more of it.
    }

    let units_after = keep.iter().filter(|&&k| k).count();
    Shrunk {
        program: program.with_units(&keep),
        units_before,
        units_after,
        attempts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig, Kind, Sabotage};
    use lbp_testutil::Rng;

    /// The red fixture: a seeded known-bad program must be found by the
    /// battery and shrunk to (essentially) the planted unit.
    #[test]
    fn shrinks_a_planted_wild_store_to_the_minimal_program() {
        let cfg = GenConfig {
            kinds: vec![Kind::Seq],
            sabotage: Some(Sabotage::WildStore),
            ..GenConfig::default()
        };
        let mut rng = Rng::new(20260806);
        let program = generate(&mut rng, &cfg, 0);
        let failure = check(&program).expect_err("the planted wild store must be found");
        assert_eq!(failure.oracle, "run");
        assert_eq!(failure.class, "mem");

        let shrunk = shrink(&program, &failure, 400);
        assert!(
            shrunk.units_after < shrunk.units_before,
            "shrinking must remove innocent units ({} -> {})",
            shrunk.units_before,
            shrunk.units_after
        );
        assert_eq!(
            shrunk.units_after,
            1,
            "only the planted unit survives:\n{}",
            shrunk.program.render()
        );
        // The minimized program still exhibits the same bug...
        let again = check(&shrunk.program).expect_err("shrunk program still fails");
        assert!(again.same_bug(&failure));
        // ...and it is literally the planted store.
        assert!(shrunk.program.render().contains("sw t6, 0(t6)"));
    }

    #[test]
    fn passing_programs_cannot_lose_their_bug_signature() {
        // Shrinking with a signature the program does not exhibit keeps
        // everything: no candidate reproduces, so no unit is removed.
        let mut rng = Rng::new(3);
        let program = generate(&mut rng, &GenConfig::default(), 0);
        let phantom = Failure {
            oracle: "run",
            class: "deadlock".to_owned(),
            detail: String::new(),
            dump: None,
        };
        let shrunk = shrink(&program, &phantom, 16);
        assert_eq!(shrunk.units_after, shrunk.units_before);
    }
}
