//! Failure corpus persistence.
//!
//! Every failing case becomes one directory under the corpus root:
//!
//! ```text
//! corpus/
//!   case-0017-seq/
//!     program.s     # the full generated program
//!     shrunk.s      # the ddmin-minimized reproducer
//!     meta.json     # schema lbp-fuzz-corpus-v1: seed, config, verdict
//!     dump.json     # lbp-dump-v1 crash dump (when the oracle had one)
//! ```
//!
//! `meta.json` carries everything needed to regenerate or replay the
//! case without the corpus: the fuzzer seed, the case index, the full
//! generator configuration, and the failure classification. Nothing in
//! the corpus depends on wall-clock time or the host, so two runs with
//! the same seed write byte-identical corpora — asserted by CI.

use std::io;
use std::path::{Path, PathBuf};

use lbp_sim::Json;

use crate::gen::{GenConfig, GenProgram};
use crate::oracle::Failure;
use crate::shrink::Shrunk;

/// Schema tag of `meta.json`.
pub const CORPUS_SCHEMA: &str = "lbp-fuzz-corpus-v1";

/// Everything persisted for one failing case.
pub struct CorpusEntry<'a> {
    /// Fuzzer seed (the run's, not the case's derived seed).
    pub seed: u64,
    /// Case index within the run.
    pub case: u64,
    /// Generator configuration in force.
    pub config: &'a GenConfig,
    /// The offending program.
    pub program: &'a GenProgram,
    /// The classified failure.
    pub failure: &'a Failure,
    /// The shrink result (None when shrinking is disabled).
    pub shrunk: Option<&'a Shrunk>,
}

impl CorpusEntry<'_> {
    /// The case's directory name: `case-0017-seq`.
    pub fn dir_name(&self) -> String {
        format!("case-{:04}-{}", self.case, self.program.kind.name())
    }

    fn meta_json(&self) -> Json {
        let cfg = Json::obj([
            (
                "kinds",
                Json::Arr(
                    self.config
                        .kinds
                        .iter()
                        .map(|k| Json::Str(k.name().to_owned()))
                        .collect(),
                ),
            ),
            ("max_team", Json::U64(self.config.max_team as u64)),
            ("max_cores", Json::U64(self.config.max_cores as u64)),
            (
                "sabotage",
                match self.config.sabotage {
                    Some(s) => Json::Str(s.name().to_owned()),
                    None => Json::Null,
                },
            ),
        ]);
        let failure = Json::obj([
            ("oracle", Json::Str(self.failure.oracle.to_owned())),
            ("class", Json::Str(self.failure.class.clone())),
            ("detail", Json::Str(self.failure.detail.clone())),
        ]);
        let shrink = match self.shrunk {
            Some(s) => Json::obj([
                ("units_before", Json::U64(s.units_before as u64)),
                ("units_after", Json::U64(s.units_after as u64)),
                ("attempts", Json::U64(s.attempts as u64)),
            ]),
            None => Json::Null,
        };
        Json::obj([
            ("schema", Json::Str(CORPUS_SCHEMA.to_owned())),
            ("seed", Json::U64(self.seed)),
            ("case", Json::U64(self.case)),
            ("kind", Json::Str(self.program.kind.name().to_owned())),
            ("cores", Json::U64(self.program.cores as u64)),
            ("max_cycles", Json::U64(self.program.max_cycles)),
            ("config", cfg),
            ("failure", failure),
            ("shrink", shrink),
        ])
    }

    /// Writes the entry under `root`, returning the case directory.
    pub fn write(&self, root: &Path) -> io::Result<PathBuf> {
        let dir = root.join(self.dir_name());
        std::fs::create_dir_all(&dir)?;
        std::fs::write(dir.join(self.program.file_name()), self.program.render())?;
        if let Some(s) = self.shrunk {
            let name = format!("shrunk.{}", if self.program.is_c() { "c" } else { "s" });
            std::fs::write(dir.join(name), s.program.render())?;
        }
        let mut meta = String::new();
        self.meta_json().write_pretty(&mut meta);
        meta.push('\n');
        std::fs::write(dir.join("meta.json"), meta)?;
        if let Some(dump) = &self.failure.dump {
            std::fs::write(dir.join("dump.json"), format!("{dump}\n"))?;
        }
        Ok(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{Kind, Segment};
    use lbp_testutil::harness;

    #[test]
    fn corpus_layout_round_trips() {
        let program = GenProgram {
            kind: Kind::Seq,
            cores: 1,
            max_cycles: 1000,
            codegen_sabotage: None,
            segments: vec![Segment::Fixed("main:\n    p_ret\n".to_owned())],
        };
        let failure = Failure {
            oracle: "run",
            class: "mem".to_owned(),
            detail: "store fault".to_owned(),
            dump: Some("{\"schema\":\"lbp-dump-v1\"}".to_owned()),
        };
        let cfg = GenConfig::default();
        let entry = CorpusEntry {
            seed: 1,
            case: 17,
            config: &cfg,
            program: &program,
            failure: &failure,
            shrunk: None,
        };
        let root = harness::scratch_dir("fuzz-corpus-test");
        let dir = entry.write(&root).unwrap();
        assert_eq!(dir.file_name().unwrap(), "case-0017-seq");
        assert!(dir.join("program.s").exists());
        assert!(dir.join("dump.json").exists());
        let meta = std::fs::read_to_string(dir.join("meta.json")).unwrap();
        let parsed = Json::parse(&meta).unwrap();
        assert_eq!(parsed.get("schema").unwrap().as_str(), Some(CORPUS_SCHEMA));
        assert_eq!(parsed.get("case").unwrap().as_u64(), Some(17));
        assert_eq!(
            parsed
                .get("failure")
                .unwrap()
                .get("class")
                .unwrap()
                .as_str(),
            Some("mem")
        );
        harness::scratch_cleanup(&root);
    }
}
