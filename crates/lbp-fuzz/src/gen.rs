//! Seeded program generation.
//!
//! Every generator draws all of its choices from a [`Rng`]
//! (`lbp-testutil`'s SplitMix64) — no `std` randomness anywhere — so a
//! `(seed, case)` pair names a program forever. Programs are built as a
//! list of [`Segment`]s: fixed scaffolding (prologue, fork protocol,
//! exit idiom) interleaved with *removable units*, the granularity the
//! shrinker works at. Every unit is self-contained (its labels are
//! fresh, its registers come from a scratch pool the scaffolding never
//! reads), so **any** subset of units still assembles and terminates —
//! the property that makes delta-debugging sound.
//!
//! Four program families, mirroring the paper's workload axes:
//!
//! - [`Kind::Seq`]: single-hart RV32IM soup — weighted ALU/branch/loop
//!   mixes, in-bounds loads and stores. Checked against the ISS in
//!   lockstep.
//! - [`Kind::Mem`]: single-hart, multi-core memory-sync patterns —
//!   absolute-addressed traffic across remote shared banks plus
//!   `p_syncm` fences, driving the r1/r2 interconnect.
//! - [`Kind::Fork`]: structured fork/join trees over the Fig. 8
//!   protocol (`p_fc`/`p_fn`, `p_swcv`/`p_lwcv`, `p_set`/`p_merge`,
//!   ordered `p_ret`), with optional `p_swre`/`p_lwre` reduction chains
//!   over the backward result line, up to the 256-hart budget.
//! - [`Kind::C`]: Deterministic-OpenMP mini-C sources (disjoint
//!   affine-subscript parallel loops) fed through `lbp-cc`.

use lbp_isa::{BranchKind, LoadKind, OpImmKind, OpKind, StoreKind, HARTS_PER_CORE, SHARED_BASE};
use lbp_omp::{emit_parallel_region, TeamBody};
use lbp_testutil::Rng;

/// The program family a case belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Sequential RV32IM instruction soup (lockstep-checkable).
    Seq,
    /// Sequential cross-bank memory traffic with `p_syncm` fences.
    Mem,
    /// Parallel fork/join trees with result-line reductions.
    Fork,
    /// Deterministic-OpenMP mini-C through `lbp-cc`.
    C,
}

impl Kind {
    /// Every kind, for CLI parsing and round-robin scheduling.
    pub const ALL: [Kind; 4] = [Kind::Seq, Kind::Mem, Kind::Fork, Kind::C];

    /// Stable lower-case name (CLI argument and JSONL field).
    pub fn name(self) -> &'static str {
        match self {
            Kind::Seq => "seq",
            Kind::Mem => "mem",
            Kind::Fork => "fork",
            Kind::C => "c",
        }
    }

    /// Parses a kind name.
    pub fn parse(s: &str) -> Option<Kind> {
        Kind::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// A deliberately planted bug, for testing the tester: the oracles must
/// find it and the shrinker must reduce the program to (essentially)
/// just the planted unit. Exposed on the CLI as `--sabotage`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sabotage {
    /// Insert a store to an address outside every shared bank: the run
    /// oracle must report a `mem` fault.
    WildStore,
    /// Replace the exit idiom with a self-join that can never be
    /// satisfied: the run oracle must report a `deadlock`.
    Hang,
    /// Compile the (C-kind) program with a deliberate miscompilation
    /// injected into `lbp-cc`'s code generator. Every kind is designed
    /// to produce an internally consistent binary — deterministic,
    /// race-free, snapshot/lockstep/hybrid clean — that computes the
    /// *wrong answer*, so only the `semantics` oracle (the lbp-sema
    /// executable semantics) can catch it.
    Codegen(lbp_cc::CodegenSabotage),
}

impl Sabotage {
    /// Stable name (CLI argument and JSONL field).
    pub fn name(self) -> &'static str {
        match self {
            Sabotage::WildStore => "wild-store",
            Sabotage::Hang => "hang",
            Sabotage::Codegen(lbp_cc::CodegenSabotage::ChunkBounds) => "codegen:chunk-bounds",
            Sabotage::Codegen(lbp_cc::CodegenSabotage::IndexShift) => "codegen:index-shift",
            Sabotage::Codegen(lbp_cc::CodegenSabotage::ConstFold) => "codegen:const-fold",
        }
    }

    /// Parses a sabotage name.
    pub fn parse(s: &str) -> Option<Sabotage> {
        if let Some(kind) = s.strip_prefix("codegen:") {
            return lbp_cc::CodegenSabotage::parse(kind).map(Sabotage::Codegen);
        }
        [Sabotage::WildStore, Sabotage::Hang]
            .into_iter()
            .find(|v| v.name() == s)
    }
}

/// Generator limits (all enforced, all reported in corpus metadata).
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Program families to draw from (round-robin by case index).
    pub kinds: Vec<Kind>,
    /// Largest fork-tree team (the hardware budget is 256 harts).
    pub max_team: usize,
    /// Largest machine, in cores.
    pub max_cores: usize,
    /// Plant a known bug in every generated program.
    pub sabotage: Option<Sabotage>,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            kinds: Kind::ALL.to_vec(),
            max_team: 32,
            max_cores: 8,
            sabotage: None,
        }
    }
}

/// One piece of a generated program.
#[derive(Debug, Clone)]
pub enum Segment {
    /// Scaffolding the shrinker must not touch.
    Fixed(String),
    /// A removable unit.
    Unit(String),
}

/// A generated program: renderable source plus the shrink skeleton.
#[derive(Debug, Clone)]
pub struct GenProgram {
    /// The program family.
    pub kind: Kind,
    /// Cores the program is meant to run on.
    pub cores: usize,
    /// Cycle budget for one run (families differ by orders of
    /// magnitude).
    pub max_cycles: u64,
    /// Miscompilation to inject when compiling (C kind only): the
    /// binary-side half of [`Sabotage::Codegen`]. The rendered *source*
    /// stays clean — the interpreter reads the source, the simulator
    /// runs the sabotaged binary, and the `semantics` oracle sees them
    /// disagree.
    pub codegen_sabotage: Option<lbp_cc::CodegenSabotage>,
    /// Source pieces in order.
    pub segments: Vec<Segment>,
}

impl GenProgram {
    /// Whether the source is mini-C (else PISC assembly).
    pub fn is_c(&self) -> bool {
        self.kind == Kind::C
    }

    /// The corpus file name for this source language.
    pub fn file_name(&self) -> &'static str {
        if self.is_c() {
            "program.c"
        } else {
            "program.s"
        }
    }

    /// Renders the complete source.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for seg in &self.segments {
            match seg {
                Segment::Fixed(s) | Segment::Unit(s) => out.push_str(s),
            }
        }
        out
    }

    /// Number of removable units.
    pub fn unit_count(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| matches!(s, Segment::Unit(_)))
            .count()
    }

    /// A copy keeping only the units whose index is `true` in `keep`
    /// (`keep.len()` must equal [`GenProgram::unit_count`]).
    pub fn with_units(&self, keep: &[bool]) -> GenProgram {
        assert_eq!(keep.len(), self.unit_count(), "mask length");
        let mut i = 0;
        let segments = self
            .segments
            .iter()
            .filter(|seg| match seg {
                Segment::Fixed(_) => true,
                Segment::Unit(_) => {
                    i += 1;
                    keep[i - 1]
                }
            })
            .cloned()
            .collect();
        GenProgram {
            segments,
            ..self.clone()
        }
    }
}

/// Generates the program for one case.
pub fn generate(rng: &mut Rng, cfg: &GenConfig, case: u64) -> GenProgram {
    let kind = cfg.kinds[(case as usize) % cfg.kinds.len()];
    match kind {
        Kind::Seq => gen_asm(rng, cfg, Kind::Seq),
        Kind::Mem => gen_asm(rng, cfg, Kind::Mem),
        Kind::Fork => gen_fork(rng, cfg),
        Kind::C => gen_c(rng, cfg),
    }
}

// ---------------------------------------------------------------------------
// Sequential assembly (Seq + Mem)
// ---------------------------------------------------------------------------

/// Scratch registers the units may read and write freely. The
/// scaffolding only ever touches `ra`/`sp`/`t0` (exit protocol),
/// `s8`/`s9` (loop counters), `s10`/`s11` (address bases) and `t6`
/// (sabotage), so removing any unit never invalidates another.
const DATA_REGS: [&str; 18] = [
    "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t1", "t2",
];

/// Bytes of the `.data` scratch buffer (`s10`-relative traffic).
const BUF_BYTES: u32 = 256;
/// Bytes reserved below `sp` for stack traffic.
const STACK_BYTES: u32 = 64;

/// Weight profile for the instruction mix, picked per program.
struct Profile {
    alu: u32,
    alu_imm: u32,
    li: u32,
    muldiv: u32,
    load: u32,
    store: u32,
    syncm: u32,
    branch: u32,
    bounded_loop: u32,
}

impl Profile {
    fn sample(rng: &mut Rng, kind: Kind) -> Profile {
        match (kind, rng.index(3)) {
            // Memory-heavy: exercise banks, the network and fences.
            (Kind::Mem, _) => Profile {
                alu: 4,
                alu_imm: 4,
                li: 2,
                muldiv: 1,
                load: 10,
                store: 10,
                syncm: 4,
                branch: 1,
                bounded_loop: 1,
            },
            (_, 0) => Profile {
                // ALU-heavy straight line.
                alu: 12,
                alu_imm: 8,
                li: 3,
                muldiv: 2,
                load: 2,
                store: 2,
                syncm: 1,
                branch: 2,
                bounded_loop: 1,
            },
            (_, 1) => Profile {
                // Control-heavy: branches and loops dominate.
                alu: 4,
                alu_imm: 3,
                li: 2,
                muldiv: 1,
                load: 2,
                store: 2,
                syncm: 1,
                branch: 6,
                bounded_loop: 4,
            },
            _ => Profile {
                // Multi-cycle units: mul/div latencies vs the scoreboard.
                alu: 4,
                alu_imm: 3,
                li: 2,
                muldiv: 10,
                load: 3,
                store: 3,
                syncm: 2,
                branch: 2,
                bounded_loop: 1,
            },
        }
    }

    fn weights(&self) -> [u32; 9] {
        [
            self.alu,
            self.alu_imm,
            self.li,
            self.muldiv,
            self.load,
            self.store,
            self.syncm,
            self.branch,
            self.bounded_loop,
        ]
    }
}

/// Shared state while emitting one assembly program.
struct AsmGen {
    profile: Profile,
    /// Fresh-label counter (`fz_<n>` prefix avoids every scaffolding
    /// label).
    labels: u32,
    /// Remote-bank base registers are live (Mem kind, cores >= 2).
    remote_banks: Vec<u32>,
}

impl AsmGen {
    fn fresh(&mut self, what: &str) -> String {
        self.labels += 1;
        format!("fz_{what}_{}", self.labels)
    }

    fn reg(&self, rng: &mut Rng) -> &'static str {
        rng.pick(&DATA_REGS)
    }

    /// One simple (label-free, single-line) unit body.
    fn simple_line(&mut self, rng: &mut Rng) -> String {
        // Re-sample until a label-free class comes up; bounded because
        // the simple classes all have non-zero weight in every profile.
        loop {
            match rng.weighted(&self.profile.weights()) {
                0 => {
                    let ops: Vec<OpKind> =
                        OpKind::ALL.into_iter().filter(|k| !k.is_muldiv()).collect();
                    let k = ops[rng.index(ops.len())];
                    return format!(
                        "{} {}, {}, {}",
                        k.mnemonic(),
                        self.reg(rng),
                        self.reg(rng),
                        self.reg(rng)
                    );
                }
                1 => {
                    let k = rng.pick(&OpImmKind::ALL);
                    let imm = if k.is_shift() {
                        rng.range_i32(0, 31)
                    } else {
                        rng.range_i32(-2048, 2047)
                    };
                    return format!(
                        "{} {}, {}, {imm}",
                        k.mnemonic(),
                        self.reg(rng),
                        self.reg(rng)
                    );
                }
                2 => {
                    return format!(
                        "li {}, {}",
                        self.reg(rng),
                        rng.range_i64(i32::MIN as i64, i32::MAX as i64)
                    )
                }
                3 => {
                    let ops: Vec<OpKind> =
                        OpKind::ALL.into_iter().filter(|k| k.is_muldiv()).collect();
                    let k = ops[rng.index(ops.len())];
                    return format!(
                        "{} {}, {}, {}",
                        k.mnemonic(),
                        self.reg(rng),
                        self.reg(rng),
                        self.reg(rng)
                    );
                }
                4 => {
                    let k = rng.pick(&LoadKind::ALL);
                    let (base, limit) = self.base(rng);
                    let off = self.offset(rng, k.size(), limit);
                    return format!("{} {}, {off}({base})", k.mnemonic(), self.reg(rng));
                }
                5 => {
                    let k = rng.pick(&StoreKind::ALL);
                    let (base, limit) = self.base(rng);
                    let off = self.offset(rng, k.size(), limit);
                    return format!("{} {}, {off}({base})", k.mnemonic(), self.reg(rng));
                }
                6 => return "p_syncm".to_owned(),
                _ => continue, // branch/loop: not simple, re-sample
            }
        }
    }

    /// Picks a memory base register and the byte size of its window.
    fn base(&self, rng: &mut Rng) -> (&'static str, u32) {
        // s10 = .data buffer, sp = reserved stack window, s11 = remote
        // shared bank (Mem kind only).
        if !self.remote_banks.is_empty() && rng.index(2) == 0 {
            ("s11", BUF_BYTES)
        } else if rng.index(3) == 0 {
            ("sp", STACK_BYTES)
        } else {
            ("s10", BUF_BYTES)
        }
    }

    /// A naturally-aligned offset for an access of `size` bytes inside
    /// a `limit`-byte window.
    fn offset(&self, rng: &mut Rng, size: u32, limit: u32) -> u32 {
        let slots = limit / size;
        (rng.below(slots as u64) as u32) * size
    }

    /// One full unit: either a simple line or a self-contained block.
    fn unit(&mut self, rng: &mut Rng) -> String {
        match rng.weighted(&self.profile.weights()) {
            7 => {
                // Forward branch over a short body: taken or not, the
                // unit falls through to its own end label.
                let k = rng.pick(&BranchKind::ALL);
                let skip = self.fresh("skip");
                let mut s = format!(
                    "    {} {}, {}, {skip}\n",
                    k.mnemonic(),
                    self.reg(rng),
                    self.reg(rng)
                );
                for _ in 0..=rng.index(3) {
                    s.push_str(&format!("    {}\n", self.simple_line(rng)));
                }
                s.push_str(&format!("{skip}:\n"));
                s
            }
            8 => {
                // Counted loop on the reserved counter register s8.
                let head = self.fresh("loop");
                let iters = rng.range_u32(1, 8);
                let mut s = format!("    li s8, {iters}\n{head}:\n");
                for _ in 0..=rng.index(3) {
                    s.push_str(&format!("    {}\n", self.simple_line(rng)));
                }
                s.push_str(&format!("    addi s8, s8, -1\n    bne s8, zero, {head}\n"));
                s
            }
            _ => format!("    {}\n", self.simple_line(rng)),
        }
    }
}

fn gen_asm(rng: &mut Rng, cfg: &GenConfig, kind: Kind) -> GenProgram {
    let cores = match kind {
        Kind::Mem => 2 + rng.index(cfg.max_cores.clamp(2, 4) - 1),
        _ => 1 + rng.index(cfg.max_cores.min(2)),
    };
    let bank_bytes: u32 = 64 * 1024; // LbpConfig::cores default
    let remote_banks: Vec<u32> = if kind == Kind::Mem {
        // One remote bank per program keeps the window arithmetic
        // simple; bank 0 is excluded so absolute traffic never aliases
        // the .data buffer.
        vec![1 + rng.below(cores as u64 - 1) as u32]
    } else {
        Vec::new()
    };

    let mut g = AsmGen {
        profile: Profile::sample(rng, kind),
        labels: 0,
        remote_banks,
    };

    let mut segments = Vec::new();
    let mut prologue = format!(
        "# lbp-fuzz generated program (kind={}, cores={cores})\n\
         main:\n    addi sp, sp, -{STACK_BYTES}\n    la s10, fz_buf\n",
        kind.name()
    );
    for bank in &g.remote_banks {
        prologue.push_str(&format!(
            "    li s11, {:#x}\n",
            SHARED_BASE + bank * bank_bytes
        ));
    }
    // Give every scratch register a seeded value so loads/ALU soup are
    // data-dependent on the seed, not on the zeroed reset state.
    for reg in DATA_REGS {
        prologue.push_str(&format!(
            "    li {reg}, {}\n",
            rng.range_i64(i32::MIN as i64, i32::MAX as i64)
        ));
    }
    segments.push(Segment::Fixed(prologue));

    let units = 10 + rng.index(41);
    for _ in 0..units {
        let text = g.unit(rng);
        segments.push(Segment::Unit(text));
    }
    apply_sabotage(rng, cfg.sabotage, &mut segments);

    let exit = if cfg.sabotage == Some(Sabotage::Hang) {
        // Self-join on the only hart: t0 = own identity, so the p_ret
        // waits for a join message nobody will ever send.
        "    p_set t0\n    li ra, 0\n    p_ret\n"
    } else {
        "    li t0, -1\n    li ra, 0\n    p_ret\n"
    };
    segments.push(Segment::Fixed(format!(
        "    addi sp, sp, {STACK_BYTES}\n{exit}\n.data\n.align 4\nfz_buf: .space {BUF_BYTES}\n"
    )));

    GenProgram {
        kind,
        cores,
        max_cycles: 400_000,
        codegen_sabotage: None,
        segments,
    }
}

/// Inserts the planted bug (if any) at a seeded position among the
/// units. The wild store is itself a removable unit: the shrinker
/// proves itself by deleting everything *except* it.
fn apply_sabotage(rng: &mut Rng, sabotage: Option<Sabotage>, segments: &mut Vec<Segment>) {
    if sabotage == Some(Sabotage::WildStore) {
        let unit_positions: Vec<usize> = segments
            .iter()
            .enumerate()
            .filter_map(|(i, s)| matches!(s, Segment::Unit(_)).then_some(i))
            .collect();
        let at = unit_positions[rng.index(unit_positions.len())];
        let bad = SHARED_BASE.wrapping_add(0x0f00_0000); // beyond any bank
        segments.insert(
            at,
            Segment::Unit(format!("    li t6, {bad:#x}\n    sw t6, 0(t6)\n")),
        );
    }
}

// ---------------------------------------------------------------------------
// Fork/join trees
// ---------------------------------------------------------------------------

/// Registers thread functions may clobber for scratch work. Everything
/// except `t0` (identity: read by the member's final `p_ret`) and `t1`
/// (join-hart identity: the `p_swre` target) is legal inside a member;
/// `sp` is excluded because forked harts start with `sp = 0`.
const MEMBER_REGS: [&str; 8] = ["a3", "a4", "a5", "a6", "a7", "t2", "t3", "t4"];

fn gen_fork(rng: &mut Rng, cfg: &GenConfig) -> GenProgram {
    let hart_budget = (cfg.max_cores * HARTS_PER_CORE).min(cfg.max_team).min(256);
    let regions = 1 + rng.index(3);
    let mut specs = Vec::new();
    for r in 0..regions {
        let team = 2 + rng.index(hart_budget.max(3) - 1);
        let width = 1 + rng.index(3); // words written per member
        let reduce = rng.index(3) == 0;
        specs.push((r, team, width, reduce));
    }
    let cores = specs
        .iter()
        .map(|&(_, team, _, _)| team.div_ceil(HARTS_PER_CORE))
        .max()
        .unwrap()
        .max(1);

    let mut segments = Vec::new();
    segments.push(Segment::Fixed(format!(
        "# lbp-fuzz generated fork/join tree ({regions} region(s), cores={cores})\n\
         main:\n    li t0, -1\n    addi sp, sp, -8\n    sw ra, 0(sp)\n    sw t0, 4(sp)\n    p_set t0\n"
    )));

    // The fork protocol comes from lbp-omp's emitter — one shared Asm so
    // its fresh labels never collide across regions — sliced into fixed
    // segments between the removable pieces.
    let mut proto = lbp_asm::Asm::new();
    let mut emitted = 0usize;
    let take = |proto: &lbp_asm::Asm, emitted: &mut usize| -> String {
        let text = proto.text()[*emitted..].to_owned();
        *emitted = proto.text().len();
        text
    };

    for &(r, team, _width, reduce) in &specs {
        // Optional sequential scratch work between regions (removable).
        for _ in 0..rng.index(3) {
            let a = rng.pick(&MEMBER_REGS);
            let b = rng.pick(&MEMBER_REGS);
            segments.push(Segment::Unit(format!(
                "    li {a}, {}\n    add {b}, {a}, {b}\n",
                rng.range_i32(-4096, 4096)
            )));
        }
        emit_parallel_region(
            &mut proto,
            team,
            &TeamBody::Uniform {
                function: format!("fz_work_{r}"),
            },
            None,
        );
        segments.push(Segment::Fixed(take(&proto, &mut emitted)));
        if reduce {
            // Fold `team` partial values from result-buffer slot `r`.
            let head = format!("fz_fold_{r}");
            segments.push(Segment::Fixed(format!(
                "    li a4, 0\n    li a5, {team}\n{head}:\n    p_lwre a6, {r}\n    add a4, a4, a6\n    addi a5, a5, -1\n    bne a5, zero, {head}\n    la a6, fz_sum_{r}\n    sw a4, 0(a6)\n",
            )));
        }
    }

    segments.push(Segment::Fixed(
        "    lw ra, 0(sp)\n    lw t0, 4(sp)\n    addi sp, sp, 8\n    p_ret\n".to_owned(),
    ));

    // Thread functions: fixed skeleton (slot address, final stores, the
    // reduction send, p_ret) around removable scratch units.
    for &(r, _team, width, reduce) in &specs {
        let stride = width * 4;
        segments.push(Segment::Fixed(format!(
            "\nfz_work_{r}:\n    la a2, fz_out_{r}\n    li t2, {stride}\n    mul t2, a0, t2\n    add a2, a2, t2\n"
        )));
        for _ in 0..1 + rng.index(4) {
            let op = {
                let ops: Vec<OpKind> = OpKind::ALL
                    .into_iter()
                    .filter(|k| {
                        !matches!(k, OpKind::Div | OpKind::Divu | OpKind::Rem | OpKind::Remu)
                    })
                    .collect();
                ops[rng.index(ops.len())]
            };
            let d = rng.pick(&MEMBER_REGS);
            let s = rng.pick(&MEMBER_REGS);
            segments.push(Segment::Unit(format!(
                "    li {d}, {}\n    {} {d}, {s}, {d}\n    add {d}, {d}, a0\n",
                rng.range_i32(-2048, 2047),
                op.mnemonic(),
            )));
        }
        let mut tail = String::new();
        for w in 0..width {
            let v = rng.pick(&MEMBER_REGS);
            tail.push_str(&format!(
                "    addi {v}, a0, {}\n    sw {v}, {}(a2)\n",
                w as i32 + 1,
                w * 4
            ));
        }
        if reduce {
            tail.push_str(&format!("    addi a3, a0, 1\n    p_swre a3, t1, {r}\n"));
        }
        tail.push_str("    p_ret\n");
        segments.push(Segment::Fixed(tail));
    }

    // Data: one output array per region (+ reduction cells).
    let mut data = String::from("\n.data\n");
    for &(r, team, width, reduce) in &specs {
        data.push_str(&format!(
            ".align 4\nfz_out_{r}: .space {}\n",
            team * width * 4
        ));
        if reduce {
            data.push_str(&format!(".align 4\nfz_sum_{r}: .space 4\n"));
        }
    }
    segments.push(Segment::Fixed(data));

    GenProgram {
        kind: Kind::Fork,
        cores,
        max_cycles: 4_000_000,
        codegen_sabotage: None,
        segments,
    }
}

// ---------------------------------------------------------------------------
// Deterministic-OpenMP mini-C
// ---------------------------------------------------------------------------

fn gen_c(rng: &mut Rng, cfg: &GenConfig) -> GenProgram {
    let codegen_sabotage = match cfg.sabotage {
        Some(Sabotage::Codegen(kind)) => Some(kind),
        _ => None,
    };
    // Team sizes the runtime supports on small machines; 1 keeps the
    // region fork-free, which makes the program lockstep-checkable.
    // Under codegen sabotage, single-member teams are excluded: the
    // chunk-bounds miscompilation only manifests when count > 1.
    let teams: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|t| t.div_ceil(HARTS_PER_CORE) <= cfg.max_cores)
        .filter(|&t| codegen_sabotage.is_none() || t > 1)
        .collect();
    let team = teams[rng.index(teams.len())];
    let width = 2 + rng.index(3); // elements per member slice
    let cores = team.div_ceil(HARTS_PER_CORE).max(1);
    let n = team * width;

    let mut segments = Vec::new();
    segments.push(Segment::Fixed(format!(
        "/* lbp-fuzz generated Deterministic-OpenMP program (team={team}) */\n\
         #define NUM_HART {team}\n\
         #define W {width}\n\
         #include <det_omp.h>\n\n\
         int data[{n}];\nint out[{n}];\nint acc[2];\n\n\
         void work(int t) {{\n    int i; int x;\n    x = t + 1;\n"
    )));
    // Removable statements inside the member: writes stay inside the
    // member's affine slice [t*W, t*W+W), so any subset remains
    // race-free under the determinism lint.
    for _ in 0..1 + rng.index(4) {
        segments.push(Segment::Unit(match rng.index(4) {
            0 => format!("    x = x * {} + t;\n", rng.range_i32(2, 9)),
            1 => format!(
                "    data[t * W + {}] = x + {};\n",
                rng.index(width),
                rng.range_i32(-50, 49)
            ),
            2 => format!(
                "    for (i = t * W; i < t * W + W; i++) data[i] = data[i] + {};\n",
                rng.range_i32(1, 9)
            ),
            _ => format!("    x = x - data[t * W + {}];\n", rng.index(width)),
        }));
    }
    segments.push(Segment::Fixed(
        "    for (i = t * W; i < t * W + W; i++) out[i] = x + i;\n}\n\n\
         void main(void) {\n    int t; int s; int i;\n    omp_set_num_threads(NUM_HART);\n"
            .to_owned(),
    ));
    // Removable sequential statements before the region.
    for _ in 0..rng.index(3) {
        segments.push(Segment::Unit(match rng.index(2) {
            0 => format!("    acc[1] = {};\n", rng.range_i32(-100, 100)),
            _ => format!(
                "    for (i = 0; i < {n}; i++) data[i] = i % {};\n",
                rng.range_i32(2, 10)
            ),
        }));
    }
    segments.push(Segment::Fixed(
        "#pragma omp parallel for\n    for (t = 0; t < NUM_HART; t++) work(t);\n".to_owned(),
    ));
    // Removable sequential fold after the barrier.
    if rng.flip() {
        segments.push(Segment::Unit(format!(
            "    s = 0;\n    for (i = 0; i < {n}; i++) s += out[i];\n    acc[0] = s;\n"
        )));
    }
    if codegen_sabotage.is_some() {
        // Guaranteed trigger for every codegen sabotage kind: `W - 1`
        // is an Imm-Imm fold site (const-fold flips it), and the region
        // above always runs, so chunk-bounds / index-shift corrupt
        // `out` regardless of which removable units survive shrinking.
        segments.push(Segment::Fixed(
            "    acc[1] = acc[1] + (W - 1);\n".to_owned(),
        ));
    }
    segments.push(Segment::Fixed("}\n".to_owned()));

    GenProgram {
        kind: Kind::C,
        cores,
        max_cycles: 2_000_000,
        codegen_sabotage,
        segments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbp_testutil::Rng;

    #[test]
    fn masks_preserve_fixed_segments() {
        let mut rng = Rng::new(1);
        let p = generate(&mut rng, &GenConfig::default(), 0);
        let n = p.unit_count();
        assert!(n > 0);
        let none = p.with_units(&vec![false; n]);
        assert_eq!(none.unit_count(), 0);
        assert!(none.render().contains("main:"));
        let all = p.with_units(&vec![true; n]);
        assert_eq!(all.render(), p.render());
    }

    #[test]
    fn generation_is_seed_deterministic() {
        for case in 0..8 {
            let mut a = Rng::new(42 ^ case);
            let mut b = Rng::new(42 ^ case);
            let cfg = GenConfig::default();
            assert_eq!(
                generate(&mut a, &cfg, case).render(),
                generate(&mut b, &cfg, case).render()
            );
        }
    }
}
