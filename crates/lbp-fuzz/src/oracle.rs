//! The oracle battery.
//!
//! Every generated program runs through the same ordered gauntlet;
//! the first oracle that trips ends the case with a classified
//! [`Failure`]:
//!
//! 1. **build** — the source must assemble (`lbp-asm`) or compile
//!    (`lbp-cc`, lint first). The generators aim for well-formed
//!    programs, so a front-end rejection is a finding against one side
//!    or the other.
//! 2. **verify** — the static fork-protocol verifier must accept the
//!    image (diagnostic codes `LBP-B*`) and, for C sources, the
//!    determinism lint must accept the program (`LBP-C*`/`LBP-S*`).
//! 3. **run** — the machine must exit cleanly (`p_ret` type 3) within
//!    the cycle budget. Combined with oracle 2 this checks the paper's
//!    central static claim: *verifier-accepted implies deadlock-free*.
//! 4. **determinism** — a second run from reset must produce a
//!    bit-identical machine-readable report and an identical
//!    content-hashed final state. (The machine is deterministic by
//!    construction; this is the metamorphic check that the
//!    implementation actually is.)
//! 5. **race** — re-run with the dynamic race-witness collector armed
//!    (`Machine::enable_race_witness`): a statically accepted program
//!    must produce **zero** concrete shared-memory overlap witnesses —
//!    the cross-validation of `lbp-verify`'s M-pass — and the collector,
//!    being observational, must leave the report and the final state
//!    hash bit-identical to the reference run.
//! 6. **snapshot** — snapshot at the mid-cycle of the reference run,
//!    round-trip the state through the `lbp-snap` codec, resume, and
//!    demand the spliced run end bit-identical to the straight run.
//! 7. **resume** — snapshot at a fuzzer-chosen cycle and finish the run
//!    in a *fresh process* (the hidden `lbp-fuzz --resume-worker`
//!    mode), comparing final-state content hashes across the process
//!    boundary. This is the crash-recovery story end to end: nothing in
//!    the parent's address space may be load-bearing for a resumed run.
//!    Falls back to an in-process restore when no worker executable is
//!    configured (library callers, the shrinker).
//! 8. **lockstep** — replay the commit stream against the sequential
//!    ISS and demand architectural agreement. Parallel programs are
//!    skipped (the sequential oracle cannot follow a fork), which the
//!    battery reports rather than hides.
//! 9. **hybrid** — fast-forward the same image on the functional
//!    engine to warm targets of 0, mid-run (often mid-rendezvous), and
//!    past-end retired instructions, materialize through the snapshot
//!    boundary, finish cycle-exactly, and demand the final
//!    architectural hash equal the pure cycle-exact run's. Clamping a
//!    mid-rendezvous target must never panic.
//! 10. **semantics** — C sources only: interpret the *source* under
//!     lbp-sema's executable semantics and demand the simulated binary
//!     land on the interpreter's outcome, global word for global word.
//!     Oracles 3–9 only ever compare the machine against itself (or the
//!     ISS running the same binary), so a miscompilation that is
//!     deterministic, race-free and snapshot-stable sails through all of
//!     them — this is the only oracle holding the binary to what the
//!     program *means*. `--sabotage codegen:<kind>` plants exactly such
//!     bugs to prove it.
//!
//! Every step runs under `catch_unwind`: a panic anywhere in the stack
//! is itself a verdict (`class = "panic"`) — the simulator must never
//! panic on generated input.

use std::panic::{self, AssertUnwindSafe};

use lbp_asm::Image;
use lbp_sim::{
    run_lockstep, FastEngine, FastStop, LbpConfig, LockstepError, Machine, RunReport, SimFailure,
};
use lbp_verify::Severity;

use crate::gen::{GenProgram, Kind};

/// Names of the oracles, in battery order (stable strings: they appear
/// in the JSONL verdicts and corpus metadata).
pub const ORACLES: [&str; 10] = [
    "build",
    "verify",
    "run",
    "determinism",
    "race",
    "snapshot",
    "resume",
    "lockstep",
    "hybrid",
    "semantics",
];

/// Battery knobs that vary by caller rather than by case.
#[derive(Debug, Clone, Default)]
pub struct CheckOpts {
    /// Executable to re-exec as `--resume-worker` for the cross-process
    /// resume oracle (normally `lbp-fuzz` itself, via
    /// `std::env::current_exe`). `None` degrades the oracle to an
    /// in-process restore — still a real check, minus the process
    /// boundary.
    pub resume_exec: Option<std::path::PathBuf>,
}

/// A classified oracle failure.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Which oracle tripped (one of [`ORACLES`]).
    pub oracle: &'static str,
    /// Machine-matchable class: a simulator error class (`mem`,
    /// `decode`, `protocol`, `deadlock`, `timeout`), a diagnostic code
    /// (`LBP-B003`, …), `divergence`, or `panic`.
    pub class: String,
    /// Human-readable detail.
    pub detail: String,
    /// The `lbp-dump-v1` crash dump, when the failing oracle produced
    /// one.
    pub dump: Option<String>,
}

impl Failure {
    fn new(oracle: &'static str, class: impl Into<String>, detail: impl Into<String>) -> Failure {
        Failure {
            oracle,
            class: class.into(),
            detail: detail.into(),
            dump: None,
        }
    }

    fn from_sim(oracle: &'static str, fail: &SimFailure) -> Failure {
        Failure {
            oracle,
            class: fail.error.class().to_owned(),
            detail: fail.error.to_string(),
            dump: Some(fail.dump.to_json().to_string()),
        }
    }

    /// Whether `other` reproduces this failure (same oracle, same
    /// class) — the shrinker's preservation predicate. Matching on
    /// detail would over-constrain: a shrunk program faults at a
    /// different pc but through the same mechanism.
    pub fn same_bug(&self, other: &Failure) -> bool {
        self.oracle == other.oracle && self.class == other.class
    }
}

/// The result of a clean pass through the whole battery.
#[derive(Debug, Clone)]
pub struct PassReport {
    /// Cycles of the reference run.
    pub cycles: u64,
    /// Instructions retired by the reference run.
    pub retired: u64,
    /// Commits compared in lockstep (`None` when the program forked and
    /// the lockstep oracle was skipped).
    pub lockstep_commits: Option<u64>,
}

/// Runs `f` trapping panics into a classified [`Failure`].
fn guarded<T>(oracle: &'static str, f: impl FnOnce() -> Result<T, Failure>) -> Result<T, Failure> {
    match panic::catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_owned());
            Err(Failure::new(oracle, "panic", msg))
        }
    }
}

/// Oracle 1+2: front end and static verification. Returns the image.
pub fn build_and_verify(program: &GenProgram) -> Result<Image, Failure> {
    let src = program.render();
    let image = if program.is_c() {
        // Determinism lint first: it sees the source-level parallel
        // structure the binary verifier cannot reconstruct.
        let diags = guarded("verify", || {
            lbp_cc::lint(&src).map_err(|e| Failure::new("build", "frontend", e.to_string()))
        })?;
        if let Some(d) = diags.iter().find(|d| d.severity == Severity::Error) {
            return Err(Failure::new(
                "verify",
                d.code.as_str(),
                format!("line {}: {}", d.line, d.message),
            ));
        }
        guarded("build", || {
            // `codegen_sabotage` rides only the compiled side: the
            // rendered source the semantics oracle interprets is clean.
            let cc = lbp_cc::CcOptions {
                sabotage: program.codegen_sabotage,
            };
            lbp_cc::compile_with(&src, &cc)
                .map(|c| c.image)
                .map_err(|e| Failure::new("build", "frontend", e.to_string()))
        })?
    } else {
        guarded("build", || {
            lbp_asm::assemble(&src).map_err(|e| Failure::new("build", "frontend", e.to_string()))
        })?
    };
    let diags = guarded("verify", || Ok(lbp_verify::verify_image(&image)))?;
    if let Some(d) = diags.iter().find(|d| d.severity == Severity::Error) {
        return Err(Failure::new(
            "verify",
            d.code.as_str(),
            format!("{} (pc line {})", d.message, d.line),
        ));
    }
    Ok(image)
}

fn cfg_for(program: &GenProgram) -> LbpConfig {
    LbpConfig::cores(program.cores)
}

/// One full run from reset; `Err` carries the dump. Returns the
/// report, the snapshot content hash, and the architectural hash (the
/// hybrid oracle's comparator: it excludes cycle counts, which the
/// functional engine only approximates).
fn reference_run(program: &GenProgram, image: &Image) -> Result<(RunReport, u64, u64), Failure> {
    guarded("run", || {
        let mut m = Machine::new(cfg_for(program), image)
            .map_err(|e| Failure::new("run", e.class(), e.to_string()))?;
        let report = m
            .run_diagnosed(program.max_cycles)
            .map_err(|f| Failure::from_sim("run", &f))?;
        let hash = lbp_snap::content_hash(&m.snapshot());
        let arch = m.arch_hash();
        Ok((report, hash, arch))
    })
}

/// The full battery with default options (in-process resume oracle).
pub fn check(program: &GenProgram) -> Result<PassReport, Failure> {
    check_with(program, &CheckOpts::default())
}

/// The full battery. The first failing oracle wins.
pub fn check_with(program: &GenProgram, opts: &CheckOpts) -> Result<PassReport, Failure> {
    let image = build_and_verify(program)?;

    // Oracle 3: the reference run.
    let (report, final_hash, pure_arch) = reference_run(program, &image)?;

    // Oracle 4: bit-identical repetition.
    let (report2, final_hash2, _) = reference_run(program, &image).map_err(|mut f| {
        // A *second* run failing after the first passed is itself a
        // determinism bug, whatever the underlying error said.
        f.oracle = "determinism";
        f
    })?;
    let (a, b) = (report.to_json().to_string(), report2.to_json().to_string());
    if a != b {
        return Err(Failure::new(
            "determinism",
            "divergence",
            format!("reports differ between identical runs:\n  first:  {a}\n  second: {b}"),
        ));
    }
    if final_hash != final_hash2 {
        return Err(Failure::new(
            "determinism",
            "divergence",
            format!(
                "final state content hash differs between identical runs: \
                 {final_hash:#018x} vs {final_hash2:#018x}"
            ),
        ));
    }

    // Oracle 5: dynamic race-witness cross-validation. The program
    // passed static verification (oracle 2), so the collector must
    // observe zero concrete shared-memory overlaps — and, being
    // observational, must not perturb the run.
    guarded("race", || {
        let mut m = Machine::new(cfg_for(program), &image)
            .map_err(|e| Failure::new("race", e.class(), e.to_string()))?;
        m.enable_race_witness();
        let witnessed = m
            .run_diagnosed(program.max_cycles)
            .map_err(|f| Failure::from_sim("race", &f))?;
        let witnessed_json = witnessed.to_json().to_string();
        let witnessed_hash = lbp_snap::content_hash(&m.snapshot());
        if witnessed_json != a || witnessed_hash != final_hash {
            return Err(Failure::new(
                "race",
                "divergence",
                format!(
                    "witness collection perturbed the run: report or final state \
                     differs (hash {witnessed_hash:#018x} vs {final_hash:#018x})"
                ),
            ));
        }
        let witnesses = m.race_witnesses();
        if let Some(w) = witnesses.first() {
            return Err(Failure::new(
                "race",
                "race-witness",
                format!(
                    "statically accepted program produced {} dynamic race witness(es): {w}",
                    witnesses.len()
                ),
            ));
        }
        Ok(())
    })?;

    // Oracle 6: snapshot round-trip at the reference run's mid-cycle.
    if report.stats.cycles >= 2 {
        let cut = report.stats.cycles / 2;
        snapshot_roundtrip(program, &image, cut, &a, final_hash)?;
    }

    // Oracle 7: cross-process resume at a fuzzer-chosen cycle. The cut
    // is a pure function of the program text, so the verdict stream
    // stays bit-reproducible while different cases cut at different
    // fractions of their runs.
    if report.stats.cycles >= 2 {
        let span = report.stats.cycles - 1;
        let cut = 1 + lbp_snap::fnv1a64(program.render().as_bytes()) % span;
        resume_in_fresh_process(program, &image, cut, final_hash, report.stats.cycles, opts)?;
    }

    // Oracle 8: differential lockstep against the ISS.
    let lockstep_commits = match program.kind {
        // Fork trees always fork; skip the doomed attempt.
        Kind::Fork => None,
        _ => guarded("lockstep", || {
            match run_lockstep(cfg_for(program), &image, program.max_cycles) {
                Ok(r) => Ok(Some(r.commits)),
                Err(LockstepError::Parallel { .. }) => Ok(None),
                Err(LockstepError::Diverged(d)) => {
                    Err(Failure::new("lockstep", "divergence", d.to_string()))
                }
                Err(LockstepError::Machine(f)) => Err(Failure::from_sim("lockstep", &f)),
                Err(e) => Err(Failure::new("lockstep", "oracle", e.to_string())),
            }
        })?,
    };

    // Oracle 9: hybrid fast-forward handoff. The functional engine
    // runs the same image to several warm targets, materializes
    // through the snapshot boundary, and the cycle-exact engine
    // finishes; every variant must land on the pure run's
    // architectural hash. `retired / 2` routinely falls mid-rendezvous
    // on forking programs — the clamp path — and `u64::MAX` exercises
    // the past-end exit boundary.
    guarded("hybrid", || {
        let budget = program.max_cycles.saturating_mul(4);
        for warm in [0, report.stats.retired() / 2, u64::MAX] {
            let mut fast = FastEngine::new(cfg_for(program), &image)
                .map_err(|e| Failure::new("hybrid", e.class(), e.to_string()))?;
            fast.run(FastStop::Retired(warm), budget)
                .map_err(|e| Failure::new("hybrid", e.class(), format!("warm={warm}: {e}")))?;
            let mut m = fast
                .materialize(&image)
                .map_err(|e| Failure::new("hybrid", e.class(), format!("warm={warm}: {e}")))?;
            m.run_diagnosed(program.max_cycles).map_err(|f| {
                let mut f = Failure::from_sim("hybrid", &f);
                f.detail = format!("warm={warm}: {}", f.detail);
                f
            })?;
            let arch = m.arch_hash();
            if arch != pure_arch {
                return Err(Failure::new(
                    "hybrid",
                    "divergence",
                    format!(
                        "warm={warm}: hybrid final architectural hash {arch:#018x} \
                         != pure cycle-exact {pure_arch:#018x}"
                    ),
                ));
            }
        }
        Ok(())
    })?;

    // Oracle 10: executable semantics. Interpret the C source under
    // lbp-sema and demand the simulated binary reproduce the
    // interpreter's observable outcome — the one oracle that compares
    // the machine against the program's *meaning* rather than against
    // another run of the same binary.
    if program.is_c() {
        guarded("semantics", || {
            let src = program.render();
            match lbp_sema::diff::diff_compiled(
                &src,
                &image,
                program.cores,
                program.max_cycles,
                &lbp_sema::InterpOptions::default(),
            ) {
                Ok(_) => Ok(()),
                Err(lbp_sema::diff::DiffError::Divergence(d)) => {
                    Err(Failure::new("semantics", "divergence", d))
                }
                Err(lbp_sema::diff::DiffError::Trap(t)) => {
                    Err(Failure::new("semantics", t.class, t.to_string()))
                }
                Err(e) => Err(Failure::new("semantics", "oracle", e.to_string())),
            }
        })?;
    }

    Ok(PassReport {
        cycles: report.stats.cycles,
        retired: report.stats.retired(),
        lockstep_commits,
    })
}

/// Oracle 6 body: pause at `cut`, round-trip the state through the
/// `lbp-snap` codec, resume, and compare against the straight run.
fn snapshot_roundtrip(
    program: &GenProgram,
    image: &Image,
    cut: u64,
    straight_report: &str,
    straight_hash: u64,
) -> Result<(), Failure> {
    guarded("snapshot", || {
        let mut prefix = Machine::new(cfg_for(program), image)
            .map_err(|e| Failure::new("snapshot", e.class(), e.to_string()))?;
        let exited = prefix
            .run_to(cut)
            .map_err(|f| Failure::from_sim("snapshot", &f))?;
        if exited {
            // The cut is below the straight run's cycle count, so the
            // program cannot have exited yet on a deterministic machine.
            return Err(Failure::new(
                "snapshot",
                "divergence",
                format!("program exited before cycle {cut}, earlier than the straight run"),
            ));
        }
        let state = prefix.snapshot();
        let decoded = lbp_snap::decode(&lbp_snap::encode(&state)).map_err(|e| {
            Failure::new(
                "snapshot",
                "codec",
                format!("round-trip decode failed: {e}"),
            )
        })?;
        if decoded.as_bytes() != state.as_bytes() {
            return Err(Failure::new(
                "snapshot",
                "codec",
                "state bytes changed across an encode/decode round trip".to_owned(),
            ));
        }
        let mut resumed = Machine::restore(&decoded)
            .map_err(|e| Failure::new("snapshot", "codec", format!("restore failed: {e}")))?;
        let report = resumed
            .run_diagnosed(program.max_cycles)
            .map_err(|f| Failure::from_sim("snapshot", &f))?;
        let resumed_json = report.to_json().to_string();
        if resumed_json != straight_report {
            return Err(Failure::new(
                "snapshot",
                "divergence",
                format!(
                    "snapshot-at-{cut} run report differs from the straight run:\n  \
                     straight: {straight_report}\n  resumed:  {resumed_json}"
                ),
            ));
        }
        let resumed_hash = lbp_snap::content_hash(&resumed.snapshot());
        if resumed_hash != straight_hash {
            return Err(Failure::new(
                "snapshot",
                "divergence",
                format!(
                    "final state content hash differs after a snapshot-at-{cut} resume: \
                     {straight_hash:#018x} vs {resumed_hash:#018x}"
                ),
            ));
        }
        Ok(())
    })
}

/// Oracle 7 body: pause at `cut`, hand the snapshot to a fresh process
/// (or an in-process restore when `opts.resume_exec` is `None`), and
/// demand the resumed run land on the straight run's final content hash
/// and cycle count.
fn resume_in_fresh_process(
    program: &GenProgram,
    image: &Image,
    cut: u64,
    straight_hash: u64,
    straight_cycles: u64,
    opts: &CheckOpts,
) -> Result<(), Failure> {
    guarded("resume", || {
        let mut prefix = Machine::new(cfg_for(program), image)
            .map_err(|e| Failure::new("resume", e.class(), e.to_string()))?;
        let exited = prefix
            .run_to(cut)
            .map_err(|f| Failure::from_sim("resume", &f))?;
        if exited {
            return Err(Failure::new(
                "resume",
                "divergence",
                format!("program exited before cycle {cut}, earlier than the straight run"),
            ));
        }
        let state = prefix.snapshot();

        let (hash, cycles) = match &opts.resume_exec {
            Some(exe) => {
                let snap = std::env::temp_dir().join(format!(
                    "lbp-fuzz-resume-{}-{:016x}.lbpsnap",
                    std::process::id(),
                    lbp_snap::content_hash(&state)
                ));
                lbp_snap::save(&state, &snap).map_err(|e| {
                    Failure::new("resume", "worker", format!("cannot write snapshot: {e}"))
                })?;
                let out = std::process::Command::new(exe)
                    .arg("--resume-worker")
                    .arg(&snap)
                    .arg(program.max_cycles.to_string())
                    .output();
                let _ = std::fs::remove_file(&snap);
                let out = out.map_err(|e| {
                    Failure::new(
                        "resume",
                        "worker",
                        format!("cannot spawn resume worker: {e}"),
                    )
                })?;
                if !out.status.success() {
                    return Err(Failure::new(
                        "resume",
                        "worker",
                        format!(
                            "resume worker exited {:?}: {}",
                            out.status.code(),
                            String::from_utf8_lossy(&out.stderr).trim()
                        ),
                    ));
                }
                let text = String::from_utf8_lossy(&out.stdout);
                let mut fields = text.split_whitespace();
                let parsed = (
                    fields.next().and_then(|h| u64::from_str_radix(h, 16).ok()),
                    fields.next().and_then(|c| c.parse().ok()),
                );
                match parsed {
                    (Some(h), Some(c)) => (h, c),
                    _ => {
                        return Err(Failure::new(
                            "resume",
                            "worker",
                            format!("malformed resume worker reply: {text:?}"),
                        ))
                    }
                }
            }
            None => {
                let decoded = lbp_snap::decode(&lbp_snap::encode(&state)).map_err(|e| {
                    Failure::new("resume", "codec", format!("round-trip decode failed: {e}"))
                })?;
                let mut resumed = Machine::restore(&decoded)
                    .map_err(|e| Failure::new("resume", "codec", format!("restore failed: {e}")))?;
                resumed
                    .run_diagnosed(program.max_cycles)
                    .map_err(|f| Failure::from_sim("resume", &f))?;
                let cycles = resumed.stats().cycles;
                (lbp_snap::content_hash(&resumed.snapshot()), cycles)
            }
        };

        if hash != straight_hash || cycles != straight_cycles {
            return Err(Failure::new(
                "resume",
                "divergence",
                format!(
                    "resume-at-{cut} disagrees with the straight run: \
                     hash {hash:#018x} vs {straight_hash:#018x}, \
                     cycles {cycles} vs {straight_cycles}"
                ),
            ));
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use lbp_testutil::Rng;

    #[test]
    fn battery_passes_a_known_good_program() {
        let mut rng = Rng::new(7);
        let p = generate(&mut rng, &GenConfig::default(), 0); // kind 0 = seq
        let report = check(&p).unwrap_or_else(|f| {
            panic!(
                "oracle {} tripped ({}): {}\n---\n{}",
                f.oracle,
                f.class,
                f.detail,
                p.render()
            )
        });
        assert!(report.cycles > 0);
        assert!(report.retired > 0);
        assert!(
            report.lockstep_commits.is_some(),
            "a seq program is lockstep-checkable"
        );
    }

    #[test]
    fn hybrid_oracle_passes_fork_trees() {
        // Kind index 2 = fork: the generated tree forks across cores,
        // so the mid-run warm target lands inside (or between) X_PAR
        // rendezvous windows — the clamp path the hybrid oracle must
        // survive without divergence.
        for seed in [3, 11] {
            let mut rng = Rng::new(seed);
            let p = generate(&mut rng, &GenConfig::default(), 2);
            let report = check(&p).unwrap_or_else(|f| {
                panic!(
                    "seed {seed}: oracle {} tripped ({}): {}\n---\n{}",
                    f.oracle,
                    f.class,
                    f.detail,
                    p.render()
                )
            });
            assert!(report.retired > 0);
        }
    }

    #[test]
    fn race_oracle_catches_a_dynamic_only_race() {
        // The precision-boundary fixture: statically accepted (the store
        // goes through an address of unknown provenance — LBP-M004, a
        // warning), yet both members write the same shared word at
        // runtime. The race oracle must catch what the M-pass cannot.
        let src = include_str!("../../lbp-verify/tests/fixtures/race_dynamic_only.s");
        let p = GenProgram {
            kind: Kind::Fork,
            cores: 1,
            max_cycles: 100_000,
            codegen_sabotage: None,
            segments: vec![crate::gen::Segment::Fixed(src.to_owned())],
        };
        let f = check(&p).unwrap_err();
        assert_eq!(f.oracle, "race");
        assert_eq!(f.class, "race-witness");
        assert!(f.detail.contains("write-write"), "detail: {}", f.detail);
    }

    #[test]
    fn failures_classify_a_wild_store() {
        // A minimal hand-written wild store: the run oracle must trip
        // with a mem class and attach a dump.
        let p = GenProgram {
            kind: Kind::Seq,
            cores: 1,
            max_cycles: 10_000,
            codegen_sabotage: None,
            segments: vec![crate::gen::Segment::Fixed(
                "main:\n    li t6, 0x8f000000\n    sw t6, 0(t6)\n    li t0, -1\n    li ra, 0\n    p_ret\n"
                    .to_owned(),
            )],
        };
        let f = check(&p).unwrap_err();
        assert_eq!(f.oracle, "run");
        assert_eq!(f.class, "mem");
        assert!(f.dump.is_some(), "run failures carry a dump");
    }

    /// The headline red check for the semantics oracle: every
    /// `codegen:*` miscompilation survives oracles 1–9 untouched — the
    /// sabotaged binary builds, verifies, runs deterministically,
    /// produces no race witness, snapshots, resumes and fast-forwards
    /// cleanly — and is caught *only* by the semantics oracle. (The
    /// battery is ordered, so `f.oracle == "semantics"` proves all
    /// nine preceding oracles passed.) The same program compiled
    /// honestly passes the whole battery including semantics.
    #[test]
    fn codegen_sabotage_is_caught_only_by_the_semantics_oracle() {
        for kind in lbp_cc::CodegenSabotage::ALL {
            let cfg = GenConfig {
                kinds: vec![Kind::C],
                sabotage: Some(crate::gen::Sabotage::Codegen(kind)),
                ..GenConfig::default()
            };
            let mut rng = Rng::new(5);
            let p = generate(&mut rng, &cfg, 0);
            let f = match check(&p) {
                Err(f) => f,
                Ok(_) => panic!(
                    "{}: sabotaged program passed the battery\n---\n{}",
                    kind.name(),
                    p.render()
                ),
            };
            assert_eq!(
                f.oracle,
                "semantics",
                "{}: tripped {} ({}) instead of semantics: {}",
                kind.name(),
                f.oracle,
                f.class,
                f.detail
            );
            assert_eq!(f.class, "divergence", "{}: {}", kind.name(), f.detail);

            let clean = GenProgram {
                codegen_sabotage: None,
                ..p.clone()
            };
            check(&clean).unwrap_or_else(|f| {
                panic!(
                    "{}: honest compile failed {} ({}): {}",
                    kind.name(),
                    f.oracle,
                    f.class,
                    f.detail
                )
            });
        }
    }
}
