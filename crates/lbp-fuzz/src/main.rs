//! `lbp-fuzz` — seeded conformance fuzzing of the LBP stack.
//!
//! ```text
//! lbp-fuzz --seed N [--count N] [--skip N] [--corpus DIR]
//!          [--kinds seq,mem,fork,c] [--max-team N] [--max-cores N]
//!          [--sabotage wild-store|hang|codegen:<kind>]
//!          [--shrink-attempts N] [--out FILE]
//! ```
//!
//! Verdicts stream to `--out` (default stdout) as `lbp-fuzz-v1` JSONL;
//! a human summary goes to stderr. The stream and any corpus written
//! are byte-identical for identical arguments. Exit code 0 when every
//! case passed, 3 when any oracle tripped, 2 on usage errors, 1 on I/O
//! problems.

use std::path::PathBuf;

use lbp_fuzz::gen::{Kind, Sabotage};
use lbp_fuzz::FuzzOptions;

fn usage() -> ! {
    eprintln!(
        "usage: lbp-fuzz --seed N [--count N] [--skip N] [--corpus DIR]\n\
         \x20                [--kinds LIST] [--max-team N] [--max-cores N]\n\
         \x20                [--sabotage KIND] [--shrink-attempts N] [--out FILE]\n\
         \n\
         Generates seeded PISC/Deterministic-OpenMP programs and checks each\n\
         against the oracle battery (build, verify, run, determinism,\n\
         race-witness, snapshot round-trip, cross-process resume, ISS\n\
         lockstep, hybrid fast-forward, executable semantics), shrinking\n\
         and persisting any failure. Identical arguments produce\n\
         byte-identical output.\n\
         \n\
         --seed N             master seed (required)\n\
         --count N            cases to run (default 20)\n\
         --skip N             first case index (replay: --skip I --count 1)\n\
         --corpus DIR         persist failing cases under DIR\n\
         --kinds LIST         comma list of seq,mem,fork,c (default: all)\n\
         --max-team N         fork-tree team-size cap (default 32)\n\
         --max-cores N        machine-size cap in cores (default 8)\n\
         --sabotage KIND      plant a known bug: wild-store | hang |\n\
         \x20                    codegen:chunk-bounds | codegen:index-shift |\n\
         \x20                    codegen:const-fold (miscompilations only the\n\
         \x20                    semantics oracle can catch)\n\
         --shrink-attempts N  shrink budget per failure, 0 = off (default 200)\n\
         --out FILE           write the JSONL stream to FILE instead of stdout"
    );
    std::process::exit(2);
}

/// Hidden helper mode behind the cross-process resume oracle:
/// `lbp-fuzz --resume-worker SNAP MAX_CYCLES` restores SNAP in this
/// fresh process, runs it to completion, and prints
/// `"<final-state-hash:016x> <cycles>"` for the parent to compare. Not
/// documented in `usage()` — it is an implementation detail of the
/// oracle, not user surface.
fn resume_worker(snap: &str, max_cycles: &str) -> ! {
    let Ok(max_cycles) = max_cycles.parse::<u64>() else {
        usage()
    };
    let state = match lbp_snap::load(snap) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lbp-fuzz: cannot load snapshot `{snap}`: {e}");
            std::process::exit(1);
        }
    };
    let mut machine = match lbp_sim::Machine::restore(&state) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("lbp-fuzz: cannot restore snapshot `{snap}`: {e}");
            std::process::exit(1);
        }
    };
    if let Err(fail) = machine.run_diagnosed(max_cycles) {
        eprintln!("lbp-fuzz: resumed run failed: {}", fail.error);
        std::process::exit(3);
    }
    println!(
        "{:016x} {}",
        lbp_snap::content_hash(&machine.snapshot()),
        machine.stats().cycles
    );
    std::process::exit(0);
}

fn parse_args() -> (FuzzOptions, Option<PathBuf>) {
    let mut seed = None;
    let mut opts = FuzzOptions::default();
    let mut out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = Some(v),
                None => usage(),
            },
            "--count" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.count = v,
                None => usage(),
            },
            "--skip" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.skip = v,
                None => usage(),
            },
            "--corpus" => match args.next() {
                Some(p) => opts.corpus = Some(PathBuf::from(p)),
                None => usage(),
            },
            "--kinds" => match args.next() {
                Some(list) => {
                    let kinds: Option<Vec<Kind>> = list.split(',').map(Kind::parse).collect();
                    match kinds {
                        Some(kinds) if !kinds.is_empty() => opts.config.kinds = kinds,
                        _ => usage(),
                    }
                }
                None => usage(),
            },
            "--max-team" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if (2..=256).contains(&v) => opts.config.max_team = v,
                _ => usage(),
            },
            "--max-cores" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if (1..=64).contains(&v) => opts.config.max_cores = v,
                _ => usage(),
            },
            "--sabotage" => match args.next().as_deref().and_then(Sabotage::parse) {
                Some(s) => opts.config.sabotage = Some(s),
                None => usage(),
            },
            "--shrink-attempts" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.shrink_attempts = v,
                None => usage(),
            },
            "--out" => match args.next() {
                Some(p) => out = Some(PathBuf::from(p)),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    let Some(seed) = seed else { usage() };
    opts.seed = seed;
    (opts, out)
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    if argv.get(1).map(String::as_str) == Some("--resume-worker") {
        match (argv.get(2), argv.get(3)) {
            (Some(snap), Some(max)) => resume_worker(snap, max),
            _ => usage(),
        }
    }
    let (mut opts, out) = parse_args();
    // The CLI always runs the resume oracle across a real process
    // boundary, re-execing itself as the worker.
    opts.resume_exec = std::env::current_exe().ok();
    let summary = match &out {
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => lbp_fuzz::run_fuzz(&opts, std::io::BufWriter::new(f)),
            Err(e) => {
                eprintln!("lbp-fuzz: cannot create {}: {e}", path.display());
                std::process::exit(1);
            }
        },
        None => lbp_fuzz::run_fuzz(&opts, std::io::stdout().lock()),
    };
    match summary {
        Ok(s) => {
            eprintln!(
                "lbp-fuzz: seed {} -> {} case(s), {} passed, {} failed",
                opts.seed,
                s.cases,
                s.passed,
                s.failures.len()
            );
            for (case, class) in &s.failures {
                eprintln!(
                    "lbp-fuzz:   case {case}: {class} (replay: --seed {} --skip {case} --count 1)",
                    opts.seed
                );
            }
            std::process::exit(if s.clean() { 0 } else { 3 });
        }
        Err(e) => {
            eprintln!("lbp-fuzz: writing output failed: {e}");
            std::process::exit(1);
        }
    }
}
