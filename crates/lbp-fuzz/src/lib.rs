//! # lbp-fuzz — the deterministic conformance fuzzer
//!
//! Seeded generation of well-formed PISC assembly and
//! Deterministic-OpenMP mini-C programs ([`gen`]), checked by a battery
//! of differential and metamorphic oracles ([`oracle`]): lockstep
//! against the sequential ISS, bit-identical repetition, snapshot
//! round-trips through the `lbp-snap` codec, static verification, and
//! crash classification. Failing cases are minimized by delta
//! debugging ([`shrink`]) and persisted to a replayable corpus
//! ([`corpus`]).
//!
//! Everything is a pure function of the seed: the generator draws from
//! `lbp-testutil`'s SplitMix64, the verdict stream carries no
//! timestamps, and the corpus names no host state — `lbp-fuzz --seed S
//! --count N` writes byte-identical output on every machine, every
//! run. CI leans on that: reproducibility is asserted by diffing two
//! sweeps.
//!
//! Case `i` of a run seeds its generator with
//! `seed ^ (i * 0x9e37_79b9_7f4a_7c15)` — the same derivation as
//! `lbp_testutil::check_cases` — so one failing case replays in
//! isolation via `--skip i --count 1`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod gen;
pub mod oracle;
pub mod shrink;

use std::io::{self, Write};
use std::path::PathBuf;

use lbp_sim::Json;
use lbp_testutil::Rng;

use corpus::CorpusEntry;
use gen::{GenConfig, Kind};
use oracle::Failure;

/// Schema tag of the verdict JSONL stream.
pub const VERDICT_SCHEMA: &str = "lbp-fuzz-v1";

/// One fuzz run's parameters.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Master seed.
    pub seed: u64,
    /// Cases to run.
    pub count: u64,
    /// Case indices to skip past first (replay aid: `--skip i --count
    /// 1` re-runs exactly case `i` of a bigger sweep).
    pub skip: u64,
    /// Generator limits.
    pub config: GenConfig,
    /// Corpus root for failing cases (none = don't persist).
    pub corpus: Option<PathBuf>,
    /// Oracle-battery evaluation budget per shrink (0 = no shrinking).
    pub shrink_attempts: usize,
    /// Executable for the cross-process resume oracle (the CLI passes
    /// its own path; `None` keeps the oracle in-process).
    pub resume_exec: Option<PathBuf>,
}

impl Default for FuzzOptions {
    fn default() -> FuzzOptions {
        FuzzOptions {
            seed: 0,
            count: 20,
            skip: 0,
            config: GenConfig::default(),
            corpus: None,
            shrink_attempts: 200,
            resume_exec: None,
        }
    }
}

/// Aggregate result of a run.
#[derive(Debug, Clone)]
pub struct FuzzSummary {
    /// Cases executed.
    pub cases: u64,
    /// Cases that passed every oracle.
    pub passed: u64,
    /// Failing case indices with their classification.
    pub failures: Vec<(u64, String)>,
}

impl FuzzSummary {
    /// True when every case passed.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The per-case generator seed (mirrors `lbp_testutil::check_cases`).
pub fn case_seed(seed: u64, case: u64) -> u64 {
    seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Effective generator configuration: each sabotage family only makes
/// sense for the kinds it can be planted in — the assembly-level bugs
/// (`wild-store`, `hang`) restrict to the assembly families (defaulting
/// to `seq` if none remain), while the `codegen:*` miscompilations only
/// exist on the `lbp-cc` path and restrict to `c`.
fn effective_config(config: &GenConfig) -> GenConfig {
    let mut cfg = config.clone();
    match cfg.sabotage {
        Some(gen::Sabotage::Codegen(_)) => cfg.kinds = vec![Kind::C],
        Some(_) => {
            cfg.kinds.retain(|k| matches!(k, Kind::Seq | Kind::Mem));
            if cfg.kinds.is_empty() {
                cfg.kinds = vec![Kind::Seq];
            }
        }
        None => {}
    }
    cfg
}

fn header_json(opts: &FuzzOptions, cfg: &GenConfig) -> Json {
    Json::obj([
        ("schema", Json::Str(VERDICT_SCHEMA.to_owned())),
        ("seed", Json::U64(opts.seed)),
        ("count", Json::U64(opts.count)),
        ("skip", Json::U64(opts.skip)),
        (
            "kinds",
            Json::Arr(
                cfg.kinds
                    .iter()
                    .map(|k| Json::Str(k.name().to_owned()))
                    .collect(),
            ),
        ),
        ("max_team", Json::U64(cfg.max_team as u64)),
        ("max_cores", Json::U64(cfg.max_cores as u64)),
        (
            "sabotage",
            match cfg.sabotage {
                Some(s) => Json::Str(s.name().to_owned()),
                None => Json::Null,
            },
        ),
        ("shrink_attempts", Json::U64(opts.shrink_attempts as u64)),
    ])
}

fn fail_json(case: u64, kind: Kind, f: &Failure, shrunk: Option<&shrink::Shrunk>) -> Json {
    let mut pairs = vec![
        ("case".to_owned(), Json::U64(case)),
        ("kind".to_owned(), Json::Str(kind.name().to_owned())),
        ("verdict".to_owned(), Json::Str("fail".to_owned())),
        ("oracle".to_owned(), Json::Str(f.oracle.to_owned())),
        ("class".to_owned(), Json::Str(f.class.clone())),
        ("detail".to_owned(), Json::Str(f.detail.clone())),
    ];
    if let Some(s) = shrunk {
        pairs.push((
            "shrunk_units".to_owned(),
            Json::Arr(vec![
                Json::U64(s.units_before as u64),
                Json::U64(s.units_after as u64),
            ]),
        ));
    }
    Json::Obj(pairs)
}

/// Runs the fuzzer, streaming one `lbp-fuzz-v1` JSONL line per case to
/// `out` (after a header line, before a trailing summary line).
///
/// # Errors
///
/// Only I/O errors (verdict stream or corpus writes) abort the run;
/// oracle failures are verdicts, not errors.
pub fn run_fuzz(opts: &FuzzOptions, mut out: impl Write) -> io::Result<FuzzSummary> {
    let cfg = effective_config(&opts.config);
    let check_opts = oracle::CheckOpts {
        resume_exec: opts.resume_exec.clone(),
    };
    writeln!(out, "{}", header_json(opts, &cfg))?;

    let mut summary = FuzzSummary {
        cases: 0,
        passed: 0,
        failures: Vec::new(),
    };
    for case in opts.skip..opts.skip + opts.count {
        let mut rng = Rng::new(case_seed(opts.seed, case));
        let program = gen::generate(&mut rng, &cfg, case);
        summary.cases += 1;
        match oracle::check_with(&program, &check_opts) {
            Ok(report) => {
                summary.passed += 1;
                let verdict = Json::obj([
                    ("case", Json::U64(case)),
                    ("kind", Json::Str(program.kind.name().to_owned())),
                    ("verdict", Json::Str("pass".to_owned())),
                    ("cores", Json::U64(program.cores as u64)),
                    ("cycles", Json::U64(report.cycles)),
                    ("retired", Json::U64(report.retired)),
                    (
                        "lockstep_commits",
                        match report.lockstep_commits {
                            Some(n) => Json::U64(n),
                            None => Json::Null,
                        },
                    ),
                ]);
                writeln!(out, "{verdict}")?;
            }
            Err(failure) => {
                let shrunk = (opts.shrink_attempts > 0)
                    .then(|| shrink::shrink(&program, &failure, opts.shrink_attempts));
                writeln!(
                    out,
                    "{}",
                    fail_json(case, program.kind, &failure, shrunk.as_ref())
                )?;
                if let Some(root) = &opts.corpus {
                    CorpusEntry {
                        seed: opts.seed,
                        case,
                        config: &cfg,
                        program: &program,
                        failure: &failure,
                        shrunk: shrunk.as_ref(),
                    }
                    .write(root)?;
                }
                summary
                    .failures
                    .push((case, format!("{}/{}", failure.oracle, failure.class)));
            }
        }
    }
    let tail = Json::obj([
        ("cases", Json::U64(summary.cases)),
        ("passed", Json::U64(summary.passed)),
        ("failed", Json::U64(summary.failures.len() as u64)),
    ]);
    writeln!(out, "{tail}")?;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gen::Sabotage;
    use lbp_testutil::harness;

    /// The headline acceptance property: the verdict stream is a pure
    /// function of (seed, options).
    #[test]
    fn verdict_stream_is_bit_reproducible() {
        let opts = FuzzOptions {
            seed: 99,
            count: 8,
            shrink_attempts: 0,
            ..FuzzOptions::default()
        };
        let mut a = Vec::new();
        let mut b = Vec::new();
        run_fuzz(&opts, &mut a).unwrap();
        run_fuzz(&opts, &mut b).unwrap();
        assert!(!a.is_empty());
        assert_eq!(a, b, "same seed, same bytes");
    }

    /// Different seeds explore different programs.
    #[test]
    fn seeds_change_the_stream() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        run_fuzz(
            &FuzzOptions {
                seed: 1,
                count: 2,
                shrink_attempts: 0,
                ..FuzzOptions::default()
            },
            &mut a,
        )
        .unwrap();
        run_fuzz(
            &FuzzOptions {
                seed: 2,
                count: 2,
                shrink_attempts: 0,
                ..FuzzOptions::default()
            },
            &mut b,
        )
        .unwrap();
        assert_ne!(a, b);
    }

    /// End-to-end red fixture: a sabotaged sweep fails, shrinks, and
    /// persists a replayable corpus entry; the clean sweep stays green.
    #[test]
    fn sabotaged_sweep_writes_a_corpus() {
        let root = harness::scratch_dir("fuzz-red-sweep");
        let corpus = root.join("corpus");
        let opts = FuzzOptions {
            seed: 7,
            count: 2,
            config: GenConfig {
                sabotage: Some(Sabotage::WildStore),
                ..GenConfig::default()
            },
            corpus: Some(corpus.clone()),
            shrink_attempts: 300,
            ..FuzzOptions::default()
        };
        let mut out = Vec::new();
        let summary = run_fuzz(&opts, &mut out).unwrap();
        assert_eq!(summary.passed, 0, "every sabotaged case must fail");
        assert_eq!(summary.failures.len(), 2);
        assert!(summary.failures.iter().all(|(_, c)| c == "run/mem"));
        // The corpus holds one directory per failing case, with the
        // shrunk reproducer alongside the original.
        let dirs: Vec<_> = std::fs::read_dir(&corpus).unwrap().collect();
        assert_eq!(dirs.len(), 2);
        for d in dirs {
            let d = d.unwrap().path();
            assert!(d.join("program.s").exists());
            assert!(d.join("shrunk.s").exists());
            assert!(d.join("meta.json").exists());
            assert!(d.join("dump.json").exists());
        }
        harness::scratch_cleanup(&root);
    }

    /// Red fixture for the semantics oracle end to end: a sweep with a
    /// planted miscompilation restricts itself to C programs, every
    /// case fails as `semantics/divergence` (proving the other nine
    /// oracles saw nothing), the shrinker reproduces the divergence on
    /// a reduced program, and the corpus holds the C reproducer.
    #[test]
    fn codegen_sabotaged_sweep_shrinks_to_a_c_reproducer() {
        let root = harness::scratch_dir("fuzz-codegen-red-sweep");
        let corpus = root.join("corpus");
        let opts = FuzzOptions {
            seed: 42,
            count: 1,
            config: GenConfig {
                sabotage: Some(Sabotage::Codegen(lbp_cc::CodegenSabotage::IndexShift)),
                ..GenConfig::default()
            },
            corpus: Some(corpus.clone()),
            shrink_attempts: 120,
            ..FuzzOptions::default()
        };
        let mut out = Vec::new();
        let summary = run_fuzz(&opts, &mut out).unwrap();
        assert_eq!(summary.passed, 0, "every sabotaged case must fail");
        assert!(summary
            .failures
            .iter()
            .all(|(_, c)| c == "semantics/divergence"));
        let dirs: Vec<_> = std::fs::read_dir(&corpus).unwrap().collect();
        assert_eq!(dirs.len(), 1);
        let d = dirs.into_iter().next().unwrap().unwrap().path();
        assert!(d.join("program.c").exists());
        assert!(d.join("shrunk.c").exists(), "shrinker must reproduce");
        assert!(d.join("meta.json").exists());
        let meta = std::fs::read_to_string(d.join("meta.json")).unwrap();
        assert!(meta.contains("codegen:index-shift"));
        harness::scratch_cleanup(&root);
    }
}
