//! The cross-process resume oracle, end to end: the battery re-execs
//! the real `lbp-fuzz` binary as `--resume-worker`, restores the
//! snapshot in that fresh process, and compares content hashes across
//! the boundary.

use std::path::PathBuf;
use std::process::Command;

use lbp_fuzz::gen::{generate, GenConfig};
use lbp_fuzz::oracle::{check_with, CheckOpts};
use lbp_testutil::Rng;

fn fuzz_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_lbp-fuzz"))
}

#[test]
fn battery_passes_across_a_real_process_boundary() {
    let opts = CheckOpts {
        resume_exec: Some(fuzz_bin()),
    };
    // A handful of seeded programs, spanning the generator kinds.
    for case in 0..4 {
        let mut rng = Rng::new(lbp_fuzz::case_seed(41, case));
        let program = generate(&mut rng, &GenConfig::default(), case);
        if let Err(f) = check_with(&program, &opts) {
            panic!(
                "case {case}: oracle {} tripped ({}): {}\n---\n{}",
                f.oracle,
                f.class,
                f.detail,
                program.render()
            );
        }
    }
}

#[test]
fn missing_worker_executable_is_a_classified_failure() {
    let opts = CheckOpts {
        resume_exec: Some(PathBuf::from("/nonexistent/lbp-fuzz")),
    };
    let mut rng = Rng::new(lbp_fuzz::case_seed(41, 0));
    let program = generate(&mut rng, &GenConfig::default(), 0);
    let f = check_with(&program, &opts).unwrap_err();
    assert_eq!(f.oracle, "resume");
    assert_eq!(f.class, "worker");
}

#[test]
fn resume_worker_reports_the_final_hash() {
    // Drive the hidden mode directly: snapshot a paused machine, hand
    // the file to a fresh `lbp-fuzz --resume-worker`, and check its
    // reply against an in-process completion of the same run.
    let source = "main:
        li   t1, 400
        li   t2, 0
    loop:
        addi t2, t2, 1
        bne  t2, t1, loop
        li   t0, -1
        li   a0, 0
        p_ret a0, t0";
    let image = lbp_asm::assemble(source).unwrap();
    let cfg = lbp_sim::LbpConfig::cores(1);
    let mut m = lbp_sim::Machine::new(cfg, &image).unwrap();
    assert!(!m.run_to(100).unwrap());
    let snap = std::env::temp_dir().join(format!(
        "lbp-fuzz-worker-test-{}.lbpsnap",
        std::process::id()
    ));
    lbp_snap::save(&m.snapshot(), &snap).unwrap();

    let mut expect = lbp_sim::Machine::restore(&m.snapshot()).unwrap();
    expect.run_diagnosed(100_000).unwrap();
    let want = format!(
        "{:016x} {}",
        lbp_snap::content_hash(&expect.snapshot()),
        expect.stats().cycles
    );

    let out = Command::new(fuzz_bin())
        .arg("--resume-worker")
        .arg(&snap)
        .arg("100000")
        .output()
        .unwrap();
    let _ = std::fs::remove_file(&snap);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), want);
}
