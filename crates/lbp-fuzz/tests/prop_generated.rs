//! Generator-validity property: every generated program assembles (or
//! compiles), is either accepted by the static verifier or rejected
//! with a classified diagnostic code, and never panics the simulator —
//! across every program family and many seeds.

use std::panic::{self, AssertUnwindSafe};

use lbp_fuzz::gen::{generate, GenConfig, Kind};
use lbp_fuzz::oracle;
use lbp_sim::{LbpConfig, Machine};
use lbp_testutil::check_cases;
use lbp_verify::Severity;

const CASES: u64 = 48;

#[test]
fn generated_programs_build_verify_and_never_panic() {
    let cfg = GenConfig::default();
    check_cases(CASES, 0x1bf0_55ed, |rng, case| {
        let program = generate(rng, &cfg, case);
        let src = program.render();

        // 1. The front end accepts the program.
        let image = if program.is_c() {
            lbp_cc::compile(&src)
                .unwrap_or_else(|e| panic!("case {case}: generated C rejected: {e}\n---\n{src}"))
                .image
        } else {
            lbp_asm::assemble(&src)
                .unwrap_or_else(|e| panic!("case {case}: generated asm rejected: {e}\n---\n{src}"))
        };

        // 2. The verifier either accepts or rejects with a classified
        //    stable code (`LBP-B*`); it never crashes and never emits
        //    an unclassified error.
        let diags = lbp_verify::verify_image(&image);
        for d in diags.iter().filter(|d| d.severity == Severity::Error) {
            let code = d.code.as_str();
            assert!(
                code.starts_with("LBP-B") || code.starts_with("LBP-C") || code.starts_with("LBP-S"),
                "case {case}: unclassified rejection {code}: {}",
                d.message
            );
        }

        // 3. The simulator never panics on the program, whatever its
        //    verdict was — errors must surface as classified SimErrors.
        let ran = panic::catch_unwind(AssertUnwindSafe(|| {
            let mut m = Machine::new(LbpConfig::cores(program.cores), &image)
                .unwrap_or_else(|e| panic!("machine rejected generated image: {e}"));
            match m.run_diagnosed(program.max_cycles) {
                Ok(report) => assert!(report.exited, "in-budget completion reports exited"),
                Err(fail) => {
                    // A classified failure is an acceptable outcome for
                    // this property (the oracle battery, not this test,
                    // decides whether it is a bug).
                    let _ = fail.error.class();
                }
            }
        }));
        assert!(ran.is_ok(), "case {case}: simulator panicked\n---\n{src}");
    });
}

/// The full battery agrees with the standalone property: a clean sweep
/// over each kind individually (catches a family broken only when it
/// is not interleaved with the others).
#[test]
fn each_family_sweeps_clean_through_the_battery() {
    for kind in Kind::ALL {
        let cfg = GenConfig {
            kinds: vec![kind],
            ..GenConfig::default()
        };
        check_cases(6, 0xface ^ kind.name().len() as u64, |rng, case| {
            let program = generate(rng, &cfg, case);
            if let Err(f) = oracle::check(&program) {
                panic!(
                    "kind {} case {case}: oracle {} tripped ({}): {}\n---\n{}",
                    kind.name(),
                    f.oracle,
                    f.class,
                    f.detail,
                    program.render()
                );
            }
        });
    }
}
