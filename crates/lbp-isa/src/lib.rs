//! # lbp-isa — the PISC instruction set (RV32IM + X_PAR)
//!
//! The *Parallel Instruction Set Computer* (PISC) ISA of the LBP processor:
//! the RV32IM base instruction set extended with the twelve `X_PAR` machine
//! instructions for hardware fork/join, inter-hart register transmission and
//! per-hart memory synchronization (Goossens, Louetsi, Parello,
//! *"Deterministic OpenMP and the LBP Parallelizing Manycore Processor"*,
//! PACT 2021, Fig. 5).
//!
//! This crate is the shared vocabulary of the whole stack: the assembler
//! ([`lbp-asm`]), the mini-C compiler (`lbp-cc`), the Deterministic OpenMP
//! runtime (`lbp-omp`) and the cycle-level simulator (`lbp-sim`) all speak
//! [`Instr`].
//!
//! # Examples
//!
//! Encode, decode and disassemble an X_PAR fork:
//!
//! ```
//! use lbp_isa::{Instr, Reg};
//!
//! let fork = Instr::PFc { rd: Reg::T6 };
//! let word = fork.encode()?;
//! assert_eq!(Instr::decode(word)?, fork);
//! assert_eq!(fork.to_string(), "p_fc t6");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`lbp-asm`]: https://example.org/lbp

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod decode;
pub mod dispatch;
mod encode;
mod hart;
mod instr;
mod mem;
mod reg;

pub use decode::DecodeError;
pub use encode::{EncodeError, OPC_CUSTOM0, OPC_CUSTOM1};
pub use hart::{fork_result, HartId, IdentityWord, HARTS_PER_CORE, IDENTITY_VALID};
pub use instr::{BranchKind, Instr, LoadKind, OpImmKind, OpKind, StoreKind};
pub use mem::{Region, CODE_BASE, IO_BASE, LOCAL_BASE, SHARED_BASE};
pub use reg::{ParseRegError, Reg};

/// The size of one instruction word in bytes.
pub const INSTR_BYTES: u32 = 4;
