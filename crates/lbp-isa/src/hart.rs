//! Hart (hardware-thread) identities and the X_PAR identity-word formats.
//!
//! LBP identifies a hart globally by `HARTS_PER_CORE * core + hart`
//! (the paper writes this `4*core+hart`). Two X_PAR instructions manipulate
//! words that *carry* hart identities:
//!
//! - `p_set rd, rs1` builds `rd = (rs1 & 0xffff) | (self_id << 16) | 0x8000_0000`,
//!   stamping the executing hart's identity into the upper half-word;
//! - `p_merge rd, rs1, rs2` builds `rd = (rs1 & 0x7fff_0000) | (rs2 & 0xffff)`,
//!   combining a join-hart identity (upper half) with an allocated-hart
//!   identity (lower half).
//!
//! The resulting word, interpreted by [`IdentityWord`], is what travels in
//! register `t0` through a Deterministic OpenMP team (paper Figs. 6-8).

use core::fmt;

/// Number of harts in one LBP core (fixed by the paper's design).
pub const HARTS_PER_CORE: usize = 4;

/// A global hart identity: `core * HARTS_PER_CORE + local`.
///
/// # Examples
///
/// ```
/// use lbp_isa::HartId;
/// let h = HartId::from_parts(13, 2);
/// assert_eq!(h.core(), 13);
/// assert_eq!(h.local(), 2);
/// assert_eq!(h.global(), 54);
/// assert_eq!(h.next(), HartId::from_parts(13, 3));
/// assert_eq!(HartId::from_parts(13, 3).next(), HartId::from_parts(14, 0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HartId(u32);

impl HartId {
    /// The first hart of the machine (core 0, hart 0), where sequential code
    /// begins and to which final joins return.
    pub const FIRST: HartId = HartId(0);

    /// Creates a hart id from its global number.
    pub fn new(global: u32) -> HartId {
        HartId(global)
    }

    /// Creates a hart id from a core number and a core-local hart number.
    ///
    /// # Panics
    ///
    /// Panics if `local >= HARTS_PER_CORE`.
    pub fn from_parts(core: u32, local: u32) -> HartId {
        assert!(
            (local as usize) < HARTS_PER_CORE,
            "local hart {local} out of range"
        );
        HartId(core * HARTS_PER_CORE as u32 + local)
    }

    /// The global hart number, `HARTS_PER_CORE * core + local`.
    pub fn global(self) -> u32 {
        self.0
    }

    /// The core this hart lives on.
    pub fn core(self) -> u32 {
        self.0 / HARTS_PER_CORE as u32
    }

    /// The hart number within its core, in `0..HARTS_PER_CORE`.
    pub fn local(self) -> u32 {
        self.0 % HARTS_PER_CORE as u32
    }

    /// The hart that follows this one in the machine's serpentine order
    /// (the *team successor*: receiver of the ending-hart signal).
    pub fn next(self) -> HartId {
        HartId(self.0 + 1)
    }
}

impl fmt::Display for HartId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}h{}", self.core(), self.local())
    }
}

/// The identity-word bit set by `p_set` marking a valid stamped identity.
pub const IDENTITY_VALID: u32 = 0x8000_0000;

/// A register word carrying hart identities, as produced by `p_set` and
/// `p_merge` (the `t0` word of the Deterministic OpenMP protocol).
///
/// Layout: bit 31 = valid flag (`p_set` only), bits 30..16 = *join* hart
/// (the hart a team's last member joins back to), bits 15..0 = *allocated*
/// hart (the continuation hart a `p_jalr` call starts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IdentityWord(u32);

impl IdentityWord {
    /// Wraps a raw register value.
    pub fn from_bits(bits: u32) -> IdentityWord {
        IdentityWord(bits)
    }

    /// The raw register value.
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Applies the `p_set` formula: stamp `executing` into the upper half,
    /// preserve the lower half of `self`, set the valid flag.
    pub fn set(self, executing: HartId) -> IdentityWord {
        IdentityWord((self.0 & 0x0000_ffff) | (executing.global() << 16) | IDENTITY_VALID)
    }

    /// Applies the `p_merge` formula: upper half (minus the valid flag) from
    /// `self`, lower half from `allocated`.
    pub fn merge(self, allocated: IdentityWord) -> IdentityWord {
        IdentityWord((self.0 & 0x7fff_0000) | (allocated.0 & 0x0000_ffff))
    }

    /// The join-hart identity stamped in the upper half-word.
    pub fn join_hart(self) -> HartId {
        HartId::new((self.0 >> 16) & 0x7fff)
    }

    /// The allocated-hart identity in the lower half-word.
    pub fn allocated_hart(self) -> HartId {
        HartId::new(self.0 & 0xffff)
    }

    /// Whether the word is the `-1` *exit* sentinel tested by `p_ret`
    /// (the boot code loads `t0 = -1`, paper Fig. 6).
    pub fn is_exit_sentinel(self) -> bool {
        self.0 == u32::MAX
    }

    /// Whether the join-hart field identifies `hart` itself — the `p_ret`
    /// "keep current hart waiting for a join" case.
    ///
    /// Note that `p_merge` drops the valid flag (its mask is
    /// `0x7fff_0000`), so this test looks only at the join field; the exit
    /// sentinel must be ruled out first, which this method does.
    pub fn joins_to(self, hart: HartId) -> bool {
        !self.is_exit_sentinel() && self.join_hart() == hart
    }
}

/// An `rd` value returned by the fork instructions `p_fc`/`p_fn`: the global
/// identity of the freshly allocated hart, as a plain number.
pub fn fork_result(allocated: HartId) -> u32 {
    allocated.global()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parts_round_trip() {
        for core in 0..64 {
            for local in 0..HARTS_PER_CORE as u32 {
                let h = HartId::from_parts(core, local);
                assert_eq!(h.core(), core);
                assert_eq!(h.local(), local);
                assert_eq!(HartId::new(h.global()), h);
            }
        }
    }

    #[test]
    fn next_crosses_core_boundary() {
        let last = HartId::from_parts(0, 3);
        assert_eq!(last.next(), HartId::from_parts(1, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_parts_rejects_bad_local() {
        let _ = HartId::from_parts(0, 4);
    }

    #[test]
    fn p_set_formula_matches_paper() {
        // The boot value of t0 is -1; after p_set on core 2 hart 1 the word
        // keeps the low half, stamps 4*2+1 = 9 in the upper half and sets
        // the valid flag.
        let w = IdentityWord::from_bits(u32::MAX).set(HartId::from_parts(2, 1));
        assert_eq!(w.bits(), 0x0000_ffff | (9 << 16) | 0x8000_0000);
        assert_eq!(w.join_hart(), HartId::from_parts(2, 1));
    }

    #[test]
    fn p_merge_formula_matches_paper() {
        let join = IdentityWord::from_bits(0).set(HartId::new(9));
        let alloc = IdentityWord::from_bits(fork_result(HartId::new(10)));
        let merged = join.merge(alloc);
        // p_merge masks with 0x7fff_0000: the valid flag is dropped.
        assert_eq!(merged.bits(), (9 << 16) | 10);
        assert_eq!(merged.join_hart(), HartId::new(9));
        assert_eq!(merged.allocated_hart(), HartId::new(10));
    }

    #[test]
    fn exit_sentinel() {
        assert!(IdentityWord::from_bits(u32::MAX).is_exit_sentinel());
        assert!(!IdentityWord::from_bits(0x8000_0000).is_exit_sentinel());
    }

    #[test]
    fn joins_to_matches_the_join_field() {
        let h = HartId::new(3);
        let stamped = IdentityWord::from_bits(0).set(h);
        assert!(stamped.joins_to(h));
        assert!(!stamped.joins_to(HartId::new(4)));
        // p_merge drops the valid flag; the join test must still work.
        let merged = stamped.merge(IdentityWord::from_bits(7));
        assert!(merged.joins_to(h));
        // The exit sentinel never joins.
        assert!(!IdentityWord::from_bits(u32::MAX).joins_to(HartId::new(0x7fff)));
    }

    #[test]
    fn display_format() {
        assert_eq!(HartId::from_parts(55, 2).to_string(), "c55h2");
    }
}
