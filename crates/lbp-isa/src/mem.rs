//! The LBP address map, shared by the assembler, compiler, runtime and
//! simulator.
//!
//! LBP has no virtual memory and no cache hierarchy; addresses map directly
//! onto physical banks (paper Fig. 13):
//!
//! - every core has a **code bank** holding a copy of the program image;
//! - every core has a **local bank** holding the stacks and
//!   continuation-value frames of its four harts, private to the core;
//! - every core contributes one **shared bank** slice to the global shared
//!   space; remote slices are reached through the r1/r2/r3 routers;
//! - an **I/O region** exposes the input/output controller mailboxes
//!   (paper Fig. 17).

/// Base address of the per-core code bank (read-only program image).
pub const CODE_BASE: u32 = 0x0000_0000;

/// Base address of the per-core local bank (hart stacks and cv frames).
pub const LOCAL_BASE: u32 = 0x4000_0000;

/// Base address of the global shared memory (block-distributed over the
/// cores' shared banks).
pub const SHARED_BASE: u32 = 0x8000_0000;

/// Base address of the memory-mapped I/O request ports.
pub const IO_BASE: u32 = 0xF000_0000;

/// Classification of an address by the bank region it falls in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Per-core code bank.
    Code,
    /// Per-core local bank (stacks).
    Local,
    /// Distributed shared memory.
    Shared,
    /// Memory-mapped I/O ports.
    Io,
}

impl Region {
    /// Classifies an address.
    pub fn of(addr: u32) -> Region {
        if addr >= IO_BASE {
            Region::Io
        } else if addr >= SHARED_BASE {
            Region::Shared
        } else if addr >= LOCAL_BASE {
            Region::Local
        } else {
            Region::Code
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_boundaries() {
        assert_eq!(Region::of(0), Region::Code);
        assert_eq!(Region::of(LOCAL_BASE - 4), Region::Code);
        assert_eq!(Region::of(LOCAL_BASE), Region::Local);
        assert_eq!(Region::of(SHARED_BASE - 4), Region::Local);
        assert_eq!(Region::of(SHARED_BASE), Region::Shared);
        assert_eq!(Region::of(IO_BASE - 4), Region::Shared);
        assert_eq!(Region::of(IO_BASE), Region::Io);
        assert_eq!(Region::of(u32::MAX), Region::Io);
    }
}
