//! Architectural register names for the RV32 integer register file.

use core::fmt;
use core::str::FromStr;

/// One of the 32 RV32 integer registers, `x0` ..= `x31`.
///
/// `Reg` is a validated newtype: it can only hold values in `0..32`, so the
/// rest of the stack (encoder, simulator renaming tables, ...) can index
/// register files without bounds checks.
///
/// # Examples
///
/// ```
/// use lbp_isa::Reg;
/// assert_eq!(Reg::RA.number(), 1);
/// assert_eq!("t0".parse::<Reg>().unwrap(), Reg::T0);
/// assert_eq!(Reg::new(5).unwrap().abi_name(), "t0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Hard-wired zero register.
    pub const ZERO: Reg = Reg(0);
    /// Return address.
    pub const RA: Reg = Reg(1);
    /// Stack pointer.
    pub const SP: Reg = Reg(2);
    /// Global pointer.
    pub const GP: Reg = Reg(3);
    /// Thread pointer.
    pub const TP: Reg = Reg(4);
    /// Temporary 0. In the Deterministic OpenMP ABI, `t0` carries the merged
    /// join-hart identity (see the paper's Fig. 6).
    pub const T0: Reg = Reg(5);
    /// Temporary 1.
    pub const T1: Reg = Reg(6);
    /// Temporary 2.
    pub const T2: Reg = Reg(7);
    /// Saved register 0 / frame pointer.
    pub const S0: Reg = Reg(8);
    /// Saved register 1.
    pub const S1: Reg = Reg(9);
    /// Argument 0 / return value.
    pub const A0: Reg = Reg(10);
    /// Argument 1.
    pub const A1: Reg = Reg(11);
    /// Argument 2.
    pub const A2: Reg = Reg(12);
    /// Argument 3.
    pub const A3: Reg = Reg(13);
    /// Argument 4.
    pub const A4: Reg = Reg(14);
    /// Argument 5.
    pub const A5: Reg = Reg(15);
    /// Argument 6.
    pub const A6: Reg = Reg(16);
    /// Argument 7.
    pub const A7: Reg = Reg(17);
    /// Saved register 2.
    pub const S2: Reg = Reg(18);
    /// Saved register 3.
    pub const S3: Reg = Reg(19);
    /// Saved register 4.
    pub const S4: Reg = Reg(20);
    /// Saved register 5.
    pub const S5: Reg = Reg(21);
    /// Saved register 6.
    pub const S6: Reg = Reg(22);
    /// Saved register 7.
    pub const S7: Reg = Reg(23);
    /// Saved register 8.
    pub const S8: Reg = Reg(24);
    /// Saved register 9.
    pub const S9: Reg = Reg(25);
    /// Saved register 10.
    pub const S10: Reg = Reg(26);
    /// Saved register 11.
    pub const S11: Reg = Reg(27);
    /// Temporary 3.
    pub const T3: Reg = Reg(28);
    /// Temporary 4.
    pub const T4: Reg = Reg(29);
    /// Temporary 5.
    pub const T5: Reg = Reg(30);
    /// Temporary 6. Used by the fork protocol to hold the allocated hart id
    /// (see the paper's Fig. 8).
    pub const T6: Reg = Reg(31);

    /// Creates a register from its number, if it is in `0..32`.
    pub fn new(number: u8) -> Option<Reg> {
        (number < 32).then_some(Reg(number))
    }

    /// The register number, in `0..32`.
    pub fn number(self) -> u8 {
        self.0
    }

    /// The register number as a `usize`, for register-file indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hard-wired zero register `x0`.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The standard RISC-V ABI mnemonic (`zero`, `ra`, `sp`, ..., `t6`).
    pub fn abi_name(self) -> &'static str {
        ABI_NAMES[self.0 as usize]
    }

    /// Iterates over all 32 registers in numeric order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..32).map(Reg)
    }
}

const ABI_NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6",
];

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

/// Error returned when parsing an unknown register name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError {
    name: String,
}

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown register name `{}`", self.name)
    }
}

impl std::error::Error for ParseRegError {}

impl FromStr for Reg {
    type Err = ParseRegError;

    /// Parses either an ABI name (`a0`, `t6`, `fp`, ...) or a numeric name
    /// (`x0` ..= `x31`).
    fn from_str(s: &str) -> Result<Reg, ParseRegError> {
        if s == "fp" {
            return Ok(Reg::S0);
        }
        if let Some(pos) = ABI_NAMES.iter().position(|&n| n == s) {
            return Ok(Reg(pos as u8));
        }
        if let Some(num) = s.strip_prefix('x') {
            if let Ok(n) = num.parse::<u8>() {
                if let Some(r) = Reg::new(n) {
                    // Reject non-canonical spellings like `x07`.
                    if num == n.to_string() {
                        return Ok(r);
                    }
                }
            }
        }
        Err(ParseRegError { name: s.to_owned() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abi_names_round_trip() {
        for r in Reg::all() {
            assert_eq!(r.abi_name().parse::<Reg>().unwrap(), r);
        }
    }

    #[test]
    fn numeric_names_round_trip() {
        for r in Reg::all() {
            assert_eq!(format!("x{}", r.number()).parse::<Reg>().unwrap(), r);
        }
    }

    #[test]
    fn fp_is_s0_alias() {
        assert_eq!("fp".parse::<Reg>().unwrap(), Reg::S0);
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(Reg::new(32).is_none());
        assert!("x32".parse::<Reg>().is_err());
        assert!("x07".parse::<Reg>().is_err());
        assert!("q0".parse::<Reg>().is_err());
    }

    #[test]
    fn display_matches_abi_name() {
        assert_eq!(Reg::A0.to_string(), "a0");
        assert_eq!(Reg::ZERO.to_string(), "zero");
    }

    #[test]
    fn ordering_follows_numbers() {
        assert!(Reg::ZERO < Reg::RA);
        assert!(Reg::T5 < Reg::T6);
    }
}
