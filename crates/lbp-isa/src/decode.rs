//! Binary decoding of 32-bit instruction words into [`Instr`].

use core::fmt;

use crate::encode::{OPC_CUSTOM0, OPC_CUSTOM1};
use crate::instr::{BranchKind, Instr, LoadKind, OpImmKind, OpKind, StoreKind};
use crate::Reg;

/// Error produced when a word is not a valid RV32IM / X_PAR instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The undecodable instruction word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

fn rd(word: u32) -> Reg {
    Reg::new(((word >> 7) & 0x1f) as u8).expect("5-bit field")
}

fn rs1(word: u32) -> Reg {
    Reg::new(((word >> 15) & 0x1f) as u8).expect("5-bit field")
}

fn rs2(word: u32) -> Reg {
    Reg::new(((word >> 20) & 0x1f) as u8).expect("5-bit field")
}

fn funct3(word: u32) -> u32 {
    (word >> 12) & 0x7
}

fn funct7(word: u32) -> u32 {
    word >> 25
}

/// Sign-extended 12-bit I-type immediate.
fn i_imm(word: u32) -> i32 {
    (word as i32) >> 20
}

/// Sign-extended 12-bit S-type immediate.
fn s_imm(word: u32) -> i32 {
    let hi = (word as i32) >> 25; // sign-extends imm[11:5]
    let lo = ((word >> 7) & 0x1f) as i32;
    (hi << 5) | lo
}

/// Sign-extended 13-bit B-type immediate.
fn b_imm(word: u32) -> i32 {
    let bit11 = (((word >> 7) & 1) as i32) << 11;
    let bits10_5 = (((word >> 25) & 0x3f) as i32) << 5;
    let bits4_1 = (((word >> 8) & 0xf) as i32) << 1;
    let unsigned = bit11 | bits10_5 | bits4_1;
    if word & 0x8000_0000 != 0 {
        unsigned | (-1i32 << 12)
    } else {
        unsigned
    }
}

/// Sign-extended 21-bit J-type immediate.
fn j_imm(word: u32) -> i32 {
    let bits19_12 = ((word >> 12) & 0xff) << 12;
    let bit11 = ((word >> 20) & 1) << 11;
    let bits10_1 = ((word >> 21) & 0x3ff) << 1;
    let unsigned = (bits19_12 | bit11 | bits10_1) as i32;
    if word & 0x8000_0000 != 0 {
        unsigned | (-1i32 << 20)
    } else {
        unsigned
    }
}

impl Instr {
    /// Decodes a 32-bit instruction word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for words outside the implemented RV32IM +
    /// X_PAR space (including reserved funct encodings).
    pub fn decode(word: u32) -> Result<Instr, DecodeError> {
        let err = Err(DecodeError { word });
        let opcode = word & 0x7f;
        Ok(match opcode {
            0b0110111 => Instr::Lui {
                rd: rd(word),
                imm: word & 0xffff_f000,
            },
            0b0010111 => Instr::Auipc {
                rd: rd(word),
                imm: word & 0xffff_f000,
            },
            0b1101111 => Instr::Jal {
                rd: rd(word),
                offset: j_imm(word),
            },
            0b1100111 => {
                if funct3(word) != 0 {
                    return err;
                }
                Instr::Jalr {
                    rd: rd(word),
                    rs1: rs1(word),
                    offset: i_imm(word),
                }
            }
            0b1100011 => {
                let kind = match funct3(word) {
                    0b000 => BranchKind::Eq,
                    0b001 => BranchKind::Ne,
                    0b100 => BranchKind::Lt,
                    0b101 => BranchKind::Ge,
                    0b110 => BranchKind::Ltu,
                    0b111 => BranchKind::Geu,
                    _ => return err,
                };
                Instr::Branch {
                    kind,
                    rs1: rs1(word),
                    rs2: rs2(word),
                    offset: b_imm(word),
                }
            }
            0b0000011 => {
                let kind = match funct3(word) {
                    0b000 => LoadKind::B,
                    0b001 => LoadKind::H,
                    0b010 => LoadKind::W,
                    0b100 => LoadKind::Bu,
                    0b101 => LoadKind::Hu,
                    _ => return err,
                };
                Instr::Load {
                    kind,
                    rd: rd(word),
                    rs1: rs1(word),
                    offset: i_imm(word),
                }
            }
            0b0100011 => {
                let kind = match funct3(word) {
                    0b000 => StoreKind::B,
                    0b001 => StoreKind::H,
                    0b010 => StoreKind::W,
                    _ => return err,
                };
                Instr::Store {
                    kind,
                    rs1: rs1(word),
                    rs2: rs2(word),
                    offset: s_imm(word),
                }
            }
            0b0010011 => {
                let kind = match funct3(word) {
                    0b000 => OpImmKind::Add,
                    0b010 => OpImmKind::Slt,
                    0b011 => OpImmKind::Sltu,
                    0b100 => OpImmKind::Xor,
                    0b110 => OpImmKind::Or,
                    0b111 => OpImmKind::And,
                    0b001 => {
                        if funct7(word) != 0 {
                            return err;
                        }
                        return Ok(Instr::OpImm {
                            kind: OpImmKind::Sll,
                            rd: rd(word),
                            rs1: rs1(word),
                            imm: ((word >> 20) & 0x1f) as i32,
                        });
                    }
                    0b101 => {
                        let kind = match funct7(word) {
                            0b0000000 => OpImmKind::Srl,
                            0b0100000 => OpImmKind::Sra,
                            _ => return err,
                        };
                        return Ok(Instr::OpImm {
                            kind,
                            rd: rd(word),
                            rs1: rs1(word),
                            imm: ((word >> 20) & 0x1f) as i32,
                        });
                    }
                    _ => return err,
                };
                Instr::OpImm {
                    kind,
                    rd: rd(word),
                    rs1: rs1(word),
                    imm: i_imm(word),
                }
            }
            0b0110011 => {
                let kind = match (funct7(word), funct3(word)) {
                    (0b0000000, 0b000) => OpKind::Add,
                    (0b0100000, 0b000) => OpKind::Sub,
                    (0b0000000, 0b001) => OpKind::Sll,
                    (0b0000000, 0b010) => OpKind::Slt,
                    (0b0000000, 0b011) => OpKind::Sltu,
                    (0b0000000, 0b100) => OpKind::Xor,
                    (0b0000000, 0b101) => OpKind::Srl,
                    (0b0100000, 0b101) => OpKind::Sra,
                    (0b0000000, 0b110) => OpKind::Or,
                    (0b0000000, 0b111) => OpKind::And,
                    (0b0000001, 0b000) => OpKind::Mul,
                    (0b0000001, 0b001) => OpKind::Mulh,
                    (0b0000001, 0b010) => OpKind::Mulhsu,
                    (0b0000001, 0b011) => OpKind::Mulhu,
                    (0b0000001, 0b100) => OpKind::Div,
                    (0b0000001, 0b101) => OpKind::Divu,
                    (0b0000001, 0b110) => OpKind::Rem,
                    (0b0000001, 0b111) => OpKind::Remu,
                    _ => return err,
                };
                Instr::Op {
                    kind,
                    rd: rd(word),
                    rs1: rs1(word),
                    rs2: rs2(word),
                }
            }
            OPC_CUSTOM0 => match (funct7(word), funct3(word)) {
                (0b0000000, 0b000) => {
                    if rs1(word) != Reg::ZERO || rs2(word) != Reg::ZERO {
                        return err;
                    }
                    Instr::PFc { rd: rd(word) }
                }
                (0b0000001, 0b000) => {
                    if rs1(word) != Reg::ZERO || rs2(word) != Reg::ZERO {
                        return err;
                    }
                    Instr::PFn { rd: rd(word) }
                }
                (0b0000000, 0b001) => {
                    if rs2(word) != Reg::ZERO {
                        return err;
                    }
                    Instr::PSet {
                        rd: rd(word),
                        rs1: rs1(word),
                    }
                }
                (0b0000000, 0b010) => Instr::PMerge {
                    rd: rd(word),
                    rs1: rs1(word),
                    rs2: rs2(word),
                },
                (0b0000000, 0b011) => {
                    if word != Instr::PSyncm.encode().expect("constant encodes") {
                        return err;
                    }
                    Instr::PSyncm
                }
                (0b0000000, 0b100) => Instr::PJalr {
                    rd: rd(word),
                    rs1: rs1(word),
                    rs2: rs2(word),
                },
                _ => return err,
            },
            OPC_CUSTOM1 => match funct3(word) {
                0b000 => {
                    if rs1(word) != Reg::ZERO {
                        return err;
                    }
                    Instr::PLwcv {
                        rd: rd(word),
                        offset: i_imm(word),
                    }
                }
                0b001 => Instr::PSwcv {
                    rs1: rs1(word),
                    rs2: rs2(word),
                    offset: s_imm(word),
                },
                0b010 => {
                    if rs1(word) != Reg::ZERO {
                        return err;
                    }
                    Instr::PLwre {
                        rd: rd(word),
                        offset: i_imm(word),
                    }
                }
                0b011 => Instr::PSwre {
                    rs1: rs1(word),
                    rs2: rs2(word),
                    offset: s_imm(word),
                },
                0b100 => Instr::PJal {
                    rd: rd(word),
                    rs1: rs1(word),
                    offset: i_imm(word),
                },
                _ => return err,
            },
            _ => return err,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediates_sign_extend() {
        // addi a0, a0, -1
        let i = Instr::OpImm {
            kind: OpImmKind::Add,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: -1,
        };
        let w = i.encode().unwrap();
        assert_eq!(Instr::decode(w).unwrap(), i);
        // sw with negative offset
        let s = Instr::Store {
            kind: StoreKind::W,
            rs1: Reg::SP,
            rs2: Reg::RA,
            offset: -8,
        };
        assert_eq!(Instr::decode(s.encode().unwrap()).unwrap(), s);
        // branch backward
        let b = Instr::Branch {
            kind: BranchKind::Ltu,
            rs1: Reg::T1,
            rs2: Reg::T2,
            offset: -4096,
        };
        assert_eq!(Instr::decode(b.encode().unwrap()).unwrap(), b);
        // jal far backward
        let j = Instr::Jal {
            rd: Reg::ZERO,
            offset: -(1 << 20),
        };
        assert_eq!(Instr::decode(j.encode().unwrap()).unwrap(), j);
    }

    #[test]
    fn rejects_reserved_encodings() {
        // funct3 = 011 under LOAD is reserved (ld is RV64 only).
        assert!(Instr::decode(0x0001_3083).is_err());
        // SYSTEM opcode is not implemented (LBP has no traps).
        assert!(Instr::decode(0x0000_0073).is_err());
        // All-zero and all-one words are illegal per the RISC-V spec.
        assert!(Instr::decode(0).is_err());
        assert!(Instr::decode(u32::MAX).is_err());
    }

    #[test]
    fn xpar_round_trips() {
        let cases = [
            Instr::PFc { rd: Reg::T6 },
            Instr::PFn { rd: Reg::T6 },
            Instr::PSet {
                rd: Reg::T0,
                rs1: Reg::T0,
            },
            Instr::PMerge {
                rd: Reg::T0,
                rs1: Reg::T0,
                rs2: Reg::T6,
            },
            Instr::PSyncm,
            Instr::PJalr {
                rd: Reg::RA,
                rs1: Reg::T0,
                rs2: Reg::A0,
            },
            Instr::PJal {
                rd: Reg::RA,
                rs1: Reg::T6,
                offset: 12,
            },
            Instr::PLwcv {
                rd: Reg::A1,
                offset: 8,
            },
            Instr::PSwcv {
                rs1: Reg::T6,
                rs2: Reg::A1,
                offset: 8,
            },
            Instr::PLwre {
                rd: Reg::A0,
                offset: 3,
            },
            Instr::PSwre {
                rs1: Reg::T0,
                rs2: Reg::A0,
                offset: 3,
            },
        ];
        for i in cases {
            let w = i.encode().unwrap();
            assert_eq!(Instr::decode(w).unwrap(), i, "round-trip of {i}");
        }
    }

    #[test]
    fn xpar_reserved_fields_rejected() {
        // p_fc with a non-zero rs1 field is reserved.
        let w = Instr::PFc { rd: Reg::T6 }.encode().unwrap() | (1 << 15);
        assert!(Instr::decode(w).is_err());
        // p_syncm with a non-zero rd field is reserved.
        let w = Instr::PSyncm.encode().unwrap() | (1 << 7);
        assert!(Instr::decode(w).is_err());
    }
}
