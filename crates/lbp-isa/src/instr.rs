//! The decoded instruction type for RV32IM plus the X_PAR (PISC) extension.

use core::fmt;

use crate::Reg;

/// Conditional-branch comparison kinds (RV32I `BRANCH` major opcode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// `beq`: branch if equal.
    Eq,
    /// `bne`: branch if not equal.
    Ne,
    /// `blt`: branch if less than (signed).
    Lt,
    /// `bge`: branch if greater or equal (signed).
    Ge,
    /// `bltu`: branch if less than (unsigned).
    Ltu,
    /// `bgeu`: branch if greater or equal (unsigned).
    Geu,
}

impl BranchKind {
    /// Every branch comparison, in encoding order. Generators (such as
    /// `lbp-fuzz`) sample from this table instead of hard-coding the
    /// variant list, so a new comparison is automatically fuzzed.
    pub const ALL: [BranchKind; 6] = [
        BranchKind::Eq,
        BranchKind::Ne,
        BranchKind::Lt,
        BranchKind::Ge,
        BranchKind::Ltu,
        BranchKind::Geu,
    ];

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchKind::Eq => "beq",
            BranchKind::Ne => "bne",
            BranchKind::Lt => "blt",
            BranchKind::Ge => "bge",
            BranchKind::Ltu => "bltu",
            BranchKind::Geu => "bgeu",
        }
    }

    /// Evaluates the branch condition on two register values.
    pub fn taken(self, a: u32, b: u32) -> bool {
        match self {
            BranchKind::Eq => a == b,
            BranchKind::Ne => a != b,
            BranchKind::Lt => (a as i32) < (b as i32),
            BranchKind::Ge => (a as i32) >= (b as i32),
            BranchKind::Ltu => a < b,
            BranchKind::Geu => a >= b,
        }
    }
}

/// Load width/sign kinds (RV32I `LOAD` major opcode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadKind {
    /// `lb`: sign-extended byte.
    B,
    /// `lh`: sign-extended half-word.
    H,
    /// `lw`: word.
    W,
    /// `lbu`: zero-extended byte.
    Bu,
    /// `lhu`: zero-extended half-word.
    Hu,
}

impl LoadKind {
    /// Every load width/sign combination, in encoding order.
    pub const ALL: [LoadKind; 5] = [
        LoadKind::B,
        LoadKind::H,
        LoadKind::W,
        LoadKind::Bu,
        LoadKind::Hu,
    ];

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            LoadKind::B => "lb",
            LoadKind::H => "lh",
            LoadKind::W => "lw",
            LoadKind::Bu => "lbu",
            LoadKind::Hu => "lhu",
        }
    }

    /// Access size in bytes.
    pub fn size(self) -> u32 {
        match self {
            LoadKind::B | LoadKind::Bu => 1,
            LoadKind::H | LoadKind::Hu => 2,
            LoadKind::W => 4,
        }
    }
}

/// Store width kinds (RV32I `STORE` major opcode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreKind {
    /// `sb`: byte.
    B,
    /// `sh`: half-word.
    H,
    /// `sw`: word.
    W,
}

impl StoreKind {
    /// Every store width, in encoding order.
    pub const ALL: [StoreKind; 3] = [StoreKind::B, StoreKind::H, StoreKind::W];

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            StoreKind::B => "sb",
            StoreKind::H => "sh",
            StoreKind::W => "sw",
        }
    }

    /// Access size in bytes.
    pub fn size(self) -> u32 {
        match self {
            StoreKind::B => 1,
            StoreKind::H => 2,
            StoreKind::W => 4,
        }
    }
}

/// Register-immediate ALU operations (RV32I `OP-IMM` major opcode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpImmKind {
    /// `addi`.
    Add,
    /// `slti` (signed set-less-than).
    Slt,
    /// `sltiu`.
    Sltu,
    /// `xori`.
    Xor,
    /// `ori`.
    Or,
    /// `andi`.
    And,
    /// `slli` (shift amount in the low 5 immediate bits).
    Sll,
    /// `srli`.
    Srl,
    /// `srai`.
    Sra,
}

impl OpImmKind {
    /// Every register-immediate operation, in encoding order.
    pub const ALL: [OpImmKind; 9] = [
        OpImmKind::Add,
        OpImmKind::Slt,
        OpImmKind::Sltu,
        OpImmKind::Xor,
        OpImmKind::Or,
        OpImmKind::And,
        OpImmKind::Sll,
        OpImmKind::Srl,
        OpImmKind::Sra,
    ];

    /// Whether the immediate operand is a 5-bit shift amount rather than
    /// a sign-extended 12-bit value.
    pub fn is_shift(self) -> bool {
        matches!(self, OpImmKind::Sll | OpImmKind::Srl | OpImmKind::Sra)
    }

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpImmKind::Add => "addi",
            OpImmKind::Slt => "slti",
            OpImmKind::Sltu => "sltiu",
            OpImmKind::Xor => "xori",
            OpImmKind::Or => "ori",
            OpImmKind::And => "andi",
            OpImmKind::Sll => "slli",
            OpImmKind::Srl => "srli",
            OpImmKind::Sra => "srai",
        }
    }

    /// Evaluates the operation on a register value and an immediate.
    pub fn eval(self, a: u32, imm: i32) -> u32 {
        let b = imm as u32;
        match self {
            OpImmKind::Add => a.wrapping_add(b),
            OpImmKind::Slt => ((a as i32) < imm) as u32,
            OpImmKind::Sltu => (a < b) as u32,
            OpImmKind::Xor => a ^ b,
            OpImmKind::Or => a | b,
            OpImmKind::And => a & b,
            OpImmKind::Sll => a.wrapping_shl(b & 31),
            OpImmKind::Srl => a.wrapping_shr(b & 31),
            OpImmKind::Sra => ((a as i32).wrapping_shr(b & 31)) as u32,
        }
    }
}

/// Register-register ALU operations (RV32I `OP` major opcode + RV32M).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// `add`.
    Add,
    /// `sub`.
    Sub,
    /// `sll`.
    Sll,
    /// `slt`.
    Slt,
    /// `sltu`.
    Sltu,
    /// `xor`.
    Xor,
    /// `srl`.
    Srl,
    /// `sra`.
    Sra,
    /// `or`.
    Or,
    /// `and`.
    And,
    /// `mul` (RV32M).
    Mul,
    /// `mulh` (RV32M): upper 32 bits of signed×signed.
    Mulh,
    /// `mulhsu` (RV32M): upper 32 bits of signed×unsigned.
    Mulhsu,
    /// `mulhu` (RV32M): upper 32 bits of unsigned×unsigned.
    Mulhu,
    /// `div` (RV32M, signed).
    Div,
    /// `divu` (RV32M).
    Divu,
    /// `rem` (RV32M, signed).
    Rem,
    /// `remu` (RV32M).
    Remu,
}

impl OpKind {
    /// Every register-register operation, in encoding order (RV32I then
    /// RV32M).
    pub const ALL: [OpKind; 18] = [
        OpKind::Add,
        OpKind::Sub,
        OpKind::Sll,
        OpKind::Slt,
        OpKind::Sltu,
        OpKind::Xor,
        OpKind::Srl,
        OpKind::Sra,
        OpKind::Or,
        OpKind::And,
        OpKind::Mul,
        OpKind::Mulh,
        OpKind::Mulhsu,
        OpKind::Mulhu,
        OpKind::Div,
        OpKind::Divu,
        OpKind::Rem,
        OpKind::Remu,
    ];

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpKind::Add => "add",
            OpKind::Sub => "sub",
            OpKind::Sll => "sll",
            OpKind::Slt => "slt",
            OpKind::Sltu => "sltu",
            OpKind::Xor => "xor",
            OpKind::Srl => "srl",
            OpKind::Sra => "sra",
            OpKind::Or => "or",
            OpKind::And => "and",
            OpKind::Mul => "mul",
            OpKind::Mulh => "mulh",
            OpKind::Mulhsu => "mulhsu",
            OpKind::Mulhu => "mulhu",
            OpKind::Div => "div",
            OpKind::Divu => "divu",
            OpKind::Rem => "rem",
            OpKind::Remu => "remu",
        }
    }

    /// Whether this is an RV32M multiply/divide operation (multi-cycle on
    /// LBP's functional units).
    pub fn is_muldiv(self) -> bool {
        matches!(
            self,
            OpKind::Mul
                | OpKind::Mulh
                | OpKind::Mulhsu
                | OpKind::Mulhu
                | OpKind::Div
                | OpKind::Divu
                | OpKind::Rem
                | OpKind::Remu
        )
    }

    /// Evaluates the operation on two register values, with the RISC-V
    /// division-by-zero and overflow semantics.
    pub fn eval(self, a: u32, b: u32) -> u32 {
        match self {
            OpKind::Add => a.wrapping_add(b),
            OpKind::Sub => a.wrapping_sub(b),
            OpKind::Sll => a.wrapping_shl(b & 31),
            OpKind::Slt => ((a as i32) < (b as i32)) as u32,
            OpKind::Sltu => (a < b) as u32,
            OpKind::Xor => a ^ b,
            OpKind::Srl => a.wrapping_shr(b & 31),
            OpKind::Sra => ((a as i32).wrapping_shr(b & 31)) as u32,
            OpKind::Or => a | b,
            OpKind::And => a & b,
            OpKind::Mul => a.wrapping_mul(b),
            OpKind::Mulh => ((((a as i32) as i64) * ((b as i32) as i64)) >> 32) as u32,
            OpKind::Mulhsu => ((((a as i32) as i64) * (b as i64)) >> 32) as u32,
            OpKind::Mulhu => (((a as u64) * (b as u64)) >> 32) as u32,
            OpKind::Div => {
                if b == 0 {
                    u32::MAX
                } else if a == 0x8000_0000 && b == u32::MAX {
                    a
                } else {
                    ((a as i32).wrapping_div(b as i32)) as u32
                }
            }
            OpKind::Divu => a.checked_div(b).unwrap_or(u32::MAX),
            OpKind::Rem => {
                if b == 0 {
                    a
                } else if a == 0x8000_0000 && b == u32::MAX {
                    0
                } else {
                    ((a as i32).wrapping_rem(b as i32)) as u32
                }
            }
            OpKind::Remu => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
        }
    }
}

/// A decoded RV32IM / X_PAR instruction.
///
/// All X_PAR variants carry the operand roles of the paper's Fig. 5. The
/// `p_ret` pseudo-instruction is represented as
/// `PJalr { rd: Reg::ZERO, rs1: ra, rs2: t0 }`.
///
/// Field names follow the RISC-V convention: `rd` destination, `rs1`/`rs2`
/// sources, `imm`/`offset` immediates (byte offsets for memory and control
/// transfer, slot numbers for `p_lwre`/`p_swre`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // field roles documented on the enum and each variant
pub enum Instr {
    /// `lui rd, imm20`: load upper immediate (`imm` holds the already-shifted
    /// 32-bit value; its low 12 bits are zero).
    Lui { rd: Reg, imm: u32 },
    /// `auipc rd, imm20`: add upper immediate to pc.
    Auipc { rd: Reg, imm: u32 },
    /// `jal rd, offset`: direct jump-and-link.
    Jal { rd: Reg, offset: i32 },
    /// `jalr rd, offset(rs1)`: indirect jump-and-link.
    Jalr { rd: Reg, rs1: Reg, offset: i32 },
    /// Conditional branch.
    Branch {
        kind: BranchKind,
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    /// Memory load: `rd = mem[rs1 + offset]`.
    Load {
        kind: LoadKind,
        rd: Reg,
        rs1: Reg,
        offset: i32,
    },
    /// Memory store: `mem[rs1 + offset] = rs2`.
    Store {
        kind: StoreKind,
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    /// Register-immediate ALU operation.
    OpImm {
        kind: OpImmKind,
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    /// Register-register ALU operation.
    Op {
        kind: OpKind,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// `p_fc rd`: fork on current core; `rd` receives the allocated hart id.
    PFc { rd: Reg },
    /// `p_fn rd`: fork on next core; `rd` receives the allocated hart id.
    PFn { rd: Reg },
    /// `p_set rd, rs1`: stamp the executing hart identity (see
    /// [`crate::IdentityWord::set`]).
    PSet { rd: Reg, rs1: Reg },
    /// `p_merge rd, rs1, rs2`: merge join and allocated identities (see
    /// [`crate::IdentityWord::merge`]).
    PMerge { rd: Reg, rs1: Reg, rs2: Reg },
    /// `p_syncm`: block fetch until the hart's in-flight memory accesses
    /// are done.
    PSyncm,
    /// `p_jalr rd, rs1, rs2`: parallelized indirect call / hart return.
    ///
    /// With `rd != x0`: call `rs2` locally, send `pc+4` to the hart
    /// allocated in `rs1`'s low half-word, clear `rd`. With `rd == x0`
    /// (`p_ret`): end/join the current hart depending on `(rs1, rs2)`.
    PJalr { rd: Reg, rs1: Reg, rs2: Reg },
    /// `p_jal rd, rs1, offset`: parallelized direct call; send `pc+4` to the
    /// allocated hart in `rs1`, clear `rd`, jump to `pc+offset`.
    PJal { rd: Reg, rs1: Reg, offset: i32 },
    /// `p_lwcv rd, offset`: load a continuation value from the own hart's
    /// cv-frame slot at `offset`.
    PLwcv { rd: Reg, offset: i32 },
    /// `p_swcv rs1, rs2, offset`: store `rs2` as a continuation value into
    /// hart `rs1`'s cv-frame slot at `offset`.
    PSwcv { rs1: Reg, rs2: Reg, offset: i32 },
    /// `p_lwre rd, offset`: receive from the own hart's result buffer
    /// number `offset` (blocks until a matching `p_swre` delivers).
    PLwre { rd: Reg, offset: i32 },
    /// `p_swre rs1, rs2, offset`: send `rs2` to *prior* hart `rs1`'s result
    /// buffer number `offset` over the backward line.
    PSwre { rs1: Reg, rs2: Reg, offset: i32 },
}

impl Instr {
    /// A canonical no-op (`addi x0, x0, 0`).
    pub const NOP: Instr = Instr::OpImm {
        kind: OpImmKind::Add,
        rd: Reg::ZERO,
        rs1: Reg::ZERO,
        imm: 0,
    };

    /// The destination register written by this instruction, if any.
    ///
    /// `x0` destinations are reported as `None`: writes to `x0` are
    /// discarded and create no dependency.
    pub fn dest(&self) -> Option<Reg> {
        let rd = match *self {
            Instr::Lui { rd, .. }
            | Instr::Auipc { rd, .. }
            | Instr::Jal { rd, .. }
            | Instr::Jalr { rd, .. }
            | Instr::Load { rd, .. }
            | Instr::OpImm { rd, .. }
            | Instr::Op { rd, .. }
            | Instr::PFc { rd }
            | Instr::PFn { rd }
            | Instr::PSet { rd, .. }
            | Instr::PMerge { rd, .. }
            | Instr::PJalr { rd, .. }
            | Instr::PJal { rd, .. }
            | Instr::PLwcv { rd, .. }
            | Instr::PLwre { rd, .. } => rd,
            Instr::Branch { .. }
            | Instr::Store { .. }
            | Instr::PSwcv { .. }
            | Instr::PSwre { .. }
            | Instr::PSyncm => return None,
        };
        (!rd.is_zero()).then_some(rd)
    }

    /// The source registers read by this instruction (up to two).
    ///
    /// `x0` sources are omitted: they always read as zero and create no
    /// dependency.
    pub fn sources(&self) -> [Option<Reg>; 2] {
        let (a, b) = match *self {
            Instr::Lui { .. }
            | Instr::Auipc { .. }
            | Instr::Jal { .. }
            | Instr::PFc { .. }
            | Instr::PFn { .. }
            | Instr::PSyncm
            | Instr::PLwcv { .. }
            | Instr::PLwre { .. } => (None, None),
            Instr::Jalr { rs1, .. }
            | Instr::Load { rs1, .. }
            | Instr::OpImm { rs1, .. }
            | Instr::PSet { rs1, .. }
            | Instr::PJal { rs1, .. } => (Some(rs1), None),
            Instr::Branch { rs1, rs2, .. }
            | Instr::Store { rs1, rs2, .. }
            | Instr::Op { rs1, rs2, .. }
            | Instr::PMerge { rs1, rs2, .. }
            | Instr::PJalr { rs1, rs2, .. }
            | Instr::PSwcv { rs1, rs2, .. }
            | Instr::PSwre { rs1, rs2, .. } => (Some(rs1), Some(rs2)),
        };
        [a.filter(|r| !r.is_zero()), b.filter(|r| !r.is_zero())]
    }

    /// Whether this instruction accesses data memory (loads, stores, and the
    /// X_PAR continuation-value transfers, which read/write hart stacks).
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            Instr::Load { .. } | Instr::Store { .. } | Instr::PSwcv { .. } | Instr::PLwcv { .. }
        )
    }

    /// Whether this is a control-transfer instruction whose next pc is only
    /// known after execution (conditional branch or indirect jump).
    pub fn next_pc_needs_execute(&self) -> bool {
        matches!(self, Instr::Branch { .. } | Instr::Jalr { .. })
    }

    /// Whether this is the `p_ret` pseudo-instruction
    /// (`p_jalr x0, rs1, rs2`).
    pub fn is_p_ret(&self) -> bool {
        matches!(self, Instr::PJalr { rd, .. } if rd.is_zero())
    }

    /// Whether this is an X_PAR extension instruction.
    pub fn is_xpar(&self) -> bool {
        matches!(
            self,
            Instr::PFc { .. }
                | Instr::PFn { .. }
                | Instr::PSet { .. }
                | Instr::PMerge { .. }
                | Instr::PSyncm
                | Instr::PJalr { .. }
                | Instr::PJal { .. }
                | Instr::PLwcv { .. }
                | Instr::PSwcv { .. }
                | Instr::PLwre { .. }
                | Instr::PSwre { .. }
        )
    }
}

impl fmt::Display for Instr {
    /// Disassembles to standard assembly syntax (the syntax accepted by
    /// `lbp-asm`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Lui { rd, imm } => write!(f, "lui {rd}, {:#x}", imm >> 12),
            Instr::Auipc { rd, imm } => write!(f, "auipc {rd}, {:#x}", imm >> 12),
            Instr::Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Instr::Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {offset}({rs1})"),
            Instr::Branch {
                kind,
                rs1,
                rs2,
                offset,
            } => write!(f, "{} {rs1}, {rs2}, {offset}", kind.mnemonic()),
            Instr::Load {
                kind,
                rd,
                rs1,
                offset,
            } => write!(f, "{} {rd}, {offset}({rs1})", kind.mnemonic()),
            Instr::Store {
                kind,
                rs1,
                rs2,
                offset,
            } => write!(f, "{} {rs2}, {offset}({rs1})", kind.mnemonic()),
            Instr::OpImm { kind, rd, rs1, imm } => {
                write!(f, "{} {rd}, {rs1}, {imm}", kind.mnemonic())
            }
            Instr::Op { kind, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", kind.mnemonic())
            }
            Instr::PFc { rd } => write!(f, "p_fc {rd}"),
            Instr::PFn { rd } => write!(f, "p_fn {rd}"),
            Instr::PSet { rd, rs1 } => {
                if rd == rs1 {
                    write!(f, "p_set {rd}")
                } else {
                    write!(f, "p_set {rd}, {rs1}")
                }
            }
            Instr::PMerge { rd, rs1, rs2 } => write!(f, "p_merge {rd}, {rs1}, {rs2}"),
            Instr::PSyncm => write!(f, "p_syncm"),
            Instr::PJalr { rd, rs1, rs2 } => {
                if rd.is_zero() {
                    write!(f, "p_ret {rs1}, {rs2}")
                } else {
                    write!(f, "p_jalr {rd}, {rs1}, {rs2}")
                }
            }
            Instr::PJal { rd, rs1, offset } => write!(f, "p_jal {rd}, {rs1}, {offset}"),
            Instr::PLwcv { rd, offset } => write!(f, "p_lwcv {rd}, {offset}"),
            Instr::PSwcv { rs1, rs2, offset } => write!(f, "p_swcv {rs2}, {rs1}, {offset}"),
            Instr::PLwre { rd, offset } => write!(f, "p_lwre {rd}, {offset}"),
            Instr::PSwre { rs1, rs2, offset } => write!(f, "p_swre {rs2}, {rs1}, {offset}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dest_hides_x0() {
        let i = Instr::OpImm {
            kind: OpImmKind::Add,
            rd: Reg::ZERO,
            rs1: Reg::A0,
            imm: 1,
        };
        assert_eq!(i.dest(), None);
        let i = Instr::OpImm {
            kind: OpImmKind::Add,
            rd: Reg::A1,
            rs1: Reg::A0,
            imm: 1,
        };
        assert_eq!(i.dest(), Some(Reg::A1));
    }

    #[test]
    fn sources_hide_x0() {
        let i = Instr::Op {
            kind: OpKind::Add,
            rd: Reg::A0,
            rs1: Reg::ZERO,
            rs2: Reg::A2,
        };
        assert_eq!(i.sources(), [None, Some(Reg::A2)]);
    }

    #[test]
    fn store_has_no_dest() {
        let i = Instr::Store {
            kind: StoreKind::W,
            rs1: Reg::SP,
            rs2: Reg::RA,
            offset: 0,
        };
        assert_eq!(i.dest(), None);
        assert_eq!(i.sources(), [Some(Reg::SP), Some(Reg::RA)]);
    }

    #[test]
    fn p_ret_detection() {
        let ret = Instr::PJalr {
            rd: Reg::ZERO,
            rs1: Reg::RA,
            rs2: Reg::T0,
        };
        assert!(ret.is_p_ret());
        let call = Instr::PJalr {
            rd: Reg::RA,
            rs1: Reg::T0,
            rs2: Reg::A0,
        };
        assert!(!call.is_p_ret());
    }

    #[test]
    fn branch_conditions() {
        assert!(BranchKind::Lt.taken(u32::MAX, 0)); // -1 < 0 signed
        assert!(!BranchKind::Ltu.taken(u32::MAX, 0));
        assert!(BranchKind::Geu.taken(u32::MAX, 0));
        assert!(BranchKind::Eq.taken(7, 7));
        assert!(BranchKind::Ne.taken(7, 8));
        assert!(BranchKind::Ge.taken(0, u32::MAX));
    }

    #[test]
    fn muldiv_edge_cases() {
        assert_eq!(OpKind::Div.eval(7, 0), u32::MAX);
        assert_eq!(OpKind::Rem.eval(7, 0), 7);
        assert_eq!(OpKind::Div.eval(0x8000_0000, u32::MAX), 0x8000_0000);
        assert_eq!(OpKind::Rem.eval(0x8000_0000, u32::MAX), 0);
        assert_eq!(OpKind::Mulh.eval(u32::MAX, u32::MAX), 0); // (-1)*(-1) = 1
        assert_eq!(OpKind::Mulhu.eval(u32::MAX, u32::MAX), 0xffff_fffe);
    }

    #[test]
    fn shift_amounts_are_masked() {
        assert_eq!(OpImmKind::Sll.eval(1, 33), 2);
        assert_eq!(OpKind::Sra.eval(0x8000_0000, 63), 0xffff_ffff);
    }

    #[test]
    fn xpar_classification() {
        assert!(Instr::PSyncm.is_xpar());
        assert!(!Instr::NOP.is_xpar());
        assert!(Instr::PSwcv {
            rs1: Reg::T6,
            rs2: Reg::RA,
            offset: 0
        }
        .is_mem());
    }

    #[test]
    fn metadata_tables_are_complete_and_distinct() {
        // Each ALL table must enumerate every variant exactly once; the
        // mnemonics double as a uniqueness witness.
        fn distinct(names: &[&str]) {
            let mut seen = names.to_vec();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), names.len(), "duplicate mnemonic in {names:?}");
        }
        distinct(&OpKind::ALL.map(OpKind::mnemonic));
        distinct(&OpImmKind::ALL.map(OpImmKind::mnemonic));
        distinct(&BranchKind::ALL.map(BranchKind::mnemonic));
        distinct(&LoadKind::ALL.map(LoadKind::mnemonic));
        distinct(&StoreKind::ALL.map(StoreKind::mnemonic));
        assert_eq!(
            OpKind::ALL.iter().filter(|k| k.is_muldiv()).count(),
            8,
            "RV32M is eight operations"
        );
        assert_eq!(
            OpImmKind::ALL.iter().filter(|k| k.is_shift()).count(),
            3,
            "three immediate shifts"
        );
    }

    #[test]
    fn next_pc_classification() {
        let b = Instr::Branch {
            kind: BranchKind::Eq,
            rs1: Reg::A0,
            rs2: Reg::A1,
            offset: 8,
        };
        assert!(b.next_pc_needs_execute());
        let j = Instr::Jal {
            rd: Reg::RA,
            offset: 16,
        };
        assert!(!j.next_pc_needs_execute());
        let jr = Instr::Jalr {
            rd: Reg::ZERO,
            rs1: Reg::RA,
            offset: 0,
        };
        assert!(jr.next_pc_needs_execute());
    }
}
