//! Precompiled dispatch metadata for functional-mode interpreters.
//!
//! A cycle-exact pipeline decodes every fetched word; a functional ISS
//! executing billions of instructions cannot afford the nested
//! `Instr`/kind matching on its hot path. [`predecode`] lowers a code
//! image once into a flat array of [`UOp`]s — one fully flattened
//! operation tag ([`UKind`]) plus raw register indices and a 32-bit
//! immediate — so an interpreter dispatches with a single match on a
//! dense `u8` discriminant and never touches the decoder again.
//!
//! The lowering is total: undecodable words become [`UKind::Invalid`]
//! carrying the raw word, so a functional engine reports the same decode
//! fault the pipeline would, at the same pc.

use crate::{BranchKind, Instr, LoadKind, OpImmKind, OpKind, StoreKind};

/// Fully flattened operation kind: every RV32IM sub-kind and every X_PAR
/// instruction gets its own discriminant, so interpreter dispatch is one
/// jump on a dense `u8`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
#[allow(missing_docs)] // names mirror the assembly mnemonics
pub enum UKind {
    Lui,
    Auipc,
    Jal,
    Jalr,
    Beq,
    Bne,
    Blt,
    Bge,
    Bltu,
    Bgeu,
    Lb,
    Lh,
    Lw,
    Lbu,
    Lhu,
    Sb,
    Sh,
    Sw,
    Addi,
    Slti,
    Sltiu,
    Xori,
    Ori,
    Andi,
    Slli,
    Srli,
    Srai,
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    Mul,
    Mulh,
    Mulhsu,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
    PFc,
    PFn,
    PSet,
    PMerge,
    PSyncm,
    /// `p_jalr` with `rd != x0`: parallelized indirect call.
    PCall,
    /// `p_jalr` with `rd == x0`: the `p_ret` hart-ending pseudo-instruction.
    PRet,
    PJal,
    PLwcv,
    PSwcv,
    PLwre,
    PSwre,
    /// A word the decoder rejects; `imm` holds the raw word.
    Invalid,
}

impl UKind {
    /// Whether this operation is an RV32M multiply/divide (tracked in the
    /// run statistics).
    pub fn is_muldiv(self) -> bool {
        matches!(
            self,
            UKind::Mul
                | UKind::Mulh
                | UKind::Mulhsu
                | UKind::Mulhu
                | UKind::Div
                | UKind::Divu
                | UKind::Rem
                | UKind::Remu
        )
    }
}

/// One predecoded operation: the flattened kind, the raw architectural
/// register indices (0–31; unused fields read 0 = `x0`), and a combined
/// 32-bit immediate (`lui`/`auipc` store the already-shifted value,
/// branches/jumps the byte offset, `p_lwre`/`p_swre` the slot number,
/// [`UKind::Invalid`] the undecodable raw word).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UOp {
    /// The flattened operation.
    pub kind: UKind,
    /// Destination architectural register index.
    pub rd: u8,
    /// First source architectural register index.
    pub rs1: u8,
    /// Second source architectural register index.
    pub rs2: u8,
    /// The immediate operand (see the struct docs for per-kind meaning).
    pub imm: i32,
}

impl UOp {
    /// Lowers a decoded instruction into its flat dispatch form.
    pub fn from_instr(instr: &Instr) -> UOp {
        let mut u = UOp {
            kind: UKind::Invalid,
            rd: 0,
            rs1: 0,
            rs2: 0,
            imm: 0,
        };
        match *instr {
            Instr::Lui { rd, imm } => {
                u.kind = UKind::Lui;
                u.rd = rd.index() as u8;
                u.imm = imm as i32;
            }
            Instr::Auipc { rd, imm } => {
                u.kind = UKind::Auipc;
                u.rd = rd.index() as u8;
                u.imm = imm as i32;
            }
            Instr::Jal { rd, offset } => {
                u.kind = UKind::Jal;
                u.rd = rd.index() as u8;
                u.imm = offset;
            }
            Instr::Jalr { rd, rs1, offset } => {
                u.kind = UKind::Jalr;
                u.rd = rd.index() as u8;
                u.rs1 = rs1.index() as u8;
                u.imm = offset;
            }
            Instr::Branch {
                kind,
                rs1,
                rs2,
                offset,
            } => {
                u.kind = match kind {
                    BranchKind::Eq => UKind::Beq,
                    BranchKind::Ne => UKind::Bne,
                    BranchKind::Lt => UKind::Blt,
                    BranchKind::Ge => UKind::Bge,
                    BranchKind::Ltu => UKind::Bltu,
                    BranchKind::Geu => UKind::Bgeu,
                };
                u.rs1 = rs1.index() as u8;
                u.rs2 = rs2.index() as u8;
                u.imm = offset;
            }
            Instr::Load {
                kind,
                rd,
                rs1,
                offset,
            } => {
                u.kind = match kind {
                    LoadKind::B => UKind::Lb,
                    LoadKind::H => UKind::Lh,
                    LoadKind::W => UKind::Lw,
                    LoadKind::Bu => UKind::Lbu,
                    LoadKind::Hu => UKind::Lhu,
                };
                u.rd = rd.index() as u8;
                u.rs1 = rs1.index() as u8;
                u.imm = offset;
            }
            Instr::Store {
                kind,
                rs1,
                rs2,
                offset,
            } => {
                u.kind = match kind {
                    StoreKind::B => UKind::Sb,
                    StoreKind::H => UKind::Sh,
                    StoreKind::W => UKind::Sw,
                };
                u.rs1 = rs1.index() as u8;
                u.rs2 = rs2.index() as u8;
                u.imm = offset;
            }
            Instr::OpImm { kind, rd, rs1, imm } => {
                u.kind = match kind {
                    OpImmKind::Add => UKind::Addi,
                    OpImmKind::Slt => UKind::Slti,
                    OpImmKind::Sltu => UKind::Sltiu,
                    OpImmKind::Xor => UKind::Xori,
                    OpImmKind::Or => UKind::Ori,
                    OpImmKind::And => UKind::Andi,
                    OpImmKind::Sll => UKind::Slli,
                    OpImmKind::Srl => UKind::Srli,
                    OpImmKind::Sra => UKind::Srai,
                };
                u.rd = rd.index() as u8;
                u.rs1 = rs1.index() as u8;
                u.imm = imm;
            }
            Instr::Op { kind, rd, rs1, rs2 } => {
                u.kind = match kind {
                    OpKind::Add => UKind::Add,
                    OpKind::Sub => UKind::Sub,
                    OpKind::Sll => UKind::Sll,
                    OpKind::Slt => UKind::Slt,
                    OpKind::Sltu => UKind::Sltu,
                    OpKind::Xor => UKind::Xor,
                    OpKind::Srl => UKind::Srl,
                    OpKind::Sra => UKind::Sra,
                    OpKind::Or => UKind::Or,
                    OpKind::And => UKind::And,
                    OpKind::Mul => UKind::Mul,
                    OpKind::Mulh => UKind::Mulh,
                    OpKind::Mulhsu => UKind::Mulhsu,
                    OpKind::Mulhu => UKind::Mulhu,
                    OpKind::Div => UKind::Div,
                    OpKind::Divu => UKind::Divu,
                    OpKind::Rem => UKind::Rem,
                    OpKind::Remu => UKind::Remu,
                };
                u.rd = rd.index() as u8;
                u.rs1 = rs1.index() as u8;
                u.rs2 = rs2.index() as u8;
            }
            Instr::PFc { rd } => {
                u.kind = UKind::PFc;
                u.rd = rd.index() as u8;
            }
            Instr::PFn { rd } => {
                u.kind = UKind::PFn;
                u.rd = rd.index() as u8;
            }
            Instr::PSet { rd, rs1 } => {
                u.kind = UKind::PSet;
                u.rd = rd.index() as u8;
                u.rs1 = rs1.index() as u8;
            }
            Instr::PMerge { rd, rs1, rs2 } => {
                u.kind = UKind::PMerge;
                u.rd = rd.index() as u8;
                u.rs1 = rs1.index() as u8;
                u.rs2 = rs2.index() as u8;
            }
            Instr::PSyncm => u.kind = UKind::PSyncm,
            Instr::PJalr { rd, rs1, rs2 } => {
                u.kind = if rd.is_zero() {
                    UKind::PRet
                } else {
                    UKind::PCall
                };
                u.rd = rd.index() as u8;
                u.rs1 = rs1.index() as u8;
                u.rs2 = rs2.index() as u8;
            }
            Instr::PJal { rd, rs1, offset } => {
                u.kind = UKind::PJal;
                u.rd = rd.index() as u8;
                u.rs1 = rs1.index() as u8;
                u.imm = offset;
            }
            Instr::PLwcv { rd, offset } => {
                u.kind = UKind::PLwcv;
                u.rd = rd.index() as u8;
                u.imm = offset;
            }
            Instr::PSwcv { rs1, rs2, offset } => {
                u.kind = UKind::PSwcv;
                u.rs1 = rs1.index() as u8;
                u.rs2 = rs2.index() as u8;
                u.imm = offset;
            }
            Instr::PLwre { rd, offset } => {
                u.kind = UKind::PLwre;
                u.rd = rd.index() as u8;
                u.imm = offset;
            }
            Instr::PSwre { rs1, rs2, offset } => {
                u.kind = UKind::PSwre;
                u.rs1 = rs1.index() as u8;
                u.rs2 = rs2.index() as u8;
                u.imm = offset;
            }
        }
        u
    }

    /// Lowers one raw code word: decodable words via [`UOp::from_instr`],
    /// the rest to [`UKind::Invalid`] with the word preserved in `imm`.
    pub fn from_word(word: u32) -> UOp {
        match Instr::decode(word) {
            Ok(instr) => UOp::from_instr(&instr),
            Err(_) => UOp {
                kind: UKind::Invalid,
                rd: 0,
                rs1: 0,
                rs2: 0,
                imm: word as i32,
            },
        }
    }
}

/// Lowers a whole code image (the `text` section, one word per
/// instruction) into its predecoded dispatch form, indexed by `pc / 4`.
pub fn predecode(text: &[u32]) -> Vec<UOp> {
    text.iter().map(|&w| UOp::from_word(w)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    #[test]
    fn round_trip_covers_every_decodable_word() {
        // Every encodable instruction must lower to a non-Invalid UOp.
        let samples = [
            Instr::Lui {
                rd: Reg::A0,
                imm: 0x1234_5000,
            },
            Instr::Jalr {
                rd: Reg::RA,
                rs1: Reg::A0,
                offset: -4,
            },
            Instr::Op {
                kind: OpKind::Remu,
                rd: Reg::A1,
                rs1: Reg::A2,
                rs2: Reg::A3,
            },
            Instr::PJalr {
                rd: Reg::ZERO,
                rs1: Reg::RA,
                rs2: Reg::T0,
            },
            Instr::PSwre {
                rs1: Reg::T0,
                rs2: Reg::A4,
                offset: 3,
            },
        ];
        for instr in samples {
            let u = UOp::from_word(instr.encode().unwrap());
            assert_ne!(u.kind, UKind::Invalid, "{instr} lowered to Invalid");
            assert_eq!(u, UOp::from_instr(&instr));
        }
    }

    #[test]
    fn p_ret_splits_from_p_call() {
        let ret = Instr::PJalr {
            rd: Reg::ZERO,
            rs1: Reg::RA,
            rs2: Reg::T0,
        };
        assert_eq!(UOp::from_instr(&ret).kind, UKind::PRet);
        let call = Instr::PJalr {
            rd: Reg::RA,
            rs1: Reg::T0,
            rs2: Reg::A0,
        };
        assert_eq!(UOp::from_instr(&call).kind, UKind::PCall);
    }

    #[test]
    fn invalid_words_keep_the_raw_word() {
        let u = UOp::from_word(0xffff_ffff);
        assert_eq!(u.kind, UKind::Invalid);
        assert_eq!(u.imm as u32, 0xffff_ffff);
    }

    #[test]
    fn predecode_indexes_by_pc() {
        let text = [Instr::NOP.encode().unwrap(), 0xffff_ffff];
        let uops = predecode(&text);
        assert_eq!(uops.len(), 2);
        assert_eq!(uops[0].kind, UKind::Addi);
        assert_eq!(uops[1].kind, UKind::Invalid);
    }
}
