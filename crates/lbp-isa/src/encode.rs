//! Binary encoding of [`Instr`] into 32-bit RISC-V instruction words.
//!
//! Standard RV32IM instructions use their architectural encodings; the
//! X_PAR extension occupies the *custom-0* (`0001011`) and *custom-1*
//! (`0101011`) major opcodes reserved by the RISC-V specification for
//! vendor extensions.

use core::fmt;

use crate::instr::{BranchKind, Instr, LoadKind, OpImmKind, OpKind, StoreKind};
use crate::Reg;

/// Major opcode for register-form X_PAR instructions
/// (`p_fc`, `p_fn`, `p_set`, `p_merge`, `p_syncm`, `p_jalr`).
pub const OPC_CUSTOM0: u32 = 0b0001011;
/// Major opcode for immediate-form X_PAR instructions
/// (`p_lwcv`, `p_swcv`, `p_lwre`, `p_swre`, `p_jal`).
pub const OPC_CUSTOM1: u32 = 0b0101011;

/// Error produced when an [`Instr`] cannot be represented in 32 bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// An immediate exceeds its field range.
    ImmOutOfRange {
        /// The instruction mnemonic.
        what: &'static str,
        /// The offending value.
        value: i64,
        /// The allowed inclusive range.
        range: (i64, i64),
    },
    /// A branch/jump offset is not a multiple of two.
    MisalignedOffset {
        /// The instruction mnemonic.
        what: &'static str,
        /// The offending offset.
        offset: i32,
    },
    /// A `lui`/`auipc` immediate has non-zero low bits.
    DirtyUpperImm {
        /// The offending value.
        value: u32,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmOutOfRange { what, value, range } => write!(
                f,
                "immediate {value} of `{what}` outside [{}, {}]",
                range.0, range.1
            ),
            EncodeError::MisalignedOffset { what, offset } => {
                write!(f, "offset {offset} of `{what}` is not even")
            }
            EncodeError::DirtyUpperImm { value } => {
                write!(f, "upper immediate {value:#x} has non-zero low 12 bits")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

fn check_i_imm(what: &'static str, imm: i32) -> Result<u32, EncodeError> {
    if (-2048..=2047).contains(&imm) {
        Ok((imm as u32) & 0xfff)
    } else {
        Err(EncodeError::ImmOutOfRange {
            what,
            value: imm as i64,
            range: (-2048, 2047),
        })
    }
}

fn r_type(funct7: u32, rs2: u32, rs1: u32, funct3: u32, rd: u32, opcode: u32) -> u32 {
    (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
}

fn i_type(imm12: u32, rs1: u32, funct3: u32, rd: u32, opcode: u32) -> u32 {
    (imm12 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
}

fn s_type(imm12: u32, rs2: u32, rs1: u32, funct3: u32, opcode: u32) -> u32 {
    let hi = (imm12 >> 5) & 0x7f;
    let lo = imm12 & 0x1f;
    (hi << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (lo << 7) | opcode
}

fn b_type(
    what: &'static str,
    offset: i32,
    rs2: u32,
    rs1: u32,
    funct3: u32,
) -> Result<u32, EncodeError> {
    if offset % 2 != 0 {
        return Err(EncodeError::MisalignedOffset { what, offset });
    }
    if !(-4096..=4094).contains(&offset) {
        return Err(EncodeError::ImmOutOfRange {
            what,
            value: offset as i64,
            range: (-4096, 4094),
        });
    }
    let imm = offset as u32;
    let bit12 = (imm >> 12) & 1;
    let bit11 = (imm >> 11) & 1;
    let bits10_5 = (imm >> 5) & 0x3f;
    let bits4_1 = (imm >> 1) & 0xf;
    Ok((bit12 << 31)
        | (bits10_5 << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | (bits4_1 << 8)
        | (bit11 << 7)
        | 0b1100011)
}

fn j_type(what: &'static str, offset: i32, rd: u32) -> Result<u32, EncodeError> {
    if offset % 2 != 0 {
        return Err(EncodeError::MisalignedOffset { what, offset });
    }
    if !(-(1 << 20)..=(1 << 20) - 2).contains(&offset) {
        return Err(EncodeError::ImmOutOfRange {
            what,
            value: offset as i64,
            range: (-(1 << 20) as i64, ((1 << 20) - 2) as i64),
        });
    }
    let imm = offset as u32;
    let bit20 = (imm >> 20) & 1;
    let bits10_1 = (imm >> 1) & 0x3ff;
    let bit11 = (imm >> 11) & 1;
    let bits19_12 = (imm >> 12) & 0xff;
    Ok(
        (bit20 << 31)
            | (bits10_1 << 21)
            | (bit11 << 20)
            | (bits19_12 << 12)
            | (rd << 7)
            | 0b1101111,
    )
}

fn rnum(r: Reg) -> u32 {
    r.number() as u32
}

impl Instr {
    /// Encodes the instruction into its 32-bit binary word.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError`] if an immediate or offset does not fit its
    /// encoding field. The assembler catches these at assembly time.
    pub fn encode(&self) -> Result<u32, EncodeError> {
        Ok(match *self {
            Instr::Lui { rd, imm } => {
                if imm & 0xfff != 0 {
                    return Err(EncodeError::DirtyUpperImm { value: imm });
                }
                imm | (rnum(rd) << 7) | 0b0110111
            }
            Instr::Auipc { rd, imm } => {
                if imm & 0xfff != 0 {
                    return Err(EncodeError::DirtyUpperImm { value: imm });
                }
                imm | (rnum(rd) << 7) | 0b0010111
            }
            Instr::Jal { rd, offset } => j_type("jal", offset, rnum(rd))?,
            Instr::Jalr { rd, rs1, offset } => i_type(
                check_i_imm("jalr", offset)?,
                rnum(rs1),
                0b000,
                rnum(rd),
                0b1100111,
            ),
            Instr::Branch {
                kind,
                rs1,
                rs2,
                offset,
            } => {
                let funct3 = match kind {
                    BranchKind::Eq => 0b000,
                    BranchKind::Ne => 0b001,
                    BranchKind::Lt => 0b100,
                    BranchKind::Ge => 0b101,
                    BranchKind::Ltu => 0b110,
                    BranchKind::Geu => 0b111,
                };
                b_type(kind.mnemonic(), offset, rnum(rs2), rnum(rs1), funct3)?
            }
            Instr::Load {
                kind,
                rd,
                rs1,
                offset,
            } => {
                let funct3 = match kind {
                    LoadKind::B => 0b000,
                    LoadKind::H => 0b001,
                    LoadKind::W => 0b010,
                    LoadKind::Bu => 0b100,
                    LoadKind::Hu => 0b101,
                };
                i_type(
                    check_i_imm(kind.mnemonic(), offset)?,
                    rnum(rs1),
                    funct3,
                    rnum(rd),
                    0b0000011,
                )
            }
            Instr::Store {
                kind,
                rs1,
                rs2,
                offset,
            } => {
                let funct3 = match kind {
                    StoreKind::B => 0b000,
                    StoreKind::H => 0b001,
                    StoreKind::W => 0b010,
                };
                s_type(
                    check_i_imm(kind.mnemonic(), offset)?,
                    rnum(rs2),
                    rnum(rs1),
                    funct3,
                    0b0100011,
                )
            }
            Instr::OpImm { kind, rd, rs1, imm } => match kind {
                OpImmKind::Sll | OpImmKind::Srl | OpImmKind::Sra => {
                    if !(0..32).contains(&imm) {
                        return Err(EncodeError::ImmOutOfRange {
                            what: kind.mnemonic(),
                            value: imm as i64,
                            range: (0, 31),
                        });
                    }
                    let funct7 = if kind == OpImmKind::Sra { 0b0100000 } else { 0 };
                    let funct3 = if kind == OpImmKind::Sll { 0b001 } else { 0b101 };
                    r_type(funct7, imm as u32, rnum(rs1), funct3, rnum(rd), 0b0010011)
                }
                _ => {
                    let funct3 = match kind {
                        OpImmKind::Add => 0b000,
                        OpImmKind::Slt => 0b010,
                        OpImmKind::Sltu => 0b011,
                        OpImmKind::Xor => 0b100,
                        OpImmKind::Or => 0b110,
                        OpImmKind::And => 0b111,
                        _ => unreachable!("shift kinds are handled by the arm above"),
                    };
                    i_type(
                        check_i_imm(kind.mnemonic(), imm)?,
                        rnum(rs1),
                        funct3,
                        rnum(rd),
                        0b0010011,
                    )
                }
            },
            Instr::Op { kind, rd, rs1, rs2 } => {
                let (funct7, funct3) = match kind {
                    OpKind::Add => (0b0000000, 0b000),
                    OpKind::Sub => (0b0100000, 0b000),
                    OpKind::Sll => (0b0000000, 0b001),
                    OpKind::Slt => (0b0000000, 0b010),
                    OpKind::Sltu => (0b0000000, 0b011),
                    OpKind::Xor => (0b0000000, 0b100),
                    OpKind::Srl => (0b0000000, 0b101),
                    OpKind::Sra => (0b0100000, 0b101),
                    OpKind::Or => (0b0000000, 0b110),
                    OpKind::And => (0b0000000, 0b111),
                    OpKind::Mul => (0b0000001, 0b000),
                    OpKind::Mulh => (0b0000001, 0b001),
                    OpKind::Mulhsu => (0b0000001, 0b010),
                    OpKind::Mulhu => (0b0000001, 0b011),
                    OpKind::Div => (0b0000001, 0b100),
                    OpKind::Divu => (0b0000001, 0b101),
                    OpKind::Rem => (0b0000001, 0b110),
                    OpKind::Remu => (0b0000001, 0b111),
                };
                r_type(funct7, rnum(rs2), rnum(rs1), funct3, rnum(rd), 0b0110011)
            }
            Instr::PFc { rd } => r_type(0b0000000, 0, 0, 0b000, rnum(rd), OPC_CUSTOM0),
            Instr::PFn { rd } => r_type(0b0000001, 0, 0, 0b000, rnum(rd), OPC_CUSTOM0),
            Instr::PSet { rd, rs1 } => {
                r_type(0b0000000, 0, rnum(rs1), 0b001, rnum(rd), OPC_CUSTOM0)
            }
            Instr::PMerge { rd, rs1, rs2 } => r_type(
                0b0000000,
                rnum(rs2),
                rnum(rs1),
                0b010,
                rnum(rd),
                OPC_CUSTOM0,
            ),
            Instr::PSyncm => r_type(0b0000000, 0, 0, 0b011, 0, OPC_CUSTOM0),
            Instr::PJalr { rd, rs1, rs2 } => r_type(
                0b0000000,
                rnum(rs2),
                rnum(rs1),
                0b100,
                rnum(rd),
                OPC_CUSTOM0,
            ),
            Instr::PLwcv { rd, offset } => i_type(
                check_i_imm("p_lwcv", offset)?,
                0,
                0b000,
                rnum(rd),
                OPC_CUSTOM1,
            ),
            Instr::PSwcv { rs1, rs2, offset } => s_type(
                check_i_imm("p_swcv", offset)?,
                rnum(rs2),
                rnum(rs1),
                0b001,
                OPC_CUSTOM1,
            ),
            Instr::PLwre { rd, offset } => i_type(
                check_i_imm("p_lwre", offset)?,
                0,
                0b010,
                rnum(rd),
                OPC_CUSTOM1,
            ),
            Instr::PSwre { rs1, rs2, offset } => s_type(
                check_i_imm("p_swre", offset)?,
                rnum(rs2),
                rnum(rs1),
                0b011,
                OPC_CUSTOM1,
            ),
            Instr::PJal { rd, rs1, offset } => i_type(
                check_i_imm("p_jal", offset)?,
                rnum(rs1),
                0b100,
                rnum(rd),
                OPC_CUSTOM1,
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_words() {
        // Cross-checked against the RISC-V spec examples / gnu as output.
        // addi x0, x0, 0 == canonical nop == 0x00000013.
        assert_eq!(Instr::NOP.encode().unwrap(), 0x0000_0013);
        // add a0, a1, a2 == 0x00c58533.
        let add = Instr::Op {
            kind: OpKind::Add,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
        };
        assert_eq!(add.encode().unwrap(), 0x00c5_8533);
        // lw ra, 0(sp) == 0x00012083.
        let lw = Instr::Load {
            kind: LoadKind::W,
            rd: Reg::RA,
            rs1: Reg::SP,
            offset: 0,
        };
        assert_eq!(lw.encode().unwrap(), 0x0001_2083);
        // sw ra, 4(sp) == 0x00112223.
        let sw = Instr::Store {
            kind: StoreKind::W,
            rs1: Reg::SP,
            rs2: Reg::RA,
            offset: 4,
        };
        assert_eq!(sw.encode().unwrap(), 0x0011_2223);
        // mul a0, a0, a1 == 0x02b50533.
        let mul = Instr::Op {
            kind: OpKind::Mul,
            rd: Reg::A0,
            rs1: Reg::A0,
            rs2: Reg::A1,
        };
        assert_eq!(mul.encode().unwrap(), 0x02b5_0533);
    }

    #[test]
    fn branch_offset_bits() {
        // beq x0, x0, -4: B-type with negative offset.
        let b = Instr::Branch {
            kind: BranchKind::Eq,
            rs1: Reg::ZERO,
            rs2: Reg::ZERO,
            offset: -4,
        };
        assert_eq!(b.encode().unwrap(), 0xfe00_0ee3);
    }

    #[test]
    fn jal_offset_bits() {
        // jal ra, 8 == 0x008000ef.
        let j = Instr::Jal {
            rd: Reg::RA,
            offset: 8,
        };
        assert_eq!(j.encode().unwrap(), 0x0080_00ef);
    }

    #[test]
    fn imm_range_checked() {
        let i = Instr::OpImm {
            kind: OpImmKind::Add,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 4096,
        };
        assert!(matches!(i.encode(), Err(EncodeError::ImmOutOfRange { .. })));
    }

    #[test]
    fn misaligned_branch_rejected() {
        let b = Instr::Branch {
            kind: BranchKind::Ne,
            rs1: Reg::A0,
            rs2: Reg::A1,
            offset: 3,
        };
        assert!(matches!(
            b.encode(),
            Err(EncodeError::MisalignedOffset { .. })
        ));
    }

    #[test]
    fn dirty_lui_rejected() {
        let l = Instr::Lui {
            rd: Reg::A0,
            imm: 0x1234,
        };
        assert!(matches!(l.encode(), Err(EncodeError::DirtyUpperImm { .. })));
    }

    #[test]
    fn shift_amount_range() {
        let s = Instr::OpImm {
            kind: OpImmKind::Sll,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 32,
        };
        assert!(s.encode().is_err());
    }
}
