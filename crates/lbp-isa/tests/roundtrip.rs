//! Property tests: encode/decode is a bijection between the valid [`Instr`]
//! space and its binary image, and disassembly is total. Driven by the
//! deterministic generator in `lbp-testutil` — every run replays the same
//! instruction sample.

use lbp_isa::{BranchKind, Instr, LoadKind, OpImmKind, OpKind, Reg, StoreKind};
use lbp_testutil::{check_cases, Rng};

fn any_reg(rng: &mut Rng) -> Reg {
    Reg::new(rng.range_u32(0, 31) as u8).unwrap()
}

fn i12(rng: &mut Rng) -> i32 {
    rng.range_i32(-2048, 2047)
}

fn b_off(rng: &mut Rng) -> i32 {
    rng.range_i32(-2048, 2047) * 2
}

fn j_off(rng: &mut Rng) -> i32 {
    rng.range_i32(-(1 << 19), (1 << 19) - 1) * 2
}

const BRANCH_KINDS: [BranchKind; 6] = [
    BranchKind::Eq,
    BranchKind::Ne,
    BranchKind::Lt,
    BranchKind::Ge,
    BranchKind::Ltu,
    BranchKind::Geu,
];

const LOAD_KINDS: [LoadKind; 5] = [
    LoadKind::B,
    LoadKind::H,
    LoadKind::W,
    LoadKind::Bu,
    LoadKind::Hu,
];

const STORE_KINDS: [StoreKind; 3] = [StoreKind::B, StoreKind::H, StoreKind::W];

const OP_IMM_KINDS: [OpImmKind; 9] = [
    OpImmKind::Add,
    OpImmKind::Slt,
    OpImmKind::Sltu,
    OpImmKind::Xor,
    OpImmKind::Or,
    OpImmKind::And,
    OpImmKind::Sll,
    OpImmKind::Srl,
    OpImmKind::Sra,
];

const OP_KINDS: [OpKind; 18] = [
    OpKind::Add,
    OpKind::Sub,
    OpKind::Sll,
    OpKind::Slt,
    OpKind::Sltu,
    OpKind::Xor,
    OpKind::Srl,
    OpKind::Sra,
    OpKind::Or,
    OpKind::And,
    OpKind::Mul,
    OpKind::Mulh,
    OpKind::Mulhsu,
    OpKind::Mulhu,
    OpKind::Div,
    OpKind::Divu,
    OpKind::Rem,
    OpKind::Remu,
];

/// Any encodable instruction.
fn any_instr(rng: &mut Rng) -> Instr {
    match rng.index(20) {
        0 => Instr::Lui {
            rd: any_reg(rng),
            imm: rng.range_u32(0, 0xfffff) << 12,
        },
        1 => Instr::Auipc {
            rd: any_reg(rng),
            imm: rng.range_u32(0, 0xfffff) << 12,
        },
        2 => Instr::Jal {
            rd: any_reg(rng),
            offset: j_off(rng),
        },
        3 => Instr::Jalr {
            rd: any_reg(rng),
            rs1: any_reg(rng),
            offset: i12(rng),
        },
        4 => Instr::Branch {
            kind: rng.pick(&BRANCH_KINDS),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
            offset: b_off(rng),
        },
        5 => Instr::Load {
            kind: rng.pick(&LOAD_KINDS),
            rd: any_reg(rng),
            rs1: any_reg(rng),
            offset: i12(rng),
        },
        6 => Instr::Store {
            kind: rng.pick(&STORE_KINDS),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
            offset: i12(rng),
        },
        7 => {
            let kind = rng.pick(&OP_IMM_KINDS);
            let imm = match kind {
                OpImmKind::Sll | OpImmKind::Srl | OpImmKind::Sra => i12(rng).rem_euclid(32),
                _ => i12(rng),
            };
            Instr::OpImm {
                kind,
                rd: any_reg(rng),
                rs1: any_reg(rng),
                imm,
            }
        }
        8 => Instr::Op {
            kind: rng.pick(&OP_KINDS),
            rd: any_reg(rng),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
        },
        9 => Instr::PFc { rd: any_reg(rng) },
        10 => Instr::PFn { rd: any_reg(rng) },
        11 => Instr::PSet {
            rd: any_reg(rng),
            rs1: any_reg(rng),
        },
        12 => Instr::PMerge {
            rd: any_reg(rng),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
        },
        13 => Instr::PSyncm,
        14 => Instr::PJalr {
            rd: any_reg(rng),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
        },
        15 => Instr::PJal {
            rd: any_reg(rng),
            rs1: any_reg(rng),
            offset: i12(rng),
        },
        16 => Instr::PLwcv {
            rd: any_reg(rng),
            offset: i12(rng),
        },
        17 => Instr::PSwcv {
            rs1: any_reg(rng),
            rs2: any_reg(rng),
            offset: i12(rng),
        },
        18 => Instr::PLwre {
            rd: any_reg(rng),
            offset: i12(rng),
        },
        _ => Instr::PSwre {
            rs1: any_reg(rng),
            rs2: any_reg(rng),
            offset: i12(rng),
        },
    }
}

/// decode(encode(i)) == i for every valid instruction.
#[test]
fn encode_decode_round_trip() {
    check_cases(512, 0x15a_c0de, |rng, case| {
        let instr = any_instr(rng);
        let word = instr.encode().expect("generated instruction is encodable");
        let back = Instr::decode(word).expect("encoded word decodes");
        assert_eq!(back, instr, "case {case}: {instr:?}");
    });
}

/// Every decodable word re-encodes to itself: decoding is injective and
/// the encoder is its inverse.
#[test]
fn decode_encode_round_trip() {
    check_cases(4096, 0xdec0de, |rng, case| {
        let word = rng.next_u32();
        if let Ok(instr) = Instr::decode(word) {
            let re = instr.encode().expect("decoded instruction re-encodes");
            assert_eq!(re, word, "case {case}: {instr:?}");
        }
    });
}

/// `decode` is total: any 32-bit word either decodes or returns a
/// structured error — it never panics. Beyond uniform random words,
/// mutated near-valid encodings probe the edges of each format (bad
/// funct fields next to good opcodes, reserved X_PAR subcodes, …).
#[test]
fn decode_never_panics() {
    check_cases(65_536, 0xfeed, |rng, _| {
        let _ = Instr::decode(rng.next_u32());
    });
    check_cases(8_192, 0xfeee, |rng, case| {
        let valid = any_instr(rng)
            .encode()
            .expect("generated instruction is encodable");
        let mutated = valid ^ (1 << rng.index(32));
        if let Ok(instr) = Instr::decode(mutated) {
            // If the mutant still decodes, the bijection must hold.
            assert_eq!(
                instr.encode().expect("decoded instruction re-encodes"),
                mutated,
                "case {case}: {instr:?}"
            );
        }
    });
}

/// Disassembly never panics and is never empty.
#[test]
fn display_is_total() {
    check_cases(512, 0xd15, |rng, case| {
        let instr = any_instr(rng);
        assert!(!instr.to_string().is_empty(), "case {case}: {instr:?}");
    });
}

/// Operand accessors agree: `x0` never appears as a live source or
/// destination.
#[test]
fn sources_and_dest_exclude_x0() {
    check_cases(512, 0x0, |rng, case| {
        let instr = any_instr(rng);
        assert!(instr.dest() != Some(Reg::ZERO), "case {case}: {instr:?}");
        for s in instr.sources().into_iter().flatten() {
            assert!(!s.is_zero(), "case {case}: {instr:?}");
        }
    });
}
