//! Property tests: encode/decode is a bijection between the valid [`Instr`]
//! space and its binary image, and disassembly is total.

use lbp_isa::{BranchKind, Instr, LoadKind, OpImmKind, OpKind, Reg, StoreKind};
use proptest::prelude::*;

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|n| Reg::new(n).unwrap())
}

fn i12() -> impl Strategy<Value = i32> {
    -2048i32..=2047
}

fn b_off() -> impl Strategy<Value = i32> {
    (-2048i32..=2047).prop_map(|x| x * 2)
}

fn j_off() -> impl Strategy<Value = i32> {
    (-(1i32 << 19)..=(1 << 19) - 1).prop_map(|x| x * 2)
}

fn any_branch_kind() -> impl Strategy<Value = BranchKind> {
    prop_oneof![
        Just(BranchKind::Eq),
        Just(BranchKind::Ne),
        Just(BranchKind::Lt),
        Just(BranchKind::Ge),
        Just(BranchKind::Ltu),
        Just(BranchKind::Geu),
    ]
}

fn any_load_kind() -> impl Strategy<Value = LoadKind> {
    prop_oneof![
        Just(LoadKind::B),
        Just(LoadKind::H),
        Just(LoadKind::W),
        Just(LoadKind::Bu),
        Just(LoadKind::Hu),
    ]
}

fn any_store_kind() -> impl Strategy<Value = StoreKind> {
    prop_oneof![Just(StoreKind::B), Just(StoreKind::H), Just(StoreKind::W)]
}

fn any_op_imm_kind() -> impl Strategy<Value = OpImmKind> {
    prop_oneof![
        Just(OpImmKind::Add),
        Just(OpImmKind::Slt),
        Just(OpImmKind::Sltu),
        Just(OpImmKind::Xor),
        Just(OpImmKind::Or),
        Just(OpImmKind::And),
        Just(OpImmKind::Sll),
        Just(OpImmKind::Srl),
        Just(OpImmKind::Sra),
    ]
}

fn any_op_kind() -> impl Strategy<Value = OpKind> {
    prop_oneof![
        Just(OpKind::Add),
        Just(OpKind::Sub),
        Just(OpKind::Sll),
        Just(OpKind::Slt),
        Just(OpKind::Sltu),
        Just(OpKind::Xor),
        Just(OpKind::Srl),
        Just(OpKind::Sra),
        Just(OpKind::Or),
        Just(OpKind::And),
        Just(OpKind::Mul),
        Just(OpKind::Mulh),
        Just(OpKind::Mulhsu),
        Just(OpKind::Mulhu),
        Just(OpKind::Div),
        Just(OpKind::Divu),
        Just(OpKind::Rem),
        Just(OpKind::Remu),
    ]
}

/// Any encodable instruction.
fn any_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (any_reg(), 0u32..=0xfffff).prop_map(|(rd, v)| Instr::Lui { rd, imm: v << 12 }),
        (any_reg(), 0u32..=0xfffff).prop_map(|(rd, v)| Instr::Auipc { rd, imm: v << 12 }),
        (any_reg(), j_off()).prop_map(|(rd, offset)| Instr::Jal { rd, offset }),
        (any_reg(), any_reg(), i12()).prop_map(|(rd, rs1, offset)| Instr::Jalr { rd, rs1, offset }),
        (any_branch_kind(), any_reg(), any_reg(), b_off()).prop_map(|(kind, rs1, rs2, offset)| {
            Instr::Branch {
                kind,
                rs1,
                rs2,
                offset,
            }
        }),
        (any_load_kind(), any_reg(), any_reg(), i12()).prop_map(|(kind, rd, rs1, offset)| {
            Instr::Load {
                kind,
                rd,
                rs1,
                offset,
            }
        }),
        (any_store_kind(), any_reg(), any_reg(), i12()).prop_map(|(kind, rs1, rs2, offset)| {
            Instr::Store {
                kind,
                rs1,
                rs2,
                offset,
            }
        }),
        (any_op_imm_kind(), any_reg(), any_reg(), i12()).prop_map(|(kind, rd, rs1, imm)| {
            let imm = match kind {
                OpImmKind::Sll | OpImmKind::Srl | OpImmKind::Sra => imm.rem_euclid(32),
                _ => imm,
            };
            Instr::OpImm { kind, rd, rs1, imm }
        }),
        (any_op_kind(), any_reg(), any_reg(), any_reg())
            .prop_map(|(kind, rd, rs1, rs2)| Instr::Op { kind, rd, rs1, rs2 }),
        any_reg().prop_map(|rd| Instr::PFc { rd }),
        any_reg().prop_map(|rd| Instr::PFn { rd }),
        (any_reg(), any_reg()).prop_map(|(rd, rs1)| Instr::PSet { rd, rs1 }),
        (any_reg(), any_reg(), any_reg()).prop_map(|(rd, rs1, rs2)| Instr::PMerge { rd, rs1, rs2 }),
        Just(Instr::PSyncm),
        (any_reg(), any_reg(), any_reg()).prop_map(|(rd, rs1, rs2)| Instr::PJalr { rd, rs1, rs2 }),
        (any_reg(), any_reg(), i12()).prop_map(|(rd, rs1, offset)| Instr::PJal { rd, rs1, offset }),
        (any_reg(), i12()).prop_map(|(rd, offset)| Instr::PLwcv { rd, offset }),
        (any_reg(), any_reg(), i12()).prop_map(|(rs1, rs2, offset)| Instr::PSwcv {
            rs1,
            rs2,
            offset
        }),
        (any_reg(), i12()).prop_map(|(rd, offset)| Instr::PLwre { rd, offset }),
        (any_reg(), any_reg(), i12()).prop_map(|(rs1, rs2, offset)| Instr::PSwre {
            rs1,
            rs2,
            offset
        }),
    ]
}

proptest! {
    /// decode(encode(i)) == i for every valid instruction.
    #[test]
    fn encode_decode_round_trip(instr in any_instr()) {
        let word = instr.encode().expect("generated instruction is encodable");
        let back = Instr::decode(word).expect("encoded word decodes");
        prop_assert_eq!(back, instr);
    }

    /// Every decodable word re-encodes to itself: decoding is injective and
    /// the encoder is its inverse.
    #[test]
    fn decode_encode_round_trip(word in any::<u32>()) {
        if let Ok(instr) = Instr::decode(word) {
            let re = instr.encode().expect("decoded instruction re-encodes");
            prop_assert_eq!(re, word);
        }
    }

    /// Disassembly never panics and is never empty.
    #[test]
    fn display_is_total(instr in any_instr()) {
        prop_assert!(!instr.to_string().is_empty());
    }

    /// Operand accessors agree: a register reported as a source appears in
    /// the instruction's encoding fields.
    #[test]
    fn sources_and_dest_exclude_x0(instr in any_instr()) {
        prop_assert!(instr.dest() != Some(Reg::ZERO));
        for s in instr.sources().into_iter().flatten() {
            prop_assert!(!s.is_zero());
        }
    }
}
