//! The paper's §6 application (Figs. 16-17): a non-interruptible sensor
//! fusion loop.
//!
//! Four sensors respond in a non-deterministic order; each round, a team
//! of four harts polls them in parallel (`parallel sections`), the
//! hardware barrier closes the round, and the sequential part fuses the
//! four readings (`(s[0]+s[1]+s[2]+s[3])/4`) and writes the result to an
//! actuator. The *ordering of the input values in the static fusion
//! expression* fixes the semantics, so the fused output is deterministic
//! even though the sensors' timings are not.

use lbp_omp::DetOmp;
use lbp_sim::{InputDevice, IoBus, Machine};

/// Number of sensors (fixed by the paper's example).
pub const SENSORS: usize = 4;

/// The sensor-fusion application: `rounds` poll-fuse-actuate iterations.
#[derive(Debug, Clone, Copy)]
pub struct SensorApp {
    /// How many fusion rounds to run (the paper's `while(1)`, bounded).
    pub rounds: usize,
}

impl SensorApp {
    /// Creates the application.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is zero.
    pub fn new(rounds: usize) -> SensorApp {
        assert!(rounds >= 1);
        SensorApp { rounds }
    }

    /// Builds the Deterministic OpenMP program.
    pub fn program(&self) -> DetOmp {
        let mut p = DetOmp::new(SENSORS).data_space("s_vals", (SENSORS * 4) as u32);
        for i in 0..SENSORS {
            let addr = IoBus::input_addr(i);
            p = p.function(
                format!("get_sensor{i}"),
                format!(
                    "    li   a2, {addr}
gs{i}_poll:
    lw   a3, 0(a2)
    bgez a3, gs{i}_poll     # bit 31 set when a value is ready
    slli a3, a3, 1
    srli a3, a3, 1
    la   a4, s_vals
    sw   a3, {off}(a4)
    p_ret",
                    off = 4 * i
                ),
            );
        }
        let out_addr = IoBus::output_addr(0);
        let fuse = format!(
            "    la   a2, s_vals
    lw   a3, 0(a2)
    lw   a4, 4(a2)
    lw   a5, 8(a2)
    lw   a6, 12(a2)
    add  a3, a3, a4
    add  a3, a3, a5
    add  a3, a3, a6
    srai a3, a3, 2
    li   a4, {out_addr}
    sw   a3, 0(a4)
    p_syncm"
        );
        let sections: Vec<String> = (0..SENSORS).map(|i| format!("get_sensor{i}")).collect();
        let names: Vec<&str> = sections.iter().map(String::as_str).collect();
        for _ in 0..self.rounds {
            p = p.parallel_sections(&names).seq(fuse.clone());
        }
        p
    }

    /// Attaches the four scripted sensors and the actuator to a machine.
    /// `schedules[i]` lists `(ready_cycle, value)` pairs for sensor `i`,
    /// one entry per round. Returns the actuator's output-device index.
    pub fn attach_devices(
        &self,
        machine: &mut Machine,
        schedules: [Vec<(u64, u32)>; SENSORS],
    ) -> usize {
        for schedule in schedules {
            assert_eq!(
                schedule.len(),
                self.rounds,
                "one sensor value per round required"
            );
            machine.io_mut().add_input(InputDevice::scripted(schedule));
        }
        machine.io_mut().add_output()
    }

    /// The expected actuator outputs for the given per-round sensor
    /// values (host-side reference).
    pub fn expected(&self, values: &[[u32; SENSORS]]) -> Vec<u32> {
        values
            .iter()
            .map(|round| round.iter().sum::<u32>() / SENSORS as u32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_assembles() {
        let app = SensorApp::new(3);
        let p = app.program();
        p.build().unwrap_or_else(|e| panic!("{e}\n{}", p.source()));
    }

    #[test]
    fn expected_is_the_average() {
        let app = SensorApp::new(2);
        assert_eq!(app.expected(&[[1, 2, 3, 6], [4, 4, 4, 4]]), vec![3, 4]);
    }
}
