//! The paper's §7 experiment: integer matrix multiplication in five
//! versions — *base*, *copy*, *distributed*, *d+c* and *tiled*.
//!
//! Each run multiplies `X (h × h/2)` by `Y (h/2 × h)` into `Z (h × h)`
//! where `h` is the hart count, with one team member per hart and one
//! `Z` row (or one `Z` tile, for *tiled*) per member:
//!
//! - **base** — contiguous matrices, straight three-loop kernel with the
//!   paper's seven-instruction inner loop;
//! - **copy** — copies the current `X` row into the member's local stack
//!   to avoid repeated shared-memory reads;
//! - **distributed** — interleaves the three matrices evenly over the
//!   shared banks (four `X` rows, two `Y` rows and four `Z` rows per
//!   bank), so each member's `X`/`Z` rows live in its own core's bank;
//! - **d+c** — distributed *and* copying;
//! - **tiled** — the classic tiled algorithm: each member computes one
//!   `√h × √h` tile of `Z`, staging `X`/`Y` tiles through its local
//!   stack (`√h·√h/2` elements each, paper §7).

use lbp_asm::Image;
use lbp_isa::SHARED_BASE;
use lbp_omp::DetOmp;
use lbp_sim::{LbpConfig, Machine, SimError};

/// Which of the paper's five versions to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Version {
    /// Contiguous data, plain loops.
    Base,
    /// `X` row staged in the local stack.
    Copy,
    /// Matrices interleaved across shared banks.
    Distributed,
    /// Distributed + copy.
    DistributedCopy,
    /// One `Z` tile per member, tiles staged locally.
    Tiled,
}

impl Version {
    /// All five versions in the paper's presentation order.
    pub const ALL: [Version; 5] = [
        Version::Base,
        Version::Copy,
        Version::Distributed,
        Version::DistributedCopy,
        Version::Tiled,
    ];

    /// The paper's name for this version.
    pub fn name(self) -> &'static str {
        match self {
            Version::Base => "base",
            Version::Copy => "copy",
            Version::Distributed => "distributed",
            Version::DistributedCopy => "d+c",
            Version::Tiled => "tiled",
        }
    }
}

/// Matrix dimensions and data placement, mirrored on the host side so
/// benches can initialize inputs and check outputs without running any
/// simulated code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// `h`: rows of `X`/`Z`, columns of `Y`/`Z`.
    pub n: u32,
    /// `h/2`: columns of `X`, rows of `Y`.
    pub m: u32,
    /// Shared-bank size for banked placement; `None` for contiguous.
    bank_bytes: Option<u32>,
}

impl Layout {
    fn contiguous(n: u32) -> Layout {
        Layout {
            n,
            m: n / 2,
            bank_bytes: None,
        }
    }

    fn banked(n: u32, bank_bytes: u32) -> Layout {
        Layout {
            n,
            m: n / 2,
            bank_bytes: Some(bank_bytes),
        }
    }

    /// Bytes of one `X` row.
    fn x_row_bytes(&self) -> u32 {
        self.m * 4
    }

    /// Bytes of one `Y`/`Z` row.
    fn yz_row_bytes(&self) -> u32 {
        self.n * 4
    }

    /// Address of `X[i][k]`.
    pub fn x(&self, i: u32, k: u32) -> u32 {
        match self.bank_bytes {
            None => SHARED_BASE + i * self.x_row_bytes() + k * 4,
            Some(bank) => SHARED_BASE + (i >> 2) * bank + (i & 3) * self.x_row_bytes() + k * 4,
        }
    }

    /// Address of `Y[k][j]`.
    pub fn y(&self, k: u32, j: u32) -> u32 {
        match self.bank_bytes {
            None => SHARED_BASE + self.n * self.x_row_bytes() + k * self.yz_row_bytes() + j * 4,
            Some(bank) => {
                SHARED_BASE
                    + (k >> 1) * bank
                    + self.x_section_bytes()
                    + (k & 1) * self.yz_row_bytes()
                    + j * 4
            }
        }
    }

    /// Address of `Z[i][j]`.
    pub fn z(&self, i: u32, j: u32) -> u32 {
        match self.bank_bytes {
            None => {
                SHARED_BASE
                    + self.n * self.x_row_bytes()
                    + self.m * self.yz_row_bytes()
                    + i * self.yz_row_bytes()
                    + j * 4
            }
            Some(bank) => {
                SHARED_BASE
                    + (i >> 2) * bank
                    + self.x_section_bytes()
                    + self.y_section_bytes()
                    + (i & 3) * self.yz_row_bytes()
                    + j * 4
            }
        }
    }

    /// Bytes of the per-bank `X` block (four rows).
    fn x_section_bytes(&self) -> u32 {
        4 * self.x_row_bytes()
    }

    /// Bytes of the per-bank `Y` block (two rows).
    fn y_section_bytes(&self) -> u32 {
        2 * self.yz_row_bytes()
    }
}

/// One configured matrix-multiplication experiment.
#[derive(Debug, Clone)]
pub struct Matmul {
    /// Hart count `h` (= team size; `X` is `h × h/2`).
    pub harts: usize,
    /// The version under test.
    pub version: Version,
    /// Shared-bank bytes (placement parameter of the banked versions).
    pub bank_bytes: u32,
}

impl Matmul {
    /// Configures the experiment for `h` harts (must be a power of four
    /// of at least 16, so the tiled version's `√h` tiles are exact) using
    /// the default 64 KiB banks.
    ///
    /// # Panics
    ///
    /// Panics if `harts` is not a power of four ≥ 16.
    pub fn new(harts: usize, version: Version) -> Matmul {
        assert!(
            harts >= 16 && harts.is_power_of_two() && harts.trailing_zeros().is_multiple_of(2),
            "harts must be a power of four of at least 16, got {harts}"
        );
        assert!(
            harts <= 256,
            "the LBP design tops out at 64 cores (256 harts)"
        );
        // Banks are sized so the experiment's working set exactly fills
        // the machine's shared memory (8h² bytes over h/4 banks = 32h
        // bytes per bank): the contiguous layout then spans every bank,
        // and the distributed layout's per-bank block is one full bank —
        // the paper's "memory dimensioned proportionally to the number of
        // harts" (§7).
        Matmul {
            harts,
            version,
            bank_bytes: 32 * harts as u32,
        }
    }

    /// The number of cores the experiment needs (`h / 4`).
    pub fn cores(&self) -> usize {
        self.harts / 4
    }

    /// The machine configuration the experiment runs on.
    pub fn config(&self) -> LbpConfig {
        let mut cfg = LbpConfig::cores(self.cores());
        cfg.shared_bank_bytes = self.bank_bytes;
        cfg
    }

    /// The data placement of this version.
    pub fn layout(&self) -> Layout {
        let n = self.harts as u32;
        match self.version {
            Version::Base | Version::Copy | Version::Tiled => Layout::contiguous(n),
            Version::Distributed | Version::DistributedCopy => Layout::banked(n, self.bank_bytes),
        }
    }

    /// Builds the Deterministic OpenMP program for this version.
    pub fn program(&self) -> DetOmp {
        let body = match self.version {
            Version::Base => self.loop_body(false),
            Version::Copy => self.loop_body(true),
            Version::Distributed => self.banked_body(false),
            Version::DistributedCopy => self.banked_body(true),
            Version::Tiled => self.tiled_body(),
        };
        DetOmp::new(self.harts)
            .function("mm_thread", body)
            .parallel_for("mm_thread")
    }

    /// Assembles the program.
    ///
    /// # Panics
    ///
    /// Panics if the generated assembly is invalid (a bug in the
    /// generator, covered by tests).
    pub fn build(&self) -> Image {
        let p = self.program();
        p.build().unwrap_or_else(|e| panic!("{e}\n{}", p.source()))
    }

    /// Builds the machine with `X` and `Y` filled with ones (the paper's
    /// initialization), ready to run.
    ///
    /// # Errors
    ///
    /// Propagates machine-construction faults.
    pub fn machine(&self) -> Result<Machine, SimError> {
        let image = self.build();
        let mut m = Machine::new(self.config(), &image)?;
        let l = self.layout();
        for i in 0..l.n {
            for k in 0..l.m {
                m.poke_shared(l.x(i, k), 1)?;
            }
        }
        for k in 0..l.m {
            for j in 0..l.n {
                m.poke_shared(l.y(k, j), 1)?;
            }
        }
        Ok(m)
    }

    /// Checks that every sampled element of `Z` equals `h/2` (the product
    /// of all-ones inputs).
    ///
    /// # Errors
    ///
    /// Propagates memory faults from the sampled reads.
    pub fn verify(&self, m: &mut Machine) -> Result<bool, SimError> {
        let l = self.layout();
        // Sampling keeps verification O(n) at the big sizes; the
        // correctness tests sweep everything at h = 16.
        let stride = (l.n / 16).max(1);
        for i in (0..l.n).step_by(stride as usize) {
            for j in (0..l.n).step_by(stride as usize) {
                if m.peek_shared(l.z(i, j))? != l.m {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// Reads the whole `Z` matrix (row-major).
    ///
    /// # Errors
    ///
    /// Propagates memory faults.
    pub fn read_z(&self, m: &mut Machine) -> Result<Vec<u32>, SimError> {
        let l = self.layout();
        let mut out = Vec::with_capacity((l.n * l.n) as usize);
        for i in 0..l.n {
            for j in 0..l.n {
                out.push(m.peek_shared(l.z(i, j))?);
            }
        }
        Ok(out)
    }

    fn dims(&self) -> (u32, u32) {
        (self.harts as u32, self.harts as u32 / 2)
    }

    /// The *base*/*copy* member body: contiguous layout, the paper's
    /// seven-instruction inner loop, one `Z` row per member.
    fn loop_body(&self, copy: bool) -> String {
        let (n, m) = self.dims();
        let l = Layout::contiguous(n);
        let mx = l.x(0, 0);
        let my = l.y(0, 0);
        let mz = l.z(0, 0);
        let xrow = m * 4; // bytes per X row
        let zrow = n * 4;
        let mut s = String::new();
        let e = &mut s;
        use std::fmt::Write;
        // a0 = member index t; one Z row per member: i = t.
        let _ = writeln!(e, "    li   a2, {mx}");
        let _ = writeln!(e, "    li   t2, {xrow}");
        let _ = writeln!(e, "    mul  t3, a0, t2");
        let _ = writeln!(e, "    add  a2, a2, t3          # a2 = &X[i][0]");
        let _ = writeln!(e, "    li   a7, {mz}");
        let _ = writeln!(e, "    li   t2, {zrow}");
        let _ = writeln!(e, "    mul  t3, a0, t2");
        let _ = writeln!(e, "    add  a7, a7, t3          # a7 = &Z[i][0]");
        if copy {
            // Stage the X row in the local stack.
            let _ = writeln!(e, "    addi sp, sp, -{xrow}");
            let _ = writeln!(e, "    mv   t2, a2");
            let _ = writeln!(e, "    mv   t3, sp");
            let _ = writeln!(e, "    addi t5, a2, {xrow}");
            let _ = writeln!(e, "mmc_copy:");
            let _ = writeln!(e, "    lw   t4, 0(t2)");
            let _ = writeln!(e, "    sw   t4, 0(t3)");
            let _ = writeln!(e, "    addi t2, t2, 4");
            let _ = writeln!(e, "    addi t3, t3, 4");
            let _ = writeln!(e, "    bne  t2, t5, mmc_copy");
            let _ = writeln!(e, "    p_syncm");
            let _ = writeln!(e, "    mv   a2, sp           # X row now local");
        }
        let _ = writeln!(e, "    li   a4, {zrow}          # Y stride");
        let _ = writeln!(e, "    li   s7, 0               # j");
        let _ = writeln!(e, "mm_jloop:");
        let _ = writeln!(e, "    li   a6, 0               # tmp");
        let _ = writeln!(e, "    mv   t2, a2");
        let _ = writeln!(e, "    li   t3, {my}");
        let _ = writeln!(e, "    slli t4, s7, 2");
        let _ = writeln!(e, "    add  t3, t3, t4          # &Y[0][j]");
        let _ = writeln!(e, "    addi t5, a2, {xrow}");
        let _ = writeln!(e, "mm_kloop:");
        let _ = writeln!(e, "    lw   s8, 0(t2)");
        let _ = writeln!(e, "    lw   s9, 0(t3)");
        let _ = writeln!(e, "    mul  s10, s8, s9");
        let _ = writeln!(e, "    add  a6, a6, s10");
        let _ = writeln!(e, "    addi t2, t2, 4");
        let _ = writeln!(e, "    add  t3, t3, a4");
        let _ = writeln!(e, "    bne  t2, t5, mm_kloop");
        let _ = writeln!(e, "    sw   a6, 0(a7)");
        let _ = writeln!(e, "    addi a7, a7, 4");
        let _ = writeln!(e, "    addi s7, s7, 1");
        let _ = writeln!(e, "    li   t6, {n}");
        let _ = writeln!(e, "    bne  s7, t6, mm_jloop");
        if copy {
            let _ = writeln!(e, "    addi sp, sp, {xrow}");
        }
        let _ = writeln!(e, "    p_ret");
        s
    }

    /// The *distributed*/*d+c* member body: banked layout. `X` and `Z`
    /// rows of member `t` live in its own core's bank; `Y` rows are
    /// spread two-per-bank, walked as (pair within bank, next bank).
    fn banked_body(&self, copy: bool) -> String {
        let (n, m) = self.dims();
        let l = Layout::banked(n, self.bank_bytes);
        let xrow = m * 4;
        let zrow = n * 4;
        let bank = self.bank_bytes;
        let y0 = l.y(0, 0); // base of Y block in bank 0
        let mut s = String::new();
        let e = &mut s;
        use std::fmt::Write;
        // i = t. X row address: SHARED + (i>>2)*bank + (i&3)*xrow.
        let _ = writeln!(e, "    srli t2, a0, 2");
        let _ = writeln!(e, "    li   t3, {bank}");
        let _ = writeln!(e, "    mul  t2, t2, t3");
        let _ = writeln!(e, "    li   a2, {SHARED_BASE}");
        let _ = writeln!(e, "    add  a2, a2, t2          # bank base");
        let _ = writeln!(e, "    andi t4, a0, 3");
        let _ = writeln!(e, "    mv   a7, a2");
        let _ = writeln!(e, "    li   t5, {xrow}");
        let _ = writeln!(e, "    mul  t6, t4, t5");
        let _ = writeln!(e, "    add  a2, a2, t6          # &X[i][0]");
        let zoff = l.x_section_bytes() + l.y_section_bytes();
        let _ = writeln!(e, "    li   t5, {zrow}");
        let _ = writeln!(e, "    mul  t6, t4, t5");
        let _ = writeln!(e, "    add  a7, a7, t6");
        let _ = writeln!(e, "    li   t5, {zoff}");
        let _ = writeln!(e, "    add  a7, a7, t5          # &Z[i][0]");
        if copy {
            let _ = writeln!(e, "    addi sp, sp, -{xrow}");
            let _ = writeln!(e, "    mv   t2, a2");
            let _ = writeln!(e, "    mv   t3, sp");
            let _ = writeln!(e, "    addi t5, a2, {xrow}");
            let _ = writeln!(e, "mmdc_copy:");
            let _ = writeln!(e, "    lw   t4, 0(t2)");
            let _ = writeln!(e, "    sw   t4, 0(t3)");
            let _ = writeln!(e, "    addi t2, t2, 4");
            let _ = writeln!(e, "    addi t3, t3, 4");
            let _ = writeln!(e, "    bne  t2, t5, mmdc_copy");
            let _ = writeln!(e, "    p_syncm");
            let _ = writeln!(e, "    mv   a2, sp");
        }
        // Y rows go two-per-bank: the walk alternates between the
        // in-bank row stride and the hop to the next bank's Y block. An
        // xor toggles the stride, keeping the inner loop at eight
        // instructions (one more than base).
        let in_bank = zrow;
        let hop = bank - zrow;
        let _ = writeln!(
            e,
            "    li   s11, {}             # stride toggle",
            in_bank ^ hop
        );
        let _ = writeln!(e, "    li   s7, 0               # j");
        let _ = writeln!(e, "mmd_jloop:");
        let _ = writeln!(e, "    li   a6, 0");
        let _ = writeln!(e, "    mv   t2, a2");
        let _ = writeln!(e, "    li   t3, {y0}");
        let _ = writeln!(e, "    slli t4, s7, 2");
        let _ = writeln!(e, "    add  t3, t3, t4          # &Y[0][j] in bank 0");
        let _ = writeln!(e, "    addi t5, a2, {xrow}");
        let _ = writeln!(e, "    li   a4, {in_bank}");
        let _ = writeln!(e, "mmd_kloop:");
        let _ = writeln!(e, "    lw   s8, 0(t2)");
        let _ = writeln!(e, "    lw   s9, 0(t3)");
        let _ = writeln!(e, "    mul  s10, s8, s9");
        let _ = writeln!(e, "    add  a6, a6, s10");
        let _ = writeln!(e, "    addi t2, t2, 4");
        let _ = writeln!(e, "    add  t3, t3, a4");
        let _ = writeln!(e, "    xor  a4, a4, s11");
        let _ = writeln!(e, "    bne  t2, t5, mmd_kloop");
        let _ = writeln!(e, "    sw   a6, 0(a7)");
        let _ = writeln!(e, "    addi a7, a7, 4");
        let _ = writeln!(e, "    addi s7, s7, 1");
        let _ = writeln!(e, "    li   t6, {n}");
        let _ = writeln!(e, "    bne  s7, t6, mmd_jloop");
        if copy {
            let _ = writeln!(e, "    addi sp, sp, {xrow}");
        }
        let _ = writeln!(e, "    p_ret");
        s
    }

    /// The *tiled* member body: one `√h × √h` tile of `Z` per member,
    /// staging `X`/`Y` tiles through the local stack (five loop levels:
    /// kk, copy, i2, j2, k2 — the paper's "classic five nested loops").
    fn tiled_body(&self) -> String {
        let (n, m) = self.dims();
        let l = Layout::contiguous(n);
        let mx = l.x(0, 0);
        let my = l.y(0, 0);
        let mz = l.z(0, 0);
        let th = (self.harts as f64).sqrt() as u32; // tile side, exact
        debug_assert_eq!(th * th, n);
        let thk = th / 2; // X-tile columns == Y-tile rows
        let xrow = m * 4;
        let zrow = n * 4;
        let zt_bytes = th * th * 4;
        let xt_bytes = th * thk * 4;
        let yt_bytes = thk * th * 4;
        let frame = zt_bytes + xt_bytes + yt_bytes;
        let log_th = th.trailing_zeros();
        let mut s = String::new();
        let e = &mut s;
        use std::fmt::Write;
        let _ = writeln!(e, "    addi sp, sp, -{frame}");
        // zt at sp, xt at sp+zt, yt at sp+zt+xt.
        let _ = writeln!(e, "    srli s4, a0, {log_th}     # ti");
        let _ = writeln!(e, "    andi s5, a0, {mask}       # tj", mask = th - 1);
        // Zero the Z tile.
        let _ = writeln!(e, "    mv   t2, sp");
        let _ = writeln!(e, "    addi t3, sp, {zt_bytes}");
        let _ = writeln!(e, "mmt_zz:");
        let _ = writeln!(e, "    sw   zero, 0(t2)");
        let _ = writeln!(e, "    addi t2, t2, 4");
        let _ = writeln!(e, "    bne  t2, t3, mmt_zz");
        let _ = writeln!(e, "    li   s6, 0                # kk (tile index)");
        let _ = writeln!(e, "mmt_kk:");
        // --- copy X tile: rows ti*th .. +th, cols kk*thk .. +thk ---
        // src(i2) = mx + (ti*th+i2)*xrow + kk*thk*4 ; dst = sp+zt + i2*thk*4
        let _ = writeln!(e, "    slli t2, s4, {lt}", lt = log_th);
        let _ = writeln!(e, "    li   t3, {xrow}");
        let _ = writeln!(e, "    mul  t2, t2, t3");
        let _ = writeln!(e, "    li   t4, {mx}");
        let _ = writeln!(e, "    add  t2, t2, t4");
        let _ = writeln!(e, "    slli t4, s6, {lk}", lk = thk.trailing_zeros() + 2);
        let _ = writeln!(e, "    add  t2, t2, t4          # src X");
        let _ = writeln!(e, "    addi t3, sp, {zt_bytes}  # dst xt");
        let _ = writeln!(e, "    li   s7, 0                # i2");
        let _ = writeln!(e, "mmt_cpx_row:");
        let _ = writeln!(e, "    mv   t4, t2");
        let _ = writeln!(e, "    addi t5, t2, {tw}", tw = thk * 4);
        let _ = writeln!(e, "mmt_cpx:");
        let _ = writeln!(e, "    lw   t6, 0(t4)");
        let _ = writeln!(e, "    sw   t6, 0(t3)");
        let _ = writeln!(e, "    addi t4, t4, 4");
        let _ = writeln!(e, "    addi t3, t3, 4");
        let _ = writeln!(e, "    bne  t4, t5, mmt_cpx");
        let _ = writeln!(e, "    addi t2, t2, {xrow}");
        let _ = writeln!(e, "    addi s7, s7, 1");
        let _ = writeln!(e, "    li   t6, {th}");
        let _ = writeln!(e, "    bne  s7, t6, mmt_cpx_row");
        // --- copy Y tile: rows kk*thk .. +thk, cols tj*th .. +th ---
        let _ = writeln!(e, "    slli t2, s6, {lk}", lk = thk.trailing_zeros());
        let _ = writeln!(e, "    li   t3, {zrow}");
        let _ = writeln!(e, "    mul  t2, t2, t3");
        let _ = writeln!(e, "    li   t4, {my}");
        let _ = writeln!(e, "    add  t2, t2, t4");
        let _ = writeln!(e, "    slli t4, s5, {lt2}", lt2 = log_th + 2);
        let _ = writeln!(e, "    add  t2, t2, t4          # src Y");
        let _ = writeln!(
            e,
            "    addi t3, sp, {off}        # dst yt",
            off = zt_bytes + xt_bytes
        );
        let _ = writeln!(e, "    li   s7, 0                # k2");
        let _ = writeln!(e, "mmt_cpy_row:");
        let _ = writeln!(e, "    mv   t4, t2");
        let _ = writeln!(e, "    addi t5, t2, {tw}", tw = th * 4);
        let _ = writeln!(e, "mmt_cpy:");
        let _ = writeln!(e, "    lw   t6, 0(t4)");
        let _ = writeln!(e, "    sw   t6, 0(t3)");
        let _ = writeln!(e, "    addi t4, t4, 4");
        let _ = writeln!(e, "    addi t3, t3, 4");
        let _ = writeln!(e, "    bne  t4, t5, mmt_cpy");
        let _ = writeln!(e, "    addi t2, t2, {zrow}");
        let _ = writeln!(e, "    addi s7, s7, 1");
        let _ = writeln!(e, "    li   t6, {thk}");
        let _ = writeln!(e, "    bne  s7, t6, mmt_cpy_row");
        let _ = writeln!(
            e,
            "    p_syncm                   # tiles staged; zt from last kk settled"
        );
        // --- compute: zt[i2][j2] += xt[i2][k2] * yt[k2][j2] ---
        let _ = writeln!(e, "    li   s7, 0                # i2");
        let _ = writeln!(e, "mmt_ci:");
        let _ = writeln!(e, "    li   s8, 0                # j2");
        let _ = writeln!(e, "mmt_cj:");
        let _ = writeln!(e, "    slli t2, s7, {lt2}", lt2 = log_th + 2);
        let _ = writeln!(e, "    add  t2, t2, sp");
        let _ = writeln!(e, "    slli t3, s8, 2");
        let _ = writeln!(e, "    add  t2, t2, t3          # &zt[i2][j2]");
        let _ = writeln!(e, "    lw   a6, 0(t2)");
        // xt row i2 pointer, yt column j2 pointer.
        let _ = writeln!(e, "    slli t4, s7, {lx}", lx = thk.trailing_zeros() + 2);
        let _ = writeln!(e, "    addi t4, t4, {zt_bytes}");
        let _ = writeln!(e, "    add  t4, t4, sp          # &xt[i2][0]");
        let _ = writeln!(e, "    slli t5, s8, 2");
        let _ = writeln!(e, "    addi t5, t5, {off}", off = zt_bytes + xt_bytes);
        let _ = writeln!(e, "    add  t5, t5, sp          # &yt[0][j2]");
        let _ = writeln!(e, "    addi t6, t4, {tw}", tw = thk * 4);
        let _ = writeln!(e, "mmt_ck:");
        let _ = writeln!(e, "    lw   s9, 0(t4)");
        let _ = writeln!(e, "    lw   s10, 0(t5)");
        let _ = writeln!(e, "    mul  s11, s9, s10");
        let _ = writeln!(e, "    add  a6, a6, s11");
        let _ = writeln!(e, "    addi t4, t4, 4");
        let _ = writeln!(e, "    addi t5, t5, {tw}", tw = th * 4);
        let _ = writeln!(e, "    bne  t4, t6, mmt_ck");
        let _ = writeln!(e, "    sw   a6, 0(t2)");
        let _ = writeln!(e, "    addi s8, s8, 1");
        let _ = writeln!(e, "    li   t6, {th}");
        let _ = writeln!(e, "    bne  s8, t6, mmt_cj");
        let _ = writeln!(e, "    addi s7, s7, 1");
        let _ = writeln!(e, "    li   t6, {th}");
        let _ = writeln!(e, "    bne  s7, t6, mmt_ci");
        let _ = writeln!(e, "    addi s6, s6, 1");
        let _ = writeln!(e, "    li   t6, {th}");
        let _ = writeln!(e, "    bne  s6, t6, mmt_kk");
        // --- write the Z tile out ---
        let _ = writeln!(e, "    p_syncm                   # zt writes settled");
        let _ = writeln!(e, "    slli t2, s4, {lt}", lt = log_th);
        let _ = writeln!(e, "    li   t3, {zrow}");
        let _ = writeln!(e, "    mul  t2, t2, t3          # ti*th rows in bytes");
        let _ = writeln!(e, "    li   t4, {mz}");
        let _ = writeln!(e, "    add  t2, t2, t4");
        let _ = writeln!(e, "    slli t4, s5, {lt2}", lt2 = log_th + 2);
        let _ = writeln!(e, "    add  t2, t2, t4          # &Z[ti*th][tj*th]");
        let _ = writeln!(e, "    mv   t3, sp               # zt");
        let _ = writeln!(e, "    li   s7, 0                # i2");
        let _ = writeln!(e, "mmt_st_row:");
        let _ = writeln!(e, "    mv   t4, t2");
        let _ = writeln!(e, "    addi t5, t3, {tw}", tw = th * 4);
        let _ = writeln!(e, "mmt_st:");
        let _ = writeln!(e, "    lw   t6, 0(t3)");
        let _ = writeln!(e, "    sw   t6, 0(t4)");
        let _ = writeln!(e, "    addi t3, t3, 4");
        let _ = writeln!(e, "    addi t4, t4, 4");
        let _ = writeln!(e, "    bne  t3, t5, mmt_st");
        let _ = writeln!(e, "    addi t2, t2, {zrow}");
        let _ = writeln!(e, "    addi s7, s7, 1");
        let _ = writeln!(e, "    li   t6, {th}");
        let _ = writeln!(e, "    bne  s7, t6, mmt_st_row");
        // The frame can exceed the 12-bit addi range at h = 256.
        let _ = writeln!(e, "    li   t6, {frame}");
        let _ = writeln!(e, "    add  sp, sp, t6");
        let _ = writeln!(e, "    p_ret");
        s
    }
}
