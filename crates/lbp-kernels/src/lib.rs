//! # lbp-kernels — the paper's workloads
//!
//! Ready-made Deterministic OpenMP programs for the LBP machine:
//!
//! - [`matmul`]: the §7 experiment — integer matrix multiplication in the
//!   paper's five versions (base, copy, distributed, d+c, tiled);
//! - [`simple`]: smaller kernels used by the examples and extra benches —
//!   parallel vector fill/scale, a 3-point stencil, and a dot-product
//!   reduction over the backward result line;
//! - [`sensor`]: the §6 non-interruptible I/O application — four sensor
//!   sections fused and written to an actuator (paper Figs. 16-17).
//!
//! # Examples
//!
//! Run the paper's base matmul at the smallest size (16 harts, 4 cores):
//!
//! ```
//! use lbp_kernels::matmul::{Matmul, Version};
//!
//! let mm = Matmul::new(16, Version::Base);
//! let mut machine = mm.machine()?;
//! machine.run(10_000_000)?;
//! assert!(mm.verify(&mut machine)?);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod matmul;
pub mod sensor;
pub mod simple;
