//! Small parallel kernels: vector fill/scale, a 3-point stencil, and a
//! dot-product reduction — the building blocks the examples and ablation
//! benches use.

use lbp_omp::{DetOmp, ReduceOp};

/// A parallel vector program over `harts` members, each owning a
/// contiguous chunk of `len` elements (so `len` must be a multiple of the
/// team size).
#[derive(Debug, Clone, Copy)]
pub struct VectorParams {
    /// Team size.
    pub harts: usize,
    /// Total element count.
    pub len: usize,
}

impl VectorParams {
    /// Creates the parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `len` is a positive multiple of `harts`.
    pub fn new(harts: usize, len: usize) -> VectorParams {
        assert!(harts >= 1 && len >= harts && len.is_multiple_of(harts));
        VectorParams { harts, len }
    }

    /// Elements per member.
    pub fn chunk(&self) -> usize {
        self.len / self.harts
    }
}

/// The paper's Fig. 4 program: a producing region fills `v[i] = i`, the
/// hardware barrier separates it from a consuming region computing
/// `w[i] = v[i] * scale`.
pub fn set_get_program(p: VectorParams, scale: i64) -> DetOmp {
    let chunk = p.chunk();
    DetOmp::new(p.harts)
        .data_space("vec_v", (p.len * 4) as u32)
        .data_space("vec_w", (p.len * 4) as u32)
        .function(
            "vset",
            format!(
                "    li   t2, {chunk}
    mul  t3, a0, t2          # first index of the chunk
    la   t4, vec_v
    slli t5, t3, 2
    add  t4, t4, t5
    addi t6, t3, {chunk}
vset_loop:
    sw   t3, 0(t4)
    addi t4, t4, 4
    addi t3, t3, 1
    bne  t3, t6, vset_loop
    p_ret"
            ),
        )
        .function(
            "vget",
            format!(
                "    li   t2, {chunk}
    mul  t3, a0, t2
    la   t4, vec_v
    la   t5, vec_w
    slli t6, t3, 2
    add  t4, t4, t6
    add  t5, t5, t6
    li   a2, {scale}
    addi t6, t3, {chunk}
vget_loop:
    lw   a3, 0(t4)
    mul  a3, a3, a2
    sw   a3, 0(t5)
    addi t4, t4, 4
    addi t5, t5, 4
    addi t3, t3, 1
    bne  t3, t6, vget_loop
    p_ret"
            ),
        )
        .parallel_for("vset")
        .parallel_for("vget")
}

/// A 3-point stencil: `out[i] = in[i-1] + 2*in[i] + in[i+1]` over the
/// interior, chunked across the team, with the producing fill region
/// barrier-separated from the stencil region.
pub fn stencil_program(p: VectorParams) -> DetOmp {
    let chunk = p.chunk();
    let len = p.len;
    DetOmp::new(p.harts)
        .data_space("st_in", (len * 4) as u32)
        .data_space("st_out", (len * 4) as u32)
        .function(
            "st_fill",
            format!(
                "    li   t2, {chunk}
    mul  t3, a0, t2
    la   t4, st_in
    slli t5, t3, 2
    add  t4, t4, t5
    addi t6, t3, {chunk}
stf_loop:
    andi a2, t3, 15          # a small periodic pattern
    sw   a2, 0(t4)
    addi t4, t4, 4
    addi t3, t3, 1
    bne  t3, t6, stf_loop
    p_ret"
            ),
        )
        .function(
            "st_apply",
            format!(
                "    li   t2, {chunk}
    mul  t3, a0, t2          # i0
    addi a4, t3, {chunk}     # end
    # clamp to the interior [1, len-1)
    bnez t3, st_lo_ok
    li   t3, 1
st_lo_ok:
    li   t5, {hi}
    blt  a4, t5, st_hi_ok
    mv   a4, t5
st_hi_ok:
    bge  t3, a4, st_done
    la   t6, st_in
    slli a2, t3, 2
    add  t6, t6, a2          # &in[i]
    la   a5, st_out
    add  a5, a5, a2          # &out[i]
st_loop:
    lw   a2, -4(t6)
    lw   a3, 0(t6)
    lw   a6, 4(t6)
    slli a3, a3, 1
    add  a2, a2, a3
    add  a2, a2, a6
    sw   a2, 0(a5)
    addi t6, t6, 4
    addi a5, a5, 4
    addi t3, t3, 1
    bne  t3, a4, st_loop
st_done:
    p_ret",
                hi = len - 1
            ),
        )
        .parallel_for("st_fill")
        .parallel_for("st_apply")
}

/// A dot product: each member multiplies-and-accumulates its chunk of two
/// vectors (filled with `i` and the constant 2) and sends the partial sum
/// to the join hart over the backward line; hart 0 folds the partials.
pub fn dot_product_program(p: VectorParams) -> DetOmp {
    let chunk = p.chunk();
    DetOmp::new(p.harts)
        .data_space("dp_a", (p.len * 4) as u32)
        .data_space("dp_b", (p.len * 4) as u32)
        .data_space("dp_sum", 4)
        .function(
            "dp_fill",
            format!(
                "    li   t2, {chunk}
    mul  t3, a0, t2
    la   t4, dp_a
    la   t5, dp_b
    slli t6, t3, 2
    add  t4, t4, t6
    add  t5, t5, t6
    li   a2, 2
    addi t6, t3, {chunk}
dpf_loop:
    sw   t3, 0(t4)
    sw   a2, 0(t5)
    addi t4, t4, 4
    addi t5, t5, 4
    addi t3, t3, 1
    bne  t3, t6, dpf_loop
    p_ret"
            ),
        )
        .function(
            "dp_mac",
            format!(
                "    li   t2, {chunk}
    mul  t3, a0, t2
    la   t4, dp_a
    la   t5, dp_b
    slli t6, t3, 2
    add  t4, t4, t6
    add  t5, t5, t6
    addi t6, t3, {chunk}
    li   a2, 0
dpm_loop:
    lw   a3, 0(t4)
    lw   a4, 0(t5)
    mul  a5, a3, a4
    add  a2, a2, a5
    addi t4, t4, 4
    addi t5, t5, 4
    addi t3, t3, 1
    bne  t3, t6, dpm_loop
    p_swre a2, t1, 0
    p_ret"
            ),
        )
        .parallel_for("dp_fill")
        .parallel_for("dp_mac")
        .collect_reduction(0, p.harts, ReduceOp::Add, "dp_sum")
}

/// The host-side expected dot-product value for [`dot_product_program`].
pub fn dot_product_expected(p: VectorParams) -> u64 {
    (0..p.len as u64).map(|i| i * 2).sum()
}

/// The host-side expected stencil output for [`stencil_program`].
pub fn stencil_expected(p: VectorParams) -> Vec<u32> {
    let input: Vec<u32> = (0..p.len as u32).map(|i| i & 15).collect();
    let mut out = vec![0; p.len];
    for i in 1..p.len - 1 {
        out[i] = input[i - 1] + 2 * input[i] + input[i + 1];
    }
    out
}

/// A three-phase parallel prefix sum (exclusive scan): members sum their
/// chunks into `ps_partial[t]`; a sequential step scans the partials into
/// per-member offsets; a second region writes each chunk's running sums.
/// Two hardware barriers, no locks.
pub fn prefix_sum_program(p: VectorParams) -> DetOmp {
    let chunk = p.chunk();
    let harts = p.harts;
    DetOmp::new(p.harts)
        .data_space("ps_in", (p.len * 4) as u32)
        .data_space("ps_out", (p.len * 4) as u32)
        .data_space("ps_partial", (p.harts * 4) as u32)
        .function(
            "ps_fill",
            format!(
                "    li   t2, {chunk}
    mul  t3, a0, t2
    la   t4, ps_in
    slli t5, t3, 2
    add  t4, t4, t5
    addi t6, t3, {chunk}
psf_loop:
    andi a2, t3, 7
    addi a2, a2, 1            # values 1..8, repeating
    sw   a2, 0(t4)
    addi t4, t4, 4
    addi t3, t3, 1
    bne  t3, t6, psf_loop
    p_ret"
            ),
        )
        .function(
            "ps_local_sum",
            format!(
                "    li   t2, {chunk}
    mul  t3, a0, t2
    la   t4, ps_in
    slli t5, t3, 2
    add  t4, t4, t5
    addi t6, t3, {chunk}
    li   a2, 0
psl_loop:
    lw   a3, 0(t4)
    add  a2, a2, a3
    addi t4, t4, 4
    addi t3, t3, 1
    bne  t3, t6, psl_loop
    la   t4, ps_partial
    slli t5, a0, 2
    add  t4, t4, t5
    sw   a2, 0(t4)
    p_ret"
            ),
        )
        .parallel_for("ps_fill")
        .parallel_for("ps_local_sum")
        // Sequential exclusive scan of the per-member partials.
        .seq(format!(
            "    la   a2, ps_partial
    li   a3, 0                # running total
    li   a4, 0                # t
    li   a5, {harts}
pscan_loop:
    lw   a6, 0(a2)
    p_syncm
    sw   a3, 0(a2)            # partial[t] becomes the exclusive offset
    add  a3, a3, a6
    addi a2, a2, 4
    addi a4, a4, 1
    bne  a4, a5, pscan_loop
    p_syncm"
        ))
        .function(
            "ps_apply",
            format!(
                "    la   t4, ps_partial
    slli t5, a0, 2
    add  t4, t4, t5
    lw   a2, 0(t4)            # my exclusive offset
    li   t2, {chunk}
    mul  t3, a0, t2
    la   t4, ps_in
    la   t5, ps_out
    slli t6, t3, 2
    add  t4, t4, t6
    add  t5, t5, t6
    addi t6, t3, {chunk}
psa_loop:
    lw   a3, 0(t4)
    sw   a2, 0(t5)            # exclusive: write before adding
    add  a2, a2, a3
    addi t4, t4, 4
    addi t5, t5, 4
    addi t3, t3, 1
    bne  t3, t6, psa_loop
    p_ret"
            ),
        )
        .parallel_for("ps_apply")
}

/// The host-side reference for [`prefix_sum_program`].
pub fn prefix_sum_expected(p: VectorParams) -> Vec<u32> {
    let input: Vec<u32> = (0..p.len as u32).map(|i| (i & 7) + 1).collect();
    let mut out = Vec::with_capacity(p.len);
    let mut acc = 0u32;
    for v in input {
        out.push(acc);
        acc += v;
    }
    out
}

/// Bins of the parallel histogram.
pub const HISTOGRAM_BINS: usize = 16;

/// A race-free parallel histogram: members count their chunk into a
/// *private* row of a `harts x 16` matrix (no atomics exist and none are
/// needed), then a second region of 16 members folds one bin column each.
pub fn histogram_program(p: VectorParams) -> DetOmp {
    let chunk = p.chunk();
    let harts = p.harts;
    let bins = HISTOGRAM_BINS;
    DetOmp::new(p.harts)
        .data_space("hg_in", (p.len * 4) as u32)
        .data_space("hg_rows", (p.harts * bins * 4) as u32)
        .data_space("hg_out", (bins * 4) as u32)
        .function(
            "hg_fill",
            format!(
                "    li   t2, {chunk}
    mul  t3, a0, t2
    la   t4, hg_in
    slli t5, t3, 2
    add  t4, t4, t5
    addi t6, t3, {chunk}
hgf_loop:
    slli a2, t3, 1
    addi a2, a2, 3
    andi a2, a2, 15           # a mixing pattern over the 16 bins
    sw   a2, 0(t4)
    addi t4, t4, 4
    addi t3, t3, 1
    bne  t3, t6, hgf_loop
    p_ret"
            ),
        )
        .function(
            "hg_count",
            format!(
                "    li   t2, {chunk}
    mul  t3, a0, t2
    la   t4, hg_in
    slli t5, t3, 2
    add  t4, t4, t5
    addi t6, t3, {chunk}
    la   a2, hg_rows
    slli t5, a0, {row_shift}
    add  a2, a2, t5           # my private row
hgc_loop:
    lw   a3, 0(t4)
    slli a3, a3, 2
    add  a3, a3, a2           # &row[bin]
    lw   a4, 0(a3)
    p_syncm                   # read-modify-write of my own row
    addi a4, a4, 1
    sw   a4, 0(a3)
    addi t4, t4, 4
    addi t3, t3, 1
    bne  t3, t6, hgc_loop
    p_ret",
                row_shift = (bins * 4).trailing_zeros()
            ),
        )
        .function(
            "hg_fold",
            format!(
                "    la   t2, hg_rows
    slli t3, a0, 2
    add  t2, t2, t3           # column a0, row 0
    li   a2, 0
    li   t4, 0
hgr_loop:
    lw   a3, 0(t2)
    add  a2, a2, a3
    addi t2, t2, {row_bytes}
    addi t4, t4, 1
    li   t5, {harts}
    bne  t4, t5, hgr_loop
    la   t2, hg_out
    add  t2, t2, t3
    sw   a2, 0(t2)
    p_ret",
                row_bytes = bins * 4
            ),
        )
        .parallel_for("hg_fill")
        .parallel_for("hg_count")
        .parallel_for_n("hg_fold", bins)
}

/// The host-side reference for [`histogram_program`].
pub fn histogram_expected(p: VectorParams) -> Vec<u32> {
    let mut out = vec![0u32; HISTOGRAM_BINS];
    for i in 0..p.len as u32 {
        out[(((i << 1) + 3) & 15) as usize] += 1;
    }
    out
}

/// An odd-even transposition sort over `harts` elements: `harts` rounds,
/// each a parallel region whose member `i` compare-swaps the pair
/// `(a[i], a[i+1])` when `i`'s parity matches the round's. The hardware
/// barrier between rounds is the only synchronization — `harts` barriers
/// for a full sort, which only works because LBP's barrier costs tens of
/// cycles, not microseconds.
pub fn odd_even_sort_program(harts: usize, seed_stride: i64) -> DetOmp {
    assert!((2..=256).contains(&harts));
    let n = harts;
    let mut p = DetOmp::new(harts).data_space("oe_a", (n * 4) as u32);
    // Fill with a decreasing, striding pattern (worst case for bubble
    // family sorts).
    p = p.function(
        "oe_fill",
        format!(
            "    li   t2, {n}
    sub  t2, t2, a0
    li   t3, {seed_stride}
    mul  t2, t2, t3
    la   t4, oe_a
    slli t5, a0, 2
    add  t4, t4, t5
    sw   t2, 0(t4)
    p_ret"
        ),
    );
    for parity in 0..2 {
        p = p.function(
            format!("oe_pass{parity}"),
            format!(
                "    andi t2, a0, 1
    li   t3, {parity}
    bne  t2, t3, oe_skip{parity}   # wrong parity: idle this round
    li   t3, {last}
    bge  a0, t3, oe_skip{parity}   # no right neighbour
    la   t4, oe_a
    slli t5, a0, 2
    add  t4, t4, t5
    lw   t6, 0(t4)
    lw   a2, 4(t4)
    bge  a2, t6, oe_skip{parity}   # already ordered
    sw   a2, 0(t4)
    sw   t6, 4(t4)
oe_skip{parity}:
    p_ret",
                last = n - 1
            ),
        );
    }
    p = p.parallel_for("oe_fill");
    for round in 0..n {
        p = p.parallel_for(format!("oe_pass{}", round % 2));
    }
    p
}

/// Host reference for [`odd_even_sort_program`]: the sorted fill pattern.
pub fn odd_even_sort_expected(harts: usize, seed_stride: i64) -> Vec<i64> {
    let n = harts as i64;
    let mut v: Vec<i64> = (0..n).map(|i| (n - i) * seed_stride).collect();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programs_assemble() {
        let p = VectorParams::new(8, 64);
        for prog in [
            set_get_program(p, 3),
            stencil_program(p),
            dot_product_program(p),
            prefix_sum_program(p),
            histogram_program(p),
        ] {
            prog.build()
                .unwrap_or_else(|e| panic!("{e}\n{}", prog.source()));
        }
    }

    #[test]
    #[should_panic]
    fn uneven_chunking_rejected() {
        let _ = VectorParams::new(8, 63);
    }
}
