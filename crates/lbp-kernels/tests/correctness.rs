//! Functional correctness of every kernel, run end-to-end on the
//! simulator.

use lbp_kernels::matmul::{Matmul, Version};
use lbp_kernels::sensor::SensorApp;
use lbp_kernels::simple::{
    dot_product_expected, dot_product_program, set_get_program, stencil_expected, stencil_program,
    VectorParams,
};
use lbp_sim::{LbpConfig, Machine};

#[test]
fn matmul_all_versions_correct_at_16_harts() {
    for version in Version::ALL {
        let mm = Matmul::new(16, version);
        let mut m = mm.machine().unwrap();
        m.run(10_000_000)
            .unwrap_or_else(|e| panic!("{} failed: {e}", version.name()));
        let z = mm.read_z(&mut m).unwrap();
        assert!(
            z.iter().all(|&v| v == 8),
            "{}: Z must be all 8 (h/2), got {:?}...",
            version.name(),
            &z[..8]
        );
    }
}

#[test]
fn matmul_base_and_tiled_correct_at_64_harts() {
    for version in [Version::Base, Version::Tiled, Version::Distributed] {
        let mm = Matmul::new(64, version);
        let mut m = mm.machine().unwrap();
        m.run(50_000_000)
            .unwrap_or_else(|e| panic!("{} failed: {e}", version.name()));
        assert!(
            mm.verify(&mut m).unwrap(),
            "{}: sampled Z values must equal 32",
            version.name()
        );
    }
}

#[test]
fn matmul_versions_retire_different_instruction_counts() {
    // copy/tiled trade extra instructions for locality; the counts must
    // differ from base (the paper's Fig. 19-21 third histogram).
    let retired = |v: Version| {
        let mm = Matmul::new(16, v);
        let mut m = mm.machine().unwrap();
        m.run(10_000_000).unwrap();
        m.stats().retired()
    };
    let base = retired(Version::Base);
    let copy = retired(Version::Copy);
    let tiled = retired(Version::Tiled);
    assert!(copy > base, "copy adds staging instructions");
    assert!(tiled > base, "tiling adds staging + loop control");
    // The inner loop dominates: base is within 2x of pure 7*h^3/2.
    let inner = 7 * 16u64.pow(3) / 2;
    assert!(base as f64 >= inner as f64);
    assert!(
        (base as f64) < 2.0 * inner as f64,
        "base {base} vs inner {inner}"
    );
}

#[test]
fn set_get_scales_every_element() {
    let p = VectorParams::new(8, 64);
    let prog = set_get_program(p, 3);
    let image = prog.build().unwrap();
    let mut m = Machine::new(LbpConfig::cores(2), &image).unwrap();
    m.run(10_000_000).unwrap();
    let w = image.symbol("vec_w").unwrap();
    for i in 0..64u32 {
        assert_eq!(m.peek_shared(w + 4 * i).unwrap(), 3 * i);
    }
}

#[test]
fn stencil_matches_host_reference() {
    let p = VectorParams::new(8, 64);
    let prog = stencil_program(p);
    let image = prog.build().unwrap();
    let mut m = Machine::new(LbpConfig::cores(2), &image).unwrap();
    m.run(10_000_000).unwrap();
    let out = image.symbol("st_out").unwrap();
    let expect = stencil_expected(p);
    for (i, &want) in expect.iter().enumerate().take(63).skip(1) {
        assert_eq!(
            m.peek_shared(out + 4 * i as u32).unwrap(),
            want,
            "element {i}"
        );
    }
}

#[test]
fn dot_product_reduces_over_backward_line() {
    let p = VectorParams::new(8, 64);
    let prog = dot_product_program(p);
    let image = prog.build().unwrap();
    let mut m = Machine::new(LbpConfig::cores(2), &image).unwrap();
    m.run(10_000_000).unwrap();
    let sum = image.symbol("dp_sum").unwrap();
    assert_eq!(m.peek_shared(sum).unwrap() as u64, dot_product_expected(p));
}

#[test]
fn sensor_fusion_output_is_deterministic_under_jitter() {
    let app = SensorApp::new(2);
    let image = app.program().build().unwrap();
    let values = [[10, 20, 30, 40], [8, 8, 8, 8]];
    let run_with = |schedules: [Vec<(u64, u32)>; 4]| {
        let mut m = Machine::new(LbpConfig::cores(1), &image).unwrap();
        let out = app.attach_devices(&mut m, schedules);
        m.run(10_000_000).unwrap();
        m.io_mut().output(out).values()
    };
    // Sensors answering fast and in order...
    let orderly = run_with([
        vec![(10, 10), (500, 8)],
        vec![(20, 20), (510, 8)],
        vec![(30, 30), (520, 8)],
        vec![(40, 40), (530, 8)],
    ]);
    // ...or slow, jittered and out of order: same fused outputs.
    let jittered = run_with([
        vec![(900, 10), (2000, 8)],
        vec![(50, 20), (3000, 8)],
        vec![(700, 30), (1200, 8)],
        vec![(5, 40), (4000, 8)],
    ]);
    let expect = app.expected(&values);
    assert_eq!(orderly, expect);
    assert_eq!(jittered, expect);
}

#[test]
fn matmul_runs_are_cycle_deterministic() {
    let mm = Matmul::new(16, Version::Tiled);
    let cycles = |_: ()| {
        let mut m = mm.machine().unwrap();
        let r = m.run(10_000_000).unwrap();
        (r.stats.cycles, r.stats.retired())
    };
    assert_eq!(cycles(()), cycles(()));
}

#[test]
fn prefix_sum_matches_host_reference() {
    use lbp_kernels::simple::{prefix_sum_expected, prefix_sum_program};
    let p = VectorParams::new(8, 64);
    let prog = prefix_sum_program(p);
    let image = prog
        .build()
        .unwrap_or_else(|e| panic!("{e}\n{}", prog.source()));
    let mut m = Machine::new(LbpConfig::cores(2), &image).unwrap();
    m.run(10_000_000).unwrap();
    let out = image.symbol("ps_out").unwrap();
    let expect = prefix_sum_expected(p);
    for (i, &want) in expect.iter().enumerate().take(64) {
        assert_eq!(
            m.peek_shared(out + 4 * i as u32).unwrap(),
            want,
            "element {i}"
        );
    }
}

#[test]
fn histogram_matches_host_reference() {
    use lbp_kernels::simple::{histogram_expected, histogram_program, HISTOGRAM_BINS};
    let p = VectorParams::new(8, 128);
    let prog = histogram_program(p);
    let image = prog
        .build()
        .unwrap_or_else(|e| panic!("{e}\n{}", prog.source()));
    let mut m = Machine::new(LbpConfig::cores(4), &image).unwrap();
    m.run(10_000_000).unwrap();
    let out = image.symbol("hg_out").unwrap();
    let expect = histogram_expected(p);
    let mut total = 0;
    for (b, &want) in expect.iter().enumerate().take(HISTOGRAM_BINS) {
        let got = m.peek_shared(out + 4 * b as u32).unwrap();
        assert_eq!(got, want, "bin {b}");
        total += got;
    }
    assert_eq!(total, 128, "every element lands in a bin");
}

#[test]
fn odd_even_sort_orders_the_array() {
    use lbp_kernels::simple::{odd_even_sort_expected, odd_even_sort_program};
    let harts = 16;
    let prog = odd_even_sort_program(harts, 3);
    let image = prog
        .build()
        .unwrap_or_else(|e| panic!("{e}\n{}", prog.source()));
    let mut m = Machine::new(LbpConfig::cores(4), &image).unwrap();
    m.run(50_000_000).unwrap();
    let a = image.symbol("oe_a").unwrap();
    let expect = odd_even_sort_expected(harts, 3);
    for (i, &want) in expect.iter().enumerate().take(harts) {
        assert_eq!(
            m.peek_shared(a + 4 * i as u32).unwrap() as i32 as i64,
            want,
            "element {i}"
        );
    }
}
