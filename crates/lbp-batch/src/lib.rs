//! # lbp-batch — parallel batch simulation service
//!
//! Runs a *manifest* of simulation jobs — (program × configuration ×
//! fault plan) triples — across a pool of worker threads, streaming one
//! JSONL result line per job (schema `lbp-batch-v1`) as jobs complete.
//!
//! Each machine is cycle-deterministic, so a job's result line depends
//! only on the job itself: the output of an N-worker run equals the
//! output of a 1-worker run after sorting by job id, which the CI smoke
//! job checks byte-for-byte. For the same reason identical jobs are
//! **deduplicated** by content hash — each distinct job simulates once,
//! and every duplicate's line is emitted from the one run, marked with
//! `dedup_of`.
//!
//! ## Manifest (`lbp-batch-manifest-v1`)
//!
//! ```json
//! {
//!   "schema": "lbp-batch-manifest-v1",
//!   "jobs": [
//!     {"id": "mm-c4", "program": "examples/c/matmul.c",
//!      "cores": 4, "max_cycles": 2000000, "faults": ["drop-msg:0"]}
//!   ]
//! }
//! ```
//!
//! `program` paths are resolved relative to the manifest file. `id`
//! defaults to `job-<index>`; `cores` to 1; `max_cycles` to 1,000,000;
//! `faults` to none. Programs ending in `.c` go through the `lbp-cc`
//! front end, everything else through the assembler. A job may opt into
//! profiling with `"profile": true` (default false): the run then
//! carries the `lbp-prof` collectors and its result line gains a
//! hot-function summary. Profiling is part of the job's content hash —
//! a profiled job never dedups against an unprofiled twin — but an
//! unprofiled job's hash is unchanged from earlier schema revisions.
//! A job may set `"warm": N` to fast-forward its first N retired
//! instructions on the functional engine (`lbp_sim::FastEngine`) before
//! the cycle-exact window — hybrid jobs hash apart from cold twins the
//! same way profiled jobs do.
//!
//! ## Result lines (`lbp-batch-v1`)
//!
//! One object per line: `schema`, `id`, `hash` (16 hex digits of the
//! job's FNV-1a-64 content hash), `dedup_of` (the id of the job that
//! actually ran, or `null`), `status` (`"ok"` or an error class), and on
//! success the run `report` (the `lbp-stats-v1` stats with `exited`), on
//! failure a human-readable `error`. Profiled jobs additionally carry
//! `profile`: the top five functions by attributed cycles, each with
//! `name`, `retired`, and `cycles`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;
pub mod service;

use std::collections::VecDeque;
use std::io::Write;
use std::path::Path;
use std::sync::Mutex;

use lbp_sim::{Fault, FaultPlan, Json, LbpConfig, Machine, SimError};

/// The manifest schema identifier.
pub const MANIFEST_SCHEMA: &str = "lbp-batch-manifest-v1";

/// The result-line schema identifier.
pub const RESULT_SCHEMA: &str = "lbp-batch-v1";

/// A failure to parse or load a manifest.
#[derive(Debug)]
pub struct BatchError(pub String);

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for BatchError {}

/// How a job's program text reaches the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// PISC assembly, fed to `lbp-asm`.
    Asm,
    /// The C subset, fed to `lbp-cc`.
    C,
}

/// One fully-loaded simulation job: program source plus configuration.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// The job's manifest id (unique within a run).
    pub id: String,
    /// The program text (already read from disk).
    pub source: String,
    /// Which front end compiles `source`.
    pub kind: SourceKind,
    /// Core count of the simulated machine.
    pub cores: usize,
    /// Cycle budget before the run counts as timed out.
    pub max_cycles: u64,
    /// Fault specs (`lbp_sim::Fault` syntax) injected into the run.
    pub faults: Vec<String>,
    /// Whether the run carries the `lbp-prof` collectors and the result
    /// line a hot-function summary.
    pub profile: bool,
    /// Fast-forward the first N retired instructions on the functional
    /// engine before the cycle-exact run (`None` = fully cycle-exact).
    pub warm: Option<u64>,
}

/// The job's content hash: equal hashes mean byte-equal work, so one
/// simulation serves every job in the group.
pub fn job_hash(job: &BatchJob) -> u64 {
    let mut key = String::new();
    key.push_str(match job.kind {
        SourceKind::Asm => "asm\0",
        SourceKind::C => "c\0",
    });
    key.push_str(&job.source);
    key.push('\0');
    key.push_str(&format!("{}\0{}\0", job.cores, job.max_cycles));
    for f in &job.faults {
        key.push_str(f);
        key.push('\0');
    }
    // Appended only when set so unprofiled jobs keep their historical
    // hashes (the CI smoke fixtures pin them).
    if job.profile {
        key.push_str("profile\0");
    }
    // Likewise: a warmed job does different work (its stats carry the
    // virtual warm phase), so it never dedups against a cold twin.
    if let Some(warm) = job.warm {
        key.push_str(&format!("warm={warm}\0"));
    }
    lbp_snap::fnv1a64(key.as_bytes())
}

/// Parses a manifest and loads every referenced program, resolving paths
/// against `base_dir` (normally the manifest's directory).
///
/// # Errors
///
/// Malformed JSON, unknown schema, duplicate ids, or unreadable program
/// files — all reported with the offending job's id.
pub fn load_manifest(text: &str, base_dir: &Path) -> Result<Vec<BatchJob>, BatchError> {
    let bad = |what: String| BatchError(what);
    let v = Json::parse(text).map_err(|e| bad(format!("manifest is not JSON: {e}")))?;
    match v.get("schema").and_then(Json::as_str) {
        Some(MANIFEST_SCHEMA) => {}
        other => {
            return Err(bad(format!(
                "manifest schema is {other:?}, expected {MANIFEST_SCHEMA:?}"
            )))
        }
    }
    let jobs = v
        .get("jobs")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("manifest has no `jobs` array".to_owned()))?;
    let mut out = Vec::with_capacity(jobs.len());
    let mut seen = std::collections::HashSet::new();
    for (i, j) in jobs.iter().enumerate() {
        let id = match j.get("id").and_then(Json::as_str) {
            Some(id) => id.to_owned(),
            None => format!("job-{i}"),
        };
        if !seen.insert(id.clone()) {
            return Err(bad(format!("duplicate job id `{id}`")));
        }
        let program = j
            .get("program")
            .and_then(Json::as_str)
            .ok_or_else(|| bad(format!("job `{id}` has no `program`")))?;
        let path = base_dir.join(program);
        let source = std::fs::read_to_string(&path)
            .map_err(|e| bad(format!("job `{id}`: cannot read {}: {e}", path.display())))?;
        let kind = if program.ends_with(".c") {
            SourceKind::C
        } else {
            SourceKind::Asm
        };
        let cores = j.get("cores").and_then(Json::as_u64).unwrap_or(1) as usize;
        let max_cycles = j
            .get("max_cycles")
            .and_then(Json::as_u64)
            .unwrap_or(1_000_000);
        let mut faults = Vec::new();
        if let Some(arr) = j.get("faults").and_then(Json::as_arr) {
            for f in arr {
                let spec = f
                    .as_str()
                    .ok_or_else(|| bad(format!("job `{id}`: faults must be strings")))?;
                // Validate early so a typo fails the whole batch up front
                // rather than one job at simulation time.
                Fault::parse(spec).map_err(|e| bad(format!("job `{id}`: {e}")))?;
                faults.push(spec.to_owned());
            }
        }
        if cores == 0 {
            return Err(bad(format!("job `{id}`: cores must be at least 1")));
        }
        let profile = match j.get("profile") {
            None => false,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| bad(format!("job `{id}`: profile must be a boolean")))?,
        };
        let warm = match j.get("warm") {
            None => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or_else(|| bad(format!("job `{id}`: warm must be a number")))?,
            ),
        };
        out.push(BatchJob {
            id,
            source,
            kind,
            cores,
            max_cycles,
            faults,
            profile,
            warm,
        });
    }
    Ok(out)
}

/// What one simulated job produced (shared by its whole dedup group).
#[derive(Debug, Clone)]
enum JobOutcome {
    /// The run completed (possibly by timeout) with a report and, for
    /// profiled jobs, a hot-function summary.
    Ok { report: Json, profile: Option<Json> },
    /// The front end or the machine rejected the job.
    Err {
        class: &'static str,
        message: String,
    },
    /// The service shed the job at admission: the bounded queue already
    /// held `cap` distinct jobs. Never produced by [`run_batch`].
    Rejected { cap: usize },
    /// The service retried the job `attempts` times without reaching a
    /// deterministic verdict and quarantined it as poison. Never
    /// produced by [`run_batch`].
    Quarantined { attempts: u32 },
}

/// The top `top` functions by attributed cycles, as a JSON array.
fn profile_summary(image: &lbp_asm::Image, machine: &Machine, top: usize) -> Json {
    let sym = lbp_prof::SymTab::from_image(image);
    let prof = machine.profile().expect("job ran with profiling enabled");
    let rows = lbp_prof::function_rows(prof, &sym);
    Json::Arr(
        rows.iter()
            .take(top)
            .map(|r| {
                Json::obj([
                    ("name", Json::Str(r.name.clone())),
                    ("retired", Json::U64(r.retired)),
                    ("cycles", Json::U64(r.cycles())),
                ])
            })
            .collect(),
    )
}

/// Compiles a job's program and builds its (profiling-enabled, when
/// asked) machine. Front-end and configuration failures come back as
/// the error outcome the job's result line should carry. Shared by the
/// one-shot runner and the crash-recoverable service worker.
fn prepare(job: &BatchJob) -> Result<(lbp_asm::Image, Machine), JobOutcome> {
    let err = |class: &'static str, message: String| Err(JobOutcome::Err { class, message });
    let image = match job.kind {
        SourceKind::C => match lbp_cc::compile(&job.source) {
            Ok(c) => c.image,
            Err(e) => return err("compile", e.to_string()),
        },
        SourceKind::Asm => match lbp_asm::assemble(&job.source) {
            Ok(image) => image,
            Err(e) => return err("assemble", e.to_string()),
        },
    };
    let plan: FaultPlan = job
        .faults
        .iter()
        .map(|s| Fault::parse(s).expect("validated when the manifest was loaded"))
        .collect();
    let cfg = LbpConfig::cores(job.cores).with_faults(plan);
    let mut machine = if let Some(warm) = job.warm {
        // Hybrid job: fast-forward functionally, then hand the
        // materialized machine to the cycle-exact window. Warm-phase
        // refusals (message faults, faults scheduled inside the warm
        // window) land in the job's result line like any other error.
        let mut fast = match lbp_sim::FastEngine::new(cfg, &image) {
            Ok(f) => f,
            Err(e) => return err("config", e.to_string()),
        };
        if let Err(e) = fast.run(lbp_sim::FastStop::Retired(warm), job.max_cycles) {
            return err(sim_error_class(&e), e.to_string());
        }
        match fast.materialize(&image) {
            Ok(m) => m,
            Err(e) => return err(sim_error_class(&e), e.to_string()),
        }
    } else {
        match Machine::new(cfg, &image) {
            Ok(m) => m,
            Err(e) => return err("config", e.to_string()),
        }
    };
    if job.profile {
        machine.enable_profiling();
    }
    Ok((image, machine))
}

/// Simulates one job to completion. Infallible: every failure becomes an
/// error outcome on the job's result line.
fn simulate(job: &BatchJob) -> JobOutcome {
    let (image, mut machine) = match prepare(job) {
        Ok(pair) => pair,
        Err(outcome) => return outcome,
    };
    match machine.run(job.max_cycles) {
        Ok(report) => JobOutcome::Ok {
            report: report.to_json(),
            profile: job.profile.then(|| profile_summary(&image, &machine, 5)),
        },
        Err(e) => JobOutcome::Err {
            class: sim_error_class(&e),
            message: e.to_string(),
        },
    }
}

/// The stable error-class names (matching `lbp-run`'s exit-code map).
fn sim_error_class(e: &SimError) -> &'static str {
    match e {
        SimError::Timeout { .. } => "timeout",
        SimError::Deadlock { .. } => "deadlock",
        SimError::Protocol { .. } => "protocol",
        SimError::Decode { .. } => "decode",
        SimError::Mem(_) => "mem",
    }
}

/// One result line, rendered deterministically from the job alone.
fn result_line(job: &BatchJob, hash: u64, dedup_of: Option<&str>, outcome: &JobOutcome) -> String {
    let mut pairs = vec![
        ("schema".to_owned(), Json::Str(RESULT_SCHEMA.to_owned())),
        ("id".to_owned(), Json::Str(job.id.clone())),
        ("hash".to_owned(), Json::Str(format!("{hash:016x}"))),
        (
            "dedup_of".to_owned(),
            match dedup_of {
                Some(id) => Json::Str(id.to_owned()),
                None => Json::Null,
            },
        ),
    ];
    match outcome {
        JobOutcome::Ok { report, profile } => {
            pairs.push(("status".to_owned(), Json::Str("ok".to_owned())));
            pairs.push(("report".to_owned(), report.clone()));
            if let Some(p) = profile {
                pairs.push(("profile".to_owned(), p.clone()));
            }
        }
        JobOutcome::Err { class, message } => {
            pairs.push(("status".to_owned(), Json::Str((*class).to_owned())));
            pairs.push(("error".to_owned(), Json::Str(message.clone())));
        }
        JobOutcome::Rejected { cap } => {
            pairs.push(("status".to_owned(), Json::Str("rejected".to_owned())));
            pairs.push((
                "error".to_owned(),
                Json::Str(format!(
                    "backpressure: admission queue at capacity ({cap} distinct jobs)"
                )),
            ));
        }
        JobOutcome::Quarantined { attempts } => {
            pairs.push(("status".to_owned(), Json::Str("quarantined".to_owned())));
            pairs.push((
                "error".to_owned(),
                Json::Str(format!(
                    "poison job: {attempts} attempts exhausted without a deterministic \
                     verdict (see the journal for the attempt history)"
                )),
            ));
        }
    }
    let mut line = String::new();
    Json::Obj(pairs).write(&mut line);
    line.push('\n');
    line
}

/// A finished batch, summarized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchSummary {
    /// Jobs in the manifest (== result lines written).
    pub jobs: usize,
    /// Distinct jobs actually simulated after deduplication.
    pub unique: usize,
    /// Jobs whose status was not `ok`.
    pub failed: usize,
}

/// Runs `jobs` on `workers` threads, writing one `lbp-batch-v1` line per
/// job to `out` as results complete.
///
/// Identical jobs (equal [`job_hash`]) simulate once; the representative
/// writes the whole group's lines together, duplicates marked with
/// `dedup_of`. Line order depends on worker scheduling — sort by `id` to
/// compare runs — but each line's bytes are deterministic.
///
/// # Errors
///
/// Only writer I/O errors abort a batch; simulation failures land in the
/// affected job's result line.
pub fn run_batch<W: Write + Send>(
    jobs: &[BatchJob],
    workers: usize,
    out: W,
) -> Result<BatchSummary, std::io::Error> {
    // Group duplicate jobs: first index with a given hash represents.
    let hashes: Vec<u64> = jobs.iter().map(job_hash).collect();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut by_hash: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    for (i, &h) in hashes.iter().enumerate() {
        match by_hash.get(&h) {
            Some(&g) => groups[g].push(i),
            None => {
                by_hash.insert(h, groups.len());
                groups.push(vec![i]);
            }
        }
    }
    let unique = groups.len();
    let queue: Mutex<VecDeque<Vec<usize>>> = Mutex::new(groups.into_iter().collect());
    let writer = Mutex::new(out);
    let io_error: Mutex<Option<std::io::Error>> = Mutex::new(None);
    let failed = Mutex::new(0usize);
    let workers = workers.max(1).min(jobs.len().max(1));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let Some(group) = queue.lock().unwrap().pop_front() else {
                    return;
                };
                let rep = &jobs[group[0]];
                let outcome = simulate(rep);
                if !matches!(outcome, JobOutcome::Ok { .. }) {
                    *failed.lock().unwrap() += group.len();
                }
                // Emit the whole dedup group in one locked section so a
                // group's lines are contiguous in the stream.
                let mut text = String::new();
                for &i in &group {
                    let dedup_of = (i != group[0]).then_some(rep.id.as_str());
                    text.push_str(&result_line(&jobs[i], hashes[i], dedup_of, &outcome));
                }
                let mut w = writer.lock().unwrap();
                if let Err(e) = w.write_all(text.as_bytes()) {
                    let mut slot = io_error.lock().unwrap();
                    if slot.is_none() {
                        *slot = Some(e);
                    }
                    queue.lock().unwrap().clear(); // abort remaining work
                    return;
                }
            });
        }
    });
    if let Some(e) = io_error.into_inner().unwrap() {
        return Err(e);
    }
    writer.into_inner().unwrap().flush()?;
    Ok(BatchSummary {
        jobs: jobs.len(),
        unique,
        failed: failed.into_inner().unwrap(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: &str, cores: usize) -> BatchJob {
        BatchJob {
            id: id.to_owned(),
            source: "main:\n  li t0, -1\n  li a0, 0\n  p_ret a0, t0".to_owned(),
            kind: SourceKind::Asm,
            cores,
            max_cycles: 10_000,
            faults: Vec::new(),
            profile: false,
            warm: None,
        }
    }

    fn lines(buf: &[u8]) -> Vec<String> {
        String::from_utf8(buf.to_vec())
            .unwrap()
            .lines()
            .map(str::to_owned)
            .collect()
    }

    #[test]
    fn identical_jobs_dedupe_and_report_once_each() {
        let jobs = vec![job("a", 1), job("b", 1), job("c", 2)];
        let mut out = Vec::new();
        let summary = run_batch(&jobs, 2, &mut out).unwrap();
        assert_eq!(
            summary,
            BatchSummary {
                jobs: 3,
                unique: 2,
                failed: 0
            }
        );
        let lines = lines(&out);
        assert_eq!(lines.len(), 3);
        let b = lines
            .iter()
            .map(|l| Json::parse(l).unwrap())
            .find(|v| v.get("id").and_then(Json::as_str) == Some("b"))
            .unwrap();
        assert_eq!(b.get("dedup_of").and_then(Json::as_str), Some("a"));
        assert_eq!(b.get("status").and_then(Json::as_str), Some("ok"));
    }

    #[test]
    fn worker_count_does_not_change_sorted_output() {
        let jobs: Vec<BatchJob> = (0..8)
            .map(|i| {
                let mut j = job(&format!("j{i}"), 1 + i % 2);
                j.max_cycles = 5_000 + i as u64; // make all 8 unique
                j
            })
            .collect();
        let run = |workers| {
            let mut out = Vec::new();
            run_batch(&jobs, workers, &mut out).unwrap();
            let mut l = lines(&out);
            l.sort();
            l
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn profiled_jobs_summarize_and_hash_apart() {
        let plain = job("p", 1);
        let mut profiled = job("q", 1);
        profiled.profile = true;
        // The profile flag is part of the job identity: a profiled job
        // must not dedup against (or collide with) its unprofiled twin,
        // while the unprofiled hash stays what it always was.
        assert_ne!(job_hash(&plain), job_hash(&profiled));
        let mut unflagged = profiled.clone();
        unflagged.profile = false;
        assert_eq!(job_hash(&plain), job_hash(&unflagged));
        let mut out = Vec::new();
        let summary = run_batch(&[plain, profiled], 1, &mut out).unwrap();
        assert_eq!(summary.unique, 2);
        let lines = lines(&out);
        for l in &lines {
            let v = Json::parse(l).unwrap();
            let id = v.get("id").and_then(Json::as_str).unwrap();
            let prof = v.get("profile");
            if id == "q" {
                let funcs = prof.and_then(Json::as_arr).expect("profiled job summary");
                assert!(!funcs.is_empty() && funcs.len() <= 5);
                for f in funcs {
                    assert!(f.get("name").and_then(Json::as_str).is_some());
                    assert!(f.get("cycles").and_then(Json::as_u64).is_some());
                }
            } else {
                assert!(prof.is_none(), "unprofiled line must not grow fields");
            }
        }
    }

    #[test]
    fn warmed_jobs_run_hybrid_and_hash_apart() {
        let cold = job("cold", 1);
        let mut warm = job("warm", 1);
        warm.warm = Some(2);
        assert_ne!(job_hash(&cold), job_hash(&warm), "warm is job identity");
        let mut out = Vec::new();
        let summary = run_batch(&[cold, warm], 1, &mut out).unwrap();
        assert_eq!(summary.unique, 2);
        assert_eq!(summary.failed, 0);
        for l in &lines(&out) {
            let v = Json::parse(l).unwrap();
            assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"), "{l}");
            let exited = v
                .get("report")
                .and_then(|r| r.get("exited"))
                .and_then(Json::as_bool);
            assert_eq!(exited, Some(true), "{l}");
        }
        // A fault scheduled inside the warm window is refused, and the
        // refusal lands in the result line rather than panicking.
        let mut clash = job("clash", 1);
        clash.warm = Some(2);
        clash.faults = vec!["flip-reg:0:a0:0:1".to_owned()];
        let mut out = Vec::new();
        let summary = run_batch(&[clash], 1, &mut out).unwrap();
        assert_eq!(summary.failed, 1);
        let v = Json::parse(&lines(&out)[0]).unwrap();
        assert_eq!(v.get("status").and_then(Json::as_str), Some("protocol"));
        let msg = v.get("error").and_then(Json::as_str).unwrap();
        assert!(
            msg.contains("warm"),
            "diagnostic names the warm phase: {msg}"
        );
    }

    #[test]
    fn failures_land_in_the_result_line() {
        let mut bad = job("x", 1);
        bad.source = "main:\n  not_an_instruction".to_owned();
        let mut out = Vec::new();
        let summary = run_batch(&[bad], 1, &mut out).unwrap();
        assert_eq!(summary.failed, 1);
        let v = Json::parse(&lines(&out)[0]).unwrap();
        assert_eq!(v.get("status").and_then(Json::as_str), Some("assemble"));
        assert!(v.get("error").and_then(Json::as_str).is_some());
    }

    #[test]
    fn manifest_parses_and_validates() {
        let dir = std::env::temp_dir().join(format!("lbp-batch-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("p.s"),
            "main:\n  li t0, -1\n  li a0, 0\n  p_ret a0, t0",
        )
        .unwrap();
        let manifest = r#"{
            "schema": "lbp-batch-manifest-v1",
            "jobs": [
                {"program": "p.s"},
                {"id": "two", "program": "p.s", "cores": 2, "max_cycles": 77,
                 "faults": ["drop-msg:0"], "profile": true, "warm": 5}
            ]
        }"#;
        let jobs = load_manifest(manifest, &dir).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].id, "job-0");
        assert_eq!(jobs[1].cores, 2);
        assert_eq!(jobs[1].max_cycles, 77);
        assert_eq!(jobs[1].faults, vec!["drop-msg:0".to_owned()]);
        assert!(!jobs[0].profile, "profile defaults to off");
        assert!(jobs[1].profile);
        assert_eq!(jobs[0].warm, None, "warm defaults to fully cycle-exact");
        assert_eq!(jobs[1].warm, Some(5));
        // A non-boolean profile flag is rejected up front.
        let bad_profile = manifest.replace("\"profile\": true", "\"profile\": \"yes\"");
        assert!(load_manifest(&bad_profile, &dir).is_err());
        // So is a non-numeric warm target.
        let bad_warm = manifest.replace("\"warm\": 5", "\"warm\": \"lots\"");
        assert!(load_manifest(&bad_warm, &dir).is_err());
        // Bad fault spec fails the whole manifest up front.
        let bad = manifest.replace("drop-msg:0", "warp-core:9");
        assert!(load_manifest(&bad, &dir).is_err());
        // Duplicate ids are rejected.
        let dup = manifest.replace("\"two\"", "\"job-0\"");
        assert!(load_manifest(&dup, &dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
