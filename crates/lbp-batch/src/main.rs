//! `lbp-batch` — run a manifest of LBP simulation jobs on a worker pool.
//!
//! ```text
//! lbp-batch MANIFEST.json [--workers N] [--out FILE]
//! ```
//!
//! Results stream to `--out` (default stdout) as `lbp-batch-v1` JSONL,
//! one line per manifest job; a human summary goes to stderr. Exit code
//! 0 when every job ran (even if some simulations failed — their lines
//! say so), 1 on manifest/front-end/I/O problems, 2 on usage errors.

use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: lbp-batch MANIFEST.json [--workers N] [--out FILE]\n\
         \n\
         Runs every job in an lbp-batch-manifest-v1 file across a worker\n\
         pool, streaming one lbp-batch-v1 JSONL result line per job.\n\
         \n\
         --workers N   worker threads (default: available parallelism)\n\
         --out FILE    write results to FILE instead of stdout"
    );
    std::process::exit(2);
}

struct Options {
    manifest: PathBuf,
    workers: usize,
    out: Option<PathBuf>,
}

fn parse_args() -> Options {
    let mut manifest = None;
    let mut workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => workers = n,
                _ => usage(),
            },
            "--out" => match args.next() {
                Some(path) => out = Some(PathBuf::from(path)),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            _ if arg.starts_with('-') => usage(),
            _ if manifest.is_none() => manifest = Some(PathBuf::from(arg)),
            _ => usage(),
        }
    }
    let Some(manifest) = manifest else { usage() };
    Options {
        manifest,
        workers,
        out,
    }
}

fn main() {
    let opts = parse_args();
    let text = match std::fs::read_to_string(&opts.manifest) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("lbp-batch: cannot read {}: {e}", opts.manifest.display());
            std::process::exit(1);
        }
    };
    let base = opts
        .manifest
        .parent()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let jobs = match lbp_batch::load_manifest(&text, &base) {
        Ok(jobs) => jobs,
        Err(e) => {
            eprintln!("lbp-batch: {e}");
            std::process::exit(1);
        }
    };
    let started = std::time::Instant::now();
    let summary = match &opts.out {
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => lbp_batch::run_batch(&jobs, opts.workers, std::io::BufWriter::new(f)),
            Err(e) => {
                eprintln!("lbp-batch: cannot create {}: {e}", path.display());
                std::process::exit(1);
            }
        },
        None => lbp_batch::run_batch(&jobs, opts.workers, std::io::stdout()),
    };
    match summary {
        Ok(s) => {
            eprintln!(
                "lbp-batch: {} jobs ({} unique, {} failed) on {} workers in {:.2?}",
                s.jobs,
                s.unique,
                s.failed,
                opts.workers,
                started.elapsed()
            );
        }
        Err(e) => {
            eprintln!("lbp-batch: writing results failed: {e}");
            std::process::exit(1);
        }
    }
}
