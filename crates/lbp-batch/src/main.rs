//! `lbp-batch` — run a manifest of LBP simulation jobs on a worker pool.
//!
//! ```text
//! lbp-batch MANIFEST.json [--workers N] [--out FILE]
//! lbp-batch MANIFEST.json --state-dir DIR [service options]
//! ```
//!
//! Without `--state-dir`, results stream to `--out` (default stdout) as
//! `lbp-batch-v1` JSONL, one line per manifest job; a human summary
//! goes to stderr. With `--state-dir`, the run is the crash-recoverable
//! *service*: every job transition is journaled durably under DIR, long
//! jobs checkpoint periodically, and killing the process at any instant
//! loses nothing — rerun the same command and the sweep resumes where
//! the journal says it stood, finishing with `DIR/results.jsonl`
//! byte-identical to an uninterrupted run.
//!
//! Exit code 0 when every job reached a verdict (even a failing one —
//! its line says so), 1 on manifest/front-end/state-dir problems, 2 on
//! usage errors, 86 when an injected crash point fired.

use std::path::PathBuf;

use lbp_batch::service::ServiceOptions;

fn usage() -> ! {
    eprintln!(
        "usage: lbp-batch MANIFEST.json [--workers N] [--out FILE]\n\
         \x20      lbp-batch MANIFEST.json --state-dir DIR [service options]\n\
         \n\
         Runs every job in an lbp-batch-manifest-v1 file across a worker\n\
         pool, streaming one lbp-batch-v1 JSONL result line per job.\n\
         \n\
         --workers N   worker threads (default: available parallelism)\n\
         --out FILE    write results to FILE instead of stdout\n\
         \n\
         Service mode (crash-recoverable; results land in DIR/results.jsonl):\n\
         --state-dir DIR        durable journal + checkpoints under DIR;\n\
         \x20                      rerunning resumes an interrupted sweep\n\
         --max-attempts N       attempts before a job is quarantined (default 3)\n\
         --queue-cap N          distinct jobs admitted, rest shed as\n\
         \x20                      `rejected` backpressure (default 0 = unbounded)\n\
         --checkpoint-every N   cycles between checkpoints (default 250000;\n\
         \x20                      0 disables)\n\
         --slice N              cycles between watchdog polls (default 10000)\n\
         --wall-ms MS           per-attempt wall-clock budget; a cancelled\n\
         \x20                      attempt retries with backoff (default 0 = off)\n\
         --backoff-ms MS        retry backoff base (default 10)\n\
         --crash-after-appends N  TEST HOOK: exit 86 after the Nth journal\n\
         \x20                      append (crash injection for the soak suite)\n\
         --crash-torn           TEST HOOK: with the above, also leave a torn\n\
         \x20                      half-record at the journal tail"
    );
    std::process::exit(2);
}

struct Options {
    manifest: PathBuf,
    workers: usize,
    out: Option<PathBuf>,
    state_dir: Option<PathBuf>,
    service: ServiceOptions,
}

fn parse_args() -> Options {
    let mut manifest = None;
    let mut workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = None;
    let mut state_dir = None;
    let mut service = ServiceOptions {
        checkpoint_every: 250_000,
        ..ServiceOptions::default()
    };
    let mut args = std::env::args().skip(1);
    let num = |args: &mut dyn Iterator<Item = String>| -> u64 {
        match args.next().and_then(|v| v.parse::<u64>().ok()) {
            Some(n) => n,
            None => usage(),
        }
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => workers = n,
                _ => usage(),
            },
            "--out" => match args.next() {
                Some(path) => out = Some(PathBuf::from(path)),
                None => usage(),
            },
            "--state-dir" => match args.next() {
                Some(dir) => state_dir = Some(PathBuf::from(dir)),
                None => usage(),
            },
            "--max-attempts" => match num(&mut args) {
                n if n >= 1 && n <= u32::MAX as u64 => service.max_attempts = n as u32,
                _ => usage(),
            },
            "--queue-cap" => service.queue_cap = num(&mut args) as usize,
            "--checkpoint-every" => service.checkpoint_every = num(&mut args),
            "--slice" => match num(&mut args) {
                n if n >= 1 => service.slice = n,
                _ => usage(),
            },
            "--wall-ms" => service.wall_ms = num(&mut args),
            "--backoff-ms" => service.backoff_ms = num(&mut args),
            "--crash-after-appends" => service.crash_after_appends = Some(num(&mut args)),
            "--crash-torn" => service.crash_torn = true,
            "--help" | "-h" => usage(),
            _ if arg.starts_with('-') => usage(),
            _ if manifest.is_none() => manifest = Some(PathBuf::from(arg)),
            _ => usage(),
        }
    }
    let Some(manifest) = manifest else { usage() };
    if state_dir.is_some() && out.is_some() {
        // Service results are the state dir's; --out would silently
        // split the source of truth.
        usage();
    }
    service.workers = workers;
    Options {
        manifest,
        workers,
        out,
        state_dir,
        service,
    }
}

fn main() {
    let opts = parse_args();
    let text = match std::fs::read_to_string(&opts.manifest) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("lbp-batch: cannot read {}: {e}", opts.manifest.display());
            std::process::exit(1);
        }
    };
    let base = opts
        .manifest
        .parent()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let jobs = match lbp_batch::load_manifest(&text, &base) {
        Ok(jobs) => jobs,
        Err(e) => {
            eprintln!("lbp-batch: {e}");
            std::process::exit(1);
        }
    };
    let started = std::time::Instant::now();
    if let Some(dir) = &opts.state_dir {
        match lbp_batch::service::run_service(&text, &jobs, dir, &opts.service) {
            Ok(r) => {
                eprintln!(
                    "lbp-batch: epoch {}: {} jobs ({} admitted, {} rejected, {} failed, \
                     {} quarantined) — {} attempts ({} resumed, {} retries) on {} workers \
                     in {:.2?}; results in {}",
                    r.epoch,
                    r.jobs,
                    r.admitted,
                    r.rejected,
                    r.failed,
                    r.quarantined,
                    r.attempted,
                    r.resumed,
                    r.retries,
                    opts.workers,
                    started.elapsed(),
                    dir.join("results.jsonl").display()
                );
            }
            Err(e) => {
                eprintln!("lbp-batch: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let summary = match &opts.out {
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => lbp_batch::run_batch(&jobs, opts.workers, std::io::BufWriter::new(f)),
            Err(e) => {
                eprintln!("lbp-batch: cannot create {}: {e}", path.display());
                std::process::exit(1);
            }
        },
        None => lbp_batch::run_batch(&jobs, opts.workers, std::io::stdout()),
    };
    match summary {
        Ok(s) => {
            eprintln!(
                "lbp-batch: {} jobs ({} unique, {} failed) on {} workers in {:.2?}",
                s.jobs,
                s.unique,
                s.failed,
                opts.workers,
                started.elapsed()
            );
        }
        Err(e) => {
            eprintln!("lbp-batch: writing results failed: {e}");
            std::process::exit(1);
        }
    }
}
