//! The durable job journal — a write-ahead log for the batch service.
//!
//! Every state transition a job takes (queued, running, checkpointed,
//! failed transiently, final) is appended as one JSONL record *before*
//! the transition's effects are acted on, and fsync'd, so a worker
//! killed at any instant leaves a journal from which the service
//! reconstructs exactly where every job stood.
//!
//! ## Record format (`lbp-batch-journal-v1`)
//!
//! ```json
//! {"schema":"lbp-batch-journal-v1","seq":7,
//!  "rec":{"op":"running","id":"mm-c4","attempt":1,"t_us":8123},
//!  "hash":"c0ffee0123456789"}
//! ```
//!
//! `seq` numbers records contiguously from 0; `hash` is the FNV-1a-64
//! of `"<seq>:<rec>"` over the serialized record. Both are verified on
//! reopen, which distinguishes the two kinds of damage a crash (or
//! disk) can inflict:
//!
//! * a **torn tail** — the last append was cut short by the crash. The
//!   partial line fails validation and *no valid record follows it*;
//!   the tail is discarded (the file is truncated back to the last
//!   fully-committed record) and recovery proceeds. A record is only
//!   acted on after its fsync returned, so nothing acknowledged is
//!   ever lost this way.
//! * **mid-file corruption** — a record fails validation but valid
//!   records follow it. That is not a torn write; the journal's
//!   history can no longer be trusted, and reopen refuses with
//!   [`JournalError::Corrupt`] instead of silently dropping committed
//!   state.

use std::io::{Read, Seek, Write};
use std::path::{Path, PathBuf};

use lbp_sim::Json;

/// The journal record schema identifier.
pub const JOURNAL_SCHEMA: &str = "lbp-batch-journal-v1";

/// A failure to open, replay, or append to a journal.
#[derive(Debug)]
pub enum JournalError {
    /// The underlying I/O operation failed.
    Io(std::io::Error),
    /// The journal is damaged beyond torn-tail recovery (a record in
    /// the *middle* of the file fails validation).
    Corrupt(String),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal i/o failed: {e}"),
            JournalError::Corrupt(what) => {
                write!(f, "journal is corrupt (not a torn tail): {what}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> JournalError {
        JournalError::Io(e)
    }
}

/// One journal record: a job state transition or a service-lifecycle
/// marker. Serialized order of fields is fixed (the integrity hash
/// covers the exact bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rec {
    /// The service (re)started: `epoch` counts prior starts. Timestamps
    /// are only comparable within one epoch.
    Start {
        /// 0 for the first run over this state dir, +1 per restart.
        epoch: u64,
    },
    /// The manifest this journal serves, pinned by content hash so a
    /// restart with a different manifest is refused.
    Manifest {
        /// FNV-1a-64 of the manifest text.
        mhash: u64,
        /// Jobs in the manifest.
        jobs: u64,
    },
    /// The job was admitted to the bounded queue.
    Queued {
        /// Manifest job id.
        id: String,
        /// The job's content hash (see [`crate::job_hash`]).
        job: u64,
        /// When the job is a duplicate, the id of the representative
        /// that actually simulates.
        dedup_of: Option<String>,
    },
    /// The job was shed at admission: the queue was at capacity.
    Rejected {
        /// Manifest job id.
        id: String,
    },
    /// A worker picked the job up (attempt numbers start at 1). A
    /// `Running` record with no later record for the same id means the
    /// worker died mid-job: the attempt was spent, the job re-queues.
    Running {
        /// Manifest job id.
        id: String,
        /// 1-based attempt number.
        attempt: u32,
        /// Microseconds since this epoch's service start.
        t_us: u64,
    },
    /// A checkpoint container was written for the job.
    Checkpoint {
        /// Manifest job id.
        id: String,
        /// Machine cycle of the checkpoint.
        cycle: u64,
        /// File name under the state dir's `ck/` directory.
        file: String,
    },
    /// An attempt failed for a host-side (retryable) reason; the job
    /// will be retried with backoff.
    Transient {
        /// Manifest job id.
        id: String,
        /// The attempt that failed.
        attempt: u32,
        /// Stable error class (`cancelled`, `checkpoint`, `io`).
        class: String,
        /// Human-readable detail.
        error: String,
        /// Microseconds since this epoch's service start.
        t_us: u64,
    },
    /// The job reached a final verdict; `line` is its complete
    /// `lbp-batch-v1` result line (no trailing newline). Duplicates get
    /// their own `Final` record when their representative finalizes.
    Final {
        /// Manifest job id.
        id: String,
        /// The result line, byte-exact.
        line: String,
        /// Whether the verdict was `ok`.
        ok: bool,
        /// Guest cycles simulated (0 for non-ok verdicts).
        cycles: u64,
        /// Microseconds since this epoch's service start.
        t_us: u64,
    },
}

impl Rec {
    fn to_json(&self) -> Json {
        let opt = |v: &Option<String>| match v {
            Some(s) => Json::Str(s.clone()),
            None => Json::Null,
        };
        match self {
            Rec::Start { epoch } => Json::obj([
                ("op", Json::Str("start".to_owned())),
                ("epoch", Json::U64(*epoch)),
            ]),
            Rec::Manifest { mhash, jobs } => Json::obj([
                ("op", Json::Str("manifest".to_owned())),
                ("mhash", Json::Str(format!("{mhash:016x}"))),
                ("jobs", Json::U64(*jobs)),
            ]),
            Rec::Queued { id, job, dedup_of } => Json::obj([
                ("op", Json::Str("queued".to_owned())),
                ("id", Json::Str(id.clone())),
                ("job", Json::Str(format!("{job:016x}"))),
                ("dedup_of", opt(dedup_of)),
            ]),
            Rec::Rejected { id } => Json::obj([
                ("op", Json::Str("rejected".to_owned())),
                ("id", Json::Str(id.clone())),
            ]),
            Rec::Running { id, attempt, t_us } => Json::obj([
                ("op", Json::Str("running".to_owned())),
                ("id", Json::Str(id.clone())),
                ("attempt", Json::U64(*attempt as u64)),
                ("t_us", Json::U64(*t_us)),
            ]),
            Rec::Checkpoint { id, cycle, file } => Json::obj([
                ("op", Json::Str("checkpoint".to_owned())),
                ("id", Json::Str(id.clone())),
                ("cycle", Json::U64(*cycle)),
                ("file", Json::Str(file.clone())),
            ]),
            Rec::Transient {
                id,
                attempt,
                class,
                error,
                t_us,
            } => Json::obj([
                ("op", Json::Str("transient".to_owned())),
                ("id", Json::Str(id.clone())),
                ("attempt", Json::U64(*attempt as u64)),
                ("class", Json::Str(class.clone())),
                ("error", Json::Str(error.clone())),
                ("t_us", Json::U64(*t_us)),
            ]),
            Rec::Final {
                id,
                line,
                ok,
                cycles,
                t_us,
            } => Json::obj([
                ("op", Json::Str("final".to_owned())),
                ("id", Json::Str(id.clone())),
                ("line", Json::Str(line.clone())),
                ("ok", Json::Bool(*ok)),
                ("cycles", Json::U64(*cycles)),
                ("t_us", Json::U64(*t_us)),
            ]),
        }
    }

    fn from_json(v: &Json) -> Option<Rec> {
        let s = |k: &str| v.get(k).and_then(Json::as_str).map(str::to_owned);
        let u = |k: &str| v.get(k).and_then(Json::as_u64);
        let hex = |k: &str| {
            v.get(k)
                .and_then(Json::as_str)
                .and_then(|h| u64::from_str_radix(h, 16).ok())
        };
        Some(match v.get("op").and_then(Json::as_str)? {
            "start" => Rec::Start { epoch: u("epoch")? },
            "manifest" => Rec::Manifest {
                mhash: hex("mhash")?,
                jobs: u("jobs")?,
            },
            "queued" => Rec::Queued {
                id: s("id")?,
                job: hex("job")?,
                dedup_of: match v.get("dedup_of")? {
                    Json::Null => None,
                    other => Some(other.as_str()?.to_owned()),
                },
            },
            "rejected" => Rec::Rejected { id: s("id")? },
            "running" => Rec::Running {
                id: s("id")?,
                attempt: u("attempt")? as u32,
                t_us: u("t_us")?,
            },
            "checkpoint" => Rec::Checkpoint {
                id: s("id")?,
                cycle: u("cycle")?,
                file: s("file")?,
            },
            "transient" => Rec::Transient {
                id: s("id")?,
                attempt: u("attempt")? as u32,
                class: s("class")?,
                error: s("error")?,
                t_us: u("t_us")?,
            },
            "final" => Rec::Final {
                id: s("id")?,
                line: s("line")?,
                ok: v.get("ok")?.as_bool()?,
                cycles: u("cycles")?,
                t_us: u("t_us")?,
            },
            _ => return None,
        })
    }
}

/// Renders record `seq` as its committed journal line (no newline).
fn render(seq: u64, rec: &Rec) -> String {
    let mut body = String::new();
    rec.to_json().write(&mut body);
    let hash = lbp_snap::fnv1a64(format!("{seq}:{body}").as_bytes());
    let mut line = String::new();
    Json::obj([
        ("schema", Json::Str(JOURNAL_SCHEMA.to_owned())),
        ("seq", Json::U64(seq)),
        ("rec", rec.to_json()),
        ("hash", Json::Str(format!("{hash:016x}"))),
    ])
    .write(&mut line);
    line
}

/// Parses and verifies one journal line against the expected `seq`.
fn parse_line(line: &str, seq: u64) -> Option<Rec> {
    let v = Json::parse(line).ok()?;
    if v.get("schema").and_then(Json::as_str) != Some(JOURNAL_SCHEMA) {
        return None;
    }
    if v.get("seq").and_then(Json::as_u64) != Some(seq) {
        return None;
    }
    let rec_json = v.get("rec")?;
    let rec = Rec::from_json(rec_json)?;
    // The hash covers the canonical serialization, which round-trips
    // exactly (records hold only strings, integers, bools and nulls).
    let mut body = String::new();
    rec.to_json().write(&mut body);
    let want = lbp_snap::fnv1a64(format!("{seq}:{body}").as_bytes());
    let got = u64::from_str_radix(v.get("hash")?.as_str()?, 16).ok()?;
    (want == got).then_some(rec)
}

/// An open, append-only journal. Every [`Journal::append`] is flushed
/// and fsync'd before it returns: once a transition is journaled, a
/// `kill -9` cannot un-happen it.
#[derive(Debug)]
pub struct Journal {
    file: std::fs::File,
    path: PathBuf,
    next_seq: u64,
}

impl Journal {
    /// Opens (or creates) the journal at `path`, replaying every
    /// committed record. A torn tail — a trailing region from which no
    /// valid record can be read — is discarded by truncating the file
    /// back to the last committed record.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on filesystem failures;
    /// [`JournalError::Corrupt`] when a record *before* the tail fails
    /// validation (damage that truncation must not paper over).
    pub fn open(path: impl AsRef<Path>) -> Result<(Journal, Vec<Rec>), JournalError> {
        let path = path.as_ref().to_path_buf();
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        // Split into newline-terminated lines, tracking byte offsets. A
        // final fragment without its newline is a torn append by
        // construction (the writer commits line + '\n' in one write).
        let mut lines: Vec<(usize, &str)> = Vec::new(); // (start offset, text)
        let mut tail_fragment: Option<usize> = None;
        let mut start = 0;
        while start < bytes.len() {
            match bytes[start..].iter().position(|&b| b == b'\n') {
                Some(rel) => {
                    let text = std::str::from_utf8(&bytes[start..start + rel]).unwrap_or("\u{0}");
                    lines.push((start, text));
                    start += rel + 1;
                }
                None => {
                    tail_fragment = Some(start);
                    break;
                }
            }
        }

        let mut recs = Vec::with_capacity(lines.len());
        let mut bad: Option<usize> = tail_fragment; // offset to truncate to
        for (i, (off, text)) in lines.iter().enumerate() {
            match parse_line(text, recs.len() as u64) {
                Some(rec) => recs.push(rec),
                None => {
                    // A valid record *after* this one means the damage is
                    // not a torn tail: refuse rather than drop committed
                    // history. (Seq continuity cannot be checked — the
                    // damaged record may have consumed any count — so any
                    // later line that validates structurally at any seq
                    // is proof of mid-file damage.)
                    let later_valid = lines[i + 1..].iter().any(|(_, t)| {
                        Json::parse(t).ok().is_some_and(|v| {
                            v.get("schema").and_then(Json::as_str) == Some(JOURNAL_SCHEMA)
                                && v.get("rec").and_then(Rec::from_json).is_some()
                                && v.get("hash").is_some()
                        })
                    });
                    if later_valid {
                        return Err(JournalError::Corrupt(format!(
                            "record {i} (byte offset {off}) fails validation but later \
                             records are intact; refusing to discard committed history \
                             — inspect or restore {}",
                            path.display()
                        )));
                    }
                    bad = Some(*off);
                    break;
                }
            }
        }

        if let Some(off) = bad {
            file.set_len(off as u64)?;
        }
        file.seek(std::io::SeekFrom::End(0))?;
        let next_seq = recs.len() as u64;
        Ok((
            Journal {
                file,
                path,
                next_seq,
            },
            recs,
        ))
    }

    /// Appends one record durably: the line (with its seq and integrity
    /// hash) is written, flushed, and fsync'd before this returns.
    ///
    /// # Errors
    ///
    /// Any I/O failure; the record must then be considered *not*
    /// committed.
    pub fn append(&mut self, rec: &Rec) -> Result<(), JournalError> {
        let mut line = render(self.next_seq, rec);
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()?;
        self.next_seq += 1;
        Ok(())
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records committed so far (== the next record's sequence number).
    pub fn committed(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lbp-batch-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    fn sample(n: usize) -> Vec<Rec> {
        (0..n)
            .map(|i| Rec::Running {
                id: format!("job-{i}"),
                attempt: 1 + (i % 3) as u32,
                t_us: 1000 * i as u64,
            })
            .collect()
    }

    #[test]
    fn append_reopen_round_trips() {
        let path = scratch("roundtrip.jsonl");
        let recs = sample(5);
        {
            let (mut j, replay) = Journal::open(&path).unwrap();
            assert!(replay.is_empty());
            for r in &recs {
                j.append(r).unwrap();
            }
        }
        let (j, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay, recs);
        assert_eq!(j.committed(), 5);
    }

    #[test]
    fn torn_tail_is_discarded_and_appends_continue() {
        let path = scratch("torn.jsonl");
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            for r in sample(3) {
                j.append(&r).unwrap();
            }
        }
        // Simulate a crash mid-append: half a line, no newline.
        let committed = std::fs::read(&path).unwrap();
        let mut torn = committed.clone();
        torn.extend_from_slice(br#"{"schema":"lbp-batch-journal-v1","seq":3,"rec":{"op":"fin"#);
        std::fs::write(&path, &torn).unwrap();

        let (mut j, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay, sample(3), "committed records survive the tear");
        assert_eq!(
            std::fs::read(&path).unwrap(),
            committed,
            "the torn bytes are physically gone"
        );
        // The journal stays usable: the next record takes seq 3.
        j.append(&Rec::Rejected { id: "x".into() }).unwrap();
        drop(j);
        let (_, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay.len(), 4);
        assert_eq!(replay[3], Rec::Rejected { id: "x".into() });
    }

    #[test]
    fn torn_tail_with_newline_is_also_discarded() {
        let path = scratch("torn-nl.jsonl");
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            for r in sample(2) {
                j.append(&r).unwrap();
            }
        }
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"{\"garbage\": tru\n");
        std::fs::write(&path, &bytes).unwrap();
        let (_, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay, sample(2));
    }

    #[test]
    fn mid_file_corruption_is_refused_not_truncated() {
        let path = scratch("midfile.jsonl");
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            for r in sample(4) {
                j.append(&r).unwrap();
            }
        }
        // Flip one byte inside record 1's payload (keep line structure).
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
        lines[1] = lines[1].replace("job-1", "job-X");
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();

        match Journal::open(&path) {
            Err(JournalError::Corrupt(msg)) => {
                assert!(msg.contains("record 1"), "message was: {msg}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // Nothing was truncated by the refusal.
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 4);
    }

    #[test]
    fn wrong_seq_reads_as_damage() {
        let path = scratch("seq.jsonl");
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            for r in sample(2) {
                j.append(&r).unwrap();
            }
        }
        // Duplicate the last line: its seq repeats, so it fails
        // validation as record 2 and is discarded as a torn tail.
        let text = std::fs::read_to_string(&path).unwrap();
        let last = text.lines().last().unwrap().to_owned();
        std::fs::write(&path, format!("{text}{last}\n")).unwrap();
        let (_, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay, sample(2));
    }

    #[test]
    fn every_record_kind_round_trips_through_json() {
        let recs = vec![
            Rec::Start { epoch: 2 },
            Rec::Manifest {
                mhash: 0xdead_beef_0123_4567,
                jobs: 9,
            },
            Rec::Queued {
                id: "a".into(),
                job: 42,
                dedup_of: None,
            },
            Rec::Queued {
                id: "b".into(),
                job: 42,
                dedup_of: Some("a".into()),
            },
            Rec::Rejected { id: "late".into() },
            Rec::Running {
                id: "a".into(),
                attempt: 3,
                t_us: 17,
            },
            Rec::Checkpoint {
                id: "a".into(),
                cycle: 5000,
                file: "a.5000.lbpsnap".into(),
            },
            Rec::Transient {
                id: "a".into(),
                attempt: 3,
                class: "cancelled".into(),
                error: "wall clock".into(),
                t_us: 99,
            },
            Rec::Final {
                id: "a".into(),
                line: r#"{"schema":"lbp-batch-v1","id":"a"}"#.into(),
                ok: true,
                cycles: 1234,
                t_us: 100,
            },
        ];
        for r in recs {
            assert_eq!(Rec::from_json(&r.to_json()), Some(r.clone()), "{r:?}");
        }
    }
}
