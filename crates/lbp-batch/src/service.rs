//! The crash-recoverable batch service.
//!
//! [`run_service`] runs a manifest the way [`crate::run_batch`] does —
//! dedup groups on a worker pool — but against a *state directory*
//! whose durable write-ahead journal (see [`crate::journal`]) records
//! every job transition before it is acted on. Kill the process at any
//! instant (`kill -9` included) and a restart replays the journal,
//! resumes interrupted jobs from their newest loadable checkpoint,
//! charges crashed attempts against the retry budget, and finishes the
//! sweep; because each job's result line is a pure function of the job,
//! the final `results.jsonl` is byte-identical to an uninterrupted run.
//!
//! ## State directory layout
//!
//! ```text
//! <state>/journal.jsonl   the lbp-batch-journal-v1 write-ahead log
//! <state>/ck/             periodic lbp-snap-v1 checkpoints (2 newest/job)
//! <state>/dumps/          lbp-dump-v1 reports for failed/cancelled attempts
//! <state>/results.jsonl   lbp-batch-v1 lines, manifest order (on completion)
//! <state>/bench.jsonl     lbp-prof-v1 p50/p99 job-latency rows
//! ```
//!
//! ## Policies
//!
//! * **Retry.** An attempt that dies with the process, is cancelled by
//!   the wall-clock watchdog, or hits host-side I/O counts against the
//!   job's attempt budget; the job requeues with deterministic bounded
//!   backoff (`backoff_ms << (attempt-1)`, capped). Deterministic
//!   verdicts — compile/config errors, simulation faults, the cycle
//!   budget — are *permanent*: retrying a deterministic machine cannot
//!   change them.
//! * **Quarantine.** A job still without a deterministic verdict after
//!   `max_attempts` attempts is poison: it gets a final
//!   `status:"quarantined"` line instead of blocking the sweep forever.
//! * **Backpressure.** At most `queue_cap` *distinct* jobs are admitted
//!   (0 = unbounded); the rest are shed at admission with a final
//!   `status:"rejected"` backpressure line. Admission is decided once,
//!   in manifest order, and journaled — a restart never re-litigates it.
//! * **Watchdogs.** The cycle budget (`max_cycles`, a property of the
//!   job) ends a run deterministically as `status:"timeout"`. The
//!   wall-clock budget (`wall_ms`, a property of the host) cancels an
//!   attempt cooperatively at a cycle boundary and still writes a valid
//!   `lbp-dump-v1` report of the machine at the cancellation point.

use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use lbp_sim::{Json, Machine, MachineState, RunPause, SimError};

use crate::journal::{Journal, JournalError, Rec};
use crate::{job_hash, prepare, profile_summary, result_line, sim_error_class};
use crate::{BatchJob, JobOutcome};

/// Exit code of a process that died at its crash-injection point (the
/// `--crash-after-appends` test hook): distinguishes an injected crash
/// from real failures in the soak harness.
pub const CRASH_EXIT: i32 = 86;

/// Checkpoint files kept per job (newest first); older ones are pruned.
const CHECKPOINTS_KEPT: usize = 2;

/// Longest deterministic backoff an attempt can wait, in milliseconds.
const BACKOFF_CAP_MS: u64 = 2_000;

/// Tuning and policy knobs for [`run_service`].
#[derive(Debug, Clone)]
pub struct ServiceOptions {
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Attempts a job may spend before quarantine (at least 1).
    pub max_attempts: u32,
    /// Distinct jobs admitted before shedding; 0 means unbounded.
    pub queue_cap: usize,
    /// Cycles between checkpoints; 0 disables checkpointing.
    pub checkpoint_every: u64,
    /// Cycles simulated between watchdog polls (cancellation latency).
    pub slice: u64,
    /// Per-attempt wall-clock budget in milliseconds; 0 disables it.
    pub wall_ms: u64,
    /// Base of the deterministic retry backoff, in milliseconds.
    pub backoff_ms: u64,
    /// Crash-injection test hook: exit with [`CRASH_EXIT`] immediately
    /// after the Nth journal append of this process.
    pub crash_after_appends: Option<u64>,
    /// With `crash_after_appends`, also leave a torn half-record at the
    /// journal tail, as a crash mid-append would.
    pub crash_torn: bool,
}

impl Default for ServiceOptions {
    fn default() -> ServiceOptions {
        ServiceOptions {
            workers: 1,
            max_attempts: 3,
            queue_cap: 0,
            checkpoint_every: 0,
            slice: 10_000,
            wall_ms: 0,
            backoff_ms: 10,
            crash_after_appends: None,
            crash_torn: false,
        }
    }
}

/// A failure that aborts the service (job failures never do — they land
/// in result lines).
#[derive(Debug)]
pub enum ServiceError {
    /// The journal could not be opened, replayed, or appended to.
    Journal(JournalError),
    /// A state-directory file operation failed.
    Io(std::io::Error),
    /// The state directory contradicts this invocation (different
    /// manifest, admission records that do not replay, …).
    State(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Journal(e) => write!(f, "{e}"),
            ServiceError::Io(e) => write!(f, "state-directory i/o failed: {e}"),
            ServiceError::State(what) => write!(f, "state directory mismatch: {what}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<JournalError> for ServiceError {
    fn from(e: JournalError) -> ServiceError {
        ServiceError::Journal(e)
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> ServiceError {
        ServiceError::Io(e)
    }
}

/// What a finished (or resumed-and-finished) service run did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceReport {
    /// Jobs in the manifest (== lines in `results.jsonl`).
    pub jobs: usize,
    /// Distinct jobs admitted to the queue.
    pub admitted: usize,
    /// Manifest jobs shed at admission (backpressure).
    pub rejected: usize,
    /// Result lines whose status is not `ok`.
    pub failed: usize,
    /// Jobs quarantined as poison.
    pub quarantined: usize,
    /// Attempts run by *this* process (0 when the sweep was already
    /// complete in the journal).
    pub attempted: u64,
    /// Attempts this process resumed from a checkpoint.
    pub resumed: u64,
    /// Transient failures journaled by this process.
    pub retries: u64,
    /// This run's epoch: 0 for a fresh state directory, +1 per restart.
    pub epoch: u64,
}

/// Admission verdict for one manifest job, a pure function of manifest
/// order and `queue_cap` — which is what lets a restart recompute and
/// verify it instead of trusting partial journal state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Admission {
    /// The job is its dedup group's representative and will simulate.
    Run,
    /// Satisfied by the representative at this manifest index.
    Dup(usize),
    /// Shed: the queue already held `queue_cap` distinct jobs (the
    /// whole dedup group is shed with it — a rejected representative
    /// cannot satisfy anyone).
    Shed,
}

fn admit(hashes: &[u64], cap: usize) -> Vec<Admission> {
    let mut groups: HashMap<u64, Option<usize>> = HashMap::new();
    let mut reps = 0usize;
    hashes
        .iter()
        .enumerate()
        .map(|(i, &h)| match groups.get(&h) {
            Some(Some(rep)) => Admission::Dup(*rep),
            Some(None) => Admission::Shed,
            None => {
                if cap != 0 && reps >= cap {
                    groups.insert(h, None);
                    Admission::Shed
                } else {
                    groups.insert(h, Some(i));
                    reps += 1;
                    Admission::Run
                }
            }
        })
        .collect()
}

/// The admission record the journal must hold for manifest job `i`.
fn admission_rec(jobs: &[BatchJob], hashes: &[u64], admission: &[Admission], i: usize) -> Rec {
    match admission[i] {
        Admission::Shed => Rec::Rejected {
            id: jobs[i].id.clone(),
        },
        Admission::Run => Rec::Queued {
            id: jobs[i].id.clone(),
            job: hashes[i],
            dedup_of: None,
        },
        Admission::Dup(rep) => Rec::Queued {
            id: jobs[i].id.clone(),
            job: hashes[i],
            dedup_of: Some(jobs[rep].id.clone()),
        },
    }
}

/// Everything a journal replay says about where the sweep stands.
#[derive(Debug, Default)]
struct Recovered {
    /// Epochs already started (== the `Start` records seen).
    epoch: u64,
    /// Admission records already journaled (a prefix of the manifest).
    admitted_prefix: usize,
    /// Highest attempt each job has *started*. Any started attempt that
    /// did not reach `Final` was spent — on a transient failure or with
    /// the process — so the next attempt is this plus one.
    attempts: HashMap<String, u32>,
    /// Checkpoints journaled per job, oldest first.
    checkpoints: HashMap<String, Vec<(u64, String)>>,
    /// Final result lines (no trailing newline) per finalized job.
    finals: HashMap<String, String>,
    /// Finalizing-attempt latencies from earlier epochs, recovered from
    /// the `t_us` of each `Final` and its same-epoch `Running`.
    latencies_us: Vec<u64>,
}

/// Folds a replayed journal into the sweep's recovered state. Pure, so
/// the crash-ordering corner cases are unit-testable without a process
/// to kill.
fn recover(recs: &[Rec]) -> Recovered {
    let mut r = Recovered::default();
    // id -> (epoch, t_us) of its most recent `Running`. Timestamps are
    // only comparable within one epoch (each process restarts its
    // clock), so a `Final` in a later epoch yields no latency sample.
    let mut running: HashMap<String, (u64, u64)> = HashMap::new();
    for rec in recs {
        match rec {
            Rec::Start { .. } => r.epoch += 1,
            Rec::Manifest { .. } => {}
            Rec::Queued { .. } | Rec::Rejected { .. } => r.admitted_prefix += 1,
            Rec::Running { id, attempt, t_us } => {
                let spent = r.attempts.entry(id.clone()).or_insert(0);
                *spent = (*spent).max(*attempt);
                running.insert(id.clone(), (r.epoch, *t_us));
            }
            // A `Transient` means its attempt's `Running` was journaled
            // first; the attempt counter already covers it.
            Rec::Transient { .. } => {}
            Rec::Checkpoint { id, cycle, file } => r
                .checkpoints
                .entry(id.clone())
                .or_default()
                .push((*cycle, file.clone())),
            Rec::Final { id, line, t_us, .. } => {
                if let Some(&(epoch, started)) = running.get(id) {
                    if epoch == r.epoch && *t_us >= started {
                        r.latencies_us.push((*t_us - started).max(1));
                    }
                }
                r.finals.insert(id.clone(), line.clone());
            }
        }
    }
    r
}

/// Rewrites a representative's result line into its dedup twin's: same
/// verdict, the twin's `id`, `dedup_of` naming the representative.
/// Byte-equal to rendering the twin directly (the JSON writer is
/// canonical and floats round-trip), which `rewritten_twin_lines_match`
/// pins.
fn twin_line(rep_line: &str, twin_id: &str, rep_id: &str) -> Option<String> {
    let mut v = Json::parse(rep_line).ok()?;
    let Json::Obj(pairs) = &mut v else {
        return None;
    };
    let mut seen = 0;
    for (k, val) in pairs.iter_mut() {
        if k == "id" {
            *val = Json::Str(twin_id.to_owned());
            seen += 1;
        } else if k == "dedup_of" {
            *val = Json::Str(rep_id.to_owned());
            seen += 1;
        }
    }
    (seen == 2).then(|| {
        let mut line = String::new();
        v.write(&mut line);
        line
    })
}

/// The journal plus the crash-injection hook. Crashing *after* the
/// append commits models a process killed between an acknowledged
/// transition and its next step; the torn variant additionally leaves
/// the half-written line a mid-append kill would.
struct HookedJournal {
    j: Journal,
    appends: u64,
    crash_after: Option<u64>,
    crash_torn: bool,
}

impl HookedJournal {
    fn append(&mut self, rec: &Rec) -> Result<(), JournalError> {
        self.j.append(rec)?;
        self.appends += 1;
        if Some(self.appends) == self.crash_after {
            if self.crash_torn {
                let torn = std::fs::OpenOptions::new()
                    .append(true)
                    .open(self.j.path())
                    .and_then(|mut f| f.write_all(br#"{"schema":"lbp-batch-journal-v1","seq":99"#));
                let _ = torn;
            }
            std::process::exit(CRASH_EXIT);
        }
        Ok(())
    }
}

/// One queued unit of work: a representative's next attempt.
struct QueueItem {
    idx: usize,
    attempt: u32,
    not_before: Option<Instant>,
}

/// State the worker pool shares under one lock.
struct Inner {
    journal: HookedJournal,
    queue: std::collections::VecDeque<QueueItem>,
    /// Representatives not yet final; workers exit when it hits 0.
    outstanding: usize,
    /// Final lines (no trailing newline) by manifest index.
    finals: HashMap<usize, String>,
    /// Checkpoints per representative index, oldest first.
    checkpoints: HashMap<usize, Vec<(u64, String)>>,
    latencies_us: Vec<u64>,
    attempted: u64,
    resumed: u64,
    retries: u64,
    quarantined: usize,
    fatal: Option<ServiceError>,
}

struct Shared<'a> {
    jobs: &'a [BatchJob],
    hashes: &'a [u64],
    opts: &'a ServiceOptions,
    ck_dir: PathBuf,
    dump_dir: PathBuf,
    t0: Instant,
    inner: Mutex<Inner>,
}

impl Shared<'_> {
    fn t_us(&self) -> u64 {
        self.t0.elapsed().as_micros() as u64
    }
}

/// Runs (or, against a populated state directory, *finishes*) a sweep.
///
/// `manifest_text` is the raw manifest the jobs were loaded from; its
/// content hash pins the state directory to one manifest. On
/// completion `results.jsonl` holds one `lbp-batch-v1` line per
/// manifest job, in manifest order, and `bench.jsonl` the epoch's
/// p50/p99 job-latency rows.
///
/// # Errors
///
/// Journal damage beyond torn-tail recovery, a state directory pinned
/// to a different manifest, or state-directory I/O failures. Job
/// failures are verdicts, not errors.
pub fn run_service(
    manifest_text: &str,
    jobs: &[BatchJob],
    state_dir: &Path,
    opts: &ServiceOptions,
) -> Result<ServiceReport, ServiceError> {
    std::fs::create_dir_all(state_dir)?;
    let ck_dir = state_dir.join("ck");
    let dump_dir = state_dir.join("dumps");
    std::fs::create_dir_all(&ck_dir)?;
    std::fs::create_dir_all(&dump_dir)?;

    let hashes: Vec<u64> = jobs.iter().map(job_hash).collect();
    let admission = admit(&hashes, opts.queue_cap);
    let mhash = lbp_snap::fnv1a64(manifest_text.as_bytes());

    let (journal, replayed) = Journal::open(state_dir.join("journal.jsonl"))?;
    let recovered = recover(&replayed);

    // Pin the directory to this manifest before trusting anything else.
    for rec in &replayed {
        if let Rec::Manifest { mhash: m, jobs: n } = rec {
            if *m != mhash || *n != jobs.len() as u64 {
                return Err(ServiceError::State(format!(
                    "journal serves manifest {m:016x} ({n} jobs), this invocation \
                     loaded {mhash:016x} ({} jobs)",
                    jobs.len()
                )));
            }
        }
    }
    // Journaled admission decisions must replay exactly (they are a
    // pure function of the manifest, so any divergence is damage).
    if recovered.admitted_prefix > jobs.len() {
        return Err(ServiceError::State(format!(
            "journal admits {} jobs, manifest has {}",
            recovered.admitted_prefix,
            jobs.len()
        )));
    }
    {
        let mut seen = 0;
        for rec in &replayed {
            if matches!(rec, Rec::Queued { .. } | Rec::Rejected { .. }) {
                let want = admission_rec(jobs, &hashes, &admission, seen);
                if *rec != want {
                    return Err(ServiceError::State(format!(
                        "journaled admission for manifest job {seen} does not replay \
                         (journal {rec:?}, expected {want:?})"
                    )));
                }
                seen += 1;
            }
        }
    }

    let mut journal = HookedJournal {
        j: journal,
        appends: 0,
        crash_after: opts.crash_after_appends,
        crash_torn: opts.crash_torn,
    };
    let epoch = recovered.epoch;
    journal.append(&Rec::Start { epoch })?;
    if !replayed.iter().any(|r| matches!(r, Rec::Manifest { .. })) {
        journal.append(&Rec::Manifest {
            mhash,
            jobs: jobs.len() as u64,
        })?;
    }
    // Finish (or start) admission where the journal left off.
    for i in recovered.admitted_prefix..jobs.len() {
        journal.append(&admission_rec(jobs, &hashes, &admission, i))?;
    }

    // Seed the worker state from the recovery fold.
    let mut inner = Inner {
        journal,
        queue: std::collections::VecDeque::new(),
        outstanding: 0,
        finals: HashMap::new(),
        checkpoints: HashMap::new(),
        latencies_us: recovered.latencies_us.clone(),
        attempted: 0,
        resumed: 0,
        retries: 0,
        quarantined: 0,
        fatal: None,
    };
    let max_attempts = opts.max_attempts.max(1);
    let mut admitted = 0usize;
    for (i, a) in admission.iter().enumerate() {
        if !matches!(a, Admission::Run) {
            continue;
        }
        admitted += 1;
        let id = &jobs[i].id;
        if let Some(line) = recovered.finals.get(id) {
            inner.finals.insert(i, line.clone());
            if line.contains("\"status\":\"quarantined\"") {
                inner.quarantined += 1;
            }
            continue;
        }
        if let Some(cks) = recovered.checkpoints.get(id) {
            inner.checkpoints.insert(i, cks.clone());
        }
        let next_attempt = recovered.attempts.get(id).copied().unwrap_or(0) + 1;
        if next_attempt > max_attempts {
            // Poison found at recovery: every attempt died with a
            // process or failed transiently. Quarantine it now.
            let outcome = JobOutcome::Quarantined {
                attempts: max_attempts,
            };
            let line = rep_line(&jobs[i], hashes[i], &outcome);
            inner.journal.append(&Rec::Final {
                id: id.clone(),
                line: line.clone(),
                ok: false,
                cycles: 0,
                t_us: 0,
            })?;
            inner.finals.insert(i, line);
            inner.quarantined += 1;
            continue;
        }
        inner.outstanding += 1;
        inner.queue.push_back(QueueItem {
            idx: i,
            attempt: next_attempt,
            not_before: None,
        });
    }

    let shared = Shared {
        jobs,
        hashes: &hashes,
        opts,
        ck_dir,
        dump_dir,
        t0: Instant::now(),
        inner: Mutex::new(inner),
    };
    let workers = opts.workers.max(1).min(jobs.len().max(1));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| worker(&shared));
        }
    });

    let mut inner = shared.inner.into_inner().unwrap();
    if let Some(e) = inner.fatal.take() {
        return Err(e);
    }

    drain(state_dir, jobs, &hashes, &admission, &inner, opts, epoch)?;
    let failed = (0..jobs.len())
        .filter(|&i| match admission[i] {
            Admission::Shed => true,
            Admission::Run => !is_ok_line(&inner.finals[&i]),
            Admission::Dup(rep) => !is_ok_line(&inner.finals[&rep]),
        })
        .count();
    Ok(ServiceReport {
        jobs: jobs.len(),
        admitted,
        rejected: admission
            .iter()
            .filter(|a| matches!(a, Admission::Shed))
            .count(),
        failed,
        quarantined: inner.quarantined,
        attempted: inner.attempted,
        resumed: inner.resumed,
        retries: inner.retries,
        epoch,
    })
}

fn is_ok_line(line: &str) -> bool {
    Json::parse(line)
        .ok()
        .and_then(|v| v.get("status").and_then(Json::as_str).map(str::to_owned))
        .is_some_and(|s| s == "ok")
}

/// A representative's own result line (no trailing newline).
fn rep_line(job: &BatchJob, hash: u64, outcome: &JobOutcome) -> String {
    let mut line = result_line(job, hash, None, outcome);
    line.truncate(line.trim_end_matches('\n').len());
    line
}

fn worker(shared: &Shared<'_>) {
    loop {
        let item = {
            let mut g = shared.inner.lock().unwrap();
            if g.outstanding == 0 || g.fatal.is_some() {
                return;
            }
            g.queue.pop_front()
        };
        let Some(item) = item else {
            // Work is outstanding but claimed by other workers.
            std::thread::sleep(Duration::from_millis(1));
            continue;
        };
        if let Some(at) = item.not_before {
            let now = Instant::now();
            if at > now {
                std::thread::sleep(at - now);
            }
        }
        if let Err(e) = run_attempt(shared, item.idx, item.attempt) {
            let mut g = shared.inner.lock().unwrap();
            if g.fatal.is_none() {
                g.fatal = Some(e);
            }
            return;
        }
    }
}

/// How one attempt ended, before retry policy is applied.
enum Attempt {
    Final {
        outcome: JobOutcome,
        cycles: u64,
        dump: Option<Json>,
    },
    Transient {
        class: &'static str,
        error: String,
        dump: Option<Json>,
    },
}

fn run_attempt(shared: &Shared<'_>, idx: usize, attempt: u32) -> Result<(), ServiceError> {
    let job = &shared.jobs[idx];
    let opts = shared.opts;
    {
        let mut g = shared.inner.lock().unwrap();
        let t_us = shared.t_us();
        g.journal.append(&Rec::Running {
            id: job.id.clone(),
            attempt,
            t_us,
        })?;
        g.attempted += 1;
    }
    let started = Instant::now();

    // Resume from the newest loadable checkpoint. Profiled jobs always
    // start over: the profiling collectors are not part of a machine
    // snapshot, so a resumed run would under-count.
    let resume: Option<MachineState> = if job.profile {
        None
    } else {
        let cks = shared
            .inner
            .lock()
            .unwrap()
            .checkpoints
            .get(&idx)
            .cloned()
            .unwrap_or_default();
        newest_loadable(&shared.ck_dir, &job.id, &cks)
    };

    let result = attempt_once(shared, idx, attempt, resume, started);
    let elapsed_us = started.elapsed().as_micros() as u64;

    let mut g = shared.inner.lock().unwrap();
    match result {
        Attempt::Final {
            outcome,
            cycles,
            dump,
        } => {
            if let Some(dump) = dump {
                write_dump(&shared.dump_dir, idx, attempt, &dump);
            }
            let line = rep_line(job, shared.hashes[idx], &outcome);
            let t_us = shared.t_us();
            g.journal.append(&Rec::Final {
                id: job.id.clone(),
                line: line.clone(),
                ok: matches!(outcome, JobOutcome::Ok { .. }),
                cycles,
                t_us,
            })?;
            g.finals.insert(idx, line);
            g.outstanding -= 1;
            g.latencies_us.push(elapsed_us.max(1));
            // The verdict is durable; the checkpoints served their
            // purpose.
            for (_, file) in g.checkpoints.remove(&idx).unwrap_or_default() {
                let _ = std::fs::remove_file(shared.ck_dir.join(file));
            }
        }
        Attempt::Transient { class, error, dump } => {
            if let Some(dump) = dump {
                write_dump(&shared.dump_dir, idx, attempt, &dump);
            }
            let t_us = shared.t_us();
            g.journal.append(&Rec::Transient {
                id: job.id.clone(),
                attempt,
                class: class.to_owned(),
                error,
                t_us,
            })?;
            g.retries += 1;
            if attempt >= opts.max_attempts.max(1) {
                let outcome = JobOutcome::Quarantined {
                    attempts: opts.max_attempts.max(1),
                };
                let line = rep_line(job, shared.hashes[idx], &outcome);
                let t_us = shared.t_us();
                g.journal.append(&Rec::Final {
                    id: job.id.clone(),
                    line: line.clone(),
                    ok: false,
                    cycles: 0,
                    t_us,
                })?;
                g.finals.insert(idx, line);
                g.outstanding -= 1;
                g.quarantined += 1;
            } else {
                let backoff =
                    Duration::from_millis((opts.backoff_ms << (attempt - 1)).min(BACKOFF_CAP_MS));
                g.queue.push_back(QueueItem {
                    idx,
                    attempt: attempt + 1,
                    not_before: Some(Instant::now() + backoff),
                });
            }
        }
    }
    Ok(())
}

/// Simulates one attempt, checkpointing and watching the wall clock.
fn attempt_once(
    shared: &Shared<'_>,
    idx: usize,
    attempt: u32,
    resume: Option<MachineState>,
    started: Instant,
) -> Attempt {
    let job = &shared.jobs[idx];
    let opts = shared.opts;
    let (image, fresh) = match prepare(job) {
        Ok(pair) => pair,
        Err(outcome) => {
            return Attempt::Final {
                outcome,
                cycles: 0,
                dump: None,
            }
        }
    };
    let resumed_from = resume.as_ref().map(MachineState::cycle);
    let mut machine = match resume {
        Some(state) => match Machine::restore(&state) {
            Ok(m) => m,
            Err(e) => {
                eprintln!(
                    "lbp-batch: job `{}`: checkpoint payload rejected ({e}); starting over",
                    job.id
                );
                fresh
            }
        },
        None => fresh,
    };
    if resumed_from.is_some() {
        shared.inner.lock().unwrap().resumed += 1;
    }

    let deadline = (opts.wall_ms > 0).then(|| started + Duration::from_millis(opts.wall_ms));
    let every = opts.checkpoint_every;
    let mut next_ck = match machine.stats().cycles.checked_div(every) {
        Some(n) => (n + 1) * every,
        None => u64::MAX,
    };
    let run = machine.run_cooperative(job.max_cycles, opts.slice.max(1), |m| {
        if m.stats().cycles >= next_ck {
            if let Err(e) = write_checkpoint(shared, idx, attempt, m) {
                eprintln!(
                    "lbp-batch: job `{}`: checkpoint failed ({e}); continuing without",
                    job.id
                );
            }
            next_ck = (m.stats().cycles / every + 1) * every;
        }
        deadline.is_none_or(|d| Instant::now() < d)
    });

    match run {
        Ok(RunPause::Exited) => Attempt::Final {
            outcome: JobOutcome::Ok {
                report: machine.report().to_json(),
                profile: job.profile.then(|| profile_summary(&image, &machine, 5)),
            },
            cycles: machine.stats().cycles,
            dump: None,
        },
        Ok(RunPause::Target) => {
            // The deterministic cycle-budget watchdog: same verdict,
            // message and class the one-shot runner produces.
            let e = SimError::Timeout {
                cycles: job.max_cycles,
            };
            Attempt::Final {
                outcome: JobOutcome::Err {
                    class: sim_error_class(&e),
                    message: e.to_string(),
                },
                cycles: 0,
                dump: Some(machine.dump_with("timeout", e.to_string()).to_json()),
            }
        }
        Ok(RunPause::Cancelled) => {
            let message = format!(
                "wall-clock budget of {}ms exceeded at cycle {}",
                opts.wall_ms,
                machine.stats().cycles
            );
            let dump = machine.dump_with("cancelled", message.clone()).to_json();
            Attempt::Transient {
                class: "cancelled",
                error: message,
                dump: Some(dump),
            }
        }
        Err(f) => Attempt::Final {
            outcome: JobOutcome::Err {
                class: sim_error_class(&f.error),
                message: f.error.to_string(),
            },
            cycles: 0,
            dump: Some(f.dump.to_json()),
        },
    }
}

/// Loads the newest checkpoint that still verifies, telling the
/// operator exactly how each damaged one is damaged (torn write versus
/// altered bytes) while falling back to the one before it.
fn newest_loadable(ck_dir: &Path, id: &str, cks: &[(u64, String)]) -> Option<MachineState> {
    for (cycle, file) in cks.iter().rev() {
        match lbp_snap::load(ck_dir.join(file)) {
            Ok(state) => return Some(state),
            Err(e) => eprintln!(
                "lbp-batch: job `{id}`: checkpoint {file} (cycle {cycle}) unusable: {e}; \
                 falling back"
            ),
        }
    }
    None
}

/// Writes a checkpoint durably (temp file, fsync, rename), journals it,
/// and prunes the job's older checkpoints.
fn write_checkpoint(
    shared: &Shared<'_>,
    idx: usize,
    attempt: u32,
    m: &Machine,
) -> Result<(), ServiceError> {
    let state = m.snapshot();
    let cycle = state.cycle();
    let file = format!("job{idx}.c{cycle}.lbpsnap");
    let tmp = shared.ck_dir.join(format!(".tmp-job{idx}-a{attempt}"));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&lbp_snap::encode(&state))?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, shared.ck_dir.join(&file))?;
    let mut g = shared.inner.lock().unwrap();
    g.journal.append(&Rec::Checkpoint {
        id: shared.jobs[idx].id.clone(),
        cycle,
        file: file.clone(),
    })?;
    let cks = g.checkpoints.entry(idx).or_default();
    cks.push((cycle, file));
    while cks.len() > CHECKPOINTS_KEPT {
        let (_, old) = cks.remove(0);
        let _ = std::fs::remove_file(shared.ck_dir.join(old));
    }
    Ok(())
}

/// Best-effort `lbp-dump-v1` report for a failed or cancelled attempt.
fn write_dump(dump_dir: &Path, idx: usize, attempt: u32, dump: &Json) {
    let mut text = String::new();
    dump.write_pretty(&mut text);
    text.push('\n');
    let _ = std::fs::write(dump_dir.join(format!("job{idx}.a{attempt}.json")), text);
}

/// Writes `results.jsonl` (manifest order, atomically) and the epoch's
/// latency rows.
fn drain(
    state_dir: &Path,
    jobs: &[BatchJob],
    hashes: &[u64],
    admission: &[Admission],
    inner: &Inner,
    opts: &ServiceOptions,
    epoch: u64,
) -> Result<(), ServiceError> {
    let mut text = String::new();
    for (i, a) in admission.iter().enumerate() {
        match a {
            Admission::Run => {
                text.push_str(&inner.finals[&i]);
                text.push('\n');
            }
            Admission::Dup(rep) => {
                let line = twin_line(&inner.finals[rep], &jobs[i].id, &jobs[*rep].id).ok_or_else(
                    || {
                        ServiceError::State(format!(
                            "final line for `{}` cannot be derived from its representative",
                            jobs[i].id
                        ))
                    },
                )?;
                text.push_str(&line);
                text.push('\n');
            }
            Admission::Shed => {
                text.push_str(&rep_line(
                    &jobs[i],
                    hashes[i],
                    &JobOutcome::Rejected {
                        cap: opts.queue_cap,
                    },
                ));
                text.push('\n');
            }
        }
    }
    let tmp = state_dir.join(".results.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, state_dir.join("results.jsonl"))?;

    // p50/p99 job latency for the attempts this epoch finalized, as
    // lbp-prof-v1 bench rows (host_ns carries the latency).
    if !inner.latencies_us.is_empty() {
        let mut lat = inner.latencies_us.clone();
        lat.sort_unstable();
        let pick = |p: usize| lat[(lat.len() - 1) * p / 100];
        let mut rows = String::new();
        for (tag, p) in [("p50", 50), ("p99", 99)] {
            let row = lbp_prof::BenchRow {
                name: format!("batch/job-latency/{tag}/e{epoch}"),
                harts: opts.workers.max(1) as u32,
                cores: 1,
                sim_cycles: lat.len() as u64,
                retired: inner.resumed,
                events: inner.retries,
                host_ns: pick(p).saturating_mul(1_000),
                state_bytes: 0,
                peak_rss_kb: lbp_prof::peak_rss_kb(),
            };
            row.to_json().write(&mut rows);
            rows.push('\n');
        }
        std::fs::write(state_dir.join("bench.jsonl"), rows)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceKind;

    fn job(id: &str, cycles: u64) -> BatchJob {
        BatchJob {
            id: id.to_owned(),
            source: "main:\n  li t0, -1\n  li a0, 0\n  p_ret a0, t0".to_owned(),
            kind: SourceKind::Asm,
            cores: 1,
            max_cycles: cycles,
            faults: Vec::new(),
            profile: false,
            warm: None,
        }
    }

    fn state_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("lbp-batch-service-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn admission_is_deterministic_and_group_wise() {
        // b duplicates a; d duplicates c; cap 1 admits only a's group.
        let jobs = [job("a", 10_000), job("b", 10_000), job("c", 7), job("d", 7)];
        let hashes: Vec<u64> = jobs.iter().map(job_hash).collect();
        assert_eq!(
            admit(&hashes, 0),
            vec![
                Admission::Run,
                Admission::Dup(0),
                Admission::Run,
                Admission::Dup(2)
            ]
        );
        assert_eq!(
            admit(&hashes, 1),
            vec![
                Admission::Run,
                Admission::Dup(0),
                Admission::Shed,
                Admission::Shed
            ],
            "a shed representative sheds its whole group"
        );
    }

    #[test]
    fn transient_failure_does_not_satisfy_dedup_twins() {
        // The dedup-vs-retry regression: job `a` (representing twin `b`)
        // fails transiently. The fold must leave `b` unsatisfied and
        // requeue `a` with the attempt charged — a fold that finalized
        // twins off any terminal-looking record would emit `b` here.
        let recs = vec![
            Rec::Start { epoch: 0 },
            Rec::Queued {
                id: "a".into(),
                job: 7,
                dedup_of: None,
            },
            Rec::Queued {
                id: "b".into(),
                job: 7,
                dedup_of: Some("a".into()),
            },
            Rec::Running {
                id: "a".into(),
                attempt: 1,
                t_us: 10,
            },
            Rec::Transient {
                id: "a".into(),
                attempt: 1,
                class: "cancelled".into(),
                error: "wall clock".into(),
                t_us: 20,
            },
        ];
        let r = recover(&recs);
        assert!(r.finals.is_empty(), "no job may be finalized");
        assert_eq!(r.attempts.get("a"), Some(&1), "the attempt is spent");
        assert_eq!(r.attempts.get("b"), None);
    }

    #[test]
    fn crashed_attempt_is_spent() {
        // `Running` with no successor = the process died mid-attempt.
        let recs = vec![
            Rec::Running {
                id: "a".into(),
                attempt: 2,
                t_us: 10,
            },
            Rec::Running {
                id: "a".into(),
                attempt: 1,
                t_us: 5,
            },
        ];
        assert_eq!(recover(&recs).attempts.get("a"), Some(&2));
    }

    #[test]
    fn rewritten_twin_lines_match_direct_rendering() {
        // Recovery derives a twin's line from its representative's
        // journaled line; the bytes must equal rendering the twin
        // directly (floats included).
        let rep = job("rep", 10_000);
        let twin = job("twin", 10_000);
        let outcome = crate::simulate(&rep);
        let rep_rendered = rep_line(&rep, job_hash(&rep), &outcome);
        let direct = {
            let mut l = result_line(&twin, job_hash(&twin), Some("rep"), &outcome);
            l.truncate(l.trim_end_matches('\n').len());
            l
        };
        assert_eq!(twin_line(&rep_rendered, "twin", "rep"), Some(direct));
    }

    #[test]
    fn service_results_match_one_shot_batch() {
        let jobs = vec![job("a", 10_000), job("b", 10_000), job("c", 777)];
        let dir = state_dir("parity");
        let opts = ServiceOptions {
            workers: 2,
            checkpoint_every: 50,
            slice: 25,
            ..ServiceOptions::default()
        };
        let manifest = "parity";
        let report = run_service(manifest, &jobs, &dir, &opts).unwrap();
        assert_eq!(report.jobs, 3);
        assert_eq!(report.admitted, 2);
        assert_eq!(report.failed, 0);
        let mut service: Vec<String> = std::fs::read_to_string(dir.join("results.jsonl"))
            .unwrap()
            .lines()
            .map(str::to_owned)
            .collect();
        let mut one_shot = Vec::new();
        crate::run_batch(&jobs, 1, &mut one_shot).unwrap();
        let mut one_shot: Vec<String> = String::from_utf8(one_shot)
            .unwrap()
            .lines()
            .map(str::to_owned)
            .collect();
        service.sort();
        one_shot.sort();
        assert_eq!(service, one_shot);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restart_of_a_finished_sweep_is_idempotent() {
        let jobs = vec![job("a", 10_000), job("b", 4321)];
        let dir = state_dir("idempotent");
        let opts = ServiceOptions::default();
        let first = run_service("m", &jobs, &dir, &opts).unwrap();
        let bytes = std::fs::read(dir.join("results.jsonl")).unwrap();
        let second = run_service("m", &jobs, &dir, &opts).unwrap();
        assert_eq!(first.epoch, 0);
        assert_eq!(second.epoch, 1);
        assert_eq!(second.attempted, 0, "nothing left to run");
        assert_eq!(std::fs::read(dir.join("results.jsonl")).unwrap(), bytes);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn changed_manifest_is_refused() {
        let jobs = vec![job("a", 10_000)];
        let dir = state_dir("pin");
        run_service("one", &jobs, &dir, &ServiceOptions::default()).unwrap();
        match run_service("two", &jobs, &dir, &ServiceOptions::default()) {
            Err(ServiceError::State(msg)) => assert!(msg.contains("manifest"), "{msg}"),
            other => panic!("expected a state mismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn backpressure_rejects_with_explicit_verdict() {
        let jobs = vec![job("a", 10_000), job("b", 2222), job("c", 3333)];
        let dir = state_dir("shed");
        let opts = ServiceOptions {
            queue_cap: 1,
            ..ServiceOptions::default()
        };
        let report = run_service("m", &jobs, &dir, &opts).unwrap();
        assert_eq!(report.rejected, 2);
        assert_eq!(report.failed, 2);
        let text = std::fs::read_to_string(dir.join("results.jsonl")).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for l in &lines[1..] {
            let v = Json::parse(l).unwrap();
            assert_eq!(v.get("status").and_then(Json::as_str), Some("rejected"));
            let err = v.get("error").and_then(Json::as_str).unwrap();
            assert!(err.contains("backpressure"), "{err}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wall_clock_watchdog_cancels_then_quarantines_with_dumps() {
        // An infinite loop under a 0ms wall budget cancels at the first
        // poll, retries, and quarantines after max_attempts — leaving a
        // valid lbp-dump-v1 report for every cancelled attempt.
        let mut poison = job("spin", u64::MAX);
        poison.source = "main:\nloop:\n  j loop".to_owned();
        let dir = state_dir("watchdog");
        let opts = ServiceOptions {
            wall_ms: 1,
            slice: 16,
            max_attempts: 2,
            backoff_ms: 1,
            ..ServiceOptions::default()
        };
        let report = run_service("m", &[poison], &dir, &opts).unwrap();
        assert_eq!(report.quarantined, 1);
        assert_eq!(report.retries, 2);
        assert_eq!(report.attempted, 2);
        let text = std::fs::read_to_string(dir.join("results.jsonl")).unwrap();
        let v = Json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(v.get("status").and_then(Json::as_str), Some("quarantined"));
        for attempt in 1..=2 {
            let dump =
                std::fs::read_to_string(dir.join(format!("dumps/job0.a{attempt}.json"))).unwrap();
            let d = Json::parse(&dump).unwrap();
            assert_eq!(
                d.get("schema").and_then(Json::as_str),
                Some(lbp_sim::DUMP_SCHEMA)
            );
            assert_eq!(
                d.get("error_class").and_then(Json::as_str),
                Some("cancelled")
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
