//! Journal-level crash recovery, driven through the real binary: torn
//! tails are discarded and the sweep finishes; a crash mid-attempt
//! charges the attempt and requeues the job; damage to committed
//! mid-file history is refused, never silently truncated.

use std::path::{Path, PathBuf};
use std::process::Command;

use lbp_sim::Json;

fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("lbp-batch-recovery-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_manifest(dir: &Path) -> PathBuf {
    std::fs::write(
        dir.join("p.s"),
        "main:
            li   t1, 1200
            li   t2, 0
        loop:
            addi t2, t2, 1
            bne  t2, t1, loop
            li   t0, -1
            li   a0, 0
            p_ret a0, t0",
    )
    .unwrap();
    let path = dir.join("manifest.json");
    std::fs::write(
        &path,
        r#"{"schema": "lbp-batch-manifest-v1",
            "jobs": [{"id": "only", "program": "p.s", "max_cycles": 100000}]}"#,
    )
    .unwrap();
    path
}

fn cmd(manifest: &Path, state: &Path) -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_lbp-batch"));
    c.arg(manifest).arg("--state-dir").arg(state).args([
        "--workers",
        "1",
        "--checkpoint-every",
        "300",
        "--slice",
        "64",
    ]);
    c
}

/// Journal records as `(op, attempt)` pairs, in order.
fn journal_ops(state: &Path) -> Vec<(String, Option<u64>)> {
    std::fs::read_to_string(state.join("journal.jsonl"))
        .unwrap()
        .lines()
        .map(|l| {
            let rec = Json::parse(l).unwrap();
            let rec = rec.get("rec").unwrap();
            (
                rec.get("op").and_then(Json::as_str).unwrap().to_owned(),
                rec.get("attempt").and_then(Json::as_u64),
            )
        })
        .collect()
}

#[test]
fn torn_tail_is_recovered_and_the_sweep_finishes() {
    let dir = scratch("torn");
    let manifest = write_manifest(&dir);
    let state = dir.join("state");
    // Crash after the 4th append — Start, Manifest, Queued, Running —
    // leaving a torn half-record behind the committed Running.
    let status = cmd(&manifest, &state)
        .args(["--crash-after-appends", "4", "--crash-torn"])
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(86), "the crash hook must fire");
    let raw = std::fs::read_to_string(state.join("journal.jsonl")).unwrap();
    assert!(
        !raw.ends_with('\n'),
        "the tear left a partial final line: {raw:?}"
    );

    let out = cmd(&manifest, &state).output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "recovery failed\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let results = std::fs::read_to_string(state.join("results.jsonl")).unwrap();
    let v = Json::parse(results.lines().next().unwrap()).unwrap();
    assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crash_mid_attempt_charges_the_attempt_and_requeues() {
    let dir = scratch("requeue");
    let manifest = write_manifest(&dir);
    let state = dir.join("state");
    let status = cmd(&manifest, &state)
        .args(["--crash-after-appends", "4"])
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(86));
    let ops = journal_ops(&state);
    assert_eq!(
        ops.last().unwrap(),
        &("running".to_owned(), Some(1)),
        "the crash landed mid-attempt: {ops:?}"
    );

    assert_eq!(cmd(&manifest, &state).status().unwrap().code(), Some(0));
    let ops = journal_ops(&state);
    assert!(
        ops.contains(&("running".to_owned(), Some(2))),
        "the spent attempt must be charged and the job retried as \
         attempt 2: {ops:?}"
    );
    assert_eq!(ops.last().unwrap().0, "final");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn interrupted_job_resumes_from_its_checkpoint() {
    let dir = scratch("resume");
    let manifest = write_manifest(&dir);
    let state = dir.join("state");
    // Crash well into the job, after several checkpoint records.
    let status = cmd(&manifest, &state)
        .args(["--crash-after-appends", "7"])
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(86));
    let ops = journal_ops(&state);
    let checkpoints = ops.iter().filter(|(op, _)| op == "checkpoint").count();
    assert!(checkpoints >= 2, "need checkpoints to resume from: {ops:?}");

    let out = cmd(&manifest, &state).output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    // The restart reported a resumed attempt on stderr.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("1 resumed"),
        "expected a checkpoint resume, got: {stderr}"
    );
    let results = std::fs::read_to_string(state.join("results.jsonl")).unwrap();
    let v = Json::parse(results.lines().next().unwrap()).unwrap();
    assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mid_file_corruption_is_refused_with_a_diagnostic() {
    let dir = scratch("corrupt");
    let manifest = write_manifest(&dir);
    let state = dir.join("state");
    assert_eq!(cmd(&manifest, &state).status().unwrap().code(), Some(0));

    // Damage a committed record in the middle of the journal.
    let journal = state.join("journal.jsonl");
    let text = std::fs::read_to_string(&journal).unwrap();
    let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
    assert!(lines.len() >= 3);
    lines[1] = lines[1].replace(':', ";");
    std::fs::write(&journal, lines.join("\n") + "\n").unwrap();

    let out = cmd(&manifest, &state).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "damage must abort, not resume");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("corrupt") && stderr.contains("torn"),
        "diagnostic must name the failure mode: {stderr}"
    );
    // The refusal never truncates the file.
    assert_eq!(
        std::fs::read_to_string(&journal).unwrap().lines().count(),
        lines.len()
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
