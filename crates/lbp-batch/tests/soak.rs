//! The kill-and-restart soak harness — the service's headline proof.
//!
//! A reference sweep runs uninterrupted. Then the same sweep runs in a
//! fresh state directory with seeded crash injection: the worker
//! process is killed at pseudo-random journal-append points (half the
//! time leaving a torn half-record at the journal tail), restarted,
//! killed again — at least three times — and finally allowed to finish.
//! The recovered `results.jsonl` must be byte-identical to the
//! uninterrupted run's, and the epoch's p50/p99 job-latency rows must
//! validate as `lbp-prof-v1` bench records.

use std::path::{Path, PathBuf};
use std::process::Command;

use lbp_sim::Json;
use lbp_testutil::Rng;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lbp-batch-soak-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A program that spins `iters` times before exiting cleanly — long
/// enough to cross several checkpoint intervals.
fn spin_program(iters: u64) -> String {
    format!(
        "main:
            li   t1, {iters}
            li   t2, 0
        loop:
            addi t2, t2, 1
            bne  t2, t1, loop
            li   t0, -1
            li   a0, 0
            p_ret a0, t0"
    )
}

/// Writes the soak manifest: three long distinct jobs, a dedup twin,
/// a multi-core job, and a deterministic failure.
fn write_manifest(dir: &Path) -> PathBuf {
    for (name, iters) in [("p1.s", 1500u64), ("p2.s", 2100), ("p3.s", 2700)] {
        std::fs::write(dir.join(name), spin_program(iters)).unwrap();
    }
    std::fs::write(dir.join("bad.s"), "main:\nloop:\n  j loop\n").unwrap();
    let manifest = r#"{
        "schema": "lbp-batch-manifest-v1",
        "jobs": [
            {"id": "spin-1", "program": "p1.s", "max_cycles": 200000},
            {"id": "spin-2", "program": "p2.s", "max_cycles": 200000},
            {"id": "spin-2-again", "program": "p2.s", "max_cycles": 200000},
            {"id": "spin-3", "program": "p3.s", "max_cycles": 200000},
            {"id": "spin-1-c2", "program": "p1.s", "cores": 2, "max_cycles": 200000},
            {"id": "broken", "program": "bad.s", "max_cycles": 5000}
        ]
    }"#;
    let path = dir.join("manifest.json");
    std::fs::write(&path, manifest).unwrap();
    path
}

fn service_cmd(manifest: &Path, state: &Path) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_lbp-batch"));
    cmd.arg(manifest)
        .arg("--state-dir")
        .arg(state)
        .args(["--workers", "2"])
        .args(["--checkpoint-every", "400"])
        .args(["--slice", "128"])
        .args(["--backoff-ms", "1"])
        // Crashed attempts are charged; a generous budget keeps injected
        // kills from quarantining jobs (which would change the results).
        .args(["--max-attempts", "1000"]);
    cmd
}

#[test]
fn killed_and_restarted_sweep_matches_uninterrupted_run_byte_for_byte() {
    let dir = scratch("main");
    let manifest = write_manifest(&dir);

    // Reference: one uninterrupted service run.
    let ref_state = dir.join("ref");
    let status = service_cmd(&manifest, &ref_state).status().unwrap();
    assert_eq!(status.code(), Some(0), "reference run failed");
    let reference = std::fs::read(ref_state.join("results.jsonl")).unwrap();
    assert_eq!(
        String::from_utf8_lossy(&reference).lines().count(),
        6,
        "one line per manifest job"
    );

    // Soak: seeded crash injection until at least 3 kills landed.
    let state = dir.join("soak");
    let seed = std::env::var("LBP_SOAK_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xdecaf);
    let mut rng = Rng::new(seed);
    let mut kills = 0u32;
    let mut runs = 0u32;
    while kills < 3 {
        runs += 1;
        assert!(runs < 64, "crash injection never let the sweep progress");
        let crash_after = 2 + rng.below(14);
        let torn = rng.flip();
        let mut cmd = service_cmd(&manifest, &state);
        cmd.args(["--crash-after-appends", &crash_after.to_string()]);
        if torn {
            cmd.arg("--crash-torn");
        }
        let out = cmd.output().unwrap();
        match out.status.code() {
            Some(86) => kills += 1,
            Some(0) => {} // finished before the crash point fired
            other => panic!(
                "unexpected exit {other:?}\nstderr: {}",
                String::from_utf8_lossy(&out.stderr)
            ),
        }
    }
    // Let the survivor finish the sweep for real.
    let out = service_cmd(&manifest, &state).output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "recovery run failed\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let recovered = std::fs::read(state.join("results.jsonl")).unwrap();
    assert_eq!(
        recovered,
        reference,
        "recovered results differ from the uninterrupted run \
         (seed {seed}, {kills} kills)\nrecovered:\n{}\nreference:\n{}",
        String::from_utf8_lossy(&recovered),
        String::from_utf8_lossy(&reference)
    );

    // The latency rows are well-formed lbp-prof-v1 bench records.
    let bench = std::fs::read_to_string(state.join("bench.jsonl")).unwrap();
    let mut names = Vec::new();
    for line in bench.lines() {
        let v = Json::parse(line).unwrap();
        assert_eq!(lbp_prof::validate(&v).unwrap(), "bench");
        names.push(v.get("name").and_then(Json::as_str).unwrap().to_owned());
    }
    assert!(
        names.iter().any(|n| n.contains("job-latency/p50"))
            && names.iter().any(|n| n.contains("job-latency/p99")),
        "bench rows: {names:?}"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}
