//! Code generation for Deterministic OpenMP parallel regions.
//!
//! This module emits the translation the paper's Fig. 2 describes: a
//! `parallel for` (or `parallel sections`) region becomes an inlined
//! `LBP_parallel_start` that distributes the team over consecutive harts
//! with the Fig. 8 fork protocol — `p_fc`/`p_fn`, continuation-value
//! transmission (`p_swcv`/`p_lwcv`), `p_syncm`, and a parallelized call
//! `p_jalr` — and joins back through the ordered `p_ret` commits that
//! implement the hardware barrier.
//!
//! ## Register conventions inside a team
//!
//! | register | role |
//! |---|---|
//! | `ra` | join address (the code after the region) |
//! | `t0` | identity word: join hart in the upper half |
//! | `s0` | thread function pointer (or section-table base) |
//! | `s1` | team-member index `t` |
//! | `s2` | team size `nt` |
//! | `a0` | thread argument: the member index |
//! | `a1` | thread argument: user data pointer |
//! | `t1` | the team's join-hart identity word, for `p_swre` targeting |
//!
//! Thread functions receive `(a0, a1)`, may clobber anything **except
//! `t0`** (their final `p_ret` reads it) and the continuation-value frame
//! above their initial `sp`, and must end with `p_ret` instead of `ret`.
//! A member that sends a result or reduction value backward uses
//! `p_swre value, t1, slot`: `t1` carries the join hart in its upper
//! half for *every* member, including the last one (whose `t0` is
//! re-stamped with its own identity for the self-join of Fig. 7).

use lbp_asm::Asm;

/// Continuation-value frame slots used by the team protocol (byte
/// offsets within the allocated hart's cv frame).
pub mod cv_slots {
    /// Join address (`ra`).
    pub const RA: u32 = 0;
    /// Identity word (`t0`).
    pub const T0: u32 = 4;
    /// Function pointer / section table (`s0`).
    pub const S0: u32 = 8;
    /// User data pointer (`a1`).
    pub const A1: u32 = 12;
    /// Next member index (`s1`).
    pub const S1: u32 = 16;
    /// Team size (`s2`).
    pub const S2: u32 = 20;
}

/// What the team members run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TeamBody {
    /// Every member calls the same function with its index in `a0`
    /// (`#pragma omp parallel for`).
    Uniform {
        /// Label of the thread function.
        function: String,
    },
    /// Member `t` calls the `t`-th function of a section table
    /// (`#pragma omp parallel sections`).
    Sections {
        /// Label of a word table of function addresses, one per member.
        table: String,
    },
}

/// Emits one parallel region inline at the current position of `asm`.
///
/// On entry the code runs on the team's first hart (hart 0 in this
/// runtime); on exit (after the hardware barrier) it resumes on the same
/// hart at the generated join label. `threads` must be at least 1;
/// `arg` optionally names a data symbol loaded into `a1`.
pub fn emit_parallel_region(asm: &mut Asm, threads: usize, body: &TeamBody, arg: Option<&str>) {
    assert!(threads >= 1, "a team needs at least one member");
    let rp = asm.fresh_label("join");
    asm.blank();
    asm.comment(format!("--- parallel region: {threads} team member(s) ---"));
    // Re-stamp the identity word: the join hart is this hart.
    asm.line("p_set t0");
    if let Some(sym) = arg {
        asm.line(format!("la   a1, {sym}"));
    } else {
        asm.line("li   a1, 0");
    }
    match body {
        TeamBody::Uniform { function } => {
            asm.line(format!("la   s0, {function}"));
        }
        TeamBody::Sections { table } => {
            asm.line(format!("la   s0, {table}"));
        }
    }
    if threads == 1 {
        // Degenerate team: a plain local call, no fork, no barrier needed.
        asm.line("li   s1, 0");
        emit_last_member_call(asm, body, &rp, true);
        asm.label(&rp);
        return;
    }
    asm.line(format!("la   ra, {rp}"));
    asm.line("li   s1, 0");
    asm.line(format!("li   s2, {threads}"));
    let loop_l = asm.fresh_label("team");
    let last_l = asm.fresh_label("last");
    let next_l = asm.fresh_label("fnext");
    let forked_l = asm.fresh_label("forked");
    asm.label(&loop_l);
    asm.line("addi t5, s2, -1");
    asm.line(format!("beq  s1, t5, {last_l}"));
    // Placement (paper Fig. 3): fill the four harts of the current core,
    // then expand to the next core.
    asm.line("andi t4, s1, 3");
    asm.line("addi t3, zero, 3");
    asm.line(format!("beq  t4, t3, {next_l}"));
    asm.line("p_fc t6");
    asm.line(format!("j    {forked_l}"));
    asm.label(&next_l);
    asm.line("p_fn t6");
    asm.label(&forked_l);
    // Transmit the continuation state to the allocated hart (Fig. 8).
    asm.line(format!("p_swcv ra, t6, {}", cv_slots::RA));
    asm.line(format!("p_swcv t0, t6, {}", cv_slots::T0));
    asm.line(format!("p_swcv s0, t6, {}", cv_slots::S0));
    asm.line(format!("p_swcv a1, t6, {}", cv_slots::A1));
    asm.line(format!("p_swcv s2, t6, {}", cv_slots::S2));
    asm.line("addi s1, s1, 1");
    asm.line(format!("p_swcv s1, t6, {}", cv_slots::S1));
    asm.line("addi s1, s1, -1");
    asm.line("p_merge t0, t0, t6");
    asm.line("p_syncm");
    emit_member_arg(asm, body);
    // Call the member function locally; the continuation (the rest of
    // this loop) starts on the allocated hart at pc+4.
    asm.line("p_jalr ra, t0, s3");
    asm.comment("-- continuation: runs on the freshly forked hart --");
    asm.line(format!("p_lwcv ra, {}", cv_slots::RA));
    asm.line(format!("p_lwcv t0, {}", cv_slots::T0));
    asm.line(format!("p_lwcv s0, {}", cv_slots::S0));
    asm.line(format!("p_lwcv a1, {}", cv_slots::A1));
    asm.line(format!("p_lwcv s1, {}", cv_slots::S1));
    asm.line(format!("p_lwcv s2, {}", cv_slots::S2));
    asm.line(format!("j    {loop_l}"));
    asm.label(&last_l);
    emit_last_member_call(asm, body, &rp, false);
    asm.label(&rp);
}

/// Loads the member's function pointer into `s3`, its index into `a0`,
/// and the join-hart identity word into `t1`.
fn emit_member_arg(asm: &mut Asm, body: &TeamBody) {
    match body {
        TeamBody::Uniform { .. } => {
            asm.line("mv   s3, s0");
        }
        TeamBody::Sections { .. } => {
            asm.line("slli t4, s1, 2");
            asm.line("add  t4, s0, t4");
            asm.line("lw   s3, 0(t4)");
            asm.line("p_syncm");
        }
    }
    asm.line("mv   a0, s1");
    asm.line("mv   t1, t0");
}

/// The last team member calls the function with a plain `jalr` after
/// `p_set t0`, so the thread's `p_ret` self-joins (paper Fig. 7); it then
/// forwards the join address to the team's first hart — unless the team
/// has a single member, in which case execution simply falls through.
fn emit_last_member_call(asm: &mut Asm, body: &TeamBody, _rp: &str, solo: bool) {
    emit_member_arg(asm, body);
    asm.line("p_set t0");
    asm.line("jalr s3");
    if !solo {
        asm.comment("-- resumed by the self-join; forward to the join hart --");
        asm.line(format!("p_lwcv ra, {}", cv_slots::RA));
        asm.line(format!("p_lwcv t0, {}", cv_slots::T0));
        asm.line("p_ret");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_assembles() {
        let mut a = Asm::new();
        a.label("main");
        a.line("li t0, -1");
        a.line("addi sp, sp, -8");
        a.line("sw ra, 0(sp)");
        a.line("sw t0, 4(sp)");
        emit_parallel_region(
            &mut a,
            8,
            &TeamBody::Uniform {
                function: "thread".into(),
            },
            None,
        );
        a.line("lw ra, 0(sp)");
        a.line("lw t0, 4(sp)");
        a.line("addi sp, sp, 8");
        a.line("p_ret");
        a.label("thread");
        a.line("p_ret");
        let image = a.assemble().expect("generated region assembles");
        assert!(image.text.len() > 30);
    }

    #[test]
    fn solo_region_has_no_forks() {
        let mut a = Asm::new();
        a.label("main");
        emit_parallel_region(
            &mut a,
            1,
            &TeamBody::Uniform {
                function: "thread".into(),
            },
            None,
        );
        assert!(!a.text().contains("p_fc"));
        assert!(!a.text().contains("p_fn"));
    }

    #[test]
    fn sections_load_from_table() {
        let mut a = Asm::new();
        a.label("main");
        emit_parallel_region(
            &mut a,
            2,
            &TeamBody::Sections {
                table: "tbl".into(),
            },
            None,
        );
        assert!(a.text().contains("lw   s3, 0(t4)"));
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn zero_threads_rejected() {
        let mut a = Asm::new();
        emit_parallel_region(
            &mut a,
            0,
            &TeamBody::Uniform {
                function: "t".into(),
            },
            None,
        );
    }
}
