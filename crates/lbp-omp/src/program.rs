//! The Deterministic OpenMP program builder — the `det_omp.h` of this
//! reproduction.
//!
//! A [`DetOmp`] program is a sequence of *steps* executed by hart 0 of
//! core 0: sequential assembly blocks and parallel regions. Parallel
//! regions distribute an ordered team over consecutive harts (filling
//! each core's four harts before expanding to the next core, paper
//! Fig. 3) and are separated from the following step by the hardware
//! barrier of ordered `p_ret` commits — no locks, no OS.

use lbp_asm::{Asm, AsmError, Image};

use crate::codegen::{emit_parallel_region, TeamBody};

/// A reduction operator for [`DetOmp::collect_reduction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Integer sum.
    Add,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
}

/// One step of the program.
#[derive(Debug, Clone)]
enum Step {
    Seq(String),
    ParallelFor {
        function: String,
        threads: usize,
        arg: Option<String>,
    },
    ParallelSections {
        table: String,
        count: usize,
    },
    CollectReduction {
        slot: u32,
        count: usize,
        op: ReduceOp,
        dest: String,
    },
}

/// A global data definition.
#[derive(Debug, Clone)]
enum DataDef {
    Words { name: String, values: Vec<i64> },
    Space { name: String, bytes: u32 },
}

/// Builder for a Deterministic OpenMP program.
///
/// # Examples
///
/// A `parallel for` over 8 harts where each member writes its index:
///
/// ```
/// use lbp_omp::DetOmp;
///
/// let image = DetOmp::new(8)
///     .data_space("v", 8 * 4)
///     .function(
///         "thread",
///         "la   a2, v
///          slli a3, a0, 2
///          add  a2, a2, a3
///          sw   a0, 0(a2)
///          p_ret",
///     )
///     .parallel_for("thread")
///     .build()?;
/// assert!(image.symbol("v").is_some());
/// # Ok::<(), lbp_asm::AsmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DetOmp {
    num_threads: usize,
    data: Vec<DataDef>,
    functions: Vec<(String, String)>,
    steps: Vec<Step>,
    section_tables: usize,
}

impl DetOmp {
    /// Creates a program whose parallel regions default to `num_threads`
    /// team members (the `omp_set_num_threads` of the paper's Fig. 1).
    ///
    /// # Panics
    ///
    /// Panics if `num_threads` is zero.
    pub fn new(num_threads: usize) -> DetOmp {
        assert!(num_threads >= 1, "need at least one thread");
        DetOmp {
            num_threads,
            data: Vec::new(),
            functions: Vec::new(),
            steps: Vec::new(),
            section_tables: 0,
        }
    }

    /// Declares an initialized global array in shared memory.
    pub fn data_words(mut self, name: impl Into<String>, values: &[i64]) -> DetOmp {
        self.data.push(DataDef::Words {
            name: name.into(),
            values: values.to_vec(),
        });
        self
    }

    /// Declares a zeroed global region in shared memory.
    pub fn data_space(mut self, name: impl Into<String>, bytes: u32) -> DetOmp {
        self.data.push(DataDef::Space {
            name: name.into(),
            bytes,
        });
        self
    }

    /// Defines a function. Team thread functions receive their member
    /// index in `a0` and the region's data pointer in `a1`, must preserve
    /// `t0`, and must end with `p_ret`; ordinary helpers end with `ret`.
    pub fn function(mut self, name: impl Into<String>, body: impl Into<String>) -> DetOmp {
        self.functions.push((name.into(), body.into()));
        self
    }

    /// Appends a sequential assembly step (runs on hart 0; must preserve
    /// `t0` and `sp`).
    pub fn seq(mut self, asm: impl Into<String>) -> DetOmp {
        self.steps.push(Step::Seq(asm.into()));
        self
    }

    /// Appends a `parallel for` region over the default team size.
    pub fn parallel_for(self, function: impl Into<String>) -> DetOmp {
        let n = self.num_threads;
        self.parallel_for_n(function, n)
    }

    /// Appends a `parallel for` region with an explicit team size.
    pub fn parallel_for_n(mut self, function: impl Into<String>, threads: usize) -> DetOmp {
        self.steps.push(Step::ParallelFor {
            function: function.into(),
            threads,
            arg: None,
        });
        self
    }

    /// Appends a `parallel for` whose members also receive a data symbol
    /// in `a1`.
    pub fn parallel_for_arg(
        mut self,
        function: impl Into<String>,
        arg: impl Into<String>,
    ) -> DetOmp {
        let threads = self.num_threads;
        self.steps.push(Step::ParallelFor {
            function: function.into(),
            threads,
            arg: Some(arg.into()),
        });
        self
    }

    /// Appends a `parallel sections` region: one team member per listed
    /// function (the paper's Fig. 16 sensor pattern).
    pub fn parallel_sections(mut self, functions: &[&str]) -> DetOmp {
        assert!(!functions.is_empty(), "sections need at least one function");
        let table = format!("_omp_sections_{}", self.section_tables);
        self.section_tables += 1;
        let values = functions
            .iter()
            .map(|f| (*f).to_owned())
            .collect::<Vec<_>>();
        self.steps.push(Step::ParallelSections {
            table: table.clone(),
            count: functions.len(),
        });
        // The table is materialized as words of function addresses.
        self.data.push(DataDef::Words {
            name: table,
            values: Vec::new(), // placeholder; symbols emitted specially
        });
        // Stash the symbol names in a companion function entry is ugly;
        // instead keep them in the data def via a dedicated variant.
        if let Some(DataDef::Words { name, .. }) = self.data.last() {
            let name = name.clone();
            self.functions
                .push((format!("__table__{name}"), values.join(",")));
        }
        self
    }

    /// Appends a sequential step that receives `count` partial values in
    /// result-buffer slot `slot` (sent by team members with `p_swre`),
    /// folds them with `op`, and stores the result at symbol `dest`.
    pub fn collect_reduction(
        mut self,
        slot: u32,
        count: usize,
        op: ReduceOp,
        dest: impl Into<String>,
    ) -> DetOmp {
        self.steps.push(Step::CollectReduction {
            slot,
            count,
            op,
            dest: dest.into(),
        });
        self
    }

    /// The default team size.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Generates the complete assembly source.
    pub fn source(&self) -> String {
        let mut a = Asm::new();
        a.comment("Generated by Deterministic OpenMP (lbp-omp)");
        a.label("main");
        a.line("li   t0, -1");
        a.line("addi sp, sp, -8");
        a.line("sw   ra, 0(sp)");
        a.line("sw   t0, 4(sp)");
        a.line("p_set t0");
        for step in &self.steps {
            match step {
                Step::Seq(body) => {
                    a.blank();
                    a.comment("--- sequential step ---");
                    a.raw(indent(body));
                }
                Step::ParallelFor {
                    function,
                    threads,
                    arg,
                } => {
                    emit_parallel_region(
                        &mut a,
                        *threads,
                        &TeamBody::Uniform {
                            function: function.clone(),
                        },
                        arg.as_deref(),
                    );
                }
                Step::ParallelSections { table, count } => {
                    emit_parallel_region(
                        &mut a,
                        *count,
                        &TeamBody::Sections {
                            table: table.clone(),
                        },
                        None,
                    );
                }
                Step::CollectReduction {
                    slot,
                    count,
                    op,
                    dest,
                } => {
                    a.blank();
                    a.comment(format!(
                        "--- collect {count} partial value(s) from slot {slot} ---"
                    ));
                    // The first value seeds the accumulator; the rest fold.
                    a.line(format!("p_lwre a2, {slot}"));
                    for i in 1..*count {
                        a.line(format!("p_lwre a3, {slot}"));
                        match op {
                            ReduceOp::Add => {
                                a.line("add  a2, a2, a3");
                            }
                            ReduceOp::Min | ReduceOp::Max => {
                                let keep = a.fresh_label(&format!("rkeep{i}"));
                                if matches!(op, ReduceOp::Min) {
                                    a.line(format!("bge  a3, a2, {keep}"));
                                } else {
                                    a.line(format!("bge  a2, a3, {keep}"));
                                }
                                a.line("mv   a2, a3");
                                a.label(&keep);
                            }
                        }
                    }
                    a.line(format!("la   a4, {dest}"));
                    a.line("sw   a2, 0(a4)");
                }
            }
        }
        a.blank();
        a.comment("--- exit ---");
        a.line("lw   ra, 0(sp)");
        a.line("lw   t0, 4(sp)");
        a.line("addi sp, sp, 8");
        a.line("p_ret");
        // Functions.
        for (name, body) in &self.functions {
            if name.starts_with("__table__") {
                continue;
            }
            a.blank();
            a.label(name);
            a.raw(indent(body));
        }
        // Data.
        a.blank();
        a.line(".data");
        for d in &self.data {
            match d {
                DataDef::Words { name, values } => {
                    if let Some(symbols) = self.table_symbols(name) {
                        a.label(name);
                        for s in symbols {
                            a.line(format!(".word {s}"));
                        }
                    } else {
                        a.label(name);
                        for v in values {
                            a.line(format!(".word {v}"));
                        }
                    }
                }
                DataDef::Space { name, bytes } => {
                    a.line(".align 4");
                    a.label(name);
                    a.line(format!(".space {bytes}"));
                }
            }
        }
        a.into_text()
    }

    /// The function symbols of a sections table, if `name` is one.
    fn table_symbols(&self, name: &str) -> Option<Vec<String>> {
        let key = format!("__table__{name}");
        self.functions
            .iter()
            .find_map(|(n, body)| (n == &key).then(|| body.split(',').map(str::to_owned).collect()))
    }

    /// Generates and assembles the program.
    ///
    /// # Errors
    ///
    /// Propagates assembler errors (line numbers refer to
    /// [`DetOmp::source`]).
    pub fn build(&self) -> Result<Image, AsmError> {
        lbp_asm::assemble(&self.source())
    }
}

/// Indents a raw body so it cannot shadow labels, keeping `name:` lines
/// at the margin readable in dumps.
fn indent(body: &str) -> String {
    body.lines()
        .map(|l| format!("    {}\n", l.trim()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_contains_protocol() {
        let p = DetOmp::new(8)
            .function("thread", "p_ret")
            .parallel_for("thread");
        let src = p.source();
        assert!(src.contains("p_fc"));
        assert!(src.contains("p_fn"));
        assert!(src.contains("p_syncm"));
        assert!(src.contains("p_merge"));
        assert!(p.build().is_ok(), "{src}");
    }

    #[test]
    fn sections_emit_table() {
        let p = DetOmp::new(4)
            .function("s0f", "p_ret")
            .function("s1f", "p_ret")
            .parallel_sections(&["s0f", "s1f"]);
        let src = p.source();
        assert!(src.contains("_omp_sections_0"));
        assert!(src.contains(".word s0f"));
        let image = p.build().unwrap();
        let table = image.symbol("_omp_sections_0").unwrap();
        let w0 = image.data
            [(table - lbp_isa::SHARED_BASE) as usize..(table - lbp_isa::SHARED_BASE + 4) as usize]
            .try_into()
            .map(u32::from_le_bytes)
            .unwrap();
        assert_eq!(Some(w0), image.symbol("s0f"));
    }

    #[test]
    fn reduction_step_assembles() {
        let p = DetOmp::new(4)
            .data_words("out", &[0])
            .function("thread", "p_swre a0, t1, 0\n p_ret")
            .parallel_for("thread")
            .collect_reduction(0, 4, ReduceOp::Add, "out");
        assert!(p.build().is_ok(), "{}", p.source());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = DetOmp::new(0);
    }
}
