//! Ordered point-to-point channels — the paper's §8 perspective:
//! "a deterministic version of MPI could even be proposed, built around
//! ordered communicators where a sender always precedes its receiver(s)
//! (i.e. the sender rank is lower than all its receivers ranks)".
//!
//! A [`Channel`] carries one word from a team member to a *later* member
//! of the same region (rank order = member order = the sequential
//! referential order). The implementation needs no locks and no atomics:
//!
//! - the **sender** writes the value, drains its stores with `p_syncm`,
//!   and only then raises the flag word — so the value is globally
//!   visible strictly before the flag;
//! - the **receiver** polls the flag and reads the value through an
//!   address that *data-depends* on the flag it observed, so the
//!   out-of-order engine cannot hoist the value load above the
//!   successful poll.
//!
//! In a closed program even the polling durations replay exactly — the
//! channels preserve LBP's cycle determinism.
//!
//! (Values flowing *backward* in the order — receiver before sender —
//! are the job of the hardware `p_swre`/`p_lwre` path instead; the
//! paper's "a data cannot go back in time" rule is about joins, not
//! mailboxes, but this module keeps the MPI discipline: sender rank
//! below receiver rank.)

use lbp_asm::Asm;

/// A single-shot one-word channel between two team members.
///
/// The channel owns an 8-byte shared mailbox: word 0 is the flag, word 1
/// the value. Each channel carries at most one message per parallel
/// region (re-arming would need a sequence-number protocol; the paper's
/// use cases — pipelines and reductions — are single-shot per region).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Channel {
    symbol: String,
}

impl Channel {
    /// Declares a channel backed by the shared symbol `name` (the caller
    /// must reserve 8 bytes, e.g. `DetOmp::data_space(name, 8)`).
    pub fn new(name: impl Into<String>) -> Channel {
        Channel {
            symbol: name.into(),
        }
    }

    /// The backing symbol.
    pub fn symbol(&self) -> &str {
        &self.symbol
    }

    /// Emits the send of register `value_reg` (clobbers `t5`/`t6`).
    pub fn emit_send(&self, asm: &mut Asm, value_reg: &str) {
        asm.comment(format!("send {value_reg} over channel {}", self.symbol));
        asm.line(format!("la   t5, {}", self.symbol));
        asm.line(format!("sw   {value_reg}, 4(t5)"));
        asm.line("p_syncm"); // the value lands before the flag rises
        asm.line("li   t6, 1");
        asm.line("sw   t6, 0(t5)");
        asm.line("p_syncm"); // the flag is visible before this hart ends
    }

    /// Emits the receive into `dest_reg` (clobbers `t5`/`t6` and
    /// `dest_reg`).
    pub fn emit_recv(&self, asm: &mut Asm, dest_reg: &str) {
        // Channels are single-shot, so the symbol itself makes a unique
        // label even when stages are assembled by separate builders.
        let poll = format!("{}_poll", self.symbol);
        asm.comment(format!("receive {dest_reg} from channel {}", self.symbol));
        asm.line(format!("la   t5, {}", self.symbol));
        asm.label(&poll);
        asm.line(format!("lw   {dest_reg}, 0(t5)"));
        asm.line(format!("beqz {dest_reg}, {poll}"));
        // Address the value *through the observed flag* (flag == 1, so
        // t5 + 4*flag is the value word): the load data-depends on the
        // poll and cannot issue early.
        asm.line(format!("slli t6, {dest_reg}, 2"));
        asm.line("add  t6, t6, t5");
        asm.line(format!("lw   {dest_reg}, 0(t6)"));
    }
}

/// A bounded streaming channel: `capacity` single-shot slots, addressed
/// by an index register — a producer loop sends item `i` into slot `i`,
/// a consumer loop receives them in order. The slot count bounds how far
/// the producer may run ahead (there is no backpressure; sizing the
/// channel to the message count, as pipelines do, is the intended use).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamChannel {
    symbol: String,
    capacity: u32,
}

impl StreamChannel {
    /// Declares a stream of `capacity` slots backed by shared symbol
    /// `name` (reserve [`StreamChannel::data_bytes`] bytes for it).
    ///
    /// # Panics
    ///
    /// Panics on a zero capacity.
    pub fn new(name: impl Into<String>, capacity: u32) -> StreamChannel {
        assert!(capacity > 0, "a stream needs at least one slot");
        StreamChannel {
            symbol: name.into(),
            capacity,
        }
    }

    /// Bytes of shared memory the stream needs (8 per slot).
    pub fn data_bytes(&self) -> u32 {
        8 * self.capacity
    }

    /// The backing symbol.
    pub fn symbol(&self) -> &str {
        &self.symbol
    }

    /// Emits the send of `value_reg` into the slot selected by
    /// `index_reg` (clobbers `t5`/`t6`; `index_reg` is preserved).
    pub fn emit_send_indexed(&self, asm: &mut Asm, value_reg: &str, index_reg: &str) {
        asm.comment(format!(
            "send {value_reg} into {}[{index_reg}]",
            self.symbol
        ));
        asm.line(format!("slli t5, {index_reg}, 3"));
        asm.line(format!("la   t6, {}", self.symbol));
        asm.line("add  t5, t5, t6");
        asm.line(format!("sw   {value_reg}, 4(t5)"));
        asm.line("p_syncm");
        asm.line("li   t6, 1");
        asm.line("sw   t6, 0(t5)");
        asm.line("p_syncm");
    }

    /// Emits the receive of the slot selected by `index_reg` into
    /// `dest_reg` (clobbers `t5`/`t6`; `index_reg` is preserved). Emit at
    /// most once per program — put it inside the consuming loop.
    pub fn emit_recv_indexed(&self, asm: &mut Asm, dest_reg: &str, index_reg: &str) {
        let poll = format!("{}_rpoll", self.symbol);
        asm.comment(format!(
            "receive {dest_reg} from {}[{index_reg}]",
            self.symbol
        ));
        asm.line(format!("slli t5, {index_reg}, 3"));
        asm.line(format!("la   t6, {}", self.symbol));
        asm.line("add  t5, t5, t6");
        asm.label(&poll);
        asm.line(format!("lw   {dest_reg}, 0(t5)"));
        asm.line(format!("beqz {dest_reg}, {poll}"));
        asm.line(format!("slli t6, {dest_reg}, 2"));
        asm.line("add  t6, t6, t5");
        asm.line(format!("lw   {dest_reg}, 0(t6)"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_emits_value_before_flag() {
        let mut a = Asm::new();
        Channel::new("ch").emit_send(&mut a, "a2");
        let text = a.text();
        let value_pos = text.find("sw   a2, 4(t5)").expect("value store");
        let sync_pos = text.find("p_syncm").expect("fence");
        let flag_pos = text.find("sw   t6, 0(t5)").expect("flag store");
        assert!(value_pos < sync_pos && sync_pos < flag_pos);
    }

    #[test]
    fn recv_data_depends_on_the_flag() {
        let mut a = Asm::new();
        Channel::new("ch").emit_recv(&mut a, "a3");
        let text = a.text();
        assert!(text.contains("slli t6, a3, 2"), "{text}");
        assert!(text.contains("lw   a3, 0(t6)"), "{text}");
    }
}
