//! # lbp-omp — Deterministic OpenMP for the LBP manycore
//!
//! The paper's primary contribution: an OpenMP-like runtime whose
//! synchronization "is no more a matter of locks, barriers and critical
//! sections inserted by the programmer, properly or not, but is handled
//! automatically by the hardware".
//!
//! A Deterministic OpenMP program differs from classic OpenMP in three
//! ways (paper §3):
//!
//! 1. a `parallel for` builds a team of **harts**, not OS threads: each
//!    member has a unique, constant placement (the team fills each core's
//!    four harts before expanding to the next core);
//! 2. team members are **ordered** in the sequential referential order,
//!    which the hardware uses to connect producers and consumers
//!    (`p_swcv`/`p_lwcv` forward, `p_swre`/`p_lwre` backward);
//! 3. consecutive regions are separated by a **hardware barrier**: the
//!    in-team-order commit of the members' `p_ret` instructions.
//!
//! This crate generates those programs: [`DetOmp`] is the builder
//! (the `det_omp.h` of the paper's Fig. 1), and [`codegen`] emits the
//! Fig. 2/7/8 translation as inspectable assembly text.
//!
//! # Examples
//!
//! The paper's Fig. 4 pattern — a producing region, a hardware barrier,
//! a consuming region — and run it on the simulator:
//!
//! ```
//! use lbp_omp::DetOmp;
//! use lbp_sim::{LbpConfig, Machine};
//!
//! let image = DetOmp::new(8)
//!     .data_space("v", 8 * 4)
//!     .data_space("sum", 4)
//!     .function(
//!         "thread_set",
//!         "la   a2, v
//!          slli a3, a0, 2
//!          add  a2, a2, a3
//!          addi a4, a0, 1
//!          sw   a4, 0(a2)
//!          p_ret",
//!     )
//!     .function(
//!         "thread_get",
//!         "la   a2, v
//!          slli a3, a0, 2
//!          add  a2, a2, a3
//!          lw   a4, 0(a2)
//!          p_swre a4, t1, 0
//!          p_ret",
//!     )
//!     .parallel_for("thread_set")
//!     .parallel_for("thread_get")
//!     .collect_reduction(0, 8, lbp_omp::ReduceOp::Add, "sum")
//!     .build()?;
//! let mut m = Machine::new(LbpConfig::cores(2), &image)?;
//! m.run(1_000_000)?;
//! let sum = m.peek_shared(image.symbol("sum").unwrap())?;
//! assert_eq!(sum, (1..=8).sum::<u32>());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channels;
pub mod codegen;
mod program;

pub use channels::{Channel, StreamChannel};
pub use codegen::{cv_slots, emit_parallel_region, TeamBody};
pub use program::{DetOmp, ReduceOp};
