//! Integration tests: Deterministic OpenMP programs running on the LBP
//! simulator.

use lbp_omp::{DetOmp, ReduceOp};
use lbp_sim::{LbpConfig, Machine};

/// Builds, runs on `cores` cores, and returns the machine.
fn run(p: &DetOmp, cores: usize) -> Machine {
    let image = p.build().unwrap_or_else(|e| panic!("{e}\n{}", p.source()));
    let mut m = Machine::new(LbpConfig::cores(cores), &image).expect("machine");
    let report = m
        .run(5_000_000)
        .unwrap_or_else(|e| panic!("{e}\n{}", p.source()));
    assert!(report.exited);
    m
}

/// Each member writes `index + 1` into its slot of a shared vector.
fn write_indices(threads: usize) -> DetOmp {
    DetOmp::new(threads)
        .data_space("v", (threads * 4) as u32)
        .function(
            "thread",
            "la   a2, v
             slli a3, a0, 2
             add  a2, a2, a3
             addi a4, a0, 1
             sw   a4, 0(a2)
             p_ret",
        )
        .parallel_for("thread")
}

fn check_vector(m: &mut Machine, base_sym: u32, n: usize) {
    for t in 0..n {
        let got = m.peek_shared(base_sym + 4 * t as u32).unwrap();
        assert_eq!(got, t as u32 + 1, "member {t} wrote its slot");
    }
}

#[test]
fn team_sizes_from_one_to_sixteen() {
    for threads in 1..=16 {
        let p = write_indices(threads);
        let cores = threads.div_ceil(4).max(1);
        let mut m = run(&p, cores);
        let base = p.build().unwrap().symbol("v").unwrap();
        check_vector(&mut m, base, threads);
    }
}

#[test]
fn team_spreads_across_cores_in_order() {
    // 8 members on 2 cores: members 0-3 on core 0, 4-7 on core 1
    // (paper Fig. 3). The thread body busy-works long enough that the
    // spawn wave finishes before any member ends, so each member lands on
    // its own hart. (With very short threads a finished member's hart is
    // recycled deterministically — the member-to-core mapping is
    // unaffected because every fourth fork is a `p_fn`.)
    let p = DetOmp::new(8)
        .data_space("v", 32)
        .function(
            "thread",
            "li   a4, 0
             li   a5, 200
spin:
             addi a4, a4, 1
             bne  a4, a5, spin
             la   a2, v
             slli a3, a0, 2
             add  a2, a2, a3
             addi a4, a0, 1
             sw   a4, 0(a2)
             p_ret",
        )
        .parallel_for("thread");
    let mut m = run(&p, 2);
    for hart in 0..8 {
        assert!(
            m.stats().retired_per_hart[hart] > 0,
            "hart {hart} must participate: {:?}",
            m.stats().retired_per_hart
        );
    }
    assert_eq!(m.stats().forks, 7);
    let base = p.build().unwrap().symbol("v").unwrap();
    check_vector(&mut m, base, 8);
}

#[test]
fn consecutive_regions_are_barrier_separated() {
    // Region 1 initializes v[t] = t+1; region 2 reads v[t] and writes
    // w[t] = 2*v[t]. The hardware barrier makes region 1's stores visible.
    let threads = 8;
    let p = DetOmp::new(threads)
        .data_space("v", 32)
        .data_space("w", 32)
        .function(
            "set",
            "la   a2, v
             slli a3, a0, 2
             add  a2, a2, a3
             addi a4, a0, 1
             sw   a4, 0(a2)
             p_ret",
        )
        .function(
            "get",
            "la   a2, v
             slli a3, a0, 2
             add  a2, a2, a3
             lw   a4, 0(a2)
             la   a5, w
             add  a5, a5, a3
             slli a4, a4, 1
             sw   a4, 0(a5)
             p_ret",
        )
        .parallel_for("set")
        .parallel_for("get");
    let mut m = run(&p, 2);
    let w = p.build().unwrap().symbol("w").unwrap();
    for t in 0..threads {
        assert_eq!(m.peek_shared(w + 4 * t as u32).unwrap(), 2 * (t as u32 + 1));
    }
}

#[test]
fn three_regions_chain() {
    let p = DetOmp::new(4)
        .data_space("acc", 16)
        .function(
            "inc",
            "la   a2, acc
             slli a3, a0, 2
             add  a2, a2, a3
             lw   a4, 0(a2)
             p_syncm
             addi a4, a4, 1
             sw   a4, 0(a2)
             p_ret",
        )
        .parallel_for("inc")
        .parallel_for("inc")
        .parallel_for("inc");
    let mut m = run(&p, 1);
    let acc = p.build().unwrap().symbol("acc").unwrap();
    for t in 0..4 {
        assert_eq!(m.peek_shared(acc + 4 * t).unwrap(), 3);
    }
}

#[test]
fn parallel_sections_run_distinct_functions() {
    let p = DetOmp::new(4)
        .data_space("out", 16)
        .function("sec0", "la a2, out\n li a3, 10\n sw a3, 0(a2)\n p_ret")
        .function("sec1", "la a2, out\n li a3, 20\n sw a3, 4(a2)\n p_ret")
        .function("sec2", "la a2, out\n li a3, 30\n sw a3, 8(a2)\n p_ret")
        .function("sec3", "la a2, out\n li a3, 40\n sw a3, 12(a2)\n p_ret")
        .parallel_sections(&["sec0", "sec1", "sec2", "sec3"]);
    let mut m = run(&p, 1);
    let out = p.build().unwrap().symbol("out").unwrap();
    assert_eq!(m.peek_shared(out).unwrap(), 10);
    assert_eq!(m.peek_shared(out + 4).unwrap(), 20);
    assert_eq!(m.peek_shared(out + 8).unwrap(), 30);
    assert_eq!(m.peek_shared(out + 12).unwrap(), 40);
}

#[test]
fn reduction_over_backward_line() {
    // Each member sends (index+1)^2 to the join hart; hart 0 folds.
    let threads = 8;
    let p = DetOmp::new(threads)
        .data_space("sum", 4)
        .function(
            "sq",
            "addi a2, a0, 1
             mul  a3, a2, a2
             p_swre a3, t1, 0
             p_ret",
        )
        .parallel_for("sq")
        .collect_reduction(0, threads, ReduceOp::Add, "sum");
    let mut m = run(&p, 2);
    let sum = p.build().unwrap().symbol("sum").unwrap();
    let expect: u32 = (1..=threads as u32).map(|x| x * x).sum();
    assert_eq!(m.peek_shared(sum).unwrap(), expect);
}

#[test]
fn min_and_max_reductions() {
    let threads = 4;
    let base = DetOmp::new(threads)
        .data_space("res", 4)
        .function(
            "send",
            "slli a2, a0, 2
             addi a2, a2, -6     # values -6, -2, 2, 6
             p_swre a2, t1, 1
             p_ret",
        )
        .parallel_for("send");
    let pmin = base
        .clone()
        .collect_reduction(1, threads, ReduceOp::Min, "res");
    let mut m = run(&pmin, 1);
    let res = pmin.build().unwrap().symbol("res").unwrap();
    assert_eq!(m.peek_shared(res).unwrap() as i32, -6);
    let pmax = base.collect_reduction(1, threads, ReduceOp::Max, "res");
    let mut m = run(&pmax, 1);
    assert_eq!(m.peek_shared(res).unwrap() as i32, 6);
}

#[test]
fn sequential_steps_interleave_with_regions() {
    let p = DetOmp::new(4)
        .data_space("flag", 8)
        .function(
            "touch",
            "la  a2, flag
             lw  a3, 0(a2)
             p_syncm
             slli a4, a0, 0
             add a3, a3, a4
             sw  a3, 0(a2)
             p_ret",
        )
        .seq("la  a2, flag\n li  a3, 100\n sw  a3, 0(a2)\n p_syncm")
        .parallel_for_n("touch", 1)
        .seq(
            "la  a2, flag
             lw  a3, 0(a2)
             p_syncm
             sw  a3, 4(a2)
             p_syncm",
        );
    let mut m = run(&p, 1);
    let flag = p.build().unwrap().symbol("flag").unwrap();
    assert_eq!(m.peek_shared(flag + 4).unwrap(), 100);
}

#[test]
fn parallel_for_arg_passes_the_data_pointer() {
    // Members receive a data symbol in a1 and index off it.
    let p = DetOmp::new(4)
        .data_words("table", &[100, 200, 300, 400])
        .data_space("out", 16)
        .function(
            "scaled",
            "slli a3, a0, 2
             add  a4, a1, a3       # &table[t] via the a1 argument
             lw   a5, 0(a4)
             la   a6, out
             add  a6, a6, a3
             slli a5, a5, 1
             sw   a5, 0(a6)
             p_ret",
        )
        .parallel_for_arg("scaled", "table");
    let mut m = run(&p, 1);
    let out = p.build().unwrap().symbol("out").unwrap();
    for t in 0..4 {
        assert_eq!(m.peek_shared(out + 4 * t).unwrap(), 200 * (t + 1));
    }
}

#[test]
fn generated_source_is_deterministic() {
    let a = write_indices(8).source();
    let b = write_indices(8).source();
    assert_eq!(a, b);
}

#[test]
fn runs_are_cycle_deterministic() {
    let p = write_indices(12);
    let image = p.build().unwrap();
    let run_once = || {
        let mut m = Machine::new(LbpConfig::cores(3).with_trace(), &image).unwrap();
        m.run(5_000_000).unwrap();
        (m.stats().cycles, m.stats().retired(), m.trace().clone())
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn parallelization_overhead_is_modest() {
    // The paper reports ~2386 instructions of team overhead for 16
    // members (Fig. 19 discussion). Our protocol transmits six registers
    // per fork; check the same order of magnitude: under 100 retired
    // instructions per member of pure overhead.
    let threads = 16;
    let p = DetOmp::new(threads)
        .function("empty", "p_ret")
        .parallel_for("empty");
    let m = run(&p, 4);
    let retired = m.stats().retired();
    assert!(
        retired < 100 * threads as u64,
        "team overhead too high: {retired} instructions"
    );
}

#[test]
fn ordered_channels_build_a_pipeline_across_concurrent_members() {
    // The §8 "deterministic MPI" sketch: member 0 produces a value and
    // sends it forward; members 1 and 2 transform and forward; member 3
    // stores the result — all within ONE parallel region, rank order =
    // the sequential referential order.
    use lbp_asm::Asm;
    use lbp_omp::Channel;

    let chans: Vec<Channel> = (0..3).map(|i| Channel::new(format!("ch{i}"))).collect();
    let stage = |idx: usize| -> String {
        let mut a = Asm::new();
        if idx == 0 {
            a.line("li   a2, 7");
        } else {
            chans[idx - 1].emit_recv(&mut a, "a2");
            a.line(format!("addi a2, a2, {}", 10 * idx));
        }
        if idx < 3 {
            chans[idx].emit_send(&mut a, "a2");
        } else {
            a.line("la   a3, pipe_out");
            a.line("sw   a2, 0(a3)");
        }
        a.line("p_ret");
        a.into_text()
    };
    let mut p = DetOmp::new(4)
        .data_space("ch0", 8)
        .data_space("ch1", 8)
        .data_space("ch2", 8)
        .data_space("pipe_out", 4);
    for i in 0..4 {
        p = p.function(format!("stage{i}"), stage(i));
    }
    let p = p.parallel_sections(&["stage0", "stage1", "stage2", "stage3"]);
    let mut m = run(&p, 1);
    let out = p.build().unwrap().symbol("pipe_out").unwrap();
    // 7 -> +10 -> +20 -> +30 = 67.
    assert_eq!(m.peek_shared(out).unwrap(), 67);
}

#[test]
fn channel_pipelines_replay_cycle_exactly() {
    use lbp_asm::Asm;
    use lbp_omp::Channel;
    let ch = Channel::new("cx");
    let mut producer = Asm::new();
    producer.line("li a2, 5");
    // Delay the send so the receiver demonstrably polls.
    producer.line("li a4, 300");
    producer.label("pdelay");
    producer.line("addi a4, a4, -1");
    producer.line("bnez a4, pdelay");
    ch.emit_send(&mut producer, "a2");
    producer.line("p_ret");
    let mut consumer = Asm::new();
    ch.emit_recv(&mut consumer, "a3");
    consumer.line("la a4, cx_out");
    consumer.line("sw a3, 0(a4)");
    consumer.line("p_ret");
    let p = DetOmp::new(2)
        .data_space("cx", 8)
        .data_space("cx_out", 4)
        .function("produce", producer.into_text())
        .function("consume", consumer.into_text())
        .parallel_sections(&["produce", "consume"]);
    let image = p.build().unwrap();
    let once = || {
        let mut m = Machine::new(LbpConfig::cores(1).with_trace(), &image).unwrap();
        m.run(5_000_000).unwrap();
        (
            m.stats().cycles,
            m.peek_shared(image.symbol("cx_out").unwrap()).unwrap(),
            m.trace().len(),
        )
    };
    let a = once();
    assert_eq!(a.1, 5);
    assert_eq!(a, once(), "polling durations replay exactly");
}

#[test]
fn stream_channel_carries_a_bounded_sequence() {
    use lbp_asm::Asm;
    use lbp_omp::StreamChannel;
    let stream = StreamChannel::new("strm", 8);
    let mut producer = Asm::new();
    producer.raw(
        "    li   a2, 0
prod_loop:
    slli a3, a2, 1
    addi a3, a3, 1        # item = 2i + 1",
    );
    stream.emit_send_indexed(&mut producer, "a3", "a2");
    producer.raw(
        "    addi a2, a2, 1
    li   a4, 8
    bne  a2, a4, prod_loop
    p_ret",
    );
    let mut consumer = Asm::new();
    consumer.raw(
        "    li   a2, 0
    li   a5, 0            # running sum
cons_loop:",
    );
    stream.emit_recv_indexed(&mut consumer, "a4", "a2");
    consumer.raw(
        "    add  a5, a5, a4
    addi a2, a2, 1
    li   a6, 8
    bne  a2, a6, cons_loop
    la   a6, strm_out
    sw   a5, 0(a6)
    p_ret",
    );
    let p = DetOmp::new(2)
        .data_space("strm", stream.data_bytes())
        .data_space("strm_out", 4)
        .function("produce", producer.into_text())
        .function("consume", consumer.into_text())
        .parallel_sections(&["produce", "consume"]);
    let mut m = run(&p, 1);
    let out = p.build().unwrap().symbol("strm_out").unwrap();
    // sum of 1,3,5,...,15 = 64.
    assert_eq!(m.peek_shared(out).unwrap(), 64);
}
