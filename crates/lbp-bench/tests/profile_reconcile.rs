//! Acceptance check for the profiler: a *profiled* Figure-19 matmul run
//! must land on exactly the golden cycle counts in
//! `results_reference.txt` (profiling is observationally free), and the
//! per-function hot-spot attribution must reconcile with the run's
//! stats — function cycles plus unattributed stalls partition the full
//! `cycles x cores` budget, function retired counts sum to the retired
//! total.

use lbp_kernels::matmul::{Matmul, Version};
use lbp_prof::{function_rows, SymTab};

/// The golden Figure-19 cycle count for `version`, parsed from the row's
/// first numeric field.
fn golden_cycles(version: Version) -> u64 {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results_reference.txt");
    let text = std::fs::read_to_string(path).expect("results_reference.txt is checked in");
    let mut in_figure = false;
    for line in text.lines() {
        if line.starts_with("Figure 19") {
            in_figure = true;
            continue;
        }
        if in_figure && line.starts_with(version.name()) {
            let cycles = line
                .split_whitespace()
                .nth(1)
                .expect("row has a cycles column");
            return cycles.parse().expect("cycles parse");
        }
    }
    panic!("Figure 19 row for {:?} not found", version.name());
}

#[test]
fn profiled_figure19_reconciles_with_the_reference() {
    for version in [Version::Base, Version::Tiled] {
        let mm = Matmul::new(16, version);
        let image = mm.build();
        let mut m = mm.machine().expect("machine builds");
        m.enable_profiling();
        let report = m.run(1_000_000_000).expect("run completes");
        assert!(mm.verify(&mut m).expect("peek"), "wrong result");

        // Identity with the golden trajectory: the profiled run's cycle
        // count is the unprofiled one, which is the committed reference.
        let golden = golden_cycles(version);
        assert_eq!(
            report.stats.cycles,
            golden,
            "{}: profiled cycle count diverges from results_reference.txt",
            version.name()
        );

        // Reconciliation: the hot-spot table is a *partition* of the
        // machine's time, not an estimate of it.
        let prof = m.profile().expect("profiling enabled");
        let sym = SymTab::from_image(&image);
        let rows = function_rows(prof, &sym);
        assert!(!rows.is_empty(), "matmul has attributable functions");
        let func_cycles: u64 = rows.iter().map(|r| r.cycles()).sum();
        let unattributed: u64 = (0..prof.cores())
            .map(|c| prof.unattributed(c).total())
            .sum();
        assert_eq!(
            func_cycles + unattributed,
            report.stats.cycles * prof.cores() as u64,
            "{}: function cycles + unattributed != cycles x cores",
            version.name()
        );
        let func_retired: u64 = rows.iter().map(|r| r.retired).sum();
        assert_eq!(
            func_retired,
            report.stats.retired(),
            "{}: function retired counts do not sum to the stats total",
            version.name()
        );
    }
}
