//! Golden-reference regression test: the checked-in
//! `results_reference.txt` (a captured `figures all` run) is the
//! contract. Simulated numbers are exact — the machine is
//! deterministic by construction — so the matmul cycle counts, IPC and
//! retired-instruction counts it records must match a fresh run **bit
//! for bit**. Any drift is a behavioural change of the simulator and
//! fails tier-1.
//!
//! ## Blessing a deliberate change
//!
//! If a change intentionally alters the performance model (and the
//! shape checks in the file still hold), regenerate the reference:
//!
//! ```text
//! cargo run -p lbp-bench --release --bin figures -- all > results_reference.txt
//! ```
//!
//! then re-run this test and commit the new file together with the
//! change that moved the numbers, explaining the delta in the commit
//! message.

use lbp_bench::measure;
use lbp_kernels::matmul::Version;

/// One parsed row of a figure table in `results_reference.txt`.
#[derive(Debug, PartialEq)]
struct GoldenRow {
    name: String,
    cycles: u64,
    ipc: f64,
    retired: u64,
}

/// Parses the named figure's table from the reference file.
fn golden_rows(reference: &str, figure: &str) -> Vec<GoldenRow> {
    let mut rows = Vec::new();
    let mut in_figure = false;
    for line in reference.lines() {
        if line.starts_with(figure) {
            in_figure = true;
            continue;
        }
        if !in_figure {
            continue;
        }
        if line.starts_with("shape checks:") || line.trim().is_empty() {
            break;
        }
        if line.starts_with("version") {
            continue; // table header
        }
        // `name cycles IPC retired locality` with a possibly
        // multi-word name: take the four numeric fields from the right.
        let fields: Vec<&str> = line.split_whitespace().collect();
        assert!(fields.len() >= 5, "malformed reference row: {line}");
        let nums = &fields[fields.len() - 4..];
        let name = fields[..fields.len() - 4].join(" ");
        if nums[3] == "-" {
            continue; // analytic baseline rows (no locality) aren't simulated
        }
        rows.push(GoldenRow {
            name,
            cycles: nums[0]
                .parse()
                .unwrap_or_else(|_| panic!("cycles in {line}")),
            ipc: nums[1].parse().unwrap_or_else(|_| panic!("ipc in {line}")),
            retired: nums[2]
                .parse()
                .unwrap_or_else(|_| panic!("retired in {line}")),
        });
    }
    assert!(
        !rows.is_empty(),
        "section {figure:?} not found in results_reference.txt"
    );
    rows
}

fn reference_text() -> String {
    // The file lives at the repository root, one level above the
    // crate's manifest directory.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results_reference.txt");
    std::fs::read_to_string(path).expect("results_reference.txt is checked in")
}

fn check_figure(figure: &str, harts: usize) {
    let golden = golden_rows(&reference_text(), figure);
    assert_eq!(
        golden.len(),
        Version::ALL.len(),
        "one golden row per version"
    );
    for (version, gold) in Version::ALL.into_iter().zip(&golden) {
        assert_eq!(version.name(), gold.name, "version order matches the file");
        let row = measure(harts, version);
        assert_eq!(
            row.cycles, gold.cycles,
            "{figure}: {} cycle count drifted from results_reference.txt \
             (got {}, reference {}). If this is an intended performance-model \
             change, re-bless: see the header of this test.",
            gold.name, row.cycles, gold.cycles
        );
        assert_eq!(
            row.retired, gold.retired,
            "{figure}: {} retired-instruction count drifted from the reference",
            gold.name
        );
        // IPC is printed rounded to 2 decimals; compare at that grain.
        assert!(
            (row.ipc - gold.ipc).abs() < 0.005 + 1e-9,
            "{figure}: {} IPC drifted (got {:.4}, reference {:.2})",
            gold.name,
            row.ipc,
            gold.ipc
        );
    }
}

/// Figure 19 (16 harts, 4 cores): every version, exact match. Small
/// enough to pin in tier-1 even in debug builds.
#[test]
fn figure19_matches_the_reference_exactly() {
    check_figure("Figure 19", 16);
}

/// Figure 20 (64 harts, 16 cores): exact match, but minutes-scale in
/// debug builds — run explicitly or in release CI:
/// `cargo test -p lbp-bench --release -- --ignored`.
#[test]
#[ignore = "minutes in debug builds; covered by release CI"]
fn figure20_matches_the_reference_exactly() {
    check_figure("Figure 20", 64);
}
