//! `throughput` — the simulator self-metrics suite.
//!
//! Measures how fast the *host* simulates the corpus workloads
//! (sim-cycles/sec, host-ns/sim-cycle, events/sec, peak-RSS proxy) and
//! proves the zero-cost-when-disabled instrumentation claim by rerunning
//! a subset profiled and bit-comparing reports and final states.
//!
//! ```text
//! cargo run -p lbp-bench --release --bin throughput -- --out BENCH_006.json
//! ```
//!
//! Options:
//!
//! - `--out FILE` write the `lbp-prof-v1` bench-suite JSON (default:
//!   stdout);
//! - `--quick`    reduced corpus (drops the h=64 matmul; CI smoke);
//! - `--check`    exit 1 if profiling is not bit-identical or the
//!   profiled/plain wall-clock ratio of any checked workload exceeds the
//!   overhead guard (3.0x — generous because the guest runs are short
//!   and host timing is noisy; the real claim is bit-identity).

use std::io::Write as _;
use std::process::ExitCode;

use lbp_bench::throughput::{overhead_check, suite_json, Workload};

const OVERHEAD_GUARD: f64 = 3.0;

fn main() -> ExitCode {
    let mut out: Option<String> = None;
    let mut quick = false;
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = args.next(),
            "--quick" => quick = true,
            "--check" => check = true,
            other => {
                eprintln!("throughput: unknown option `{other}`");
                eprintln!("usage: throughput [--out FILE] [--quick] [--check]");
                return ExitCode::from(2);
            }
        }
    }

    let corpus = Workload::corpus(quick);
    let mut rows = Vec::new();
    let mut plain = Vec::new();
    for w in &corpus {
        let m = w.run(false);
        eprintln!(
            "{:<24} {:>10} cycles  {:>8.2} Mcyc/s  {:>7.1} ns/cyc",
            w.name,
            m.row.sim_cycles,
            m.row.sim_cycles_per_sec() / 1e6,
            m.row.host_ns_per_cycle(),
        );
        rows.push(m.row.clone());
        plain.push(m);
    }

    // Zero-cost check on the two cheapest workload families — enough to
    // exercise both the fork fabric and the memory system paths.
    let mut overhead = Vec::new();
    let mut ok = true;
    for (w, p) in corpus.iter().zip(&plain) {
        if !w.name.starts_with("fork_join") && !w.name.starts_with("spin_alu") {
            continue;
        }
        let o = overhead_check(w, p);
        eprintln!(
            "overhead {:<16} bit-identical: {}  profiled/plain: {:.2}x",
            o.name, o.bit_identical, o.ratio
        );
        if !o.bit_identical || o.ratio > OVERHEAD_GUARD {
            ok = false;
        }
        overhead.push(o);
    }

    let suite = suite_json("BENCH_006", &rows, &overhead);
    let mut text = String::new();
    suite.write_pretty(&mut text);
    text.push('\n');
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("throughput: cannot write `{path}`: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("throughput: suite written to {path}");
        }
        None => {
            let _ = std::io::stdout().write_all(text.as_bytes());
        }
    }

    if check && !ok {
        eprintln!("throughput: overhead guard tripped (or profiling not bit-identical)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
