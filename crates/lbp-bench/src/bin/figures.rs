//! Regenerates the paper's evaluation artifacts.
//!
//! ```text
//! cargo run -p lbp-bench --release --bin figures -- all
//! cargo run -p lbp-bench --release --bin figures -- fig19 fig20
//! cargo run -p lbp-bench --release --bin figures -- determinism overhead
//! ```

use std::path::Path;
use std::time::Instant;

use lbp_bench::{
    benchmark_json, determinism_check, energy_comparison, fork_join_overhead,
    reproduce_figure_with_reports, single_core_ipc,
};

fn usage() -> ! {
    eprintln!(
        "usage: figures [--csv] [--stats-dir DIR] [fig19] [fig20] [fig21] [determinism] [overhead] [multithreading] [energy] [all]\n\
         Regenerates the paper's Figures 19-21 and the claim checks.\n\
         --csv prints figures as CSV rows instead of tables.\n\
         --stats-dir DIR writes one lbp-stats-v1 JSON per benchmark run into DIR."
    );
    std::process::exit(2)
}

fn run_figure(number: u32, csv: bool, stats_dir: Option<&str>) {
    let t = Instant::now();
    let (fig, reports) = reproduce_figure_with_reports(number);
    if let Some(dir) = stats_dir {
        std::fs::create_dir_all(dir).expect("create stats dir");
        for (name, report) in &reports {
            let mut text = String::new();
            benchmark_json(name, fig.harts, report).write_pretty(&mut text);
            text.push('\n');
            let path = Path::new(dir).join(format!("{name}.json"));
            std::fs::write(&path, text).expect("write stats JSON");
        }
    }
    if csv {
        print!("{}", fig.to_csv());
        return;
    }
    print!("{}", fig.to_table());
    println!("shape checks:");
    let mut all_ok = true;
    for (what, ok) in fig.check_shapes() {
        println!("  [{}] {}", if ok { "ok" } else { "FAIL" }, what);
        all_ok &= ok;
    }
    println!(
        "(regenerated in {:.1?} of host time; simulated numbers are exact)\n",
        t.elapsed()
    );
    if !all_ok {
        std::process::exit(1);
    }
}

fn run_determinism() {
    println!("C1 — cycle determinism (tiled matmul, two traced replays):");
    for harts in [16usize, 64] {
        let ok = determinism_check(harts);
        println!(
            "  [{}] h={harts}: traces, cycles and retired counts bit-identical",
            if ok { "ok" } else { "FAIL" }
        );
        assert!(ok);
    }
    println!();
}

fn run_overhead() {
    println!("C2 — parallelization overhead (empty team, spawn + barrier + join):");
    println!(
        "{:<18} {:>10} {:>10} {:>16}",
        "team", "cycles", "retired", "retired/member"
    );
    for threads in [4usize, 16, 64, 256] {
        let row = fork_join_overhead(threads);
        println!(
            "{:<18} {:>10} {:>10} {:>16.1}",
            row.name,
            row.cycles,
            row.retired,
            row.retired as f64 / threads as f64
        );
    }
    println!();
}

fn run_multithreading() {
    println!(
        "Multithreading ablation — §5.2: harts needed to fill one core's pipeline\n\
         (no branch predictor: every fetch suspends until the next pc is known)"
    );
    println!("{:<14} {:>10}", "active harts", "core IPC");
    for members in 1..=4 {
        println!("{:<14} {:>10.2}", members, single_core_ipc(members));
    }
    println!();
}

fn run_energy() {
    println!("Energy proxy — §7's closing claim (tiled matmul, h = 64):");
    let (lbp_j, phi_j, a) = energy_comparison(64);
    println!(
        "  LBP (activity model, embedded 28nm-class point): {:.3} mJ",
        lbp_j * 1e3
    );
    println!(
        "  Xeon-Phi2-class (TDP x modelled time):           {:.3} mJ",
        phi_j * 1e3
    );
    println!("  efficiency ratio: {:.1}x in LBP's favor", phi_j / lbp_j);
    println!(
        "  (activity: {} instr, {} muldiv, {} mem ops, {} hops, {} cycles on {} cores)\n",
        a.retired, a.muldiv_ops, a.mem_ops, a.link_hops, a.cycles, a.cores
    );
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    args.retain(|a| a != "--csv");
    let mut stats_dir = None;
    if let Some(i) = args.iter().position(|a| a == "--stats-dir") {
        if i + 1 >= args.len() {
            usage();
        }
        stats_dir = Some(args.remove(i + 1));
        args.remove(i);
    }
    let stats_dir = stats_dir.as_deref();
    if args.is_empty() {
        usage();
    }
    for arg in &args {
        match arg.as_str() {
            "fig19" => run_figure(19, csv, stats_dir),
            "fig20" => run_figure(20, csv, stats_dir),
            "fig21" => run_figure(21, csv, stats_dir),
            "determinism" => run_determinism(),
            "overhead" => run_overhead(),
            "multithreading" => run_multithreading(),
            "energy" => run_energy(),
            "all" => {
                run_figure(19, csv, stats_dir);
                run_figure(20, csv, stats_dir);
                run_figure(21, csv, stats_dir);
                run_determinism();
                run_overhead();
                run_multithreading();
                run_energy();
            }
            _ => usage(),
        }
    }
}
