//! `fastforward` — the hybrid fast-forward speedup suite.
//!
//! Runs every corpus workload three ways over the same image and
//! inputs — cycle-exact, functional, and hybrid (90% functional warm
//! phase, cycle-exact tail) — and records wall-clock speedups plus the
//! fidelity verdict (every mode must land on the cycle-exact run's
//! architectural hash).
//!
//! ```text
//! cargo run -p lbp-bench --release --bin fastforward -- --out BENCH_009.json
//! ```
//!
//! Options:
//!
//! - `--out FILE`       write the `lbp-prof-v1` bench-suite JSON
//!   (default: stdout);
//! - `--quick`          reduced corpus (drops the h=64 matmul; CI
//!   smoke);
//! - `--check`          exit 1 if any workload's engines are not
//!   bit-identical, or if the functional speedup on a matmul workload
//!   falls below the guard;
//! - `--min-speedup X`  the `--check` guard for matmul functional
//!   speedup (default 3.0 — deliberately far under the ~10x+ a
//!   release build reaches, because CI machines are noisy; the real
//!   claim is bit-identity).

use std::io::Write as _;
use std::process::ExitCode;

use lbp_bench::fastforward::{measure, suite_json};
use lbp_bench::throughput::Workload;

fn main() -> ExitCode {
    let mut out: Option<String> = None;
    let mut quick = false;
    let mut check = false;
    let mut min_speedup = 3.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = args.next(),
            "--quick" => quick = true,
            "--check" => check = true,
            "--min-speedup" => {
                let Some(v) = args.next().and_then(|s| s.parse().ok()) else {
                    eprintln!("fastforward: --min-speedup needs a number");
                    return ExitCode::from(2);
                };
                min_speedup = v;
            }
            other => {
                eprintln!("fastforward: unknown option `{other}`");
                eprintln!("usage: fastforward [--out FILE] [--quick] [--check] [--min-speedup X]");
                return ExitCode::from(2);
            }
        }
    }

    let corpus = Workload::corpus(quick);
    let mut rows = Vec::new();
    let mut summaries = Vec::new();
    let mut ok = true;
    for w in &corpus {
        let m = measure(w);
        eprintln!(
            "{:<24} functional: {:>6.1}x  hybrid90: {:>5.2}x (warm {:>4.1}%)  bit-identical: {}",
            w.name,
            m.summary.functional_speedup,
            m.summary.hybrid_speedup,
            m.summary.warm_fraction * 100.0,
            m.summary.bit_identical,
        );
        if !m.summary.bit_identical {
            ok = false;
        }
        if w.name.starts_with("matmul") && m.summary.functional_speedup < min_speedup {
            eprintln!(
                "fastforward: {} functional speedup {:.1}x under the {min_speedup:.1}x guard",
                w.name, m.summary.functional_speedup
            );
            ok = false;
        }
        rows.extend(m.rows);
        summaries.push(m.summary);
    }

    let suite = suite_json("BENCH_009", &rows, &summaries);
    let mut text = String::new();
    suite.write_pretty(&mut text);
    text.push('\n');
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("fastforward: cannot write `{path}`: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("fastforward: suite written to {path}");
        }
        None => {
            let _ = std::io::stdout().write_all(text.as_bytes());
        }
    }

    if check && !ok {
        eprintln!("fastforward: fidelity or speedup guard tripped");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
