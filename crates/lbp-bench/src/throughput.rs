//! The simulator self-metrics throughput suite.
//!
//! Where the rest of `lbp-bench` measures the *guest* (cycles, IPC —
//! the paper's Figs. 19-21), this module measures the *host*: how fast
//! the simulator itself chews through guest cycles and events, in
//! [`BenchRow`] records (schema `lbp-prof-v1`, kind `"bench"`). A full
//! suite run writes the committed `BENCH_*.json` trajectory
//! (kind `"bench-suite"`) through the `throughput` binary:
//!
//! ```text
//! cargo run -p lbp-bench --release --bin throughput -- --out BENCH_006.json
//! ```
//!
//! The suite also proves the zero-cost-when-disabled claim the hard
//! way: it reruns a subset of the corpus with profiling enabled and
//! checks that the `lbp-stats-v1` report bytes and the final-state
//! content hash are bit-identical to the plain run, reporting the
//! wall-clock ratio alongside ([`overhead_check`]).

use std::time::Instant;

use lbp_asm::Image;
use lbp_kernels::matmul::{Matmul, Version};
use lbp_prof::BenchRow;
use lbp_sim::{FastEngine, Json, LbpConfig, Machine};

/// One workload of the throughput corpus: a named recipe for building a
/// fresh, input-loaded machine.
pub struct Workload {
    /// Suite-unique name, e.g. `matmul/tiled/h16`.
    pub name: String,
    /// Harts the guest program uses.
    pub harts: u32,
    /// Cycle budget (every corpus workload finishes well under it).
    pub max_cycles: u64,
    kind: Kind,
}

enum Kind {
    Matmul { harts: usize, version: Version },
    ForkJoin { threads: usize },
    Spin { members: usize },
}

/// One measured run of a workload: the self-metrics row plus the
/// determinism evidence the overhead check compares.
pub struct Measured {
    /// The self-metrics record.
    pub row: BenchRow,
    /// The run's `lbp-stats-v1` report, serialized (bit-comparable).
    pub report_json: String,
    /// FNV-1a-64 over the final machine state's dynamic bytes.
    pub state_hash: u64,
}

impl Workload {
    fn matmul(harts: usize, version: Version) -> Workload {
        Workload {
            name: format!("matmul/{}/h{harts}", version.name()),
            harts: harts as u32,
            max_cycles: 1_000_000_000,
            kind: Kind::Matmul { harts, version },
        }
    }

    fn fork_join(threads: usize) -> Workload {
        Workload {
            name: format!("fork_join/x{threads}"),
            harts: threads as u32,
            max_cycles: 10_000_000,
            kind: Kind::ForkJoin { threads },
        }
    }

    fn spin(members: usize) -> Workload {
        Workload {
            name: format!("spin_alu/m{members}"),
            harts: members as u32,
            max_cycles: 10_000_000,
            kind: Kind::Spin { members },
        }
    }

    /// The suite corpus. `quick` drops the largest workload (the
    /// `h=64` matmul) so CI smoke runs stay fast; both shapes keep at
    /// least six workloads (the committed-trajectory floor).
    pub fn corpus(quick: bool) -> Vec<Workload> {
        let mut ws = vec![
            Workload::matmul(16, Version::Base),
            Workload::matmul(16, Version::Distributed),
            Workload::matmul(16, Version::Tiled),
            Workload::fork_join(16),
            Workload::fork_join(64),
            Workload::spin(4),
        ];
        if !quick {
            ws.push(Workload::matmul(64, Version::Tiled));
        }
        ws
    }

    /// Builds a fresh machine with the workload's inputs loaded.
    ///
    /// # Panics
    ///
    /// Panics if the program fails to assemble or the machine to build —
    /// the corpus is fixed and known-good.
    pub fn machine(&self) -> Machine {
        match &self.kind {
            Kind::Matmul { harts, version } => Matmul::new(*harts, *version)
                .machine()
                .expect("matmul machine builds"),
            Kind::ForkJoin { threads } => {
                let p = lbp_omp::DetOmp::new(*threads)
                    .function("empty", "p_ret")
                    .parallel_for("empty");
                let image = p.build().expect("fork-join program assembles");
                let cores = threads.div_ceil(4);
                Machine::new(LbpConfig::cores(cores), &image).expect("machine builds")
            }
            Kind::Spin { members } => {
                let p = lbp_omp::DetOmp::new(*members)
                    .function(
                        "spin",
                        "li   a2, 2000
                         li   a3, 0
spin_loop:
                         addi a3, a3, 1
                         xori a3, a3, 5
                         addi a2, a2, -1
                         bnez a2, spin_loop
                         p_ret",
                    )
                    .parallel_for("spin");
                let image = p.build().expect("spin program assembles");
                Machine::new(LbpConfig::cores(1), &image).expect("machine builds")
            }
        }
    }

    /// Builds a fresh functional engine over the same image and inputs
    /// the cycle-exact [`Workload::machine`] runs, plus the image (the
    /// hybrid handoff's `materialize` needs it).
    ///
    /// # Panics
    ///
    /// Panics if the program fails to build — the corpus is fixed and
    /// known-good.
    pub fn fast_engine(&self) -> (FastEngine, Image) {
        match &self.kind {
            Kind::Matmul { harts, version } => {
                let mm = Matmul::new(*harts, *version);
                let image = mm.build();
                let mut fast =
                    FastEngine::new(mm.config(), &image).expect("matmul fast engine builds");
                let l = mm.layout();
                for i in 0..l.n {
                    for k in 0..l.m {
                        fast.poke_shared(l.x(i, k), 1).expect("X input in range");
                    }
                }
                for k in 0..l.m {
                    for j in 0..l.n {
                        fast.poke_shared(l.y(k, j), 1).expect("Y input in range");
                    }
                }
                (fast, image)
            }
            Kind::ForkJoin { threads } => {
                let p = lbp_omp::DetOmp::new(*threads)
                    .function("empty", "p_ret")
                    .parallel_for("empty");
                let image = p.build().expect("fork-join program assembles");
                let cores = threads.div_ceil(4);
                let fast =
                    FastEngine::new(LbpConfig::cores(cores), &image).expect("fast engine builds");
                (fast, image)
            }
            Kind::Spin { members } => {
                let p = lbp_omp::DetOmp::new(*members)
                    .function(
                        "spin",
                        "li   a2, 2000
                         li   a3, 0
spin_loop:
                         addi a3, a3, 1
                         xori a3, a3, 5
                         addi a2, a2, -1
                         bnez a2, spin_loop
                         p_ret",
                    )
                    .parallel_for("spin");
                let image = p.build().expect("spin program assembles");
                let fast =
                    FastEngine::new(LbpConfig::cores(1), &image).expect("fast engine builds");
                (fast, image)
            }
        }
    }

    /// Runs the workload once, wall-clocked, optionally with profiling
    /// enabled (for the overhead check).
    ///
    /// # Panics
    ///
    /// Panics if the run faults or exhausts the budget.
    pub fn run(&self, profiled: bool) -> Measured {
        let mut m = self.machine();
        if profiled {
            m.enable_profiling();
        }
        let start = Instant::now();
        let report = m
            .run(self.max_cycles)
            .unwrap_or_else(|e| panic!("{}: {e}", self.name));
        let host_ns = start.elapsed().as_nanos() as u64;
        assert!(report.exited, "{}: did not exit within budget", self.name);
        let state = m.snapshot();
        let row = BenchRow {
            name: self.name.clone(),
            harts: self.harts,
            cores: m.config().cores as u32,
            sim_cycles: report.stats.cycles,
            retired: report.stats.retired(),
            events: BenchRow::events_of(&report.stats),
            host_ns,
            state_bytes: state.as_bytes().len() as u64,
            peak_rss_kb: lbp_prof::peak_rss_kb(),
        };
        let mut report_json = String::new();
        report.to_json().write(&mut report_json);
        Measured {
            row,
            report_json,
            state_hash: lbp_snap::fnv1a64(state.dynamic_bytes()),
        }
    }
}

/// The result of the zero-cost-instrumentation check on one workload.
pub struct Overhead {
    /// The workload name.
    pub name: String,
    /// Whether the profiled run's stats report and final-state hash are
    /// bit-identical to the plain run's (they must be).
    pub bit_identical: bool,
    /// Profiled wall-clock over plain wall-clock.
    pub ratio: f64,
}

impl Overhead {
    /// Serializes as a JSON fragment of the bench-suite record.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("bit_identical", Json::Bool(self.bit_identical)),
            ("profiled_over_plain", Json::F64(self.ratio)),
        ])
    }
}

/// Reruns one workload with profiling enabled and compares against a
/// plain measurement: reports bit-identity of the stats report and the
/// final-state hash, plus the wall-clock ratio.
pub fn overhead_check(workload: &Workload, plain: &Measured) -> Overhead {
    let profiled = workload.run(true);
    Overhead {
        name: workload.name.clone(),
        bit_identical: profiled.report_json == plain.report_json
            && profiled.state_hash == plain.state_hash,
        ratio: profiled.row.host_ns as f64 / plain.row.host_ns.max(1) as f64,
    }
}

/// Assembles the committed `lbp-prof-v1` bench-suite record from the
/// measured rows and overhead checks.
pub fn suite_json(bench_id: &str, rows: &[BenchRow], overhead: &[Overhead]) -> Json {
    Json::obj([
        ("schema", Json::Str(lbp_prof::PROF_SCHEMA.to_owned())),
        ("kind", Json::Str("bench-suite".to_owned())),
        ("bench_id", Json::Str(bench_id.to_owned())),
        (
            "invocation",
            Json::Str(
                "cargo run -p lbp-bench --release --bin throughput -- --out BENCH_006.json"
                    .to_owned(),
            ),
        ),
        (
            "rows",
            Json::Arr(rows.iter().map(BenchRow::to_json).collect()),
        ),
        (
            "overhead",
            Json::Arr(overhead.iter().map(Overhead::to_json).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_corpus_has_six_workloads_with_unique_names() {
        let corpus = Workload::corpus(true);
        assert!(corpus.len() >= 6);
        let names: std::collections::HashSet<&str> =
            corpus.iter().map(|w| w.name.as_str()).collect();
        assert_eq!(names.len(), corpus.len());
    }

    #[test]
    fn spin_workload_measures_and_validates() {
        let w = Workload::spin(4);
        let m = w.run(false);
        assert!(m.row.sim_cycles > 0);
        assert!(m.row.events >= m.row.retired);
        assert_eq!(lbp_prof::validate(&m.row.to_json()).unwrap(), "bench");
    }

    #[test]
    fn profiling_is_bit_identical_on_fork_join() {
        let w = Workload::fork_join(16);
        let plain = w.run(false);
        let check = overhead_check(&w, &plain);
        assert!(check.bit_identical, "profiling changed the run");
    }
}
