//! # lbp-bench — the evaluation harness
//!
//! Regenerates every quantitative artifact of the paper's §7 evaluation:
//!
//! - **Fig. 19**: cycles / IPC / retired instructions for the five matmul
//!   versions on a 4-core LBP (`h = 16`);
//! - **Fig. 20**: the same on a 16-core LBP (`h = 64`);
//! - **Fig. 21**: the same on a 64-core LBP (`h = 256`), plus the
//!   Xeon-Phi-2-class baseline estimate for the tiled version;
//! - the behavioural claims: **C1** cycle determinism, **C2** low
//!   parallelization overhead, **C3** interconnect sustains the demand.
//!
//! Because LBP is cycle-deterministic, *one* simulated run is an exact,
//! complete measurement — there is no run-to-run variance to average
//! away, which is precisely the paper's point. The Criterion benches in
//! `benches/` track the *simulator's* host-side performance; the
//! simulated numbers come from the `figures` binary
//! (`cargo run -p lbp-bench --release --bin figures -- all`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

use lbp_baseline::PhiModel;
use lbp_kernels::matmul::{Matmul, Version};

pub mod fastforward;
pub mod throughput;

/// One measured row of a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// The matmul version (or baseline) name.
    pub name: String,
    /// Simulated cycles.
    pub cycles: u64,
    /// Whole-machine IPC.
    pub ipc: f64,
    /// Retired instructions.
    pub retired: u64,
    /// Fraction of memory accesses served locally.
    pub locality: f64,
}

/// A reproduced figure: the machine size and one row per version.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Paper figure number (19, 20 or 21).
    pub number: u32,
    /// Hart count `h` (team size and matrix dimension).
    pub harts: usize,
    /// The measured rows, in the paper's version order.
    pub rows: Vec<Row>,
}

/// Runs one matmul version to completion and returns its row plus the
/// full run report, for callers that also want the machine-readable
/// stats (schema `lbp-stats-v1`).
///
/// # Panics
///
/// Panics if the simulation faults or the result matrix is wrong —
/// a figure must never be produced from an incorrect run.
pub fn measure_with_report(harts: usize, version: Version) -> (Row, lbp_sim::RunReport) {
    let mm = Matmul::new(harts, version);
    let mut m = mm.machine().expect("machine builds");
    let report = m
        .run(1_000_000_000)
        .unwrap_or_else(|e| panic!("{} h={harts}: {e}", version.name()));
    assert!(
        mm.verify(&mut m).expect("verification reads"),
        "{} h={harts}: wrong result",
        version.name()
    );
    let row = Row {
        name: version.name().to_owned(),
        cycles: report.stats.cycles,
        ipc: report.stats.ipc(),
        retired: report.stats.retired(),
        locality: report.stats.locality(),
    };
    (row, report)
}

/// Runs one matmul version to completion and returns its row.
///
/// # Panics
///
/// Panics if the simulation faults or the result matrix is wrong —
/// a figure must never be produced from an incorrect run.
pub fn measure(harts: usize, version: Version) -> Row {
    measure_with_report(harts, version).0
}

/// Wraps a run report as the per-benchmark stats JSON: the
/// `lbp-stats-v1` report with `benchmark` and `harts` fields inserted
/// after the schema tag, so every benchmark emits the same shape.
pub fn benchmark_json(name: &str, harts: usize, report: &lbp_sim::RunReport) -> lbp_sim::Json {
    use lbp_sim::Json;
    let mut json = report.to_json();
    if let Json::Obj(fields) = &mut json {
        fields.insert(1, ("benchmark".to_owned(), Json::Str(name.to_owned())));
        fields.insert(2, ("harts".to_owned(), Json::U64(harts as u64)));
    }
    json
}

/// Reproduces one of the paper's figures (19 → `h=16`, 20 → `h=64`,
/// 21 → `h=256` plus the Phi baseline row).
///
/// # Panics
///
/// Panics on an unknown figure number or a failing run.
pub fn reproduce_figure(number: u32) -> Figure {
    reproduce_figure_with_reports(number).0
}

/// Like [`reproduce_figure`], but also returns the run report of every
/// simulated version (the Phi model row has no simulated report), named
/// `fig<N>_<version>`, for per-benchmark stats JSON emission.
///
/// # Panics
///
/// Panics on an unknown figure number or a failing run.
pub fn reproduce_figure_with_reports(number: u32) -> (Figure, Vec<(String, lbp_sim::RunReport)>) {
    let harts = match number {
        19 => 16,
        20 => 64,
        21 => 256,
        other => panic!("the paper's evaluation figures are 19, 20 and 21, not {other}"),
    };
    let mut reports = Vec::new();
    let mut rows: Vec<Row> = Version::ALL
        .iter()
        .map(|&v| {
            let (row, report) = measure_with_report(harts, v);
            reports.push((format!("fig{number}_{}", row.name), report));
            row
        })
        .collect();
    if number == 21 {
        let phi = PhiModel::paper_calibrated();
        let e = phi.estimate_tiled_matmul(harts);
        rows.push(Row {
            name: "xeon-phi2 tiled (model)".to_owned(),
            cycles: e.cycles as u64,
            ipc: e.ipc(),
            retired: e.instructions as u64,
            locality: f64::NAN,
        });
    }
    let figure = Figure {
        number,
        harts,
        rows,
    };
    (figure, reports)
}

impl Figure {
    /// Renders the figure as an aligned text table (the three histograms
    /// of the paper, as columns).
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "Figure {} — matrix multiplication, {} harts ({} cores), peak IPC {}",
            self.number,
            self.harts,
            self.harts / 4,
            self.harts / 4,
        );
        let _ = writeln!(
            s,
            "{:<24} {:>12} {:>8} {:>12} {:>9}",
            "version", "cycles", "IPC", "retired", "locality"
        );
        for r in &self.rows {
            let loc = if r.locality.is_nan() {
                "-".to_owned()
            } else {
                format!("{:.2}", r.locality)
            };
            let _ = writeln!(
                s,
                "{:<24} {:>12} {:>8.2} {:>12} {:>9}",
                r.name, r.cycles, r.ipc, r.retired, loc
            );
        }
        s
    }

    /// Renders the figure as CSV (`figure,version,cycles,ipc,retired,locality`).
    pub fn to_csv(&self) -> String {
        let mut s = String::from(
            "figure,version,cycles,ipc,retired,locality
",
        );
        for r in &self.rows {
            let _ = writeln!(
                s,
                "{},{},{},{:.4},{},{:.4}",
                self.number, r.name, r.cycles, r.ipc, r.retired, r.locality
            );
        }
        s
    }

    /// The row of a version.
    pub fn row(&self, name: &str) -> &Row {
        self.rows
            .iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("no row named {name}"))
    }

    /// Checks the paper's qualitative claims for this figure, returning
    /// human-readable pass/fail lines.
    pub fn check_shapes(&self) -> Vec<(String, bool)> {
        let mut checks = Vec::new();
        let base = self.row("base");
        let copy = self.row("copy");
        let dist = self.row("distributed");
        let tiled = self.row("tiled");
        match self.number {
            19 => {
                checks.push((
                    format!(
                        "base is about twice as fast as tiled ({} vs {} cycles)",
                        base.cycles, tiled.cycles
                    ),
                    tiled.cycles > base.cycles * 3 / 2,
                ));
                checks.push((
                    format!("tiled has the best IPC ({:.2})", tiled.ipc),
                    self.rows[..5].iter().all(|r| r.ipc <= tiled.ipc),
                ));
            }
            20 => {
                checks.push((
                    format!(
                        "copy is >= 10% faster than base ({} vs {} cycles)",
                        copy.cycles, base.cycles
                    ),
                    (copy.cycles as f64) < 0.9 * base.cycles as f64,
                ));
                checks.push((
                    format!(
                        "copying is a modest instruction overhead ({} vs {})",
                        copy.retired, base.retired
                    ),
                    copy.retired < base.retired * 105 / 100,
                ));
            }
            21 => {
                checks.push((
                    format!(
                        "tiled beats distributed by ~2x ({} vs {} cycles)",
                        tiled.cycles, dist.cycles
                    ),
                    dist.cycles > tiled.cycles * 3 / 2,
                ));
                checks.push((
                    format!(
                        "tiled beats base by >= 4x ({} vs {} cycles)",
                        tiled.cycles, base.cycles
                    ),
                    base.cycles >= tiled.cycles * 4,
                ));
                checks.push((
                    format!(
                        "tiled sustains >= 85% of the 64-IPC peak ({:.1})",
                        tiled.ipc
                    ),
                    tiled.ipc >= 0.85 * 64.0,
                ));
                checks.push((
                    format!(
                        "tiling costs extra instructions over base ({} vs {})",
                        tiled.retired, base.retired
                    ),
                    tiled.retired > base.retired,
                ));
                let phi = self.row("xeon-phi2 tiled (model)");
                checks.push((
                    format!(
                        "the Phi model runs ~2.3x fewer instructions ({} vs {})",
                        phi.retired, tiled.retired
                    ),
                    tiled.retired as f64 / phi.retired as f64 > 1.8,
                ));
                checks.push((
                    format!(
                        "the Phi model is ~3x faster in cycles ({} vs {})",
                        phi.cycles, tiled.cycles
                    ),
                    (2.0..6.0).contains(&(tiled.cycles as f64 / phi.cycles as f64)),
                ));
            }
            _ => {}
        }
        checks
    }
}

/// Measures claim **C2**: the cycle and instruction overhead of creating,
/// distributing and joining a team of `threads` members doing no work.
pub fn fork_join_overhead(threads: usize) -> Row {
    use lbp_omp::DetOmp;
    use lbp_sim::{LbpConfig, Machine};
    let p = DetOmp::new(threads)
        .function("empty", "p_ret")
        .parallel_for("empty");
    let image = p.build().expect("program assembles");
    let cores = threads.div_ceil(4);
    let mut m = Machine::new(LbpConfig::cores(cores), &image).expect("machine");
    let report = m.run(10_000_000).expect("run");
    Row {
        name: format!("fork-join x{threads}"),
        cycles: report.stats.cycles,
        ipc: report.stats.ipc(),
        retired: report.stats.retired(),
        locality: report.stats.locality(),
    }
}

/// Compares the energy proxies of LBP and the Phi-class comparator on
/// the tiled matmul at size `harts` (paper §7's closing low-power
/// argument). Returns `(lbp_joules, phi_joules)` and the LBP activity the
/// estimate was computed from.
pub fn energy_comparison(harts: usize) -> (f64, f64, lbp_baseline::Activity) {
    use lbp_baseline::{LbpEnergyModel, PhiEnergyModel};
    let mm = Matmul::new(harts, Version::Tiled);
    let mut m = mm.machine().expect("machine");
    let report = m.run(1_000_000_000).expect("run");
    assert!(mm.verify(&mut m).expect("peek"));
    let s = &report.stats;
    let activity = lbp_baseline::Activity {
        cycles: s.cycles,
        retired: s.retired(),
        muldiv_ops: s.muldiv_ops,
        mem_ops: s.mem_ops(),
        link_hops: s.link_hops,
        cores: mm.cores(),
    };
    let lbp_j = LbpEnergyModel::embedded_default().estimate_joules(&activity);
    let phi_e = PhiModel::paper_calibrated().estimate_tiled_matmul(harts);
    let phi_j = PhiEnergyModel::knl_7210().estimate_joules(&phi_e);
    (lbp_j, phi_j, activity)
}

/// Measures the multithreading ablation (paper §5.2: "at least two full
/// harts are necessary to fill the pipeline"; with four active harts the
/// core approaches its 1-IPC peak): runs `members` harts of pure ALU
/// work on a single core and reports the achieved core IPC.
pub fn single_core_ipc(members: usize) -> f64 {
    use lbp_omp::DetOmp;
    use lbp_sim::{LbpConfig, Machine};
    assert!((1..=4).contains(&members));
    let p = DetOmp::new(members)
        .function(
            "spin",
            "li   a2, 2000
             li   a3, 0
spin_loop:
             addi a3, a3, 1
             xori a3, a3, 5
             addi a2, a2, -1
             bnez a2, spin_loop
             p_ret",
        )
        .parallel_for("spin");
    let image = p.build().expect("assembles");
    let mut m = Machine::new(LbpConfig::cores(1), &image).expect("machine");
    let report = m.run(10_000_000).expect("runs");
    report.stats.ipc()
}

/// Measures claim **C1**: runs the given figure's tiled version twice
/// with tracing and reports whether the traces are bit-identical.
pub fn determinism_check(harts: usize) -> bool {
    use lbp_sim::Machine;
    let mm = Matmul::new(harts, Version::Tiled);
    let image = mm.build();
    let run = || {
        let mut m = Machine::new(mm.config().with_trace(), &image).expect("machine");
        let l = mm.layout();
        for i in 0..l.n {
            for k in 0..l.m {
                m.poke_shared(l.x(i, k), 1).expect("poke");
            }
        }
        for k in 0..l.m {
            for j in 0..l.n {
                m.poke_shared(l.y(k, j), 1).expect("poke");
            }
        }
        m.run(1_000_000_000).expect("run");
        (m.stats().cycles, m.stats().retired(), m.trace().clone())
    };
    run() == run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_19_shapes_hold() {
        let fig = reproduce_figure(19);
        for (what, ok) in fig.check_shapes() {
            assert!(ok, "claim failed: {what}");
        }
    }

    #[test]
    fn fork_join_overhead_is_small() {
        let row = fork_join_overhead(16);
        assert!(row.retired < 1600, "overhead {} too high", row.retired);
        assert!(row.cycles < 4000, "cycles {} too high", row.cycles);
    }

    #[test]
    fn determinism_holds_at_small_size() {
        assert!(determinism_check(16));
    }

    #[test]
    fn energy_proxy_favors_lbp() {
        let (lbp_j, phi_j, activity) = energy_comparison(16);
        assert!(lbp_j > 0.0 && phi_j > 0.0);
        assert!(
            phi_j / lbp_j > 2.0,
            "LBP should be the efficient one: {lbp_j} vs {phi_j} J"
        );
        assert!(activity.retired > 0);
    }

    #[test]
    fn multithreading_fills_the_pipeline() {
        // Paper §5.2: one hart cannot fill the pipeline (every fetch
        // suspends); four harts approach the 1-IPC peak.
        let one = single_core_ipc(1);
        let two = single_core_ipc(2);
        let four = single_core_ipc(4);
        assert!(one < 0.6, "one hart should starve the pipeline: {one}");
        assert!(two > one, "two harts must beat one: {two} vs {one}");
        assert!(four > 0.85, "four harts should approach peak: {four}");
    }

    #[test]
    #[should_panic(expected = "figures are 19, 20 and 21")]
    fn unknown_figure_rejected() {
        let _ = reproduce_figure(7);
    }
}
