//! The hybrid fast-forward speedup suite (`BENCH_009`).
//!
//! Where [`crate::throughput`] measures how fast the cycle-exact engine
//! chews through guest cycles, this suite measures what the functional
//! engine buys: each corpus workload runs three ways over the same
//! assembled image and inputs —
//!
//! - **cycle-exact**: the reference `Machine` run, start to exit;
//! - **functional**: the `lbp-sim` fast engine run to the exit
//!   boundary (`sim_cycles` is its *virtual* cycle — the per-core
//!   retired maximum — so `Mcyc/s` columns stay comparable);
//! - **hybrid90**: a warm phase covering ~90% of the program's retired
//!   instructions on the functional engine, materialized through the
//!   snapshot boundary, finished cycle-exact.
//!
//! Fidelity is asserted, not assumed: the functional and hybrid runs
//! must land on the cycle-exact run's architectural hash, and the
//! recorded [`FfSummary::bit_identical`] flag feeds the `--check` gate.

use std::time::Instant;

use lbp_prof::BenchRow;
use lbp_sim::{FastStop, Json};

use crate::throughput::Workload;

/// The per-workload outcome: three measured rows plus the speedup and
/// fidelity summary the suite record carries alongside them.
pub struct FfMeasure {
    /// `<name>/cycle-exact`, `<name>/functional`, `<name>/hybrid90`.
    pub rows: Vec<BenchRow>,
    /// The comparison summary.
    pub summary: FfSummary,
}

/// The speedup/fidelity summary of one workload.
pub struct FfSummary {
    /// The workload name.
    pub name: String,
    /// Cycle-exact wall-clock over functional wall-clock (whole run).
    pub functional_speedup: f64,
    /// Cycle-exact wall-clock over hybrid wall-clock (warm phase +
    /// materialization + cycle-exact tail).
    pub hybrid_speedup: f64,
    /// The fraction of retired instructions the warm phase covered
    /// (the target is 0.9; clamping to a rendezvous boundary may move
    /// it).
    pub warm_fraction: f64,
    /// Whether every engine combination reached the cycle-exact run's
    /// architectural hash.
    pub bit_identical: bool,
}

impl FfSummary {
    /// Serializes as a JSON fragment of the bench-suite record.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("functional_speedup", Json::F64(self.functional_speedup)),
            ("hybrid_speedup", Json::F64(self.hybrid_speedup)),
            ("warm_fraction", Json::F64(self.warm_fraction)),
            ("bit_identical", Json::Bool(self.bit_identical)),
        ])
    }
}

fn row(
    w: &Workload,
    suffix: &str,
    cores: u32,
    sim_cycles: u64,
    retired: u64,
    host_ns: u64,
    state_bytes: u64,
) -> BenchRow {
    BenchRow {
        name: format!("{}/{suffix}", w.name),
        harts: w.harts,
        cores,
        sim_cycles,
        retired,
        // The functional engine has no microarchitectural event stream;
        // retired commits are the only events either row kind shares.
        events: retired,
        host_ns: host_ns.max(1),
        state_bytes,
        peak_rss_kb: lbp_prof::peak_rss_kb(),
    }
}

/// Measures one workload across all three engine modes.
///
/// # Panics
///
/// Panics if any run faults or exhausts its budget — the corpus is
/// fixed and known-good. A fidelity *divergence* does not panic; it is
/// recorded in the summary for `--check` to fail on.
pub fn measure(w: &Workload) -> FfMeasure {
    // Cycle-exact reference.
    let mut m = w.machine();
    let cores = m.config().cores as u32;
    let start = Instant::now();
    let report = m
        .run(w.max_cycles)
        .unwrap_or_else(|e| panic!("{}: cycle-exact: {e}", w.name));
    let exact_ns = start.elapsed().as_nanos() as u64;
    assert!(report.exited, "{}: did not exit within budget", w.name);
    let pure_hash = m.arch_hash();
    let retired = report.stats.retired();
    let exact_row = row(
        w,
        "cycle-exact",
        cores,
        report.stats.cycles,
        retired,
        exact_ns,
        m.snapshot().as_bytes().len() as u64,
    );

    // Functional, start to the exit boundary.
    let (mut fast, image) = w.fast_engine();
    let start = Instant::now();
    let summary = fast
        .run(FastStop::Exit, w.max_cycles.saturating_mul(4))
        .unwrap_or_else(|e| panic!("{}: functional: {e}", w.name));
    let fast_ns = start.elapsed().as_nanos() as u64;
    let fast_row = row(
        w,
        "functional",
        cores,
        fast.virtual_cycle(),
        summary.retired,
        fast_ns,
        0,
    );
    // Fidelity: materializing at the exit boundary and retiring the
    // final p_ret must land on the reference state.
    let mut tail = fast
        .materialize(&image)
        .unwrap_or_else(|e| panic!("{}: materialize at exit: {e}", w.name));
    let tail_report = tail
        .run(w.max_cycles)
        .unwrap_or_else(|e| panic!("{}: exit tail: {e}", w.name));
    let mut bit_identical = tail_report.exited && tail.arch_hash() == pure_hash;

    // Hybrid: warm ~90% of retirement functionally, finish cycle-exact.
    let warm = retired * 9 / 10;
    let (mut fast, image) = w.fast_engine();
    let start = Instant::now();
    let warm_summary = fast
        .run(FastStop::Retired(warm), w.max_cycles.saturating_mul(4))
        .unwrap_or_else(|e| panic!("{}: warm phase: {e}", w.name));
    let mut hm = fast
        .materialize(&image)
        .unwrap_or_else(|e| panic!("{}: materialize: {e}", w.name));
    let hybrid_report = hm
        .run(w.max_cycles)
        .unwrap_or_else(|e| panic!("{}: hybrid tail: {e}", w.name));
    let hybrid_ns = start.elapsed().as_nanos() as u64;
    assert!(hybrid_report.exited, "{}: hybrid did not exit", w.name);
    bit_identical &= hm.arch_hash() == pure_hash;
    let hybrid_row = row(
        w,
        "hybrid90",
        cores,
        hybrid_report.stats.cycles,
        hybrid_report.stats.retired(),
        hybrid_ns,
        hm.snapshot().as_bytes().len() as u64,
    );

    FfMeasure {
        rows: vec![exact_row, fast_row, hybrid_row],
        summary: FfSummary {
            name: w.name.clone(),
            functional_speedup: exact_ns as f64 / fast_ns.max(1) as f64,
            hybrid_speedup: exact_ns as f64 / hybrid_ns.max(1) as f64,
            warm_fraction: warm_summary.retired as f64 / retired.max(1) as f64,
            bit_identical,
        },
    }
}

/// Assembles the committed `lbp-prof-v1` bench-suite record: every
/// per-mode row plus the `fastforward` summary array.
pub fn suite_json(bench_id: &str, rows: &[BenchRow], summaries: &[FfSummary]) -> Json {
    Json::obj([
        ("schema", Json::Str(lbp_prof::PROF_SCHEMA.to_owned())),
        ("kind", Json::Str("bench-suite".to_owned())),
        ("bench_id", Json::Str(bench_id.to_owned())),
        (
            "invocation",
            Json::Str(
                "cargo run -p lbp-bench --release --bin fastforward -- --out BENCH_009.json"
                    .to_owned(),
            ),
        ),
        (
            "rows",
            Json::Arr(rows.iter().map(BenchRow::to_json).collect()),
        ),
        (
            "fastforward",
            Json::Arr(summaries.iter().map(FfSummary::to_json).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_workload_is_bit_identical_across_engines() {
        let w = Workload::corpus(true)
            .into_iter()
            .find(|w| w.name.starts_with("spin_alu"))
            .expect("corpus has a spin workload");
        let m = measure(&w);
        assert!(m.summary.bit_identical, "engines diverged on {}", w.name);
        assert_eq!(m.rows.len(), 3);
        // The hybrid run retires the same instruction stream as the
        // cycle-exact one (warm counts fold into the materialized stats).
        assert_eq!(m.rows[2].retired, m.rows[0].retired);
        for r in &m.rows {
            assert_eq!(lbp_prof::validate(&r.to_json()).unwrap(), "bench");
        }
    }

    #[test]
    fn suite_record_validates_with_summaries() {
        let w = Workload::corpus(true)
            .into_iter()
            .find(|w| w.name.starts_with("fork_join"))
            .expect("corpus has a fork-join workload");
        let m = measure(&w);
        let suite = suite_json("BENCH_TEST", &m.rows, &[m.summary]);
        assert_eq!(lbp_prof::validate(&suite).unwrap(), "bench-suite");
    }
}
