//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! - **link latency**: the hierarchical bus keeps remote latency low
//!   (2-6 hops); inflating the per-hop cost shows how much of LBP's
//!   throughput rides on the interconnect design;
//! - **multiplier latency**: the cacheless design hides functional-unit
//!   latency with multithreading — the matmul cycle count should degrade
//!   far less than linearly in the multiplier latency.
//!
//! Output: one `lbp-prof-v1` record of kind `"bench"` per line (the
//! best-of-N sample).

use lbp_kernels::matmul::{Matmul, Version};
use lbp_prof::BenchRow;
use lbp_sim::Machine;
use std::time::Instant;

fn run_with(mm: &Matmul, patch: impl Fn(&mut lbp_sim::LbpConfig)) -> (lbp_sim::RunReport, u64) {
    let image = mm.build();
    let mut cfg = mm.config();
    patch(&mut cfg);
    let mut m = Machine::new(cfg, &image).expect("machine");
    let l = mm.layout();
    for i in 0..l.n {
        for k in 0..l.m {
            m.poke_shared(l.x(i, k), 1).expect("poke");
        }
    }
    for k in 0..l.m {
        for j in 0..l.n {
            m.poke_shared(l.y(k, j), 1).expect("poke");
        }
    }
    let report = m.run(1_000_000_000).expect("run");
    let state_bytes = m.snapshot().as_bytes().len() as u64;
    (report, state_bytes)
}

fn bench(label: &str, mm: &Matmul, f: impl Fn() -> (lbp_sim::RunReport, u64)) {
    const SAMPLES: usize = 3;
    let mut best: Option<BenchRow> = None;
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        let (report, state_bytes) = f();
        let host_ns = t0.elapsed().as_nanos() as u64;
        let row = BenchRow {
            name: label.to_owned(),
            harts: 16,
            cores: mm.cores() as u32,
            sim_cycles: report.stats.cycles,
            retired: report.stats.retired(),
            events: BenchRow::events_of(&report.stats),
            host_ns,
            state_bytes,
            peak_rss_kb: lbp_prof::peak_rss_kb(),
        };
        if best.as_ref().is_none_or(|b| row.host_ns < b.host_ns) {
            best = Some(row);
        }
    }
    let mut line = String::new();
    best.expect("at least one sample")
        .to_json()
        .write(&mut line);
    println!("{line}");
}

fn main() {
    let mm = Matmul::new(16, Version::Base);
    // Simulated-cycle sensitivity to the inter-router hop cost.
    for hop in [1u32, 2, 4] {
        bench(&format!("ablation_link_hop/{hop}"), &mm, || {
            run_with(&mm, |cfg| cfg.latencies.link_hop = hop)
        });
    }
    // Simulated-cycle sensitivity to multiplier latency (latency hiding).
    for mul in [1u32, 3, 8] {
        bench(&format!("ablation_mul_latency/{mul}"), &mm, || {
            run_with(&mm, |cfg| cfg.latencies.mul = mul)
        });
    }
}
