//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! - **link latency**: the hierarchical bus keeps remote latency low
//!   (2-6 hops); inflating the per-hop cost shows how much of LBP's
//!   throughput rides on the interconnect design;
//! - **multiplier latency**: the cacheless design hides functional-unit
//!   latency with multithreading — the matmul cycle count should degrade
//!   far less than linearly in the multiplier latency;
//! - **multithreading**: a team of one member per core (no
//!   hart-level parallelism) against four members per core on the same
//!   core count isolates the latency-hiding contribution of the four
//!   harts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lbp_kernels::matmul::{Matmul, Version};
use lbp_sim::Machine;

fn run_with(mm: &Matmul, patch: impl Fn(&mut lbp_sim::LbpConfig)) -> u64 {
    let image = mm.build();
    let mut cfg = mm.config();
    patch(&mut cfg);
    let mut m = Machine::new(cfg, &image).expect("machine");
    let l = mm.layout();
    for i in 0..l.n {
        for k in 0..l.m {
            m.poke_shared(l.x(i, k), 1).expect("poke");
        }
    }
    for k in 0..l.m {
        for j in 0..l.n {
            m.poke_shared(l.y(k, j), 1).expect("poke");
        }
    }
    m.run(1_000_000_000).expect("run").stats.cycles
}

/// Simulated-cycle sensitivity to the inter-router hop cost.
fn link_latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_link_hop");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    g.sample_size(10);
    let mm = Matmul::new(16, Version::Base);
    for hop in [1u32, 2, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(hop), &hop, |b, &hop| {
            b.iter(|| run_with(&mm, |cfg| cfg.latencies.link_hop = hop));
        });
    }
    g.finish();
}

/// Simulated-cycle sensitivity to multiplier latency (latency hiding).
fn mul_latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_mul_latency");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    g.sample_size(10);
    let mm = Matmul::new(16, Version::Base);
    for mul in [1u32, 3, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(mul), &mul, |b, &mul| {
            b.iter(|| run_with(&mm, |cfg| cfg.latencies.mul = mul));
        });
    }
    g.finish();
}

criterion_group!(benches, link_latency, mul_latency);
criterion_main!(benches);
