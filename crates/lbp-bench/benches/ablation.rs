//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! - **link latency**: the hierarchical bus keeps remote latency low
//!   (2-6 hops); inflating the per-hop cost shows how much of LBP's
//!   throughput rides on the interconnect design;
//! - **multiplier latency**: the cacheless design hides functional-unit
//!   latency with multithreading — the matmul cycle count should degrade
//!   far less than linearly in the multiplier latency.

use lbp_kernels::matmul::{Matmul, Version};
use lbp_sim::Machine;
use std::time::Instant;

fn run_with(mm: &Matmul, patch: impl Fn(&mut lbp_sim::LbpConfig)) -> u64 {
    let image = mm.build();
    let mut cfg = mm.config();
    patch(&mut cfg);
    let mut m = Machine::new(cfg, &image).expect("machine");
    let l = mm.layout();
    for i in 0..l.n {
        for k in 0..l.m {
            m.poke_shared(l.x(i, k), 1).expect("poke");
        }
    }
    for k in 0..l.m {
        for j in 0..l.n {
            m.poke_shared(l.y(k, j), 1).expect("poke");
        }
    }
    m.run(1_000_000_000).expect("run").stats.cycles
}

fn bench(label: &str, f: impl Fn() -> u64) {
    const SAMPLES: usize = 3;
    let mut best = f64::INFINITY;
    let mut cycles = 0;
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        cycles = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    println!(
        "{label}: best {:.1} ms/run ({cycles} sim cycles)",
        best * 1e3
    );
}

fn main() {
    let mm = Matmul::new(16, Version::Base);
    // Simulated-cycle sensitivity to the inter-router hop cost.
    for hop in [1u32, 2, 4] {
        bench(&format!("ablation_link_hop/{hop}"), || {
            run_with(&mm, |cfg| cfg.latencies.link_hop = hop)
        });
    }
    // Simulated-cycle sensitivity to multiplier latency (latency hiding).
    for mul in [1u32, 3, 8] {
        bench(&format!("ablation_mul_latency/{mul}"), || {
            run_with(&mm, |cfg| cfg.latencies.mul = mul)
        });
    }
}
