//! Criterion benches over the paper's matmul versions.
//!
//! The *simulated* cycle counts are deterministic and come from the
//! `figures` binary; what Criterion measures here is the host-side cost
//! of simulating each version — useful for tracking simulator
//! performance regressions — while asserting result correctness on every
//! sample. One bench per reproduced figure (19 and 20 at full size; the
//! 64-core Fig. 21 point is benched at reduced sample count).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lbp_kernels::matmul::{Matmul, Version};

fn bench_size(c: &mut Criterion, group_name: &str, harts: usize, samples: usize) {
    let mut g = c.benchmark_group(group_name);
    g.sample_size(samples.max(10));
    // A simulated run is deterministic; long measurement windows only
    // re-measure host noise. Keep the wall-clock budget modest.
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    for version in Version::ALL {
        let mm = Matmul::new(harts, version);
        g.bench_with_input(BenchmarkId::from_parameter(version.name()), &mm, |b, mm| {
            b.iter(|| {
                let mut m = mm.machine().expect("machine");
                let report = m.run(1_000_000_000).expect("run");
                assert!(mm.verify(&mut m).expect("peek"));
                report.stats.cycles
            });
        });
    }
    g.finish();
}

/// Fig. 19: 4-core LBP, 16 harts.
fn matmul_4core(c: &mut Criterion) {
    bench_size(c, "matmul_4core", 16, 20);
}

/// Fig. 20: 16-core LBP, 64 harts.
fn matmul_16core(c: &mut Criterion) {
    bench_size(c, "matmul_16core", 64, 10);
}

criterion_group!(benches, matmul_4core, matmul_16core);
criterion_main!(benches);
