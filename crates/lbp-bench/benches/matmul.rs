//! Host-side benches over the paper's matmul versions.
//!
//! The *simulated* cycle counts are deterministic and come from the
//! `figures` binary; what this harness measures is the host-side cost of
//! simulating each version — useful for tracking simulator performance
//! regressions — while asserting result correctness on every sample.
//! One bench per reproduced figure (19 and 20 at full size).
//!
//! Output: one `lbp-prof-v1` record of kind `"bench"` per line (the
//! best-of-N sample), machine-readable by the same tooling that checks
//! the committed `BENCH_*.json` trajectory.

use lbp_kernels::matmul::{Matmul, Version};
use lbp_prof::BenchRow;
use std::time::Instant;

fn bench_size(group_name: &str, harts: usize, samples: usize) {
    for version in Version::ALL {
        let mm = Matmul::new(harts, version);
        let mut best: Option<BenchRow> = None;
        for _ in 0..samples {
            let t0 = Instant::now();
            let mut m = mm.machine().expect("machine");
            let report = m.run(1_000_000_000).expect("run");
            let host_ns = t0.elapsed().as_nanos() as u64;
            assert!(mm.verify(&mut m).expect("peek"));
            let row = BenchRow {
                name: format!("{group_name}/{}", version.name()),
                harts: harts as u32,
                cores: mm.cores() as u32,
                sim_cycles: report.stats.cycles,
                retired: report.stats.retired(),
                events: BenchRow::events_of(&report.stats),
                host_ns,
                state_bytes: m.snapshot().as_bytes().len() as u64,
                peak_rss_kb: lbp_prof::peak_rss_kb(),
            };
            if best.as_ref().is_none_or(|b| row.host_ns < b.host_ns) {
                best = Some(row);
            }
        }
        let mut line = String::new();
        best.expect("at least one sample")
            .to_json()
            .write(&mut line);
        println!("{line}");
    }
}

fn main() {
    // Fig. 19: 4-core LBP, 16 harts.  Fig. 20: 16-core LBP, 64 harts.
    bench_size("matmul_4core", 16, 5);
    bench_size("matmul_16core", 64, 3);
}
