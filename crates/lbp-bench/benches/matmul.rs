//! Host-side benches over the paper's matmul versions.
//!
//! The *simulated* cycle counts are deterministic and come from the
//! `figures` binary; what this harness measures is the host-side cost of
//! simulating each version — useful for tracking simulator performance
//! regressions — while asserting result correctness on every sample.
//! One bench per reproduced figure (19 and 20 at full size).

use lbp_kernels::matmul::{Matmul, Version};
use std::time::Instant;

fn bench_size(group_name: &str, harts: usize, samples: usize) {
    for version in Version::ALL {
        let mm = Matmul::new(harts, version);
        let mut best = f64::INFINITY;
        let mut cycles = 0;
        for _ in 0..samples {
            let t0 = Instant::now();
            let mut m = mm.machine().expect("machine");
            let report = m.run(1_000_000_000).expect("run");
            assert!(mm.verify(&mut m).expect("peek"));
            best = best.min(t0.elapsed().as_secs_f64());
            cycles = report.stats.cycles;
        }
        println!(
            "{group_name}/{}: best {:.1} ms/run over {samples} samples ({cycles} sim cycles)",
            version.name(),
            best * 1e3,
        );
    }
}

fn main() {
    // Fig. 19: 4-core LBP, 16 harts.  Fig. 20: 16-core LBP, 64 harts.
    bench_size("matmul_4core", 16, 5);
    bench_size("matmul_16core", 64, 3);
}
