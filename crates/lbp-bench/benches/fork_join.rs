//! Claim C2 bench: team spawn/join overhead across team sizes, and the
//! cost of consecutive barrier-separated regions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lbp_omp::DetOmp;
use lbp_sim::{LbpConfig, Machine};

fn team_program(threads: usize, regions: usize) -> (DetOmp, usize) {
    let mut p = DetOmp::new(threads).function("empty", "p_ret");
    for _ in 0..regions {
        p = p.parallel_for("empty");
    }
    (p, threads.div_ceil(4))
}

/// Spawning and joining an empty team of n members.
fn fork_join(c: &mut Criterion) {
    let mut g = c.benchmark_group("fork_join_overhead");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    g.sample_size(10);
    for threads in [4usize, 16, 64] {
        let (p, cores) = team_program(threads, 1);
        let image = p.build().expect("assembles");
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| {
                let mut m = Machine::new(LbpConfig::cores(cores), &image).expect("machine");
                m.run(10_000_000).expect("run").stats.cycles
            });
        });
    }
    g.finish();
}

/// The hardware barrier between consecutive regions (re-spawn cost).
fn barriers(c: &mut Criterion) {
    let mut g = c.benchmark_group("consecutive_regions");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    g.sample_size(10);
    for regions in [1usize, 4, 16] {
        let (p, cores) = team_program(16, regions);
        let image = p.build().expect("assembles");
        g.bench_with_input(BenchmarkId::from_parameter(regions), &regions, |b, _| {
            b.iter(|| {
                let mut m = Machine::new(LbpConfig::cores(cores), &image).expect("machine");
                m.run(10_000_000).expect("run").stats.cycles
            });
        });
    }
    g.finish();
}

criterion_group!(benches, fork_join, barriers);
criterion_main!(benches);
