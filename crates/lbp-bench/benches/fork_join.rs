//! Claim C2 bench: team spawn/join overhead across team sizes, and the
//! cost of consecutive barrier-separated regions (host-side timing; the
//! simulated cycle numbers are deterministic and printed alongside).

use lbp_omp::DetOmp;
use lbp_sim::{LbpConfig, Machine};
use std::time::Instant;

fn team_program(threads: usize, regions: usize) -> (DetOmp, usize) {
    let mut p = DetOmp::new(threads).function("empty", "p_ret");
    for _ in 0..regions {
        p = p.parallel_for("empty");
    }
    (p, threads.div_ceil(4))
}

fn bench(label: &str, image: &lbp_asm::Image, cores: usize) {
    const SAMPLES: usize = 5;
    let mut best = f64::INFINITY;
    let mut cycles = 0;
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        let mut m = Machine::new(LbpConfig::cores(cores), image).expect("machine");
        cycles = m.run(10_000_000).expect("run").stats.cycles;
        best = best.min(t0.elapsed().as_secs_f64());
    }
    println!(
        "{label}: best {:.2} ms/run ({cycles} sim cycles)",
        best * 1e3
    );
}

fn main() {
    // Spawning and joining an empty team of n members.
    for threads in [4usize, 16, 64] {
        let (p, cores) = team_program(threads, 1);
        let image = p.build().expect("assembles");
        bench(&format!("fork_join_overhead/{threads}"), &image, cores);
    }
    // The hardware barrier between consecutive regions (re-spawn cost).
    for regions in [1usize, 4, 16] {
        let (p, cores) = team_program(16, regions);
        let image = p.build().expect("assembles");
        bench(&format!("consecutive_regions/{regions}"), &image, cores);
    }
}
