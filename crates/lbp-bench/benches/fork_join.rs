//! Claim C2 bench: team spawn/join overhead across team sizes, and the
//! cost of consecutive barrier-separated regions (host-side timing; the
//! simulated cycle numbers are deterministic and carried in the rows).
//!
//! Output: one `lbp-prof-v1` record of kind `"bench"` per line (the
//! best-of-N sample).

use lbp_omp::DetOmp;
use lbp_prof::BenchRow;
use lbp_sim::{LbpConfig, Machine};
use std::time::Instant;

fn team_program(threads: usize, regions: usize) -> (DetOmp, usize) {
    let mut p = DetOmp::new(threads).function("empty", "p_ret");
    for _ in 0..regions {
        p = p.parallel_for("empty");
    }
    (p, threads.div_ceil(4))
}

fn bench(label: &str, harts: usize, image: &lbp_asm::Image, cores: usize) {
    const SAMPLES: usize = 5;
    let mut best: Option<BenchRow> = None;
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        let mut m = Machine::new(LbpConfig::cores(cores), image).expect("machine");
        let report = m.run(10_000_000).expect("run");
        let host_ns = t0.elapsed().as_nanos() as u64;
        let row = BenchRow {
            name: label.to_owned(),
            harts: harts as u32,
            cores: cores as u32,
            sim_cycles: report.stats.cycles,
            retired: report.stats.retired(),
            events: BenchRow::events_of(&report.stats),
            host_ns,
            state_bytes: m.snapshot().as_bytes().len() as u64,
            peak_rss_kb: lbp_prof::peak_rss_kb(),
        };
        if best.as_ref().is_none_or(|b| row.host_ns < b.host_ns) {
            best = Some(row);
        }
    }
    let mut line = String::new();
    best.expect("at least one sample")
        .to_json()
        .write(&mut line);
    println!("{line}");
}

fn main() {
    // Spawning and joining an empty team of n members.
    for threads in [4usize, 16, 64] {
        let (p, cores) = team_program(threads, 1);
        let image = p.build().expect("assembles");
        bench(
            &format!("fork_join_overhead/{threads}"),
            threads,
            &image,
            cores,
        );
    }
    // The hardware barrier between consecutive regions (re-spawn cost).
    for regions in [1usize, 4, 16] {
        let (p, cores) = team_program(16, regions);
        let image = p.build().expect("assembles");
        bench(&format!("consecutive_regions/{regions}"), 16, &image, cores);
    }
}
