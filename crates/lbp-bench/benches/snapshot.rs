//! Checkpoint bench: snapshot serialize / container encode / restore
//! throughput on a mid-run machine, across machine sizes. Checkpointing
//! is only useful if it is much cheaper than re-simulating, so the
//! numbers here are the cost side of the `--checkpoint-every` trade-off.

use lbp_omp::DetOmp;
use lbp_sim::{LbpConfig, Machine};
use std::time::Instant;

/// A machine that is genuinely mid-flight: a live team, queued network
/// traffic, partially-filled reorder buffers.
fn mid_run_machine(cores: usize) -> Machine {
    let image = DetOmp::new(cores * 4)
        .function(
            "spin",
            "li a4, 0\nli a5, 200\nloop:\nmul a6, a5, a5\nadd a4, a4, a6\naddi a5, a5, -1\nbnez a5, loop\np_ret",
        )
        .parallel_for("spin")
        .build()
        .expect("assembles");
    let mut m = Machine::new(LbpConfig::cores(cores), &image).expect("machine");
    let exited = m.run_to(400).expect("runs");
    assert!(!exited, "the team must still be live at the snapshot point");
    m
}

fn throughput(label: &str, bytes: usize, secs: f64) {
    println!(
        "{label}: {:.2} us/op, {:.1} MiB/s ({bytes} bytes)",
        secs * 1e6,
        bytes as f64 / secs / (1024.0 * 1024.0)
    );
}

fn bench(cores: usize) {
    const SAMPLES: usize = 20;
    let machine = mid_run_machine(cores);

    let mut best = f64::INFINITY;
    let mut state = machine.snapshot();
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        state = machine.snapshot();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    let payload = state.as_bytes().len();
    throughput(&format!("snapshot_serialize/{cores}c"), payload, best);

    let mut best = f64::INFINITY;
    let mut container = Vec::new();
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        container = lbp_snap::encode(&state);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    throughput(&format!("container_encode/{cores}c"), container.len(), best);

    let mut best = f64::INFINITY;
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        let restored = Machine::restore(&state).expect("restores");
        best = best.min(t0.elapsed().as_secs_f64());
        assert_eq!(restored.stats().cycles, 400);
    }
    throughput(&format!("restore/{cores}c"), payload, best);
}

fn main() {
    for cores in [1usize, 4, 16, 64] {
        bench(cores);
    }
}
