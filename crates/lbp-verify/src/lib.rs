//! # lbp-verify — static determinism & fork-protocol verification
//!
//! The paper's central claim is that LBP programs are deterministic *by
//! construction*. The rest of this workspace checks that claim
//! dynamically — `lbp-sim`'s deadlock detector and lockstep checker fire
//! after the fact, one input at a time. This crate closes the gap with
//! static analyses that run before a single cycle is simulated:
//!
//! - [`verify_image`] — binary-level PISC protocol verification: an
//!   abstract interpretation over an assembled [`lbp_asm::Image`] that
//!   proves fork/join well-formedness (`p_fc`/`p_fn` → `p_swcv` →
//!   `p_merge` → `p_syncm` → `p_jalr` per the paper's Fig. 8) and
//!   result-line slot liveness (`p_lwre` receives must have `p_swre`
//!   senders), flagging statically the hangs the simulator can only
//!   report at runtime. A third pass — the shared-memory determinism
//!   analysis (`LBP-M001`..`M006`) — runs an address-lattice abstract
//!   interpretation (constant / affine-in-member-index / interval /
//!   unknown) over every load and store of each discovered parallel
//!   epoch and proves cross-member write-write and write-read
//!   disjointness, the binary-level counterpart of the source `S` codes.
//! - The source-level race analysis lives in `lbp-cc` (`lbp_cc::lint`)
//!   and reports through this crate's [`Diag`] type, so both layers
//!   speak one diagnostic format: `lbp-diag-v1` (see [`report_json`]).
//!
//! The verdict discipline: an [`Severity::Error`] is a *definite*
//! violation on some path (with a witness or wait-reason), a
//! [`Severity::Warning`] marks what the analysis cannot prove. Only
//! errors reject — see [`accepted`] — so every green program in the
//! repository verifies clean while `examples/asm/hung.s` is rejected
//! with the precise reason its hart would block.
//!
//! # Examples
//!
//! A receive with no sender is rejected before simulation:
//!
//! ```
//! let image = lbp_asm::assemble(
//!     "main:\n    p_lwre a0, 3\n    li t0, -1\n    li ra, 0\n    p_ret\n",
//! )?;
//! let diags = lbp_verify::verify_image(&image);
//! assert!(!lbp_verify::accepted(&diags));
//! assert_eq!(diags[0].code.as_str(), "LBP-B001");
//! assert!(diags[0].wait_reason.as_deref().unwrap().contains("slot 3"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binary;
mod diag;
mod mpass;

pub use binary::verify_image;
pub use diag::{accepted, report_json, Diag, DiagCode, Severity};
