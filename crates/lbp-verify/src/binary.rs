//! Binary-level verification of the PISC fork/join protocol.
//!
//! Two cooperating passes over an assembled [`Image`]:
//!
//! 1. **Slot liveness** (flow-insensitive): every `p_lwre` receive slot
//!    must have a `p_swre` sender somewhere in the image, and every
//!    `p_lwcv` continuation-value slot a `p_swcv` writer. A receive with
//!    no possible sender blocks its hart forever on real hardware; the
//!    dynamic detector of `lbp-sim` can only report it after simulating
//!    one input — this pass rejects it before any cycle is spent.
//!
//! 2. **Fork-protocol abstract interpretation** (flow-sensitive): a
//!    worklist fixpoint over per-instruction abstract states tracking,
//!    for each register, whether it definitely holds a fork result
//!    (`p_fc`/`p_fn`), a stamped or merged identity word (`p_set` /
//!    `p_merge`), or a known constant — plus which continuation-value
//!    slots have been transmitted since the last fork and whether a
//!    `p_syncm` has drained them. The pass flags transmissions to
//!    registers that cannot name an allocated hart, parallel starts
//!    without a merged identity or without an intervening `p_syncm`,
//!    continuations that read untransmitted cv slots, malformed `p_ret`
//!    identity words, and control flow that runs off the text section.
//!
//! The interpretation is *witness-directed*: a diagnostic is emitted
//! only when the abstract state proves the violation on some path
//! (`Unknown` operands always pass), so every hand-written or generated
//! program in the repository verifies clean while each seeded protocol
//! mistake is rejected with a precise wait-reason. See DESIGN.md for the
//! lattice and the soundness/completeness trade-off.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use lbp_asm::Image;
use lbp_isa::{Instr, Reg, CODE_BASE};

use crate::diag::{Diag, DiagCode, Severity};

/// Safety bound on fixpoint steps (the lattice guarantees termination;
/// this guards against a bug turning verification into a hang).
const MAX_STEPS: usize = 4_000_000;

/// Verifies an assembled image against the PISC fork/join protocol.
///
/// Returns all findings; the program is acceptable iff
/// [`crate::accepted`] holds on the result.
pub fn verify_image(image: &Image) -> Vec<Diag> {
    let mut diags = slot_liveness(image);
    diags.extend(Interp::new(image).run());
    diags.extend(crate::mpass::analyze(image));
    diags.sort_by_key(|d| (d.line, d.code.as_str()));
    diags
}

/// The source line of a text address, for diagnostics (0 = generated).
fn line_of(image: &Image, pc: u32) -> usize {
    image.line_of(pc).unwrap_or(0)
}

/// Pass 1: flow-insensitive result-buffer and cv-frame slot liveness.
fn slot_liveness(image: &Image) -> Vec<Diag> {
    // slot -> first pc that reads it
    let mut lwre: BTreeMap<i32, u32> = BTreeMap::new();
    let mut lwcv: BTreeMap<i32, u32> = BTreeMap::new();
    let mut swre: BTreeSet<i32> = BTreeSet::new();
    let mut swcv: BTreeSet<i32> = BTreeSet::new();
    for (i, &word) in image.text.iter().enumerate() {
        let pc = CODE_BASE + 4 * i as u32;
        match Instr::decode(word) {
            Ok(Instr::PLwre { offset, .. }) => {
                lwre.entry(offset).or_insert(pc);
            }
            Ok(Instr::PSwre { offset, .. }) => {
                swre.insert(offset);
            }
            Ok(Instr::PLwcv { offset, .. }) => {
                lwcv.entry(offset).or_insert(pc);
            }
            Ok(Instr::PSwcv { offset, .. }) => {
                swcv.insert(offset);
            }
            _ => {}
        }
    }
    let mut diags = Vec::new();
    for (&slot, &pc) in &lwre {
        if !swre.contains(&slot) {
            diags.push(
                Diag::new(
                    DiagCode::BRecvNoSender,
                    Severity::Error,
                    line_of(image, pc),
                    format!(
                        "p_lwre at {pc:#x} receives from result-buffer slot {slot}, \
                         but no p_swre in the image ever sends to slot {slot}: \
                         the hart blocks forever"
                    ),
                )
                .with_pc(pc)
                .with_wait_reason(format!("a p_swre result in slot {slot} that is never sent"))
                .with_hint(format!(
                    "add a matching `p_swre <value>, <join-hart>, {slot}` on the \
                     producing hart, or drop the receive"
                )),
            );
        }
    }
    for (&slot, &pc) in &lwcv {
        if !swcv.contains(&slot) {
            diags.push(
                Diag::new(
                    DiagCode::BCvNeverSent,
                    Severity::Error,
                    line_of(image, pc),
                    format!(
                        "p_lwcv at {pc:#x} loads continuation-value slot {slot}, \
                         but no p_swcv in the image ever writes slot {slot}"
                    ),
                )
                .with_pc(pc)
                .with_wait_reason(format!(
                    "a continuation value in cv slot {slot} that is never transmitted"
                ))
                .with_hint(format!(
                    "transmit the slot with `p_swcv <value>, <allocated-hart>, {slot}` \
                     before starting the hart"
                )),
            );
        }
    }
    diags
}

/// What a register definitely holds on the abstract path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbsVal {
    /// Anything: always passes every check.
    Unknown,
    /// A known 32-bit constant (from `li`/`lui`/ALU chains).
    Const(i32),
    /// The result of `p_fc`/`p_fn`: an allocated hart id.
    Fork,
    /// The result of `p_set`: identity word, valid flag set, stale low half.
    Stamped,
    /// The result of `p_merge`: join + allocated identity word.
    Merged,
}

impl AbsVal {
    fn meet(self, other: AbsVal) -> AbsVal {
        if self == other {
            self
        } else {
            AbsVal::Unknown
        }
    }
}

/// Which cv-frame slots this hart's forker definitely transmitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CvAvail {
    /// Not known to be a fork continuation: `p_lwcv` always passes.
    Any,
    /// Fork continuation with exactly this transmitted-slot bitmask.
    Known(u32),
}

impl CvAvail {
    fn meet(self, other: CvAvail) -> CvAvail {
        match (self, other) {
            // The permissive union: a slot is "available" if any path
            // transmitted it, so a miss is definite on every path.
            (CvAvail::Known(a), CvAvail::Known(b)) => CvAvail::Known(a | b),
            _ => CvAvail::Any,
        }
    }
}

/// Whether transmitted continuation values have drained (`p_syncm`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sync {
    /// No un-drained `p_swcv` outstanding.
    Clean,
    /// A `p_swcv` happened since the last `p_syncm`.
    Dirty,
    /// Differs between paths.
    Maybe,
}

impl Sync {
    fn meet(self, other: Sync) -> Sync {
        if self == other {
            self
        } else {
            Sync::Maybe
        }
    }
}

/// The per-program-point abstract state.
#[derive(Debug, Clone, PartialEq, Eq)]
struct AbsState {
    regs: [AbsVal; 32],
    /// Bitmask of cv slots written since the last fork (to its target).
    cv_sent: u32,
    cv_avail: CvAvail,
    sync: Sync,
}

impl AbsState {
    /// The state a root (entry point or label) starts in: no assumptions.
    fn root() -> AbsState {
        AbsState {
            regs: [AbsVal::Unknown; 32],
            cv_sent: 0,
            cv_avail: CvAvail::Any,
            sync: Sync::Maybe,
        }
    }

    fn get(&self, r: Reg) -> AbsVal {
        if r.is_zero() {
            AbsVal::Const(0)
        } else {
            self.regs[r.index()]
        }
    }

    fn set(&mut self, r: Reg, v: AbsVal) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// Meets `other` into `self`; true if `self` changed.
    fn meet(&mut self, other: &AbsState) -> bool {
        let mut changed = false;
        for i in 0..32 {
            let m = self.regs[i].meet(other.regs[i]);
            changed |= m != self.regs[i];
            self.regs[i] = m;
        }
        let cv = self.cv_avail.meet(other.cv_avail);
        changed |= cv != self.cv_avail;
        self.cv_avail = cv;
        let sent = self.cv_sent | other.cv_sent;
        changed |= sent != self.cv_sent;
        self.cv_sent = sent;
        let s = self.sync.meet(other.sync);
        changed |= s != self.sync;
        self.sync = s;
        changed
    }

    /// Call effects: caller-saved registers are clobbered. `t0`/`t1` are
    /// preserved — by convention they carry the X_PAR identity words and
    /// no generated or protocol-following function touches them.
    fn havoc_call(&mut self) {
        for r in [
            Reg::RA,
            Reg::T2,
            Reg::T3,
            Reg::T4,
            Reg::T5,
            Reg::T6,
            Reg::A0,
            Reg::A1,
            Reg::A2,
            Reg::A3,
            Reg::A4,
            Reg::A5,
            Reg::A6,
            Reg::A7,
        ] {
            self.set(r, AbsVal::Unknown);
        }
        self.sync = Sync::Maybe;
    }

    /// The state a fork continuation starts in at `pc + 4`: a fresh hart
    /// whose only guaranteed context is the transmitted cv frame.
    fn continuation(&self) -> AbsState {
        AbsState {
            regs: [AbsVal::Unknown; 32],
            cv_sent: 0,
            cv_avail: CvAvail::Known(self.cv_sent),
            sync: Sync::Clean,
        }
    }
}

/// The fixpoint engine for pass 2.
struct Interp<'a> {
    image: &'a Image,
    states: HashMap<u32, AbsState>,
    worklist: VecDeque<u32>,
    diags: Vec<Diag>,
    /// Dedup: (code, pc) pairs already reported.
    seen: BTreeSet<(&'static str, u32)>,
}

impl<'a> Interp<'a> {
    fn new(image: &'a Image) -> Interp<'a> {
        Interp {
            image,
            states: HashMap::new(),
            worklist: VecDeque::new(),
            diags: Vec::new(),
            seen: BTreeSet::new(),
        }
    }

    fn run(mut self) -> Vec<Diag> {
        // Roots: the entry point and every text symbol that decodes as an
        // instruction (function labels, branch targets; `.word` tables
        // embedded in text are skipped). All start with no assumptions,
        // so extra roots can only mask findings, never invent them.
        let mut roots: Vec<u32> = vec![self.image.entry];
        let mut symbols: Vec<u32> = self.image.symbols.values().copied().collect();
        symbols.sort_unstable();
        roots.extend(symbols);
        for pc in roots {
            if self.decodable(pc) {
                self.push(pc, AbsState::root(), None);
            }
        }
        let mut steps = 0usize;
        while let Some(pc) = self.worklist.pop_front() {
            steps += 1;
            if steps > MAX_STEPS {
                break;
            }
            let state = self.states[&pc].clone();
            self.step(pc, state);
        }
        self.diags
    }

    fn decodable(&self, pc: u32) -> bool {
        self.image
            .text_word(pc)
            .is_some_and(|w| Instr::decode(w).is_ok())
    }

    /// Meets `state` into the stored state at `pc`, queueing on change.
    /// `from` is the predecessor, used to attribute out-of-text targets.
    fn push(&mut self, pc: u32, state: AbsState, from: Option<u32>) {
        if self.image.text_word(pc).is_none() {
            if let Some(src) = from {
                self.report(
                    Diag::new(
                        DiagCode::BFallsOffText,
                        Severity::Error,
                        line_of(self.image, src),
                        format!(
                            "control flow at {src:#x} continues to {pc:#x}, \
                             outside the text section"
                        ),
                    )
                    .with_pc(src)
                    .with_hint("end the path with p_ret (t0 = -1 and ra = 0 exit the program)"),
                    src,
                );
            }
            return;
        }
        match self.states.get_mut(&pc) {
            None => {
                self.states.insert(pc, state);
                self.worklist.push_back(pc);
            }
            Some(existing) => {
                if existing.meet(&state) {
                    self.worklist.push_back(pc);
                }
            }
        }
    }

    fn report(&mut self, diag: Diag, pc: u32) {
        if self.seen.insert((diag.code.as_str(), pc)) {
            self.diags.push(diag);
        }
    }

    /// Interprets the instruction at `pc` and pushes successor states.
    fn step(&mut self, pc: u32, mut st: AbsState) {
        let word = self.image.text_word(pc).expect("pushed pcs are in text");
        let instr = match Instr::decode(word) {
            Ok(i) => i,
            Err(_) => {
                self.report(
                    Diag::new(
                        DiagCode::BFallsOffText,
                        Severity::Error,
                        line_of(self.image, pc),
                        format!(
                            "control flow reaches {pc:#x}, which holds the \
                             undecodable word {word:#010x}"
                        ),
                    )
                    .with_pc(pc)
                    .with_hint("keep data out of executed paths; end code with p_ret"),
                    pc,
                );
                return;
            }
        };
        let next = pc.wrapping_add(4);
        match instr {
            Instr::Lui { rd, imm } => {
                st.set(rd, AbsVal::Const(imm as i32));
                self.push(next, st, Some(pc));
            }
            Instr::Auipc { rd, imm } => {
                st.set(rd, AbsVal::Const(pc.wrapping_add(imm) as i32));
                self.push(next, st, Some(pc));
            }
            Instr::OpImm { kind, rd, rs1, imm } => {
                let v = match st.get(rs1) {
                    AbsVal::Const(a) => AbsVal::Const(kind.eval(a as u32, imm) as i32),
                    _ => AbsVal::Unknown,
                };
                st.set(rd, v);
                self.push(next, st, Some(pc));
            }
            Instr::Op { kind, rd, rs1, rs2 } => {
                let v = match (st.get(rs1), st.get(rs2)) {
                    (AbsVal::Const(a), AbsVal::Const(b)) => {
                        AbsVal::Const(kind.eval(a as u32, b as u32) as i32)
                    }
                    _ => AbsVal::Unknown,
                };
                st.set(rd, v);
                self.push(next, st, Some(pc));
            }
            Instr::Load { rd, .. } => {
                st.set(rd, AbsVal::Unknown);
                self.push(next, st, Some(pc));
            }
            Instr::Store { .. } => {
                self.push(next, st, Some(pc));
            }
            Instr::Branch {
                kind,
                rs1,
                rs2,
                offset,
            } => {
                let target = pc.wrapping_add(offset as u32);
                match (st.get(rs1), st.get(rs2)) {
                    (AbsVal::Const(a), AbsVal::Const(b)) => {
                        // Decidable: explore only the real side.
                        if kind.taken(a as u32, b as u32) {
                            self.push(target, st, Some(pc));
                        } else {
                            self.push(next, st, Some(pc));
                        }
                    }
                    _ => {
                        self.push(target, st.clone(), Some(pc));
                        self.push(next, st, Some(pc));
                    }
                }
            }
            Instr::Jal { rd, offset } => {
                let target = pc.wrapping_add(offset as u32);
                if rd.is_zero() {
                    self.push(target, st, Some(pc));
                } else {
                    // A call: the callee is analyzed from its own root;
                    // model only its register effects here.
                    st.havoc_call();
                    self.push(next, st, Some(pc));
                }
            }
            Instr::Jalr { rd, rs1, offset } => {
                if rd.is_zero() {
                    // An indirect jump or return: follow it only when the
                    // target is known; otherwise the path ends here.
                    if let AbsVal::Const(base) = st.get(rs1) {
                        let target = (base as u32).wrapping_add(offset as u32) & !1;
                        self.push(target, st, Some(pc));
                    }
                } else {
                    st.havoc_call();
                    self.push(next, st, Some(pc));
                }
            }
            Instr::PFc { rd } | Instr::PFn { rd } => {
                st.set(rd, AbsVal::Fork);
                st.cv_sent = 0;
                self.push(next, st, Some(pc));
            }
            Instr::PSet { rd, .. } => {
                st.set(rd, AbsVal::Stamped);
                self.push(next, st, Some(pc));
            }
            Instr::PMerge { rd, .. } => {
                st.set(rd, AbsVal::Merged);
                self.push(next, st, Some(pc));
            }
            Instr::PSyncm => {
                st.sync = Sync::Clean;
                self.push(next, st, Some(pc));
            }
            Instr::PSwcv { rs1, offset, .. } => {
                // rs1 names the allocated hart whose cv frame is written.
                match st.get(rs1) {
                    AbsVal::Fork | AbsVal::Unknown => {}
                    held => {
                        self.report(
                            Diag::new(
                                DiagCode::BSwcvNoFork,
                                Severity::Error,
                                line_of(self.image, pc),
                                format!(
                                    "p_swcv at {pc:#x} transmits to the hart named by \
                                     `{rs1}`, which holds {} — not the result of a \
                                     p_fc/p_fn fork",
                                    describe(held)
                                ),
                            )
                            .with_pc(pc)
                            .with_wait_reason(
                                "a continuation value delivered to a hart that was \
                                 never allocated",
                            )
                            .with_hint("fork first (p_fc/p_fn) and pass its result register"),
                            pc,
                        );
                    }
                }
                if (0..128).contains(&offset) {
                    st.cv_sent |= 1 << (offset / 4);
                }
                st.sync = Sync::Dirty;
                self.push(next, st, Some(pc));
            }
            Instr::PLwcv { rd, offset } => {
                if let CvAvail::Known(mask) = st.cv_avail {
                    let bit = if (0..128).contains(&offset) {
                        1u32 << (offset / 4)
                    } else {
                        0
                    };
                    if mask & bit == 0 {
                        self.report(
                            Diag::new(
                                DiagCode::BContinuationSlot,
                                Severity::Error,
                                line_of(self.image, pc),
                                format!(
                                    "p_lwcv at {pc:#x} reads cv slot {offset}, but the \
                                     forking hart only transmitted slots {}",
                                    mask_slots(mask)
                                ),
                            )
                            .with_pc(pc)
                            .with_wait_reason(format!(
                                "a continuation value in cv slot {offset} that its \
                                 forker never transmitted"
                            ))
                            .with_hint(format!(
                                "add `p_swcv <value>, <allocated-hart>, {offset}` \
                                 before the p_jalr/p_jal start"
                            )),
                            pc,
                        );
                    }
                }
                st.set(rd, AbsVal::Unknown);
                self.push(next, st, Some(pc));
            }
            Instr::PLwre { rd, .. } => {
                st.set(rd, AbsVal::Unknown);
                self.push(next, st, Some(pc));
            }
            Instr::PSwre { .. } => {
                self.push(next, st, Some(pc));
            }
            Instr::PJalr { rd, rs1, rs2 } => {
                if rd.is_zero() {
                    self.check_p_ret(pc, &st, rs1, rs2);
                    // The hart ends, waits for a join, or exits: in every
                    // case this static path is over.
                } else {
                    self.check_start(pc, &st, rs1);
                    // pc+4 is the continuation on the freshly started
                    // hart; the local hart continues inside the callee,
                    // which is analyzed from its own root.
                    self.push(next, st.continuation(), Some(pc));
                }
            }
            Instr::PJal { rd, rs1, offset } => {
                self.check_start(pc, &st, rs1);
                self.push(next, st.continuation(), Some(pc));
                let target = pc.wrapping_add(offset as u32);
                let mut local = st;
                local.set(rd, AbsVal::Const(0));
                self.push(target, local, Some(pc));
            }
        }
    }

    /// Checks a parallel start (`p_jalr rd != x0` / `p_jal`): the
    /// identity operand and the `p_syncm` drain.
    fn check_start(&mut self, pc: u32, st: &AbsState, rs1: Reg) {
        match st.get(rs1) {
            AbsVal::Merged | AbsVal::Unknown => {}
            AbsVal::Fork => {
                self.report(
                    Diag::new(
                        DiagCode::BStartNoIdentity,
                        Severity::Error,
                        line_of(self.image, pc),
                        format!(
                            "parallel start at {pc:#x}: `{rs1}` holds a raw p_fc/p_fn \
                             fork result; the join half of the identity word is missing"
                        ),
                    )
                    .with_pc(pc)
                    .with_wait_reason(
                        "a join address that would be sent to hart 0 instead of the \
                         team's join hart",
                    )
                    .with_hint("merge it first: `p_merge t0, t0, <fork-result>`"),
                    pc,
                );
            }
            held @ (AbsVal::Stamped | AbsVal::Const(_)) => {
                let what = match held {
                    AbsVal::Stamped => "a stamped identity whose allocated (low) half \
                                        was never merged with a fork result"
                        .to_owned(),
                    held => format!("{} — not an identity word", describe(held)),
                };
                self.report(
                    Diag::new(
                        DiagCode::BStartNoIdentity,
                        Severity::Error,
                        line_of(self.image, pc),
                        format!("parallel start at {pc:#x}: `{rs1}` holds {what}"),
                    )
                    .with_pc(pc)
                    .with_wait_reason("a start pc delivered to a hart that was never allocated")
                    .with_hint(
                        "build the identity word with p_set + p_fc/p_fn + p_merge \
                         (paper Fig. 8) before p_jalr/p_jal",
                    ),
                    pc,
                );
            }
        }
        if st.sync == Sync::Dirty {
            self.report(
                Diag::new(
                    DiagCode::BMissingSyncm,
                    Severity::Error,
                    line_of(self.image, pc),
                    format!(
                        "parallel start at {pc:#x} launches the hart while \
                         continuation-value stores are still in flight \
                         (no p_syncm since the last p_swcv)"
                    ),
                )
                .with_pc(pc)
                .with_wait_reason("the started hart may read its cv frame before the values land")
                .with_hint("insert `p_syncm` between the last p_swcv and the start"),
                pc,
            );
        }
    }

    /// Checks a `p_ret` (`p_jalr x0, ra, t0`): the identity word must be
    /// the exit sentinel, a protocol identity, or unknown.
    fn check_p_ret(&mut self, pc: u32, st: &AbsState, ra: Reg, t0: Reg) {
        match st.get(t0) {
            AbsVal::Const(-1) => {
                // Exit: ra must be 0 (or unknown) for the sentinel to
                // mean "exit" rather than "join forward".
                if let AbsVal::Const(r) = st.get(ra) {
                    if r != 0 {
                        self.report(
                            Diag::new(
                                DiagCode::BMalformedRet,
                                Severity::Error,
                                line_of(self.image, pc),
                                format!(
                                    "p_ret at {pc:#x} has the exit sentinel in `{t0}` \
                                     but a nonzero return address {r:#x} in `{ra}`: \
                                     the join would be sent to hart 0x7fff"
                                ),
                            )
                            .with_pc(pc)
                            .with_hint("load `ra` with 0 (`li ra, 0`) before the exit p_ret"),
                            pc,
                        );
                    }
                }
            }
            AbsVal::Const(c) => {
                self.report(
                    Diag::new(
                        DiagCode::BMalformedRet,
                        Severity::Error,
                        line_of(self.image, pc),
                        format!(
                            "p_ret at {pc:#x} commits with `{t0}` = {c} ({:#x}): \
                             neither the exit sentinel (-1) nor a stamped/merged \
                             identity word",
                            c as u32
                        ),
                    )
                    .with_pc(pc)
                    .with_wait_reason(
                        "a join that would target whatever hart the constant happens \
                         to name",
                    )
                    .with_hint(
                        "end the program with `li t0, -1; li ra, 0; p_ret`, or carry \
                         the team's identity word in t0",
                    ),
                    pc,
                );
            }
            AbsVal::Fork => {
                self.report(
                    Diag::new(
                        DiagCode::BMalformedRet,
                        Severity::Error,
                        line_of(self.image, pc),
                        format!(
                            "p_ret at {pc:#x} commits with `{t0}` holding a raw fork \
                             result instead of an identity word"
                        ),
                    )
                    .with_pc(pc)
                    .with_hint("p_merge the fork result into the identity word first"),
                    pc,
                );
            }
            AbsVal::Unknown | AbsVal::Stamped | AbsVal::Merged => {}
        }
    }
}

/// Human description of an abstract value, for messages.
fn describe(v: AbsVal) -> String {
    match v {
        AbsVal::Unknown => "an unknown value".to_owned(),
        AbsVal::Const(c) => format!("the constant {c}"),
        AbsVal::Fork => "a fork result".to_owned(),
        AbsVal::Stamped => "a stamped identity word".to_owned(),
        AbsVal::Merged => "a merged identity word".to_owned(),
    }
}

/// Formats a transmitted-slot bitmask as byte offsets, e.g. `{0, 4}`.
fn mask_slots(mask: u32) -> String {
    let slots: Vec<String> = (0..32)
        .filter(|i| mask & (1 << i) != 0)
        .map(|i| (i * 4).to_string())
        .collect();
    if slots.is_empty() {
        "{} (none)".to_owned()
    } else {
        format!("{{{}}}", slots.join(", "))
    }
}
