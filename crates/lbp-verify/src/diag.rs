//! Structured diagnostics and the `lbp-diag-v1` report format.
//!
//! Every finding of the static analyses — source-level race detection in
//! `lbp-cc` and binary-level protocol verification in this crate — is a
//! [`Diag`]: a stable machine-readable code, a severity, a source span,
//! and optional evidence (a hart-pair witness for races, a wait-reason
//! for protocol hangs, a fix hint). A set of diagnostics serializes to
//! the `lbp-diag-v1` JSON schema consumed by CI and by the `--verify` /
//! `--lint` command-line surfaces.

use std::fmt;

/// Stable diagnostic codes. `S*` codes come from the source-level race
/// analysis, `B*` codes from the binary-level protocol verifier, `M*`
/// codes from the binary-level shared-memory determinism pass, `C*`
/// codes are semantic (front-end) errors re-reported through the lint
/// surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagCode {
    /// A semantic (sema) error surfaced through the lint pipeline.
    CSema,
    /// Two harts of a team conflict on a shared scalar.
    SSharedScalar,
    /// Two harts of a team write the same shared array element.
    SOverlappingWrite,
    /// A hart reads a shared array element another hart writes
    /// (a loop-carried dependence across team members).
    SLoopCarried,
    /// A shared-array subscript the affine analysis cannot prove
    /// hart-disjoint.
    SUnprovable,
    /// A store through a pointer inside a parallel region (defeats the
    /// independence analysis).
    SPointerStore,
    /// A `p_lwre` receive with no `p_swre` sender anywhere in the image.
    BRecvNoSender,
    /// A `p_lwcv` continuation-value load from a slot no `p_swcv` in the
    /// image ever writes.
    BCvNeverSent,
    /// A `p_swcv` whose hart operand does not hold a fork result.
    BSwcvNoFork,
    /// A `p_jalr`/`p_jal` start whose identity operand is not a merged
    /// identity word.
    BStartNoIdentity,
    /// A fork transmission not drained by `p_syncm` before the start.
    BMissingSyncm,
    /// A continuation loads a cv slot its forker never transmitted.
    BContinuationSlot,
    /// A `p_ret` whose `t0` is a constant that is neither the exit
    /// sentinel nor an identity word, or an exit with a return address.
    BMalformedRet,
    /// Control flow reaches the end of the text section or an
    /// undecodable word.
    BFallsOffText,
    /// Two team members' shared-store footprints provably overlap
    /// within one sync epoch.
    MOverlappingWrite,
    /// A team member reads a shared address another member provably
    /// writes within the same sync epoch.
    MRacingRead,
    /// A shared access whose address the affine analysis cannot prove
    /// member-disjoint (interval-valued subscript or analysis budget
    /// exceeded).
    MUnprovableSubscript,
    /// A store through an address of unknown provenance inside a
    /// parallel epoch.
    MUnknownStore,
    /// A shared-region pointer value is itself stored to shared memory
    /// inside a parallel epoch (escapes the epoch's footprint
    /// reasoning).
    MEscapingPointer,
    /// The whole team's shared-write footprint lands in a single
    /// memory bank while the team spans several cores (serializes at
    /// the bank, a determinism-preserving performance hazard).
    MBankAliasing,
}

impl DiagCode {
    /// The stable string form used in reports and asserted by CI
    /// (e.g. `LBP-S001`).
    pub fn as_str(self) -> &'static str {
        match self {
            DiagCode::CSema => "LBP-C001",
            DiagCode::SSharedScalar => "LBP-S001",
            DiagCode::SOverlappingWrite => "LBP-S002",
            DiagCode::SLoopCarried => "LBP-S003",
            DiagCode::SUnprovable => "LBP-S004",
            DiagCode::SPointerStore => "LBP-S005",
            DiagCode::BRecvNoSender => "LBP-B001",
            DiagCode::BCvNeverSent => "LBP-B002",
            DiagCode::BSwcvNoFork => "LBP-B003",
            DiagCode::BStartNoIdentity => "LBP-B004",
            DiagCode::BMissingSyncm => "LBP-B005",
            DiagCode::BContinuationSlot => "LBP-B006",
            DiagCode::BMalformedRet => "LBP-B007",
            DiagCode::BFallsOffText => "LBP-B008",
            DiagCode::MOverlappingWrite => "LBP-M001",
            DiagCode::MRacingRead => "LBP-M002",
            DiagCode::MUnprovableSubscript => "LBP-M003",
            DiagCode::MUnknownStore => "LBP-M004",
            DiagCode::MEscapingPointer => "LBP-M005",
            DiagCode::MBankAliasing => "LBP-M006",
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How severe a finding is. Only `Error` rejects a program; `Warning`
/// marks constructs the analysis cannot prove safe, `Info` carries
/// classification notes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Classification or context, never affects the verdict.
    Info,
    /// Not provably safe; surfaced but accepted.
    Warning,
    /// A definite violation; the program is rejected.
    Error,
}

impl Severity {
    /// The lowercase string used in reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding of a static analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag {
    /// Stable diagnostic code.
    pub code: DiagCode,
    /// Severity; `Error` rejects the program.
    pub severity: Severity,
    /// Human-readable description of the violation.
    pub message: String,
    /// 1-based source line (0 when unknown / generated code).
    pub line: usize,
    /// The faulting program counter for binary-level findings. Carries
    /// the location even when `line` is 0 (generated code, fuzz
    /// corpora).
    pub pc: Option<u32>,
    /// For races: the concrete hart pair (and element) that conflicts.
    pub witness: Option<String>,
    /// For protocol hangs: what the blocked hart would wait for, phrased
    /// like the dynamic deadlock detector's reasons.
    pub wait_reason: Option<String>,
    /// A suggested fix.
    pub hint: Option<String>,
}

impl Diag {
    /// Creates a diagnostic with no evidence attached.
    pub fn new(
        code: DiagCode,
        severity: Severity,
        line: usize,
        message: impl Into<String>,
    ) -> Diag {
        Diag {
            code,
            severity,
            message: message.into(),
            line,
            pc: None,
            witness: None,
            wait_reason: None,
            hint: None,
        }
    }

    /// Attaches the faulting program counter.
    pub fn with_pc(mut self, pc: u32) -> Diag {
        self.pc = Some(pc);
        self
    }

    /// Attaches a hart-pair witness.
    pub fn with_witness(mut self, witness: impl Into<String>) -> Diag {
        self.witness = Some(witness.into());
        self
    }

    /// Attaches a wait-reason (what the hang would block on).
    pub fn with_wait_reason(mut self, reason: impl Into<String>) -> Diag {
        self.wait_reason = Some(reason.into());
        self
    }

    /// Attaches a fix hint.
    pub fn with_hint(mut self, hint: impl Into<String>) -> Diag {
        self.hint = Some(hint.into());
        self
    }
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.severity.as_str(), self.code)?;
        if self.line > 0 {
            write!(f, " line {}", self.line)?;
        }
        if let Some(pc) = self.pc {
            write!(f, " pc {pc:#x}")?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(w) = &self.witness {
            write!(f, "\n    witness: {w}")?;
        }
        if let Some(r) = &self.wait_reason {
            write!(f, "\n    waits on: {r}")?;
        }
        if let Some(h) = &self.hint {
            write!(f, "\n    hint: {h}")?;
        }
        Ok(())
    }
}

/// The verdict over a set of diagnostics: a program is accepted unless
/// some diagnostic is an [`Severity::Error`].
pub fn accepted(diags: &[Diag]) -> bool {
    diags.iter().all(|d| d.severity != Severity::Error)
}

/// Serializes diagnostics as an `lbp-diag-v1` JSON report.
///
/// Layout:
///
/// ```json
/// {
///   "schema": "lbp-diag-v1",
///   "program": "examples/asm/hung.s",
///   "verdict": "reject",
///   "diags": [ { "code": "...", "severity": "...", "line": N,
///                "pc": N, "message": "...", "witness": ...,
///                "wait_reason": ..., "hint": ... } ]
/// }
/// ```
pub fn report_json(program: &str, diags: &[Diag]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"lbp-diag-v1\",\n  \"program\": ");
    json_string(&mut out, program);
    out.push_str(",\n  \"verdict\": ");
    json_string(&mut out, if accepted(diags) { "accept" } else { "reject" });
    out.push_str(",\n  \"diags\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"code\": ");
        json_string(&mut out, d.code.as_str());
        out.push_str(", \"severity\": ");
        json_string(&mut out, d.severity.as_str());
        out.push_str(&format!(", \"line\": {}", d.line));
        if let Some(pc) = d.pc {
            out.push_str(&format!(", \"pc\": {pc}"));
        }
        out.push_str(", \"message\": ");
        json_string(&mut out, &d.message);
        for (key, value) in [
            ("witness", &d.witness),
            ("wait_reason", &d.wait_reason),
            ("hint", &d.hint),
        ] {
            if let Some(v) = value {
                out.push_str(&format!(", \"{key}\": "));
                json_string(&mut out, v);
            }
        }
        out.push('}');
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Appends a JSON string literal (with escaping) to `out`.
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_distinct() {
        let codes = [
            DiagCode::CSema,
            DiagCode::SSharedScalar,
            DiagCode::SOverlappingWrite,
            DiagCode::SLoopCarried,
            DiagCode::SUnprovable,
            DiagCode::SPointerStore,
            DiagCode::BRecvNoSender,
            DiagCode::BCvNeverSent,
            DiagCode::BSwcvNoFork,
            DiagCode::BStartNoIdentity,
            DiagCode::BMissingSyncm,
            DiagCode::BContinuationSlot,
            DiagCode::BMalformedRet,
            DiagCode::BFallsOffText,
            DiagCode::MOverlappingWrite,
            DiagCode::MRacingRead,
            DiagCode::MUnprovableSubscript,
            DiagCode::MUnknownStore,
            DiagCode::MEscapingPointer,
            DiagCode::MBankAliasing,
        ];
        let strings: std::collections::HashSet<&str> = codes.iter().map(|c| c.as_str()).collect();
        assert_eq!(strings.len(), codes.len());
    }

    #[test]
    fn verdict_follows_severity() {
        let warn = Diag::new(DiagCode::SUnprovable, Severity::Warning, 1, "w");
        let err = Diag::new(DiagCode::SSharedScalar, Severity::Error, 2, "e");
        assert!(accepted(std::slice::from_ref(&warn)));
        assert!(!accepted(&[warn, err]));
    }

    #[test]
    fn json_report_shape() {
        let d = Diag::new(
            DiagCode::BRecvNoSender,
            Severity::Error,
            5,
            "receive \"never\" sent",
        )
        .with_wait_reason("a p_swre result in slot 3 that is never sent");
        let json = report_json("hung.s", &[d]);
        assert!(json.contains("\"schema\": \"lbp-diag-v1\""));
        assert!(json.contains("\"verdict\": \"reject\""));
        assert!(json.contains("\"code\": \"LBP-B001\""));
        assert!(json.contains("\\\"never\\\""));
        assert!(json.contains("\"wait_reason\""));
    }

    #[test]
    fn pc_rendered_when_line_unknown() {
        let d =
            Diag::new(DiagCode::MUnknownStore, Severity::Warning, 0, "wild store").with_pc(0x44);
        let text = d.to_string();
        assert!(!text.contains("line"));
        assert!(text.contains("pc 0x44"));
        let json = report_json("gen.s", std::slice::from_ref(&d));
        assert!(json.contains("\"pc\": 68"));
        let without = Diag::new(DiagCode::CSema, Severity::Error, 3, "x");
        assert!(!report_json("a.c", &[without]).contains("\"pc\""));
    }

    #[test]
    fn display_carries_evidence() {
        let d = Diag::new(DiagCode::SSharedScalar, Severity::Error, 9, "race on `g`")
            .with_witness("harts t=0 and t=1 both write `g`")
            .with_hint("privatize `g` or make it a reduction");
        let text = d.to_string();
        assert!(text.contains("LBP-S001"));
        assert!(text.contains("witness"));
        assert!(text.contains("hint"));
    }
}
