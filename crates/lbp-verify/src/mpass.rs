//! Pass 3: binary-level shared-memory determinism analysis (`M` codes).
//!
//! The source-level lint (`lbp-cc`, `S` codes) proves cross-member
//! disjointness of shared accesses for mini-C programs — but handwritten
//! assembly, fuzz corpora, and anything assembled directly receive no
//! shared-memory checking at all. This pass closes the gap at the binary
//! level with an **address lattice**: every register abstractly holds
//!
//! - an *affine* value `a·t + [lo, hi]` in the team-member index `t`
//!   (a constant is the degenerate `a = 0, lo = hi` point, an interval
//!   the `lo < hi` widening of it),
//! - a *private* value derived from the member's own stack pointer
//!   (provably outside the shared region), or
//! - *unknown*.
//!
//! Two cooperating fixpoints:
//!
//! 1. **Epoch discovery** walks the whole program from the entry point
//!    (following calls) and records every parallel start (`p_jalr` with
//!    a link register / `p_jal`) as a *spawn site*: the started
//!    function and, when the conventional team-size register `s2` holds
//!    a known constant at the site, the team size `nt`.
//! 2. **Member analysis** re-interprets each spawned function with the
//!    member index seeded affinely (`a0 = s1 = 1·t + 0`, the documented
//!    team ABI), collecting the footprint of every shared load/store as
//!    an affine address set. A sync epoch spans the member body from the
//!    parallel start to its terminating `p_ret` (the join edge);
//!    `p_syncm` inside a member drains that member's stores but does
//!    not order *other* members, so it does not split the epoch for
//!    cross-member checking.
//!
//! Within an epoch, every pair of accesses (at least one a write) is
//! checked for overlap over all member pairs `t1 ≠ t2`. The verdict
//! discipline matches the rest of the crate — errors are *definite*:
//!
//! - `LBP-M001` (error): two members' exact store footprints overlap.
//! - `LBP-M002` (error): a member reads an address another member
//!   provably writes.
//! - `LBP-M003` (warning): an interval-valued (widened) subscript, an
//!   unknown team size, a control-dependent access, or an exhausted
//!   analysis budget prevents a disjointness proof.
//! - `LBP-M004` (warning): a store through an address of unknown
//!   provenance inside a parallel epoch.
//! - `LBP-M005` (warning): a shared-region pointer value is itself
//!   stored to shared memory (escapes the epoch's footprint reasoning).
//! - `LBP-M006` (info): the whole team's write footprint lands in one
//!   default-geometry shared bank while the team spans several cores —
//!   deterministic, but serialized at the bank.
//!
//! A definite error requires: known team size, exact (width-0)
//! footprints, and accesses not control-dependent on unproven data (a
//! branch the interpreter cannot decide or refine *taints* its paths,
//! demoting findings to `M003`). Everything the lattice cannot prove is
//! at most a warning, so accepted programs stay accepted — the dynamic
//! `RaceWitness` collector in `lbp-sim` is the soundness net for what
//! this pass under-approximates (helper-function bodies, loop-carried
//! subscripts widened to unknown).

use std::collections::{BTreeSet, HashMap, VecDeque};

use lbp_asm::Image;
use lbp_isa::{Instr, OpImmKind, OpKind, Reg, HARTS_PER_CORE, IO_BASE, SHARED_BASE};

use crate::diag::{Diag, DiagCode, Severity};

/// Safety bound on fixpoint steps across all passes of one image.
const MAX_STEPS: usize = 2_000_000;
/// Largest team size the member enumeration considers.
const MAX_TEAM: i64 = 256;
/// Distinct spawn sites analyzed before truncating (with a warning).
const MAX_SITES: usize = 64;
/// Shared accesses collected per epoch before truncating (with a warning).
const MAX_ACCESSES: usize = 192;
/// Budget of pairwise footprint evaluations per epoch.
const PAIR_BUDGET: usize = 2_000_000;
/// Coefficient/offset magnitude beyond which a value widens to unknown.
const MAG_LIMIT: i64 = 1 << 33;
/// The default shared-bank geometry (LbpConfig::default), for `M006`.
const BANK_BYTES: i64 = 64 * 1024;

/// An affine value `a·t + v` for some `v ∈ [lo, hi]`, `t` the member
/// index. `a = 0, lo = hi` is a constant; `lo < hi` an interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Aff {
    a: i64,
    lo: i64,
    hi: i64,
}

impl Aff {
    fn point(v: i64) -> Aff {
        Aff { a: 0, lo: v, hi: v }
    }

    fn is_point(self) -> bool {
        self.a == 0 && self.lo == self.hi
    }

    fn is_exact(self) -> bool {
        self.lo == self.hi
    }

    /// Clamps runaway magnitudes to Unknown (keeps i64 arithmetic safe).
    fn norm(self) -> MVal {
        if self.a.abs() > MAG_LIMIT || self.lo.abs() > MAG_LIMIT || self.hi.abs() > MAG_LIMIT {
            MVal::Unknown
        } else {
            MVal::Abs(self)
        }
    }
}

/// What a register abstractly holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MVal {
    /// Anything.
    Unknown,
    /// An affine function of the member index.
    Abs(Aff),
    /// Derived from the member's own stack pointer: provably private.
    Priv,
}

impl MVal {
    fn point(v: i64) -> MVal {
        MVal::Abs(Aff::point(v))
    }

    fn as_point(self) -> Option<i64> {
        match self {
            MVal::Abs(p) if p.is_point() => Some(p.lo),
            _ => None,
        }
    }

    /// Meet with one-step widening: a point may grow into an interval;
    /// an interval that would grow again (or a stride mismatch) goes to
    /// Unknown. The chain point → interval → Unknown bounds the fixpoint.
    fn meet(self, other: MVal) -> MVal {
        if self == other {
            return self;
        }
        match (self, other) {
            (MVal::Abs(x), MVal::Abs(y)) if x.a == y.a => {
                let u = Aff {
                    a: x.a,
                    lo: x.lo.min(y.lo),
                    hi: x.hi.max(y.hi),
                };
                if u == x {
                    MVal::Abs(x)
                } else if x.is_exact() {
                    u.norm()
                } else {
                    MVal::Unknown
                }
            }
            _ => MVal::Unknown,
        }
    }

    fn add(self, other: MVal) -> MVal {
        match (self, other) {
            (MVal::Abs(x), MVal::Abs(y)) => Aff {
                a: x.a + y.a,
                lo: x.lo + y.lo,
                hi: x.hi + y.hi,
            }
            .norm(),
            // sp ± small constant stays on the member's private stack.
            (MVal::Priv, MVal::Abs(p)) | (MVal::Abs(p), MVal::Priv) if p.a == 0 => MVal::Priv,
            _ => MVal::Unknown,
        }
    }

    fn sub(self, other: MVal) -> MVal {
        match (self, other) {
            (MVal::Abs(x), MVal::Abs(y)) => Aff {
                a: x.a - y.a,
                lo: x.lo - y.hi,
                hi: x.hi - y.lo,
            }
            .norm(),
            (MVal::Priv, MVal::Abs(p)) if p.a == 0 => MVal::Priv,
            _ => MVal::Unknown,
        }
    }

    /// Multiplication by a compile-time point scales the affine form.
    fn scale(self, k: i64) -> MVal {
        match self {
            MVal::Abs(x) => {
                let (lo, hi) = if k >= 0 {
                    (x.lo * k, x.hi * k)
                } else {
                    (x.hi * k, x.lo * k)
                };
                Aff { a: x.a * k, lo, hi }.norm()
            }
            _ => MVal::Unknown,
        }
    }
}

/// Per-program-point abstract state: registers plus the member-index
/// range this path is known to cover and a control-dependence taint.
#[derive(Debug, Clone, PartialEq, Eq)]
struct MState {
    regs: [MVal; 32],
    /// Member indices that can reach this point (refined by branches on
    /// the exact member index, e.g. a `t == 0` master block).
    tlo: i64,
    thi: i64,
    /// Set once control flow depends on data the lattice cannot decide;
    /// accesses on tainted paths are never *definite* findings.
    tainted: bool,
}

impl MState {
    fn get(&self, r: Reg) -> MVal {
        if r.is_zero() {
            MVal::point(0)
        } else {
            self.regs[r.index()]
        }
    }

    fn set(&mut self, r: Reg, v: MVal) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// Meets `other` into `self`; true if `self` changed.
    fn meet(&mut self, other: &MState) -> bool {
        let mut changed = false;
        for i in 0..32 {
            let m = self.regs[i].meet(other.regs[i]);
            changed |= m != self.regs[i];
            self.regs[i] = m;
        }
        let tlo = self.tlo.min(other.tlo);
        let thi = self.thi.max(other.thi);
        changed |= (tlo, thi) != (self.tlo, self.thi);
        self.tlo = tlo;
        self.thi = thi;
        let t = self.tainted || other.tainted;
        changed |= t != self.tainted;
        self.tainted = t;
        changed
    }

    /// Call effects, mirroring the protocol pass: caller-saved registers
    /// clobbered, `sp`/`s*`/`t0`/`t1` preserved.
    fn havoc_call(&mut self) {
        for r in [
            Reg::RA,
            Reg::T2,
            Reg::T3,
            Reg::T4,
            Reg::T5,
            Reg::T6,
            Reg::A0,
            Reg::A1,
            Reg::A2,
            Reg::A3,
            Reg::A4,
            Reg::A5,
            Reg::A6,
            Reg::A7,
        ] {
            self.set(r, MVal::Unknown);
        }
    }
}

/// One shared access collected from a member body.
#[derive(Debug, Clone, Copy)]
struct Access {
    pc: u32,
    write: bool,
    /// Address set: `addr.a·t + [addr.lo, addr.hi]`, absolute, already
    /// proven to stay inside the shared region for the whole team.
    addr: Aff,
    size: i64,
    /// Member indices this access executes for.
    tlo: i64,
    thi: i64,
    /// Control-dependent on unproven data: never a definite finding.
    tainted: bool,
}

/// A discovered parallel start: started function and team size (when
/// the conventional `s2` team-size register held a constant there).
type Site = (u32, Option<i64>);

/// Dedup key for a collected access, so fixpoint revisits of the same
/// instruction with the same abstract shape record it once:
/// (pc, is-write, affine (a, lo, hi), size, team span, tainted).
type AccKey = (u32, bool, (i64, i64, i64), i64, (i64, i64), bool);

/// Runs the shared-memory determinism pass over an assembled image.
pub(crate) fn analyze(image: &Image) -> Vec<Diag> {
    let mut eng = Engine {
        image,
        steps: 0,
        diags: Vec::new(),
        seen: BTreeSet::new(),
    };

    // Pass A: discover spawn sites from the entry point.
    let mut pending: VecDeque<Site> = VecDeque::new();
    let mut visited: BTreeSet<Site> = BTreeSet::new();
    let mut entry = MState {
        regs: [MVal::Unknown; 32],
        tlo: 0,
        thi: 0,
        tainted: false,
    };
    entry.set(Reg::SP, MVal::Priv);
    let (sites, _) = eng.interpret(image.entry, entry, None);
    for s in sites {
        if visited.insert(s) {
            pending.push_back(s);
        }
    }

    // Pass B: analyze each spawned function as a team member; nested
    // parallel starts found inside members are analyzed in turn.
    let mut analyzed = 0usize;
    while let Some((func, nt)) = pending.pop_front() {
        if analyzed >= MAX_SITES {
            eng.report(
                Diag::new(
                    DiagCode::MUnprovableSubscript,
                    Severity::Warning,
                    0,
                    format!(
                        "more than {MAX_SITES} distinct parallel start sites; \
                         shared-memory analysis truncated"
                    ),
                )
                .with_pc(func),
                func,
            );
            break;
        }
        analyzed += 1;
        let (nested, accesses) = eng.member_pass(func, nt);
        eng.check_epoch(func, nt, &accesses);
        for s in nested {
            if visited.insert(s) {
                pending.push_back(s);
            }
        }
    }
    eng.diags
}

/// The shared fixpoint engine for both passes.
struct Engine<'a> {
    image: &'a Image,
    steps: usize,
    diags: Vec<Diag>,
    /// Dedup: (code, pc) pairs already reported.
    seen: BTreeSet<(&'static str, u32)>,
}

/// What a member-mode interpretation collects.
#[derive(Default)]
struct Collected {
    accesses: Vec<Access>,
    /// Stores through unknown addresses, by pc.
    unknown_stores: BTreeSet<u32>,
    /// Shared-pointer values stored to shared memory, by pc.
    escapes: BTreeSet<u32>,
    truncated: bool,
}

impl<'a> Engine<'a> {
    fn line(&self, pc: u32) -> usize {
        self.image.line_of(pc).unwrap_or(0)
    }

    fn report(&mut self, diag: Diag, pc: u32) {
        if self.seen.insert((diag.code.as_str(), pc)) {
            self.diags.push(diag);
        }
    }

    /// Analyzes `func` as one team member of size `nt` and emits the
    /// per-access warnings; returns nested spawn sites and the shared
    /// accesses of the epoch.
    fn member_pass(&mut self, func: u32, nt: Option<i64>) -> (BTreeSet<Site>, Vec<Access>) {
        let span = nt.unwrap_or(2).clamp(1, MAX_TEAM);
        let mut seed = MState {
            regs: [MVal::Unknown; 32],
            tlo: 0,
            thi: span - 1,
            tainted: false,
        };
        // The documented team ABI (lbp-omp codegen, mirrored by the
        // fuzzer): the member index arrives in `a0` (and `s1`), the team
        // size in `s2`, and the member runs on its own private stack.
        let t = MVal::Abs(Aff { a: 1, lo: 0, hi: 0 });
        seed.set(Reg::A0, t);
        seed.set(Reg::S1, t);
        if let Some(n) = nt {
            seed.set(Reg::S2, MVal::point(n));
        }
        seed.set(Reg::SP, MVal::Priv);
        let (sites, col) = self.interpret(func, seed, Some(span));
        let fname = self.func_name(func);
        for &pc in &col.unknown_stores {
            self.report(
                Diag::new(
                    DiagCode::MUnknownStore,
                    Severity::Warning,
                    self.line(pc),
                    format!(
                        "store at {pc:#x} in parallel epoch `{fname}` goes through an \
                         address of unknown provenance; cross-member disjointness \
                         cannot be proven"
                    ),
                )
                .with_pc(pc)
                .with_hint(
                    "address shared data as base + stride*member_index with \
                     compile-time base and stride",
                ),
                pc,
            );
        }
        for &pc in &col.escapes {
            self.report(
                Diag::new(
                    DiagCode::MEscapingPointer,
                    Severity::Warning,
                    self.line(pc),
                    format!(
                        "store at {pc:#x} in parallel epoch `{fname}` publishes a \
                         shared-region pointer to shared memory; accesses through it \
                         escape the epoch's footprint analysis"
                    ),
                )
                .with_pc(pc)
                .with_hint("pass addresses through registers or the cv frame instead"),
                pc,
            );
        }
        if col.truncated {
            self.report(
                Diag::new(
                    DiagCode::MUnprovableSubscript,
                    Severity::Warning,
                    self.line(func),
                    format!(
                        "parallel epoch `{fname}` has more than {MAX_ACCESSES} distinct \
                         shared accesses; disjointness checking truncated"
                    ),
                )
                .with_pc(func),
                func,
            );
        }
        (sites, col.accesses)
    }

    /// Worklist fixpoint from `root`. `member` carries the team span
    /// when interpreting a member body (enables access collection).
    fn interpret(
        &mut self,
        root: u32,
        seed: MState,
        member: Option<i64>,
    ) -> (BTreeSet<Site>, Collected) {
        let mut states: HashMap<u32, MState> = HashMap::new();
        let mut worklist: VecDeque<u32> = VecDeque::new();
        let mut sites: BTreeSet<Site> = BTreeSet::new();
        let mut col = Collected::default();
        let mut acc_seen: BTreeSet<AccKey> = BTreeSet::new();
        let push = |states: &mut HashMap<u32, MState>,
                    worklist: &mut VecDeque<u32>,
                    pc: u32,
                    st: MState| {
            match states.get_mut(&pc) {
                None => {
                    states.insert(pc, st);
                    worklist.push_back(pc);
                }
                Some(existing) => {
                    if existing.meet(&st) {
                        worklist.push_back(pc);
                    }
                }
            }
        };
        if self.decodable(root) {
            push(&mut states, &mut worklist, root, seed);
        }
        while let Some(pc) = worklist.pop_front() {
            self.steps += 1;
            if self.steps > MAX_STEPS {
                break;
            }
            let mut st = states[&pc].clone();
            let word = match self.image.text_word(pc) {
                Some(w) => w,
                None => continue,
            };
            let instr = match Instr::decode(word) {
                Ok(i) => i,
                // Undecodable words are the protocol pass's B008 to flag.
                Err(_) => continue,
            };
            let next = pc.wrapping_add(4);
            match instr {
                Instr::Lui { rd, imm } => {
                    st.set(rd, MVal::point((imm as i32) as i64));
                    push(&mut states, &mut worklist, next, st);
                }
                Instr::Auipc { rd, imm } => {
                    st.set(rd, MVal::point((pc.wrapping_add(imm) as i32) as i64));
                    push(&mut states, &mut worklist, next, st);
                }
                Instr::OpImm { kind, rd, rs1, imm } => {
                    let a = st.get(rs1);
                    let v = match kind {
                        OpImmKind::Add => a.add(MVal::point(imm as i64)),
                        OpImmKind::Sll if (0..32).contains(&imm) => a.scale(1i64 << imm),
                        _ => match a.as_point() {
                            Some(p) => MVal::point((kind.eval(p as u32, imm) as i32) as i64),
                            None => MVal::Unknown,
                        },
                    };
                    st.set(rd, v);
                    push(&mut states, &mut worklist, next, st);
                }
                Instr::Op { kind, rd, rs1, rs2 } => {
                    let (a, b) = (st.get(rs1), st.get(rs2));
                    let v = match kind {
                        OpKind::Add => a.add(b),
                        OpKind::Sub => a.sub(b),
                        OpKind::Mul => match (a.as_point(), b.as_point()) {
                            (Some(k), _) => b.scale(k),
                            (_, Some(k)) => a.scale(k),
                            _ => MVal::Unknown,
                        },
                        OpKind::Sll => match b.as_point() {
                            Some(s) if (0..32).contains(&s) => a.scale(1i64 << s),
                            _ => MVal::Unknown,
                        },
                        _ => match (a.as_point(), b.as_point()) {
                            (Some(x), Some(y)) => {
                                MVal::point((kind.eval(x as u32, y as u32) as i32) as i64)
                            }
                            _ => MVal::Unknown,
                        },
                    };
                    st.set(rd, v);
                    push(&mut states, &mut worklist, next, st);
                }
                Instr::Load {
                    kind,
                    rd,
                    rs1,
                    offset,
                } => {
                    if let Some(span) = member {
                        self.collect(
                            &mut col,
                            &mut acc_seen,
                            &st,
                            span,
                            pc,
                            false,
                            st.get(rs1).add(MVal::point(offset as i64)),
                            kind.size() as i64,
                            MVal::Unknown,
                        );
                    }
                    st.set(rd, MVal::Unknown);
                    push(&mut states, &mut worklist, next, st);
                }
                Instr::Store {
                    kind,
                    rs1,
                    rs2,
                    offset,
                } => {
                    if let Some(span) = member {
                        self.collect(
                            &mut col,
                            &mut acc_seen,
                            &st,
                            span,
                            pc,
                            true,
                            st.get(rs1).add(MVal::point(offset as i64)),
                            kind.size() as i64,
                            st.get(rs2),
                        );
                    }
                    push(&mut states, &mut worklist, next, st);
                }
                Instr::Branch {
                    kind,
                    rs1,
                    rs2,
                    offset,
                } => {
                    let target = pc.wrapping_add(offset as u32);
                    let (a, b) = (st.get(rs1), st.get(rs2));
                    match (a.as_point(), b.as_point()) {
                        (Some(x), Some(y)) => {
                            // Decidable: only the real side.
                            if kind.taken(x as u32, y as u32) {
                                push(&mut states, &mut worklist, target, st);
                            } else {
                                push(&mut states, &mut worklist, next, st);
                            }
                        }
                        _ => {
                            let (tk, fl) = refine(&st, kind, a, b);
                            if let Some(s) = tk {
                                push(&mut states, &mut worklist, target, s);
                            }
                            if let Some(s) = fl {
                                push(&mut states, &mut worklist, next, s);
                            }
                        }
                    }
                }
                Instr::Jal { rd, offset } => {
                    let target = pc.wrapping_add(offset as u32);
                    if rd.is_zero() {
                        push(&mut states, &mut worklist, target, st);
                    } else {
                        // Follow the callee with a linked return address
                        // (keeps argument affinity visible inside
                        // helpers) *and* summarize with a havoc edge.
                        let mut callee = st.clone();
                        callee.set(rd, MVal::point(next as i64));
                        if self.decodable(target) {
                            push(&mut states, &mut worklist, target, callee);
                        }
                        st.havoc_call();
                        push(&mut states, &mut worklist, next, st);
                    }
                }
                Instr::Jalr { rd, rs1, offset } => {
                    if rd.is_zero() {
                        if let Some(base) = st.get(rs1).as_point() {
                            let target = (base as u32).wrapping_add(offset as u32) & !1;
                            push(&mut states, &mut worklist, target, st);
                        }
                    } else {
                        if let Some(base) = st.get(rs1).as_point() {
                            let target = (base as u32).wrapping_add(offset as u32) & !1;
                            let mut callee = st.clone();
                            callee.set(rd, MVal::point(next as i64));
                            if self.decodable(target) {
                                push(&mut states, &mut worklist, target, callee);
                            }
                        }
                        st.havoc_call();
                        push(&mut states, &mut worklist, next, st);
                    }
                }
                Instr::PFc { rd } | Instr::PFn { rd } => {
                    st.set(rd, MVal::Unknown);
                    push(&mut states, &mut worklist, next, st);
                }
                Instr::PSet { rd, .. } | Instr::PMerge { rd, .. } => {
                    st.set(rd, MVal::Unknown);
                    push(&mut states, &mut worklist, next, st);
                }
                Instr::PSyncm | Instr::PSwre { .. } | Instr::PSwcv { .. } => {
                    push(&mut states, &mut worklist, next, st);
                }
                Instr::PLwcv { rd, .. } | Instr::PLwre { rd, .. } => {
                    st.set(rd, MVal::Unknown);
                    push(&mut states, &mut worklist, next, st);
                }
                Instr::PJalr { rd, rs1: _, rs2 } => {
                    if rd.is_zero() {
                        // p_ret: the member body (and this path) ends.
                    } else {
                        if let Some(f) = st.get(rs2).as_point() {
                            sites.insert((
                                (f as u32) & !1,
                                st.get(Reg::S2)
                                    .as_point()
                                    .filter(|n| (2..=MAX_TEAM).contains(n)),
                            ));
                        }
                        // The freshly started hart runs the continuation
                        // at pc + 4 with a clean register file; the
                        // spawned function is analyzed as its own epoch.
                        push(&mut states, &mut worklist, next, continuation(&st));
                    }
                }
                Instr::PJal { rs1: _, offset, .. } => {
                    let target = pc.wrapping_add(offset as u32);
                    sites.insert((
                        target,
                        st.get(Reg::S2)
                            .as_point()
                            .filter(|n| (2..=MAX_TEAM).contains(n)),
                    ));
                    push(&mut states, &mut worklist, next, continuation(&st));
                }
            }
        }
        (sites, col)
    }

    fn decodable(&self, pc: u32) -> bool {
        self.image
            .text_word(pc)
            .is_some_and(|w| Instr::decode(w).is_ok())
    }

    /// Classifies one memory access of a member body and records it.
    #[allow(clippy::too_many_arguments)]
    fn collect(
        &mut self,
        col: &mut Collected,
        acc_seen: &mut BTreeSet<AccKey>,
        st: &MState,
        span: i64,
        pc: u32,
        write: bool,
        addr: MVal,
        size: i64,
        value: MVal,
    ) {
        let aff = match addr {
            MVal::Priv => return,
            MVal::Unknown => {
                if write {
                    col.unknown_stores.insert(pc);
                }
                return;
            }
            MVal::Abs(aff) => aff,
        };
        // Normalize the offset to an unsigned 32-bit base (a `lui`-built
        // shared address decodes as a negative i32 constant) and bound
        // the footprint over the whole team in un-wrapped space.
        let base = (aff.lo as u32) as i64;
        let aff = Aff {
            a: aff.a,
            lo: base,
            hi: base + (aff.hi - aff.lo),
        };
        let tmax = span - 1;
        let (smin, smax) = if aff.a >= 0 {
            (aff.lo, aff.hi + aff.a * tmax)
        } else {
            (aff.lo + aff.a * tmax, aff.hi)
        };
        let (lo, hi) = (smin, smax + size);
        let shared = (SHARED_BASE as i64, IO_BASE as i64);
        if lo >= shared.0 && hi <= shared.1 {
            // Entirely shared: subject to the epoch disjointness check.
            if value.as_point().is_some_and(|v| {
                let v = (v as u32) as i64;
                v >= shared.0 && v < shared.1
            }) {
                col.escapes.insert(pc);
            }
            if col.accesses.len() >= MAX_ACCESSES {
                col.truncated = true;
                return;
            }
            let key = (
                pc,
                write,
                (aff.a, aff.lo, aff.hi),
                size,
                (st.tlo, st.thi),
                st.tainted,
            );
            if acc_seen.insert(key) {
                col.accesses.push(Access {
                    pc,
                    write,
                    addr: aff,
                    size,
                    tlo: st.tlo.max(0),
                    thi: st.thi.min(tmax),
                    tainted: st.tainted,
                });
            }
        } else if hi <= shared.0 || lo >= shared.1 || lo < 0 || hi > (1i64 << 32) {
            // Entirely private/code/io, or wraps 32 bits: not this
            // pass's concern unless it wraps, which no provable address
            // does — degrade wrapping stores like unknown ones.
            if write && (lo < 0 || hi > (1i64 << 32)) {
                col.unknown_stores.insert(pc);
            }
        } else if write {
            // Straddles the shared-region boundary: unprovable.
            col.unknown_stores.insert(pc);
        }
    }

    /// The cross-member disjointness check for one epoch.
    fn check_epoch(&mut self, func: u32, nt: Option<i64>, accesses: &[Access]) {
        let fname = self.func_name(func);
        let span = nt.unwrap_or(2).clamp(1, MAX_TEAM);
        if span < 2 {
            return;
        }
        let mut budget = PAIR_BUDGET;
        let mut over_budget = false;
        for i in 0..accesses.len() {
            for j in i..accesses.len() {
                let (x, y) = (accesses[i], accesses[j]);
                if !x.write && !y.write {
                    continue;
                }
                if let Some((t1, t2)) = overlap_pair(&x, &y, &mut budget) {
                    let exact = x.addr.is_exact()
                        && y.addr.is_exact()
                        && !x.tainted
                        && !y.tainted
                        && nt.is_some();
                    self.report_overlap(&fname, &x, &y, t1, t2, exact);
                } else if budget == 0 {
                    over_budget = true;
                }
            }
        }
        if over_budget {
            self.report(
                Diag::new(
                    DiagCode::MUnprovableSubscript,
                    Severity::Warning,
                    self.line(func),
                    format!(
                        "parallel epoch `{fname}`: pairwise footprint budget exhausted; \
                         some access pairs were not checked"
                    ),
                )
                .with_pc(func),
                func,
            );
        }
        self.check_bank_aliasing(func, &fname, nt, accesses);
    }

    /// Emits `M001`/`M002` (definite) or `M003` (unprovable) for an
    /// overlapping access pair.
    fn report_overlap(
        &mut self,
        fname: &str,
        x: &Access,
        y: &Access,
        t1: i64,
        t2: i64,
        exact: bool,
    ) {
        let (w, o) = if x.write { (x, y) } else { (y, x) };
        let both_write = x.write && y.write;
        let pc = w.pc.min(o.pc);
        let what = if both_write { "write" } else { "access" };
        let witness = format!(
            "member t={t1} {what}s {} at {:#x} while member t={t2} {}s {} at {:#x}",
            footprint_str(&x.addr, x.size, t1),
            x.pc,
            if y.write { "write" } else { "read" },
            footprint_str(&y.addr, y.size, t2),
            y.pc,
        );
        if exact {
            let (code, msg) = if both_write {
                (
                    DiagCode::MOverlappingWrite,
                    format!(
                        "parallel epoch `{fname}`: two members' shared stores \
                         (pc {:#x} and {:#x}) overlap; the final value depends on \
                         arrival order",
                        x.pc, y.pc
                    ),
                )
            } else {
                (
                    DiagCode::MRacingRead,
                    format!(
                        "parallel epoch `{fname}`: a member reads a shared address \
                         (pc {:#x}) another member writes (pc {:#x}); the loaded \
                         value depends on arrival order",
                        o.pc, w.pc
                    ),
                )
            };
            self.report(
                Diag::new(code, Severity::Error, self.line(pc), msg)
                    .with_pc(pc)
                    .with_witness(witness)
                    .with_hint(
                        "give each member a disjoint slice \
                         (base + stride*member_index) or privatize the data",
                    ),
                pc,
            );
        } else {
            self.report(
                Diag::new(
                    DiagCode::MUnprovableSubscript,
                    Severity::Warning,
                    self.line(pc),
                    format!(
                        "parallel epoch `{fname}`: shared accesses at pc {:#x} and \
                         {:#x} cannot be proven member-disjoint",
                        x.pc, y.pc
                    ),
                )
                .with_pc(pc)
                .with_witness(witness),
                pc,
            );
        }
    }

    /// `M006`: the whole team's write footprint serializes at one bank.
    fn check_bank_aliasing(
        &mut self,
        _func: u32,
        fname: &str,
        nt: Option<i64>,
        accesses: &[Access],
    ) {
        let Some(n) = nt else { return };
        if n <= HARTS_PER_CORE as i64 {
            return;
        }
        let writes: Vec<&Access> = accesses.iter().filter(|a| a.write).collect();
        if writes.is_empty() {
            return;
        }
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        let mut pc = u32::MAX;
        for w in &writes {
            let tmax = n - 1;
            let (smin, smax) = if w.addr.a >= 0 {
                (w.addr.lo, w.addr.hi + w.addr.a * tmax)
            } else {
                (w.addr.lo + w.addr.a * tmax, w.addr.hi)
            };
            lo = lo.min(smin);
            hi = hi.max(smax + w.size);
            pc = pc.min(w.pc);
        }
        let b0 = (lo - SHARED_BASE as i64) / BANK_BYTES;
        let b1 = (hi - 1 - SHARED_BASE as i64) / BANK_BYTES;
        if b0 == b1 {
            self.report(
                Diag::new(
                    DiagCode::MBankAliasing,
                    Severity::Info,
                    self.line(pc),
                    format!(
                        "parallel epoch `{fname}`: all {n} members' shared writes fall \
                         in shared bank {b0} (default 64 KiB/core geometry) while the \
                         team spans {} cores; the bank serializes the traffic",
                        (n + HARTS_PER_CORE as i64 - 1) / HARTS_PER_CORE as i64
                    ),
                )
                .with_pc(pc)
                .with_hint(
                    "spread member slices across banks (stride >= the bank size, or \
                     interleave by core)",
                ),
                pc,
            );
        }
    }

    /// The symbol naming `pc`, for messages.
    fn func_name(&self, pc: u32) -> String {
        self.image
            .symbols
            .iter()
            .filter(|&(_, &a)| a == pc)
            .map(|(n, _)| n.clone())
            .min()
            .unwrap_or_else(|| format!("{pc:#x}"))
    }
}

/// The state a fork continuation starts in on the freshly started hart.
fn continuation(st: &MState) -> MState {
    let mut c = MState {
        regs: [MVal::Unknown; 32],
        tlo: st.tlo,
        thi: st.thi,
        tainted: st.tainted,
    };
    c.set(Reg::SP, MVal::Priv);
    c
}

/// Branch handling when the condition is not decidable: refine the
/// member-index range when the comparison is exactly `t + k` against a
/// constant; otherwise taint both sides (control now depends on data
/// the lattice cannot prove uniform across members).
fn refine(
    st: &MState,
    kind: lbp_isa::BranchKind,
    a: MVal,
    b: MVal,
) -> (Option<MState>, Option<MState>) {
    use lbp_isa::BranchKind as B;
    let dep = |v: MVal| matches!(v, MVal::Abs(x) if x.a != 0);
    // value = t + k (exact), compared against a point constant.
    let exact_t = |v: MVal| match v {
        MVal::Abs(x) if x.a == 1 && x.lo == x.hi => Some(x.lo),
        _ => None,
    };
    let mut taken = st.clone();
    let mut fall = st.clone();
    match (exact_t(a), b.as_point(), a.as_point(), exact_t(b)) {
        // t + k <op> c, with everything small and non-negative so the
        // signed and unsigned comparisons agree.
        (Some(k), Some(c), _, _) if k >= 0 && c >= 0 && c < i64::from(i32::MAX) => {
            let c = c - k; // constraint on t itself
            match kind {
                B::Eq => {
                    taken.tlo = taken.tlo.max(c);
                    taken.thi = taken.thi.min(c);
                    if fall.tlo == c {
                        fall.tlo += 1;
                    }
                    if fall.thi == c {
                        fall.thi -= 1;
                    }
                }
                B::Ne => {
                    fall.tlo = fall.tlo.max(c);
                    fall.thi = fall.thi.min(c);
                    if taken.tlo == c {
                        taken.tlo += 1;
                    }
                    if taken.thi == c {
                        taken.thi -= 1;
                    }
                }
                B::Lt | B::Ltu => {
                    taken.thi = taken.thi.min(c - 1);
                    fall.tlo = fall.tlo.max(c);
                }
                B::Ge | B::Geu => {
                    taken.tlo = taken.tlo.max(c);
                    fall.thi = fall.thi.min(c - 1);
                }
            }
        }
        // c <op> t + k: mirror.
        (_, _, Some(c), Some(k)) if k >= 0 && c >= 0 && c < i64::from(i32::MAX) => {
            let c = c - k;
            match kind {
                B::Eq => {
                    taken.tlo = taken.tlo.max(c);
                    taken.thi = taken.thi.min(c);
                    if fall.tlo == c {
                        fall.tlo += 1;
                    }
                    if fall.thi == c {
                        fall.thi -= 1;
                    }
                }
                B::Ne => {
                    fall.tlo = fall.tlo.max(c);
                    fall.thi = fall.thi.min(c);
                    if taken.tlo == c {
                        taken.tlo += 1;
                    }
                    if taken.thi == c {
                        taken.thi -= 1;
                    }
                }
                B::Lt | B::Ltu => {
                    taken.tlo = taken.tlo.max(c + 1);
                    fall.thi = fall.thi.min(c);
                }
                B::Ge | B::Geu => {
                    taken.thi = taken.thi.min(c);
                    fall.tlo = fall.tlo.max(c + 1);
                }
            }
        }
        _ => {
            if dep(a) || dep(b) || a == MVal::Unknown || b == MVal::Unknown {
                taken.tainted = true;
                fall.tainted = true;
            }
        }
    }
    let keep = |s: MState| if s.tlo <= s.thi { Some(s) } else { None };
    (keep(taken), keep(fall))
}

/// Finds a member pair `t1 ≠ t2` whose footprints can overlap.
fn overlap_pair(x: &Access, y: &Access, budget: &mut usize) -> Option<(i64, i64)> {
    let wx = x.addr.hi - x.addr.lo + x.size;
    let wy = y.addr.hi - y.addr.lo + y.size;
    let hit = |t1: i64, t2: i64| {
        let sx = x.addr.lo + x.addr.a * t1;
        let sy = y.addr.lo + y.addr.a * t2;
        sx < sy + wy && sy < sx + wx
    };
    if x.addr.a == y.addr.a {
        // Equal strides: overlap depends only on the member distance
        // `d = t1 - t2`, so one representative pair per distance.
        let dmin = x.tlo - y.thi;
        let dmax = x.thi - y.tlo;
        for d in dmin..=dmax {
            if d == 0 {
                continue;
            }
            let t2 = y.tlo.max(x.tlo - d);
            if t2 > y.thi || t2 + d > x.thi {
                continue;
            }
            if *budget == 0 {
                return None;
            }
            *budget -= 1;
            if hit(t2 + d, t2) {
                return Some((t2 + d, t2));
            }
        }
        return None;
    }
    for t1 in x.tlo..=x.thi {
        for t2 in y.tlo..=y.thi {
            if t1 == t2 {
                continue;
            }
            if *budget == 0 {
                return None;
            }
            *budget -= 1;
            if hit(t1, t2) {
                return Some((t1, t2));
            }
        }
    }
    None
}

/// Renders one member's footprint, e.g. `[0x80000040, 0x80000044)`.
fn footprint_str(addr: &Aff, size: i64, t: i64) -> String {
    let s = addr.lo + addr.a * t;
    let e = addr.hi + addr.a * t + size;
    format!("[{s:#x}, {e:#x})")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aff(a: i64, lo: i64, hi: i64) -> Aff {
        Aff { a, lo, hi }
    }

    #[test]
    fn meet_widens_point_interval_unknown() {
        let p0 = MVal::point(4);
        let p1 = MVal::point(8);
        let widened = p0.meet(p1);
        assert_eq!(widened, MVal::Abs(aff(0, 4, 8)));
        // Absorbing a contained point is stable...
        assert_eq!(widened.meet(MVal::point(6)), widened);
        // ...but growing an interval again gives up.
        assert_eq!(widened.meet(MVal::point(9)), MVal::Unknown);
        // Stride mismatch gives up immediately.
        assert_eq!(
            MVal::Abs(aff(4, 0, 0)).meet(MVal::Abs(aff(8, 0, 0))),
            MVal::Unknown
        );
        // Private stays private only against itself.
        assert_eq!(MVal::Priv.meet(MVal::Priv), MVal::Priv);
        assert_eq!(MVal::Priv.meet(p0), MVal::Unknown);
    }

    #[test]
    fn affine_arithmetic() {
        let t4 = MVal::Abs(aff(4, 0, 0));
        assert_eq!(t4.add(MVal::point(16)), MVal::Abs(aff(4, 16, 16)));
        assert_eq!(t4.scale(8), MVal::Abs(aff(32, 0, 0)));
        assert_eq!(t4.sub(t4), MVal::point(0));
        assert_eq!(MVal::Priv.add(MVal::point(-64)), MVal::Priv);
        assert_eq!(MVal::Priv.add(t4), MVal::Unknown);
        // Magnitude clamp.
        assert_eq!(MVal::point(1 << 33).scale(1 << 10), MVal::Unknown);
    }

    #[test]
    fn overlap_disjoint_strides() {
        // sw to base + 16t, 4 bytes, team of 4: provably disjoint.
        let w = |pc: u32| Access {
            pc,
            write: true,
            addr: aff(16, 0x8000_0000, 0x8000_0000),
            size: 4,
            tlo: 0,
            thi: 3,
            tainted: false,
        };
        let mut budget = 1000;
        assert_eq!(overlap_pair(&w(0), &w(0), &mut budget), None);
        // A footprint wider than the stride makes t and t+1 collide.
        let wide = Access { size: 20, ..w(4) };
        assert!(overlap_pair(&wide, &wide, &mut budget).is_some());
    }

    #[test]
    fn overlap_const_vs_stride() {
        // Member-strided writes at 0x80000000 + 8t (4 bytes) vs a fixed
        // read at 0x80000010: only member t=2 touches it.
        let w = Access {
            pc: 0,
            write: true,
            addr: aff(8, 0x8000_0000, 0x8000_0000),
            size: 4,
            tlo: 0,
            thi: 7,
            tainted: false,
        };
        let r = Access {
            pc: 4,
            write: false,
            addr: aff(0, 0x8000_0010, 0x8000_0010),
            size: 4,
            tlo: 0,
            thi: 7,
            tainted: false,
        };
        let mut budget = 1000;
        let (t1, t2) = overlap_pair(&w, &r, &mut budget).unwrap();
        assert_eq!(t1, 2);
        assert_ne!(t1, t2);
    }
}
