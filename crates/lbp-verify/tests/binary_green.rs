//! Every green program in the repository must verify clean: the binary
//! protocol analysis may not reject (or even error on) any example,
//! compiled C program, or paper kernel that runs correctly.

use lbp_kernels::matmul::{Matmul, Version};
use lbp_kernels::sensor::SensorApp;
use lbp_kernels::simple::{self, VectorParams};
use lbp_verify::{accepted, verify_image, Severity};

fn repo_path(rel: &str) -> String {
    format!("{}/../../{rel}", env!("CARGO_MANIFEST_DIR"))
}

fn assert_clean(name: &str, image: &lbp_asm::Image) {
    let diags = verify_image(image);
    let errors: Vec<String> = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| d.to_string())
        .collect();
    assert!(
        accepted(&diags),
        "{name} must verify clean but got:\n{}",
        errors.join("\n")
    );
}

#[test]
fn green_asm_examples_verify_clean() {
    for file in ["examples/asm/mul.s", "examples/asm/fork2.s"] {
        let source = std::fs::read_to_string(repo_path(file)).unwrap();
        let image = lbp_asm::assemble(&source).unwrap();
        assert_clean(file, &image);
    }
}

#[test]
fn compiled_c_examples_verify_clean() {
    for file in [
        "examples/c/hello_team.c",
        "examples/c/matmul.c",
        "examples/c/reduce.c",
        "examples/c/set_get.c",
    ] {
        let source = std::fs::read_to_string(repo_path(file)).unwrap();
        let compiled = lbp_cc::compile(&source).unwrap();
        assert_clean(file, &compiled.image);
    }
}

#[test]
fn matmul_kernels_verify_clean() {
    for version in [
        Version::Base,
        Version::Copy,
        Version::Distributed,
        Version::DistributedCopy,
        Version::Tiled,
    ] {
        let mm = Matmul::new(16, version);
        let image = mm.build();
        assert_clean(version.name(), &image);
    }
}

#[test]
fn simple_kernels_verify_clean() {
    let p = VectorParams::new(4, 32);
    let programs = [
        ("set_get", simple::set_get_program(p, 3)),
        ("stencil", simple::stencil_program(p)),
        ("dot_product", simple::dot_product_program(p)),
        ("prefix_sum", simple::prefix_sum_program(p)),
        ("histogram", simple::histogram_program(p)),
        ("odd_even_sort", simple::odd_even_sort_program(4, 7)),
    ];
    for (name, program) in programs {
        let image = program.build().unwrap();
        assert_clean(name, &image);
    }
}

#[test]
fn sensor_app_verifies_clean() {
    let app = SensorApp::new(3);
    let image = app.program().build().unwrap();
    assert_clean("sensor", &image);
}
