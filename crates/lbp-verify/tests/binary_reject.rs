//! Each seeded ill-formed fixture must be rejected with its distinct
//! `lbp-diag-v1` code, and `examples/asm/hung.s` with a precise
//! wait-reason — statically, before any simulation.

use lbp_verify::{accepted, report_json, verify_image, Diag, Severity};

fn verify_file(path: &str) -> Vec<Diag> {
    let full = format!("{}/{path}", env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(&full).unwrap();
    let image = lbp_asm::assemble(&source).unwrap();
    verify_image(&image)
}

/// Asserts the fixture is rejected and its error set is exactly `codes`.
fn assert_rejected(path: &str, codes: &[&str]) -> Vec<Diag> {
    let diags = verify_file(path);
    assert!(!accepted(&diags), "{path} must be rejected");
    let mut errors: Vec<&str> = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| d.code.as_str())
        .collect();
    errors.sort_unstable();
    errors.dedup();
    assert_eq!(
        errors,
        codes,
        "{path} expected exactly {codes:?}, got:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    diags
}

#[test]
fn hung_rejected_with_wait_reason() {
    let diags = assert_rejected("../../examples/asm/hung.s", &["LBP-B001"]);
    let d = &diags[0];
    let reason = d
        .wait_reason
        .as_deref()
        .expect("B001 carries a wait-reason");
    assert!(
        reason.contains("slot 3") && reason.contains("never sent"),
        "wait-reason must name the blocked slot: {reason}"
    );
    assert!(d.line > 0, "diagnostic maps back to a source line");
    assert!(d.hint.is_some(), "fix hint attached");
}

#[test]
fn lwcv_never_sent_rejected() {
    assert_rejected("tests/fixtures/lwcv_never_sent.s", &["LBP-B002"]);
}

#[test]
fn swcv_no_fork_rejected() {
    assert_rejected("tests/fixtures/swcv_no_fork.s", &["LBP-B003"]);
}

#[test]
fn start_unmerged_rejected() {
    assert_rejected("tests/fixtures/start_unmerged.s", &["LBP-B004"]);
}

#[test]
fn missing_syncm_rejected() {
    assert_rejected("tests/fixtures/missing_syncm.s", &["LBP-B005"]);
}

#[test]
fn cont_slot_missing_rejected() {
    let diags = assert_rejected("tests/fixtures/cont_slot_missing.s", &["LBP-B006"]);
    let reason = diags[0].wait_reason.as_deref().unwrap();
    assert!(
        reason.contains("slot 8"),
        "names the missing slot: {reason}"
    );
}

#[test]
fn bad_ret_rejected() {
    assert_rejected("tests/fixtures/bad_ret.s", &["LBP-B007"]);
}

#[test]
fn falls_off_text_rejected() {
    assert_rejected("tests/fixtures/falls_off.s", &["LBP-B008"]);
}

#[test]
fn exit_with_nonzero_ra_rejected() {
    let image = lbp_asm::assemble("main:\n    li t0, -1\n    li ra, 16\n    p_ret\n").unwrap();
    let diags = verify_image(&image);
    assert!(!accepted(&diags));
    assert_eq!(diags[0].code.as_str(), "LBP-B007");
    assert!(diags[0].message.contains("nonzero return address"));
}

#[test]
fn reject_report_is_valid_diag_v1() {
    let diags = verify_file("../../examples/asm/hung.s");
    let json = report_json("examples/asm/hung.s", &diags);
    assert!(json.contains("\"schema\": \"lbp-diag-v1\""));
    assert!(json.contains("\"verdict\": \"reject\""));
    assert!(json.contains("\"code\": \"LBP-B001\""));
    assert!(json.contains("\"wait_reason\""));
}
