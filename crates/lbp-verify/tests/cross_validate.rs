//! Cross-validation of static verdicts against the dynamic
//! infrastructure: no program the verifier accepts may deadlock in the
//! simulator across the fault-free test matrix — and the one program the
//! dynamic detector catches hanging (`examples/asm/hung.s`) must already
//! be rejected statically, for the same reason. Since the M-pass, the
//! same bargain covers shared memory: every accepted program also runs
//! under the race-witness collector and must produce zero witnesses.

use lbp_kernels::matmul::{Matmul, Version};
use lbp_kernels::simple::{self, VectorParams};
use lbp_sim::{LbpConfig, Machine, SimError};
use lbp_verify::{accepted, verify_image};

fn repo(rel: &str) -> String {
    format!("{}/../../{rel}", env!("CARGO_MANIFEST_DIR"))
}

/// Verifies, then runs: accepted programs must exit without deadlock.
fn verify_then_run(name: &str, image: &lbp_asm::Image, cores: usize) {
    let diags = verify_image(image);
    assert!(
        accepted(&diags),
        "{name}: statically rejected:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    let mut m = Machine::new(LbpConfig::cores(cores), image).unwrap();
    // The dynamic side of the M-pass bargain: a statically accepted
    // program must not produce a concrete shared-memory race witness.
    m.enable_race_witness();
    match m.run(100_000_000) {
        Ok(report) => assert!(report.exited, "{name}: accepted but did not exit"),
        Err(SimError::Deadlock { .. }) => {
            panic!("{name}: verifier accepted a program that deadlocks")
        }
        Err(e) => panic!("{name}: {e}"),
    }
    assert!(
        m.race_witnesses().is_empty(),
        "{name}: statically accepted but raced dynamically: {}",
        m.race_witnesses()
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join("; ")
    );
}

#[test]
fn accepted_asm_examples_run_deadlock_free() {
    for (file, cores) in [("examples/asm/mul.s", 1), ("examples/asm/fork2.s", 2)] {
        let source = std::fs::read_to_string(repo(file)).unwrap();
        let image = lbp_asm::assemble(&source).unwrap();
        verify_then_run(file, &image, cores);
    }
}

#[test]
fn accepted_c_examples_run_deadlock_free() {
    for (file, cores) in [
        ("examples/c/hello_team.c", 2),
        ("examples/c/matmul.c", 4),
        ("examples/c/reduce.c", 2),
        ("examples/c/set_get.c", 4),
    ] {
        let source = std::fs::read_to_string(repo(file)).unwrap();
        let compiled = lbp_cc::compile(&source).unwrap();
        // Both layers must agree: source lint and binary verification.
        let lint = lbp_cc::lint(&source).unwrap();
        assert!(accepted(&lint), "{file}: lint rejected a green program");
        verify_then_run(file, &compiled.image, cores);
    }
}

#[test]
fn accepted_matmul_kernels_run_deadlock_free() {
    for version in [Version::Base, Version::Tiled] {
        let mm = Matmul::new(16, version);
        let image = mm.build();
        let diags = verify_image(&image);
        assert!(accepted(&diags), "{}: rejected", version.name());
        let mut m = mm.machine().unwrap();
        m.enable_race_witness();
        match m.run(100_000_000) {
            Ok(_) => {}
            Err(SimError::Deadlock { .. }) => {
                panic!("{}: verifier accepted a deadlocking kernel", version.name())
            }
            Err(e) => panic!("{}: {e}", version.name()),
        }
        assert!(
            m.race_witnesses().is_empty(),
            "{}: accepted kernel raced dynamically",
            version.name()
        );
        assert!(
            mm.verify(&mut m).unwrap(),
            "{}: wrong result",
            version.name()
        );
    }
}

#[test]
fn accepted_simple_kernels_run_deadlock_free() {
    let p = VectorParams::new(4, 32);
    let programs = [
        ("set_get", simple::set_get_program(p, 3)),
        ("dot_product", simple::dot_product_program(p)),
        ("stencil", simple::stencil_program(p)),
    ];
    for (name, program) in programs {
        let image = program.build().unwrap();
        verify_then_run(name, &image, 1);
    }
}

#[test]
fn the_statically_rejected_hang_does_deadlock_dynamically() {
    let source = std::fs::read_to_string(repo("examples/asm/hung.s")).unwrap();
    let image = lbp_asm::assemble(&source).unwrap();
    // Static verdict: rejected, with the B001 wait-reason.
    let diags = verify_image(&image);
    assert!(!accepted(&diags));
    assert_eq!(diags[0].code.as_str(), "LBP-B001");
    // Dynamic verdict: the simulator's detector agrees it blocks on the
    // result line.
    let mut m = Machine::new(LbpConfig::cores(1), &image).unwrap();
    match m.run(1_000_000) {
        Err(SimError::Deadlock { blocked, .. }) => {
            assert!(
                blocked.iter().any(|b| b.waiting_on.contains("p_swre")),
                "dynamic wait-reason agrees with the static one: {blocked:?}"
            );
        }
        other => panic!("hung.s must deadlock dynamically, got {other:?}"),
    }
}
