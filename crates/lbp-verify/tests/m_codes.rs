//! Each seeded M-code fixture must be flagged under exactly its own
//! code: definite races (`M001`/`M002`) reject, unprovable or
//! performance findings (`M003`–`M006`) flag but accept, and the
//! precision-boundary fixture documents where the static net ends and
//! the dynamic race-witness collector takes over.

use lbp_verify::{accepted, verify_image, Diag, Severity};

fn verify_file(path: &str) -> Vec<Diag> {
    let full = format!("{}/{path}", env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(&full).unwrap();
    let image = lbp_asm::assemble(&source).unwrap();
    verify_image(&image)
}

fn render(diags: &[Diag]) -> String {
    diags
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

/// Asserts the fixture is rejected and its error-code set is exactly
/// `codes`.
fn assert_rejected(path: &str, codes: &[&str]) -> Vec<Diag> {
    let diags = verify_file(path);
    assert!(!accepted(&diags), "{path} must be rejected");
    let mut errors: Vec<&str> = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| d.code.as_str())
        .collect();
    errors.sort_unstable();
    errors.dedup();
    assert_eq!(
        errors,
        codes,
        "{path} expected {codes:?}:\n{}",
        render(&diags)
    );
    diags
}

/// Asserts the fixture is accepted yet every diagnostic it gets carries
/// exactly the code `code`.
fn assert_flagged(path: &str, code: &str) -> Vec<Diag> {
    let diags = verify_file(path);
    assert!(
        accepted(&diags),
        "{path} must stay accepted:\n{}",
        render(&diags)
    );
    assert!(!diags.is_empty(), "{path} must be flagged");
    let mut codes: Vec<&str> = diags.iter().map(|d| d.code.as_str()).collect();
    codes.sort_unstable();
    codes.dedup();
    assert_eq!(
        codes,
        [code],
        "{path} expected only {code}:\n{}",
        render(&diags)
    );
    diags
}

#[test]
fn overlapping_write_rejected() {
    let diags = assert_rejected("tests/fixtures/m_overlap_write.s", &["LBP-M001"]);
    let d = diags
        .iter()
        .find(|d| d.code.as_str() == "LBP-M001")
        .unwrap();
    let witness = d
        .witness
        .as_deref()
        .expect("M001 carries a member-pair witness");
    assert!(
        witness.contains("member t=") && witness.contains("while member t="),
        "witness names the two members: {witness}"
    );
    assert!(d.pc.is_some(), "binary diagnostic carries the faulting pc");
    assert!(d.hint.is_some(), "fix hint attached");
}

#[test]
fn racing_read_rejected() {
    let diags = assert_rejected("tests/fixtures/m_racing_read.s", &["LBP-M002"]);
    let d = diags
        .iter()
        .find(|d| d.code.as_str() == "LBP-M002")
        .unwrap();
    assert!(d.message.contains("reads"), "names the read: {}", d.message);
}

#[test]
fn unprovable_subscript_flagged_but_accepted() {
    let diags = assert_flagged("tests/fixtures/m_unprovable_subscript.s", "LBP-M003");
    assert!(diags.iter().all(|d| d.severity == Severity::Warning));
}

#[test]
fn unknown_store_flagged_but_accepted() {
    let diags = assert_flagged("tests/fixtures/m_unknown_store.s", "LBP-M004");
    assert!(diags[0].message.contains("unknown provenance"));
}

#[test]
fn escaping_pointer_flagged_but_accepted() {
    assert_flagged("tests/fixtures/m_escaping_pointer.s", "LBP-M005");
}

#[test]
fn bank_aliasing_noted_but_accepted() {
    let diags = assert_flagged("tests/fixtures/m_bank_alias.s", "LBP-M006");
    assert_eq!(diags[0].severity, Severity::Info);
    assert!(
        diags[0].message.contains("bank 0"),
        "names the serializing bank: {}",
        diags[0].message
    );
}

/// The precision boundary, static half: the dynamic-only fixture passes
/// verification with nothing stronger than the unknown-provenance
/// warning. Its dynamic half — the race-witness collector catching the
/// concrete overlap — lives in the workspace-level `race_identity` test
/// and the fuzzer's `race` oracle.
#[test]
fn dynamic_only_race_is_statically_accepted() {
    assert_flagged("tests/fixtures/race_dynamic_only.s", "LBP-M004");
}

/// Green examples stay green with the M-pass in the pipeline: no M
/// *error* on any committed example (warnings such as `M004` on
/// compiler-generated addressing are expected and accepted).
#[test]
fn committed_examples_stay_m_clean() {
    for file in ["../../examples/asm/mul.s", "../../examples/asm/fork2.s"] {
        let diags = verify_file(file);
        assert!(accepted(&diags), "{file}:\n{}", render(&diags));
    }
    for file in ["../../examples/c/matmul.c", "../../examples/c/reduce.c"] {
        let full = format!("{}/{file}", env!("CARGO_MANIFEST_DIR"));
        let source = std::fs::read_to_string(&full).unwrap();
        let compiled = lbp_cc::compile(&source).unwrap();
        let diags = verify_image(&compiled.image);
        assert!(accepted(&diags), "{file}:\n{}", render(&diags));
    }
}
