# Ill-formed Fig. 8: the continuation values are still in flight when
# the forked hart starts — the p_syncm drain between the last p_swcv and
# the p_jalr is missing. Expected: LBP-B005.
main:
    li    t0, -1
    p_set t0
    la    ra, rp
    p_fn   t6
    p_swcv ra, t6, 0
    p_swcv t0, t6, 4
    p_merge t0, t0, t6
    la    a0, thread
    p_jalr ra, t0, a0
    p_lwcv ra, 0
    p_lwcv t0, 4
    li    t0, -1
    li    ra, 0
    p_ret
rp:
    li    t0, -1
    li    ra, 0
    p_ret
thread:
    p_ret
