/* Racy: hart t reads v[t+1] while hart t+1 writes it — a loop-carried
 * dependence across team members running concurrently.
 * Expected: LBP-S003 (error, write/read hart-pair witness). */
int v[8];
void main(void) {
    int t;
    omp_set_num_threads(4);
#pragma omp parallel for
    for (t = 0; t < 4; t++) v[t] = v[t + 1] + 1;
}
