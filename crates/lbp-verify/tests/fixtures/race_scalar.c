/* Racy: every hart of the team writes the shared scalar g.
 * Expected: LBP-S001 (error, hart-pair witness). */
int g;
void main(void) {
    int t;
    omp_set_num_threads(4);
#pragma omp parallel for
    for (t = 0; t < 4; t++) g = t;
}
