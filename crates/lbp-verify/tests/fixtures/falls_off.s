# Ill-formed: no p_ret — control falls off the end of the text section.
# Expected: LBP-B008.
main:
    li    a0, 1
    addi  a0, a0, 1
