/* Racy: every hart writes the same element v[0].
 * Expected: LBP-S002 (error, hart-pair witness naming the element). */
int v[8];
void main(void) {
    int t;
    omp_set_num_threads(4);
#pragma omp parallel for
    for (t = 0; t < 4; t++) v[0] = t;
}
