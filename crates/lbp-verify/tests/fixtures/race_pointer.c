/* Unprovable: a store through a pointer defeats the independence
 * analysis entirely. Expected: LBP-S005 (warning). */
int v[8];
void scatter(int *p) { *p = 7; }
void main(void) {
    int t;
    omp_set_num_threads(4);
#pragma omp parallel for
    for (t = 0; t < 4; t++) scatter(&v[t]);
}
