# Ill-formed Fig. 8: the p_jalr start passes the raw p_fn fork result
# instead of the merged identity word, so the join half is missing.
# Expected: LBP-B004.
main:
    li    t0, -1
    p_set t0
    la    ra, rp
    p_fn   t6
    p_swcv ra, t6, 0
    p_swcv t0, t6, 4
    p_syncm
    la    a0, thread
    p_jalr ra, t6, a0
    p_lwcv ra, 0
    p_lwcv t0, 4
    li    t0, -1
    li    ra, 0
    p_ret
rp:
    li    t0, -1
    li    ra, 0
    p_ret
thread:
    p_ret
