/* Ill-formed: three independent semantic errors; the lint surface must
 * report all of them, not just the first. Expected: 3 × LBP-C001. */
void main(void) {
    x = 1;
    y = 2;
    f();
}
