# The precision boundary: each member indexes the output through a value
# loaded from shared memory (always 0 at runtime), so both members write
# out[0]. Statically that store has unknown provenance — LBP-M004, a
# warning, and the program is ACCEPTED. Dynamically the race-witness
# collector catches the overlapping writes. Expected: accepted by
# lbp-verify, one write-write RaceWitness at runtime.
main:
    li   t0, -1
    addi sp, sp, -8
    sw   ra, 0(sp)
    sw   t0, 4(sp)
    p_set t0
    li   a1, 0
    la   s0, work
    la   ra, join
    li   s1, 0
    li   s2, 2
team:
    addi t5, s2, -1
    beq  s1, t5, last
    andi t4, s1, 3
    addi t3, zero, 3
    beq  t4, t3, fnext
    p_fc t6
    j    forked
fnext:
    p_fn t6
forked:
    p_swcv ra, t6, 0
    p_swcv t0, t6, 4
    p_swcv s0, t6, 8
    p_swcv a1, t6, 12
    p_swcv s2, t6, 20
    addi s1, s1, 1
    p_swcv s1, t6, 16
    addi s1, s1, -1
    p_merge t0, t0, t6
    p_syncm
    mv   s3, s0
    mv   a0, s1
    mv   t1, t0
    p_jalr ra, t0, s3
    p_lwcv ra, 0
    p_lwcv t0, 4
    p_lwcv s0, 8
    p_lwcv a1, 12
    p_lwcv s1, 16
    p_lwcv s2, 20
    j    team
last:
    mv   s3, s0
    mv   a0, s1
    mv   t1, t0
    p_set t0
    jalr s3
    p_lwcv ra, 0
    p_lwcv t0, 4
    p_ret
join:
    lw   ra, 0(sp)
    lw   t0, 4(sp)
    addi sp, sp, 8
    li   t0, -1
    li   ra, 0
    p_ret

work:
    la   a2, buf
    lw   a3, 0(a2)
    slli a3, a3, 2
    la   a4, out
    add  a4, a4, a3
    sw   a0, 0(a4)
    p_ret

.data
.align 4
buf: .space 4
.align 4
out: .space 16
