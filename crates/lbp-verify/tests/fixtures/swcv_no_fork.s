# Ill-formed: transmits a continuation value to "hart 3" — a plain
# constant, not the result of a p_fc/p_fn fork. Expected: LBP-B003.
main:
    li    t6, 3
    p_swcv ra, t6, 0
    p_syncm
    li    t0, -1
    li    ra, 0
    p_ret
