# Ill-formed: the fork transmits only cv slot 0, but the continuation on
# the forked hart also reads slot 8. (The unreachable `helper` writes
# slot 8 so the flow-insensitive liveness pass stays quiet — only the
# per-fork abstract interpretation can see this one.) Expected: LBP-B006.
main:
    li    t0, -1
    p_set t0
    la    ra, rp
    p_fn   t6
    p_swcv ra, t6, 0
    p_merge t0, t0, t6
    p_syncm
    la    a0, thread
    p_jalr ra, t0, a0
    p_lwcv ra, 0
    p_lwcv a0, 8
    li    t0, -1
    li    ra, 0
    p_ret
rp:
    li    t0, -1
    li    ra, 0
    p_ret
thread:
    p_ret
helper:
    p_fc   t6
    p_swcv a0, t6, 8
    p_syncm
    p_ret
