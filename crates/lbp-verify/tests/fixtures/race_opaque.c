/* Unprovable: the subscript t*t is not affine in the member index, so
 * hart-disjointness cannot be decided statically.
 * Expected: LBP-S004 (warning; the program is accepted). */
int v[64];
void main(void) {
    int t;
    omp_set_num_threads(4);
#pragma omp parallel for
    for (t = 0; t < 4; t++) v[t * t] = t;
}
