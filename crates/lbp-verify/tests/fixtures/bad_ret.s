# Ill-formed: commits p_ret with t0 = 5 — neither the exit sentinel (-1)
# nor an identity word built by p_set/p_merge. Expected: LBP-B007.
main:
    li    t0, 5
    li    ra, 0
    p_ret
