# Ill-formed: loads continuation-value slot 0, but no p_swcv anywhere in
# the image ever transmits slot 0. Expected: LBP-B002.
main:
    p_lwcv a0, 0
    li    t0, -1
    li    ra, 0
    p_ret
