//! `lbp-diag-v1` is a machine-readable contract, so it must survive a
//! real parser, not just substring assertions: every report — including
//! one stuffed with hostile strings — must parse with `lbp_sim::json`
//! and round-trip every field bit-exactly.

use lbp_sim::json::Json;
use lbp_verify::{report_json, Diag, DiagCode, Severity};

/// Parses a report and returns the `diags` array.
fn parse(report: &str) -> (Json, Vec<Json>) {
    let json = Json::parse(report).expect("lbp-diag-v1 must be valid JSON");
    let diags = json
        .get("diags")
        .and_then(|d| d.as_arr())
        .expect("report carries a diags array")
        .to_vec();
    (json, diags)
}

#[test]
fn hostile_strings_escape_and_round_trip() {
    // Every string field carries every JSON-hostile class at once:
    // quotes, backslashes, newlines, tabs, raw control bytes, and
    // non-ASCII text that must pass through untouched.
    let hostile = "quote\" backslash\\ newline\n tab\t bell\u{7} nul\u{0} émoji🦀";
    let program = format!("evil/{hostile}.s");
    let diags = vec![
        Diag::new(
            DiagCode::MOverlappingWrite,
            Severity::Error,
            0,
            format!("message {hostile}"),
        )
        .with_pc(0x1bc)
        .with_witness(format!("witness {hostile}"))
        .with_hint(format!("hint {hostile}")),
        Diag::new(
            DiagCode::BRecvNoSender,
            Severity::Warning,
            7,
            "plain".to_owned(),
        )
        .with_wait_reason(format!("wait {hostile}")),
    ];
    let report = report_json(&program, &diags);
    let (json, parsed) = parse(&report);

    assert_eq!(
        json.get("schema").and_then(Json::as_str),
        Some("lbp-diag-v1")
    );
    assert_eq!(
        json.get("program").and_then(Json::as_str),
        Some(program.as_str())
    );
    assert_eq!(json.get("verdict").and_then(Json::as_str), Some("reject"));

    assert_eq!(parsed.len(), 2);
    let d = &parsed[0];
    assert_eq!(d.get("code").and_then(Json::as_str), Some("LBP-M001"));
    assert_eq!(d.get("severity").and_then(Json::as_str), Some("error"));
    assert_eq!(d.get("line").and_then(Json::as_u64), Some(0));
    assert_eq!(d.get("pc").and_then(Json::as_u64), Some(0x1bc));
    assert_eq!(
        d.get("message").and_then(Json::as_str),
        Some(format!("message {hostile}").as_str()),
        "escaping must be lossless through a real parser"
    );
    assert_eq!(
        d.get("witness").and_then(Json::as_str),
        Some(format!("witness {hostile}").as_str())
    );
    assert_eq!(
        d.get("hint").and_then(Json::as_str),
        Some(format!("hint {hostile}").as_str())
    );

    let d = &parsed[1];
    assert_eq!(d.get("pc"), None, "absent pc stays absent");
    assert_eq!(d.get("witness"), None);
    assert_eq!(
        d.get("wait_reason").and_then(Json::as_str),
        Some(format!("wait {hostile}").as_str())
    );
}

#[test]
fn real_reports_parse_end_to_end() {
    // A genuine report from each producing layer: the binary M-pass on a
    // red fixture, and an empty accept.
    let source = std::fs::read_to_string(format!(
        "{}/tests/fixtures/m_overlap_write.s",
        env!("CARGO_MANIFEST_DIR")
    ))
    .unwrap();
    let image = lbp_asm::assemble(&source).unwrap();
    let diags = lbp_verify::verify_image(&image);
    let (json, parsed) = parse(&report_json("m_overlap_write.s", &diags));
    assert_eq!(json.get("verdict").and_then(Json::as_str), Some("reject"));
    assert!(!parsed.is_empty());
    let m001 = parsed
        .iter()
        .find(|d| d.get("code").and_then(Json::as_str) == Some("LBP-M001"))
        .expect("the M001 diagnostic is in the report");
    let pc = m001
        .get("pc")
        .and_then(Json::as_u64)
        .expect("M diags carry a pc");
    assert!(
        pc > 0 && pc % 4 == 0,
        "pc is a real instruction address: {pc}"
    );

    let (json, parsed) = parse(&report_json("empty.s", &[]));
    assert_eq!(json.get("verdict").and_then(Json::as_str), Some("accept"));
    assert!(parsed.is_empty());
}
