//! The source-level race lint over the seeded fixtures and the green
//! examples: each racy fixture yields its distinct `lbp-diag-v1` code,
//! every green example is accepted.

use lbp_verify::{accepted, Diag, DiagCode, Severity};

fn lint_file(path: &str) -> Vec<Diag> {
    let full = format!("{}/{path}", env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(&full).unwrap();
    lbp_cc::lint(&source).unwrap()
}

fn codes(diags: &[Diag], severity: Severity) -> Vec<&str> {
    let mut v: Vec<&str> = diags
        .iter()
        .filter(|d| d.severity == severity)
        .map(|d| d.code.as_str())
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

#[test]
fn race_scalar_rejected_with_witness() {
    let diags = lint_file("tests/fixtures/race_scalar.c");
    assert!(!accepted(&diags));
    assert_eq!(codes(&diags, Severity::Error), ["LBP-S001"]);
    let err = diags
        .iter()
        .find(|d| d.code == DiagCode::SSharedScalar)
        .unwrap();
    let w = err.witness.as_deref().unwrap();
    assert!(w.contains("t=0") && w.contains("t=1"), "{w}");
    assert_eq!(err.line, 8);
}

#[test]
fn race_const_index_rejected() {
    let diags = lint_file("tests/fixtures/race_const_index.c");
    assert!(!accepted(&diags));
    assert_eq!(codes(&diags, Severity::Error), ["LBP-S002"]);
    let err = diags
        .iter()
        .find(|d| d.code == DiagCode::SOverlappingWrite)
        .unwrap();
    assert!(err.witness.as_deref().unwrap().contains("v[0]"));
}

#[test]
fn race_carried_rejected() {
    let diags = lint_file("tests/fixtures/race_carried.c");
    assert!(!accepted(&diags));
    assert_eq!(codes(&diags, Severity::Error), ["LBP-S003"]);
}

#[test]
fn race_opaque_warns_but_accepts() {
    let diags = lint_file("tests/fixtures/race_opaque.c");
    assert!(accepted(&diags), "unprovable is a warning, not a rejection");
    assert_eq!(codes(&diags, Severity::Warning), ["LBP-S004"]);
}

#[test]
fn race_pointer_warns_but_accepts() {
    let diags = lint_file("tests/fixtures/race_pointer.c");
    assert!(accepted(&diags));
    assert_eq!(codes(&diags, Severity::Warning), ["LBP-S005"]);
}

#[test]
fn bad_sema_reports_every_error() {
    let diags = lint_file("tests/fixtures/bad_sema.c");
    assert!(!accepted(&diags));
    let errs: Vec<&Diag> = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .collect();
    assert_eq!(errs.len(), 3, "all three sema errors batched: {diags:?}");
    assert!(errs.iter().all(|d| d.code == DiagCode::CSema));
}

#[test]
fn green_c_examples_lint_clean() {
    for file in [
        "../../examples/c/hello_team.c",
        "../../examples/c/matmul.c",
        "../../examples/c/reduce.c",
        "../../examples/c/set_get.c",
    ] {
        let diags = lint_file(file);
        assert!(
            accepted(&diags),
            "{file} must lint clean, got:\n{}",
            diags
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[test]
fn five_fixture_codes_are_distinct() {
    let fixture_codes: Vec<String> = [
        "tests/fixtures/race_scalar.c",
        "tests/fixtures/race_const_index.c",
        "tests/fixtures/race_carried.c",
        "tests/fixtures/race_opaque.c",
        "tests/fixtures/race_pointer.c",
    ]
    .iter()
    .map(|f| {
        lint_file(f)
            .iter()
            .find(|d| d.severity >= Severity::Warning)
            .unwrap()
            .code
            .as_str()
            .to_owned()
    })
    .collect();
    let unique: std::collections::HashSet<&String> = fixture_codes.iter().collect();
    assert_eq!(unique.len(), 5, "{fixture_codes:?}");
}
