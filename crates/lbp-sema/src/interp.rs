//! The small-step abstract machine.
//!
//! One step executes one statement (or one loop
//! head evaluation) of one thread of control. `main` runs alone; inside
//! a parallel region the members' frames are stepped in an interleaved
//! schedule, each behind a deterministic-consistency visibility context:
//! reads see the region-entry store plus the member's own buffer, writes
//! go to the buffer, and the join folds the buffers into the store in
//! member-index order. Because no member ever observes a sibling, the
//! outcome is the same under *every* schedule — which the seeded
//! scheduler exists to demonstrate.
//!
//! Arithmetic is pinned to the target: 32-bit two's-complement wrapping
//! add/sub/mul, RISC-V M division (`x / 0 == -1`, `INT_MIN / -1 ==
//! INT_MIN`, `x % 0 == x`, `INT_MIN % -1 == 0`), shift counts masked to
//! five bits, `>>` arithmetic. The same table the code generator's
//! constant folder and the simulator's ALU implement.

use std::collections::{BTreeMap, HashMap};

use lbp_cc::ast::{BinOp, Expr, Function, Init, Place, Stmt, UnOp};
use lbp_cc::sema::Checked;

use crate::{Effect, Layout, Outcome, Trap};

/// Member-interleaving schedule. Any schedule yields the same outcome;
/// offering more than one is how the harness *checks* that claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Step live members in index order, one statement each per round.
    RoundRobin,
    /// Pick the next member to step with a splitmix64 stream.
    Seeded(u64),
}

/// Interpreter resource and scheduling options.
#[derive(Debug, Clone, Copy)]
pub struct InterpOptions {
    /// Total evaluation-step budget (statements + expression nodes);
    /// exceeding it traps with class `budget`.
    pub budget: u64,
    /// Maximum call depth; exceeding it traps with class `depth`.
    pub max_call_depth: usize,
    /// Member interleaving.
    pub schedule: Schedule,
}

impl Default for InterpOptions {
    fn default() -> InterpOptions {
        InterpOptions {
            budget: 50_000_000,
            max_call_depth: 256,
            schedule: Schedule::RoundRobin,
        }
    }
}

/// Runs a checked translation unit to completion.
///
/// # Errors
///
/// Returns the first semantic [`Trap`] (undefined behavior or resource
/// exhaustion).
pub fn run(cx: &Checked, layout: &Layout, opts: &InterpOptions) -> Result<Outcome, Trap> {
    let mut it = Interp::new(cx, layout, opts);
    let main = cx
        .unit
        .functions
        .iter()
        .find(|f| f.name == "main")
        .ok_or(Trap {
            class: "no-main",
            line: 1,
            message: "program has no `main`".to_owned(),
        })?;
    let mut frame = it.new_frame(main, &[], main.line)?;
    let mut vis = Vis { member: None };
    while it.step_frame(&mut frame, &mut vis)? {}
    it.effects.push(Effect::Exit);
    Ok(Outcome {
        globals: cx
            .unit
            .globals
            .iter()
            .map(|g| g.name.clone())
            .zip(it.store)
            .collect(),
        effects: it.effects,
    })
}

/// Base of the synthetic arena holding stack-local arrays. Disjoint
/// from shared memory (globals live at `SHARED_BASE` and above), so a
/// resolved address is unambiguously one or the other.
const ARENA_BASE: u32 = 0x4000_0000;

/// Control-stack entry of one frame.
#[derive(Clone, Copy)]
enum Ctrl<'a> {
    /// A statement sequence with a cursor.
    Seq { stmts: &'a [Stmt], pos: usize },
    /// A loop marker. `While` is a loop with no step; `in_step` is true
    /// while the body (or the step statement) is above the marker.
    Loop {
        cond: Option<&'a Expr>,
        step: Option<&'a Stmt>,
        body: &'a [Stmt],
        in_step: bool,
        line: usize,
    },
}

/// One thread of control: register locals, private stack arrays, the
/// control stack, and the return slot.
struct Frame<'a> {
    /// Every register-local name (parameters first, then all `Decl`s,
    /// flat across nested blocks — mirroring the code generator's
    /// one-scope-per-function register allocation). `None` until the
    /// local is first written; reading `None` traps.
    locals: HashMap<&'a str, Option<i32>>,
    /// Stack arrays: name → (arena base address, element count).
    arrays: HashMap<&'a str, (u32, u32)>,
    ctrl: Vec<Ctrl<'a>>,
    /// Source line of the statement being executed (trap anchoring).
    line: usize,
    ret: Option<i32>,
    returned: bool,
}

/// A member's deterministic-consistency context: its write buffer and
/// its pending effect trace, both folded in at the join.
#[derive(Default)]
struct MemberCtx {
    buffer: BTreeMap<(usize, u32), i32>,
    effects: Vec<Effect>,
}

/// What the executing thread can see: `None` for `main` (reads and
/// writes go straight to the store), `Some` for a region member.
struct Vis<'m> {
    member: Option<&'m mut MemberCtx>,
}

struct MemberRun<'a> {
    frame: Frame<'a>,
    ctx: MemberCtx,
    done: bool,
}

struct Interp<'a> {
    cx: &'a Checked,
    layout: &'a Layout,
    opts: &'a InterpOptions,
    /// Function name → index in `cx.unit.functions`.
    fns: HashMap<&'a str, usize>,
    /// Global name → index in `cx.unit.globals`.
    gidx: HashMap<&'a str, usize>,
    /// The shared store: one word vector per global, declaration order.
    store: Vec<Vec<i32>>,
    arena: Arena,
    effects: Vec<Effect>,
    steps: u64,
    depth: usize,
}

impl<'a> Interp<'a> {
    fn new(cx: &'a Checked, layout: &'a Layout, opts: &'a InterpOptions) -> Interp<'a> {
        let store = cx
            .unit
            .globals
            .iter()
            .map(|g| {
                let mut words = vec![0i32; g.elems as usize];
                match &g.fill {
                    Some(Init::Uniform(v)) => words.fill(*v as i32),
                    Some(Init::List(vs)) => {
                        for (w, v) in words.iter_mut().zip(vs) {
                            *w = *v as i32;
                        }
                    }
                    None => {}
                }
                words
            })
            .collect();
        Interp {
            cx,
            layout,
            opts,
            fns: cx
                .unit
                .functions
                .iter()
                .enumerate()
                .map(|(i, f)| (f.name.as_str(), i))
                .collect(),
            gidx: cx
                .unit
                .globals
                .iter()
                .enumerate()
                .map(|(i, g)| (g.name.as_str(), i))
                .collect(),
            store,
            arena: Arena::default(),
            effects: Vec::new(),
            steps: 0,
            depth: 0,
        }
    }

    fn trap(&self, class: &'static str, line: usize, message: impl Into<String>) -> Trap {
        Trap {
            class,
            line,
            message: message.into(),
        }
    }

    fn charge(&mut self, line: usize) -> Result<(), Trap> {
        self.steps += 1;
        if self.steps > self.opts.budget {
            return Err(self.trap("budget", line, "evaluation step budget exhausted"));
        }
        Ok(())
    }

    // ----- frames -----

    fn new_frame(&mut self, f: &'a Function, args: &[i32], line: usize) -> Result<Frame<'a>, Trap> {
        self.frame_of(&f.body, &f.params, args, line)
    }

    /// Builds a frame for a body with the given parameters bound. Local
    /// name collection mirrors the code generator exactly: parameters
    /// first, then every `Decl` in a flat walk that skips parallel
    /// bodies (they become separate functions with their own locals).
    fn frame_of(
        &mut self,
        body: &'a [Stmt],
        params: &'a [String],
        args: &[i32],
        line: usize,
    ) -> Result<Frame<'a>, Trap> {
        let mut locals: HashMap<&'a str, Option<i32>> = HashMap::new();
        for (p, v) in params.iter().zip(args) {
            locals.insert(p.as_str(), Some(*v));
        }
        let mut names: Vec<&'a str> = Vec::new();
        collect_decls(body, &mut names);
        for n in names {
            locals.entry(n).or_insert(None);
        }
        let mut arrays = HashMap::new();
        let mut decls: Vec<(&'a str, u32)> = Vec::new();
        collect_array_decls(body, &mut decls);
        for (name, elems) in decls {
            let base = self.arena.alloc(elems);
            arrays.insert(name, (base, elems));
        }
        Ok(Frame {
            locals,
            arrays,
            ctrl: vec![Ctrl::Seq {
                stmts: body,
                pos: 0,
            }],
            line,
            ret: None,
            returned: false,
        })
    }

    /// Executes one statement (or loop-head evaluation) of a frame.
    /// Returns `false` once the frame has run to completion.
    fn step_frame(&mut self, fr: &mut Frame<'a>, vis: &mut Vis<'_>) -> Result<bool, Trap> {
        loop {
            let Some(top) = fr.ctrl.last().copied() else {
                return Ok(false);
            };
            match top {
                Ctrl::Seq { stmts, pos } => {
                    if pos >= stmts.len() {
                        fr.ctrl.pop();
                        continue;
                    }
                    if let Some(Ctrl::Seq { pos, .. }) = fr.ctrl.last_mut() {
                        *pos += 1;
                    }
                    self.exec_stmt(&stmts[pos], fr, vis)?;
                    return Ok(true);
                }
                Ctrl::Loop {
                    cond,
                    step,
                    body,
                    in_step,
                    line,
                } => {
                    fr.line = line;
                    self.charge(line)?;
                    if in_step {
                        if let Some(Ctrl::Loop { in_step, .. }) = fr.ctrl.last_mut() {
                            *in_step = false;
                        }
                        if let Some(st) = step {
                            self.exec_stmt(st, fr, vis)?;
                        }
                        return Ok(true);
                    }
                    let taken = match cond {
                        Some(c) => self.eval(c, fr, vis)? != 0,
                        None => true,
                    };
                    if taken {
                        if let Some(Ctrl::Loop { in_step, .. }) = fr.ctrl.last_mut() {
                            *in_step = true;
                        }
                        fr.ctrl.push(Ctrl::Seq {
                            stmts: body,
                            pos: 0,
                        });
                    } else {
                        fr.ctrl.pop();
                    }
                    return Ok(true);
                }
            }
        }
    }

    fn exec_stmt(
        &mut self,
        s: &'a Stmt,
        fr: &mut Frame<'a>,
        vis: &mut Vis<'_>,
    ) -> Result<(), Trap> {
        fr.line = stmt_line(s);
        self.charge(fr.line)?;
        match s {
            Stmt::Decl { name, init, .. } => {
                if let Some(e) = init {
                    let v = self.eval(e, fr, vis)?;
                    fr.locals.insert(name.as_str(), Some(v));
                }
                Ok(())
            }
            // Allocated at frame creation, like the prologue does.
            Stmt::DeclArray { .. } => Ok(()),
            Stmt::Assign { lhs, rhs, .. } => {
                let v = self.eval(rhs, fr, vis)?;
                self.store_place(lhs, v, fr, vis)
            }
            Stmt::Expr(e, _) => self.eval(e, fr, vis).map(|_| ()),
            Stmt::If {
                cond, then, els, ..
            } => {
                let c = self.eval(cond, fr, vis)?;
                fr.ctrl.push(Ctrl::Seq {
                    stmts: if c != 0 { then } else { els },
                    pos: 0,
                });
                Ok(())
            }
            Stmt::While { cond, body, line } => {
                fr.ctrl.push(Ctrl::Loop {
                    cond: Some(cond),
                    step: None,
                    body,
                    in_step: false,
                    line: *line,
                });
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                line,
            } => {
                // The marker goes under the init statement's control so
                // a compound init runs to completion before the first
                // condition test.
                fr.ctrl.push(Ctrl::Loop {
                    cond: cond.as_ref(),
                    step: step.as_ref().as_ref(),
                    body,
                    in_step: false,
                    line: *line,
                });
                if let Some(i) = init.as_ref() {
                    self.exec_stmt(i, fr, vis)?;
                }
                Ok(())
            }
            Stmt::Return(value, _) => {
                fr.ret = match value {
                    Some(e) => Some(self.eval(e, fr, vis)?),
                    None => None,
                };
                fr.returned = true;
                fr.ctrl.clear();
                Ok(())
            }
            Stmt::Break(_) => {
                while let Some(top) = fr.ctrl.pop() {
                    if matches!(top, Ctrl::Loop { .. }) {
                        break;
                    }
                }
                Ok(())
            }
            Stmt::Continue(_) => {
                while let Some(top) = fr.ctrl.last() {
                    if matches!(top, Ctrl::Loop { .. }) {
                        break;
                    }
                    fr.ctrl.pop();
                }
                Ok(())
            }
            Stmt::ParallelFor {
                var, count, body, ..
            } => {
                let team = *count as u32;
                let mut members = Vec::with_capacity(team as usize);
                for i in 0..team {
                    let frame =
                        self.frame_of(body, std::slice::from_ref(var), &[i as i32], fr.line)?;
                    members.push(MemberRun {
                        frame,
                        ctx: MemberCtx::default(),
                        done: false,
                    });
                }
                self.run_region(members, team, vis, fr.line)
            }
            Stmt::ParallelSections { sections, .. } => {
                let team = sections.len() as u32;
                let mut members = Vec::with_capacity(sections.len());
                for body in sections {
                    let frame = self.frame_of(body, &[], &[], fr.line)?;
                    members.push(MemberRun {
                        frame,
                        ctx: MemberCtx::default(),
                        done: false,
                    });
                }
                self.run_region(members, team, vis, fr.line)
            }
        }
    }

    /// Forks a team, interleaves its members under DC visibility, and
    /// joins: buffers fold into the store in member-index order.
    fn run_region(
        &mut self,
        mut members: Vec<MemberRun<'a>>,
        team: u32,
        vis: &mut Vis<'_>,
        line: usize,
    ) -> Result<(), Trap> {
        if vis.member.is_some() {
            // Sema rejects nested regions; refuse rather than guess.
            return Err(self.trap("nested-region", line, "nested parallel region"));
        }
        self.effects.push(Effect::Fork { team });
        let mut rng = match self.opts.schedule {
            Schedule::Seeded(seed) => Some(seed),
            Schedule::RoundRobin => None,
        };
        loop {
            let live: Vec<usize> = members
                .iter()
                .enumerate()
                .filter(|(_, m)| !m.done)
                .map(|(i, _)| i)
                .collect();
            if live.is_empty() {
                break;
            }
            match rng {
                None => {
                    for i in live {
                        self.step_member(&mut members[i])?;
                    }
                }
                Some(ref mut state) => {
                    let pick = live[(splitmix64(state) % live.len() as u64) as usize];
                    self.step_member(&mut members[pick])?;
                }
            }
        }
        for m in members {
            for ((gi, elem), v) in m.ctx.buffer {
                self.store[gi][elem as usize] = v;
            }
            self.effects.extend(m.ctx.effects);
        }
        self.effects.push(Effect::Join { team });
        Ok(())
    }

    fn step_member(&mut self, m: &mut MemberRun<'a>) -> Result<(), Trap> {
        let mut vis = Vis {
            member: Some(&mut m.ctx),
        };
        if !self.step_frame(&mut m.frame, &mut vis)? {
            m.done = true;
        }
        Ok(())
    }

    // ----- expressions -----

    fn eval(&mut self, e: &'a Expr, fr: &mut Frame<'a>, vis: &mut Vis<'_>) -> Result<i32, Trap> {
        self.charge(fr.line)?;
        match e {
            Expr::Int(v) => Ok(*v as i32),
            Expr::Var(name) => {
                if let Some(&(base, _)) = fr.arrays.get(name.as_str()) {
                    // Array names decay to their address.
                    return Ok(base as i32);
                }
                if let Some(&slot) = fr.locals.get(name.as_str()) {
                    let line = fr.line;
                    return slot.ok_or_else(|| {
                        self.trap(
                            "uninit",
                            line,
                            format!("read of uninitialized local `{name}`"),
                        )
                    });
                }
                let gi = self.gidx[name.as_str()];
                if self.cx.globals.get(name.as_str()).copied().unwrap_or(false) {
                    Ok(self.layout.base(gi) as i32)
                } else {
                    Ok(self.read_global(gi, 0, vis))
                }
            }
            Expr::Index(name, idx) => {
                let addr = self.element_addr(name, idx, fr, vis)?;
                self.read_addr(addr, fr.line, vis)
            }
            Expr::Deref(p) => {
                let addr = self.eval(p, fr, vis)? as u32;
                self.read_addr(addr, fr.line, vis)
            }
            Expr::AddrOf(place) => match place.as_ref() {
                Place::Var(name) => {
                    if let Some(&(base, _)) = fr.arrays.get(name.as_str()) {
                        return Ok(base as i32);
                    }
                    let gi = self.gidx[name.as_str()];
                    Ok(self.layout.base(gi) as i32)
                }
                Place::Index(name, idx) => self.element_addr(name, idx, fr, vis).map(|a| a as i32),
                Place::Deref(inner) => self.eval(inner, fr, vis),
            },
            Expr::Unary(op, inner) => {
                let v = self.eval(inner, fr, vis)?;
                Ok(match op {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::Not => (v == 0) as i32,
                    UnOp::BitNot => !v,
                })
            }
            Expr::Binary(op, a, b) => match op {
                BinOp::LAnd => {
                    let x = self.eval(a, fr, vis)?;
                    if x == 0 {
                        Ok(0)
                    } else {
                        Ok((self.eval(b, fr, vis)? != 0) as i32)
                    }
                }
                BinOp::LOr => {
                    let x = self.eval(a, fr, vis)?;
                    if x != 0 {
                        Ok(1)
                    } else {
                        Ok((self.eval(b, fr, vis)? != 0) as i32)
                    }
                }
                _ => {
                    let x = self.eval(a, fr, vis)?;
                    let y = self.eval(b, fr, vis)?;
                    Ok(apply(*op, x, y))
                }
            },
            Expr::Call(name, args) => self.call(name, args, fr, vis),
        }
    }

    fn call(
        &mut self,
        name: &'a str,
        args: &'a [Expr],
        fr: &mut Frame<'a>,
        vis: &mut Vis<'_>,
    ) -> Result<i32, Trap> {
        match name {
            "omp_set_num_threads" => {
                let v = self.eval(&args[0], fr, vis)?;
                self.push_effect(Effect::SetNumThreads(v), vis);
                return Ok(0);
            }
            "__roi_start" => {
                self.push_effect(Effect::RoiStart, vis);
                return Ok(0);
            }
            "__roi_end" => {
                self.push_effect(Effect::RoiEnd, vis);
                return Ok(0);
            }
            _ => {}
        }
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            vals.push(self.eval(a, fr, vis)?);
        }
        let cx = self.cx;
        let f = &cx.unit.functions[self.fns[name]];
        if self.depth >= self.opts.max_call_depth {
            return Err(self.trap(
                "depth",
                fr.line,
                format!("call depth limit calling `{name}`"),
            ));
        }
        self.depth += 1;
        let mut callee = self.new_frame(f, &vals, fr.line)?;
        while self.step_frame(&mut callee, vis)? {}
        self.depth -= 1;
        if callee.returned {
            // `return;` from a void function used in value position
            // lowers to 0, like the code generator's `Imm(0)`.
            Ok(callee.ret.unwrap_or(0))
        } else if f.returns_value {
            Err(self.trap(
                "missing-return",
                fr.line,
                format!("`{name}` declares `int` but fell off the end"),
            ))
        } else {
            Ok(0)
        }
    }

    // ----- memory -----

    /// Address of `name[idx]`, resolving like the code generator: stack
    /// array first, then pointer local, then global (flat, unchecked —
    /// the dereference is what's checked).
    fn element_addr(
        &mut self,
        name: &'a str,
        idx: &'a Expr,
        fr: &mut Frame<'a>,
        vis: &mut Vis<'_>,
    ) -> Result<u32, Trap> {
        let off = self.eval(idx, fr, vis)?.wrapping_mul(4) as u32;
        if let Some(&(base, _)) = fr.arrays.get(name) {
            return Ok(base.wrapping_add(off));
        }
        if let Some(&slot) = fr.locals.get(name) {
            let line = fr.line;
            let p = slot.ok_or_else(|| {
                self.trap(
                    "uninit",
                    line,
                    format!("indexing uninitialized pointer `{name}`"),
                )
            })?;
            return Ok((p as u32).wrapping_add(off));
        }
        let gi = self.gidx[name];
        Ok(self.layout.base(gi).wrapping_add(off))
    }

    fn store_place(
        &mut self,
        place: &'a Place,
        v: i32,
        fr: &mut Frame<'a>,
        vis: &mut Vis<'_>,
    ) -> Result<(), Trap> {
        match place {
            Place::Var(name) => {
                if let Some(slot) = fr.locals.get_mut(name.as_str()) {
                    *slot = Some(v);
                    return Ok(());
                }
                let gi = self.gidx[name.as_str()];
                self.write_global(gi, 0, v, vis);
                Ok(())
            }
            Place::Index(name, idx) => {
                let addr = self.element_addr(name, idx, fr, vis)?;
                self.write_addr(addr, v, fr.line, vis)
            }
            Place::Deref(p) => {
                let addr = self.eval(p, fr, vis)? as u32;
                self.write_addr(addr, v, fr.line, vis)
            }
        }
    }

    fn read_global(&self, gi: usize, elem: u32, vis: &Vis<'_>) -> i32 {
        if let Some(m) = vis.member.as_deref() {
            if let Some(&v) = m.buffer.get(&(gi, elem)) {
                return v;
            }
        }
        self.store[gi][elem as usize]
    }

    fn write_global(&mut self, gi: usize, elem: u32, v: i32, vis: &mut Vis<'_>) {
        match vis.member.as_deref_mut() {
            Some(m) => {
                m.buffer.insert((gi, elem), v);
            }
            None => self.store[gi][elem as usize] = v,
        }
    }

    fn read_addr(&mut self, addr: u32, line: usize, vis: &mut Vis<'_>) -> Result<i32, Trap> {
        if !addr.is_multiple_of(4) {
            return Err(self.trap("misaligned", line, format!("misaligned load at {addr:#x}")));
        }
        if let Some((gi, elem)) = self.layout.resolve(addr) {
            return Ok(self.read_global(gi, elem, vis));
        }
        match self.arena.read(addr) {
            Some(Some(v)) => Ok(v),
            Some(None) => Err(self.trap(
                "uninit",
                line,
                format!("read of uninitialized stack array word at {addr:#x}"),
            )),
            None => Err(self.trap(
                "wild-address",
                line,
                format!("load from unmapped address {addr:#x}"),
            )),
        }
    }

    fn write_addr(
        &mut self,
        addr: u32,
        v: i32,
        line: usize,
        vis: &mut Vis<'_>,
    ) -> Result<(), Trap> {
        if !addr.is_multiple_of(4) {
            return Err(self.trap("misaligned", line, format!("misaligned store at {addr:#x}")));
        }
        if let Some((gi, elem)) = self.layout.resolve(addr) {
            self.write_global(gi, elem, v, vis);
            return Ok(());
        }
        if self.arena.write(addr, v) {
            return Ok(());
        }
        Err(self.trap(
            "wild-address",
            line,
            format!("store to unmapped address {addr:#x}"),
        ))
    }

    fn push_effect(&mut self, e: Effect, vis: &mut Vis<'_>) {
        match vis.member.as_deref_mut() {
            Some(m) => m.effects.push(e),
            None => self.effects.push(e),
        }
    }
}

/// Exact 32-bit operator semantics shared by the constant folder and
/// the simulator ALU.
fn apply(op: BinOp, x: i32, y: i32) -> i32 {
    match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        BinOp::Div => {
            if y == 0 {
                -1
            } else {
                x.wrapping_div(y)
            }
        }
        BinOp::Rem => {
            if y == 0 {
                x
            } else {
                x.wrapping_rem(y)
            }
        }
        BinOp::And => x & y,
        BinOp::Or => x | y,
        BinOp::Xor => x ^ y,
        BinOp::Shl => x.wrapping_shl(y as u32 & 31),
        BinOp::Shr => x.wrapping_shr(y as u32 & 31),
        BinOp::Lt => (x < y) as i32,
        BinOp::Le => (x <= y) as i32,
        BinOp::Gt => (x > y) as i32,
        BinOp::Ge => (x >= y) as i32,
        BinOp::Eq => (x == y) as i32,
        BinOp::Ne => (x != y) as i32,
        BinOp::LAnd | BinOp::LOr => unreachable!("short-circuit handled in eval"),
    }
}

fn stmt_line(s: &Stmt) -> usize {
    match s {
        Stmt::Decl { line, .. }
        | Stmt::DeclArray { line, .. }
        | Stmt::Assign { line, .. }
        | Stmt::Expr(_, line)
        | Stmt::If { line, .. }
        | Stmt::While { line, .. }
        | Stmt::For { line, .. }
        | Stmt::Return(_, line)
        | Stmt::Break(line)
        | Stmt::Continue(line)
        | Stmt::ParallelFor { line, .. }
        | Stmt::ParallelSections { line, .. } => *line,
    }
}

/// Flat `Decl` walk, skipping parallel bodies (they become separate
/// functions) — the code generator's `collect_locals` shape.
fn collect_decls<'a>(stmts: &'a [Stmt], out: &mut Vec<&'a str>) {
    for s in stmts {
        match s {
            Stmt::Decl { name, .. } => out.push(name.as_str()),
            Stmt::If { then, els, .. } => {
                collect_decls(then, out);
                collect_decls(els, out);
            }
            Stmt::While { body, .. } => collect_decls(body, out),
            Stmt::For {
                init, step, body, ..
            } => {
                if let Some(i) = init.as_ref() {
                    collect_decls(std::slice::from_ref(i), out);
                }
                collect_decls(body, out);
                if let Some(st) = step.as_ref() {
                    collect_decls(std::slice::from_ref(st), out);
                }
            }
            _ => {}
        }
    }
}

fn collect_array_decls<'a>(stmts: &'a [Stmt], out: &mut Vec<(&'a str, u32)>) {
    for s in stmts {
        match s {
            Stmt::DeclArray { name, elems, .. } => out.push((name.as_str(), *elems)),
            Stmt::If { then, els, .. } => {
                collect_array_decls(then, out);
                collect_array_decls(els, out);
            }
            Stmt::While { body, .. } => collect_array_decls(body, out),
            Stmt::For {
                init, step, body, ..
            } => {
                if let Some(i) = init.as_ref() {
                    collect_array_decls(std::slice::from_ref(i), out);
                }
                collect_array_decls(body, out);
                if let Some(st) = step.as_ref() {
                    collect_array_decls(std::slice::from_ref(st), out);
                }
            }
            _ => {}
        }
    }
}

/// Arena of stack-local arrays. Blocks are never freed (total size is
/// bounded by the step budget); cells trap on read-before-write.
#[derive(Default)]
struct Arena {
    /// `(base, cells)`, sorted by base.
    blocks: Vec<(u32, Vec<Option<i32>>)>,
    used: u32,
}

impl Arena {
    fn alloc(&mut self, elems: u32) -> u32 {
        let base = ARENA_BASE + self.used;
        self.used += 4 * elems.max(1);
        self.blocks.push((base, vec![None; elems as usize]));
        base
    }

    fn locate(&self, addr: u32) -> Option<(usize, usize)> {
        let i = self.blocks.partition_point(|(b, _)| *b <= addr);
        if i == 0 {
            return None;
        }
        let (base, cells) = &self.blocks[i - 1];
        let off = (addr - base) as usize / 4;
        (off < cells.len()).then_some((i - 1, off))
    }

    /// `None`: not an arena address. `Some(None)`: uninitialized cell.
    fn read(&self, addr: u32) -> Option<Option<i32>> {
        self.locate(addr).map(|(b, o)| self.blocks[b].1[o])
    }

    fn write(&mut self, addr: u32, v: i32) -> bool {
        match self.locate(addr) {
            Some((b, o)) => {
                self.blocks[b].1[o] = Some(v);
                true
            }
            None => false,
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(src: &str) -> Outcome {
        outcome_with(src, &InterpOptions::default())
    }

    fn outcome_with(src: &str, opts: &InterpOptions) -> Outcome {
        let cx = lbp_cc::front_end(src).expect("front end");
        let layout = Layout::synthetic(&cx);
        run(&cx, &layout, opts).expect("interp")
    }

    fn trap_of(src: &str) -> Trap {
        let cx = lbp_cc::front_end(src).expect("front end");
        let layout = Layout::synthetic(&cx);
        run(&cx, &layout, &InterpOptions::default()).expect_err("expected trap")
    }

    #[test]
    fn members_read_the_entry_snapshot_plus_own_writes() {
        let out = outcome(
            "int a = 5;\nint r[2];\nvoid main(void) {\n#pragma omp parallel sections\n{\n#pragma omp section\n{ a = 7; r[0] = a; }\n#pragma omp section\n{ r[1] = a; }\n}\n}",
        );
        // Section 0 sees its own write (7); section 1 still sees the
        // region-entry value (5) no matter how the two interleave.
        assert_eq!(out.global("r"), Some(&[7, 5][..]));
        assert_eq!(out.global("a"), Some(&[7][..]));
    }

    #[test]
    fn join_folds_buffers_in_member_index_order() {
        let out = outcome(
            "int a;\nvoid main(void) {\n#pragma omp parallel sections\n{\n#pragma omp section\n{ a = 1; }\n#pragma omp section\n{ a = 2; }\n}\n}",
        );
        // Overlapping writes: the highest-indexed member wins.
        assert_eq!(out.global("a"), Some(&[2][..]));
    }

    #[test]
    fn outcome_is_schedule_independent() {
        let src = "int v[8];\nint a;\nvoid main(void) {\nint t;\n#pragma omp parallel for\nfor (t = 0; t < 8; t++) { int i; for (i = 0; i < t; i++) { v[t] = v[t] + t; } a = t; }\n}";
        let base = outcome(src).render();
        for seed in [1u64, 2, 42, 0xdead_beef] {
            let opts = InterpOptions {
                schedule: Schedule::Seeded(seed),
                ..Default::default()
            };
            assert_eq!(outcome_with(src, &opts).render(), base, "seed {seed}");
        }
    }

    #[test]
    fn effect_trace_is_ordered_and_hash_matches_render() {
        let out = outcome(
            "int v[2];\nvoid main(void) {\nint t;\nomp_set_num_threads(2);\n__roi_start();\n#pragma omp parallel for\nfor (t = 0; t < 2; t++) { v[t] = t; }\n__roi_end();\n}",
        );
        assert_eq!(
            out.effects,
            vec![
                Effect::SetNumThreads(2),
                Effect::RoiStart,
                Effect::Fork { team: 2 },
                Effect::Join { team: 2 },
                Effect::RoiEnd,
                Effect::Exit,
            ]
        );
        assert_eq!(
            out.content_hash(),
            lbp_snap::fnv1a64(out.render().as_bytes())
        );
    }

    #[test]
    fn riscv_m_arithmetic_edges() {
        let out = outcome(
            "int r[9];\nint z;\nvoid main(void) {\nint x;\nx = 2147483647;\nr[0] = x + 1;\nx = -2147483647 - 1;\nr[1] = x / -1;\nr[2] = x % -1;\nr[3] = 7 / z;\nr[4] = 7 % z;\nr[5] = 1 << 33;\nr[6] = -8 >> 1;\nr[7] = -7 / 2;\nr[8] = -7 % 2;\n}",
        );
        assert_eq!(
            out.global("r"),
            Some(&[i32::MIN, i32::MIN, 0, -1, 7, 2, -4, -3, -1][..])
        );
    }

    #[test]
    fn loops_breaks_and_calls() {
        let out = outcome(
            "int s;\nint f(int n) { if (n <= 1) { return 1; } return n * f(n - 1); }\nvoid main(void) {\nint i;\nfor (i = 0; i < 100; i++) { if (i == 5) { break; } if (i % 2) { continue; } s = s + i; }\ns = s + f(5);\n}",
        );
        // 0 + 2 + 4 + 5! = 126
        assert_eq!(out.global("s"), Some(&[126][..]));
    }

    #[test]
    fn uninitialized_local_read_traps() {
        let t = trap_of("int g;\nvoid main(void) { int x; g = x; }");
        assert_eq!(t.class, "uninit");
        assert_eq!(t.line, 2);
    }

    #[test]
    fn wild_store_traps() {
        let t = trap_of("int g;\nvoid main(void) { int x; x = 64; *(&g + 4096) = 1; }");
        assert_eq!(t.class, "wild-address");
    }

    #[test]
    fn budget_exhaustion_traps() {
        let cx = lbp_cc::front_end("void main(void) { while (1) { } }").unwrap();
        let layout = Layout::synthetic(&cx);
        let opts = InterpOptions {
            budget: 10_000,
            ..Default::default()
        };
        let t = run(&cx, &layout, &opts).expect_err("loop");
        assert_eq!(t.class, "budget");
    }

    #[test]
    fn stack_arrays_are_private_per_member() {
        let out = outcome(
            "int r[4];\nvoid main(void) {\nint t;\n#pragma omp parallel for\nfor (t = 0; t < 4; t++) { int buf[4]; int i; for (i = 0; i < 4; i++) { buf[i] = t * 10 + i; } r[t] = buf[t]; }\n}",
        );
        assert_eq!(out.global("r"), Some(&[0, 11, 22, 33][..]));
    }
}
