//! # lbp-sema — executable semantics for Deterministic OpenMP mini-C
//!
//! A small-step reference interpreter over lbp-cc's typed AST, defining
//! what a mini-C + Deterministic OpenMP program *means* independently of
//! the code generator and the simulator. The abstract machine:
//!
//! - **Per-member environments.** Each team member runs in its own frame
//!   (register locals, private stack arrays), exactly the isolation the
//!   hardware gives a hart.
//! - **Deterministic-consistency visibility.** Inside a parallel region
//!   a member reads the shared store as it was at region entry, plus its
//!   *own* buffered writes. Nothing a sibling writes is ever visible.
//! - **Join in member-index order.** At the region join the members'
//!   write buffers are folded into the shared store in ascending member
//!   index, so overlapping writes resolve to the highest-indexed writer
//!   — the paper's ordered-commit rule, and the reason the outcome is a
//!   function of the program alone, not of any schedule.
//!
//! The interpreter actually *interleaves* member execution (round-robin
//! by default, or driven by a seeded PRNG) to demonstrate that under DC
//! visibility the observable outcome is schedule-independent.
//!
//! The observable outcome — final shared store plus the ordered effect
//! trace — renders to a canonical text form and content-hashes like a
//! simulator report, so "same behavior" is one `u64` comparison. The
//! [`diff`] module runs the same source through lbp-cc + lbp-sim and
//! demands the two observables agree, word for word.
//!
//! # Examples
//!
//! ```
//! let source = r#"
//! int v[4];
//! void main(void) {
//!     int t;
//! #pragma omp parallel for
//!     for (t = 0; t < 4; t++) v[t] = t * t;
//! }
//! "#;
//! let checked = lbp_cc::front_end(source)?;
//! let layout = lbp_sema::Layout::synthetic(&checked);
//! let out = lbp_sema::interp::run(&checked, &layout, &Default::default())?;
//! assert_eq!(out.global("v"), Some(&[0, 1, 4, 9][..]));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use lbp_cc::sema::Checked;

pub mod diff;
pub mod interp;

pub use interp::{InterpOptions, Schedule};

/// An externally visible event, recorded in program order. Member
/// effects are buffered like member stores and appended at the join in
/// member-index order — the effect trace is part of the deterministic
/// outcome, not a schedule artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effect {
    /// `omp_set_num_threads(n)` was called (accepted for source
    /// compatibility; team sizes come from each region's trip count).
    SetNumThreads(i32),
    /// The `__roi_start()` marker.
    RoiStart,
    /// The `__roi_end()` marker.
    RoiEnd,
    /// A parallel region forked a team of `team` members.
    Fork {
        /// Requested team size (the region's trip/section count).
        team: u32,
    },
    /// The matching join: all member buffers folded into the store.
    Join {
        /// Team size, mirroring the fork.
        team: u32,
    },
    /// The program exited cleanly.
    Exit,
}

impl fmt::Display for Effect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Effect::SetNumThreads(n) => write!(f, "set_num_threads {n}"),
            Effect::RoiStart => write!(f, "roi_start"),
            Effect::RoiEnd => write!(f, "roi_end"),
            Effect::Fork { team } => write!(f, "fork team={team}"),
            Effect::Join { team } => write!(f, "join team={team}"),
            Effect::Exit => write!(f, "exit"),
        }
    }
}

/// The canonical observable outcome of a program: the final shared
/// store (every global, in declaration order) and the ordered effect
/// trace. Two runs are "the same" iff their outcomes render (and hence
/// hash) identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Final value of every global, in declaration order.
    pub globals: Vec<(String, Vec<i32>)>,
    /// Effects in program order.
    pub effects: Vec<Effect>,
}

impl Outcome {
    /// The final words of one global, by name.
    pub fn global(&self, name: &str) -> Option<&[i32]> {
        self.globals
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_slice())
    }

    /// Renders the outcome in the canonical `lbp-sema-outcome-v1` text
    /// form (the hash pre-image).
    pub fn render(&self) -> String {
        let mut s = String::from("lbp-sema-outcome-v1\n");
        for (name, words) in &self.globals {
            s.push_str(&format!("global {name}[{}] =", words.len()));
            for w in words {
                s.push_str(&format!(" {w}"));
            }
            s.push('\n');
        }
        for e in &self.effects {
            s.push_str(&format!("effect {e}\n"));
        }
        s
    }

    /// Content hash of the rendered outcome (FNV-1a 64, the same hash
    /// the snapshot/report tooling uses).
    pub fn content_hash(&self) -> u64 {
        lbp_snap::fnv1a64(self.render().as_bytes())
    }
}

/// A semantic trap: the program performed an operation the semantics
/// leaves undefined (wild address, uninitialized read, ...) or blew an
/// interpreter resource bound. The compiled binary may happen to *do*
/// something on the machine; the spec refuses to assign it a meaning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trap {
    /// Stable machine-readable class (`uninit`, `wild-address`,
    /// `misaligned`, `oob`, `budget`, `depth`, `missing-return`,
    /// `no-main`).
    pub class: &'static str,
    /// 1-based source line of the trapping statement.
    pub line: usize,
    /// Human description.
    pub message: String,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "semantic trap at line {}: {} [{}]",
            self.line, self.message, self.class
        )
    }
}

impl std::error::Error for Trap {}

/// Where each global lives in the 32-bit address space. Taking the
/// layout from an assembled [`lbp_asm::Image`] makes interpreter
/// addresses coincide bit-for-bit with the machine's, so address
/// arithmetic (cross-global pointers included) behaves identically on
/// both sides of the differential harness.
#[derive(Debug, Clone)]
pub struct Layout {
    regions: Vec<LayoutRegion>,
}

#[derive(Debug, Clone)]
struct LayoutRegion {
    base: u32,
    elems: u32,
}

impl Layout {
    /// Builds the layout from the symbols of an assembled image of the
    /// same translation unit. Falls back to [`Layout::synthetic`] if any
    /// global's symbol is missing (which would indicate the image was
    /// built from different source).
    pub fn from_image(cx: &Checked, image: &lbp_asm::Image) -> Layout {
        let mut regions = Vec::with_capacity(cx.unit.globals.len());
        for g in &cx.unit.globals {
            match image.symbol(&g.name) {
                Some(base) => regions.push(LayoutRegion {
                    base,
                    elems: g.elems,
                }),
                None => return Layout::synthetic(cx),
            }
        }
        Layout { regions }
    }

    /// The assembler-convention layout without an image: globals packed
    /// word-aligned in declaration order from the shared-memory base,
    /// exactly as the generated `.data` section lays them out.
    pub fn synthetic(cx: &Checked) -> Layout {
        let mut cursor = lbp_isa::SHARED_BASE;
        let regions = cx
            .unit
            .globals
            .iter()
            .map(|g| {
                let r = LayoutRegion {
                    base: cursor,
                    elems: g.elems,
                };
                cursor += 4 * g.elems;
                r
            })
            .collect();
        Layout { regions }
    }

    /// Base address of the `gi`-th global (declaration order).
    pub fn base(&self, gi: usize) -> u32 {
        self.regions[gi].base
    }

    /// Resolves an address to `(global index, element index)` if it
    /// falls inside any global. Resolution is flat — an address formed
    /// by arithmetic off one global that lands inside another resolves
    /// to the latter, exactly as the flat shared memory would behave.
    pub fn resolve(&self, addr: u32) -> Option<(usize, u32)> {
        self.regions.iter().enumerate().find_map(|(gi, r)| {
            let end = r.base + 4 * r.elems;
            (r.base..end)
                .contains(&addr)
                .then(|| (gi, (addr - r.base) / 4))
        })
    }
}
