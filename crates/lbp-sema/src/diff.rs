//! Differential harness: interpret the source under the executable
//! semantics AND compile-and-simulate it, then demand the observables
//! agree word for word.
//!
//! The compared observable is the final shared store — every declared
//! global, element by element — plus a clean exit on the machine side.
//! The interpreter's addresses are taken from the assembled image's
//! symbols, so even cross-global pointer arithmetic resolves to the
//! same words on both sides. A mismatch anywhere is a
//! [`DiffError::Divergence`] naming the first differing word: either
//! the code generator, the simulator, or the interpreter is wrong about
//! what the program means.

use std::fmt;

use lbp_cc::sema::Checked;
use lbp_cc::{CcError, CcOptions};
use lbp_sim::{LbpConfig, Machine};

use crate::interp::{self, InterpOptions};
use crate::{Layout, Outcome, Trap};

/// Why a differential run failed.
#[derive(Debug)]
pub enum DiffError {
    /// The source does not compile.
    Compile(CcError),
    /// The interpreter trapped (the program's meaning is undefined).
    Trap(Trap),
    /// The simulator side failed (machine error, or no clean exit
    /// within the cycle budget).
    Sim(String),
    /// Both sides completed but disagree on an observable word.
    Divergence(String),
}

impl fmt::Display for DiffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffError::Compile(e) => write!(f, "{e}"),
            DiffError::Trap(t) => write!(f, "{t}"),
            DiffError::Sim(m) => write!(f, "simulation failed: {m}"),
            DiffError::Divergence(m) => write!(f, "observable divergence: {m}"),
        }
    }
}

impl std::error::Error for DiffError {}

/// A successful differential run: the agreed observable outcome.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// The interpreter's observable outcome (the simulator matched
    /// every global word of it).
    pub outcome: Outcome,
    /// Machine cycles the simulated run took.
    pub cycles: u64,
}

impl DiffReport {
    /// Content hash of the agreed outcome.
    pub fn hash(&self) -> u64 {
        self.outcome.content_hash()
    }
}

/// The smallest core count whose hart pool covers every parallel region
/// in `main` (at least one core).
pub fn required_cores(cx: &Checked) -> usize {
    let mut team = 1usize;
    if let Some(main) = cx.unit.functions.iter().find(|f| f.name == "main") {
        let mut stack: Vec<&lbp_cc::ast::Stmt> = main.body.iter().collect();
        while let Some(s) = stack.pop() {
            use lbp_cc::ast::Stmt;
            match s {
                Stmt::ParallelFor { count, .. } => team = team.max(*count as usize),
                Stmt::ParallelSections { sections, .. } => team = team.max(sections.len()),
                Stmt::If { then, els, .. } => stack.extend(then.iter().chain(els)),
                Stmt::While { body, .. } => stack.extend(body),
                Stmt::For {
                    init, step, body, ..
                } => {
                    stack.extend(body);
                    stack.extend(init.as_ref().iter());
                    stack.extend(step.as_ref().iter());
                }
                _ => {}
            }
        }
    }
    team.div_ceil(lbp_isa::HARTS_PER_CORE).max(1)
}

/// Interprets `source` under the executable semantics, laying globals
/// out exactly where the compiled image puts them.
///
/// # Errors
///
/// [`DiffError::Compile`] or [`DiffError::Trap`].
pub fn interp_source(source: &str, opts: &InterpOptions) -> Result<Outcome, DiffError> {
    let cx = lbp_cc::front_end(source).map_err(DiffError::Compile)?;
    let compiled = lbp_cc::compile(source).map_err(DiffError::Compile)?;
    let layout = Layout::from_image(&cx, &compiled.image);
    interp::run(&cx, &layout, opts).map_err(DiffError::Trap)
}

/// Runs the full differential check on `source`: compile (with
/// `cc_opts`, so deliberate sabotage can be injected on the compiled
/// side only), simulate on `cores` cores for at most `max_cycles`, and
/// compare against the interpreted outcome.
///
/// # Errors
///
/// Any [`DiffError`]; [`DiffError::Divergence`] is the interesting one.
pub fn diff_source_with(
    source: &str,
    cc_opts: &CcOptions,
    cores: Option<usize>,
    max_cycles: u64,
    opts: &InterpOptions,
) -> Result<DiffReport, DiffError> {
    let compiled = lbp_cc::compile_with(source, cc_opts).map_err(DiffError::Compile)?;
    let cx = lbp_cc::front_end(source).map_err(DiffError::Compile)?;
    let cores = cores.unwrap_or_else(|| required_cores(&cx));
    diff_checked(&cx, source, &compiled.image, cores, max_cycles, opts)
}

/// [`diff_source_with`] with default compilation and interpreter
/// options.
///
/// # Errors
///
/// Any [`DiffError`].
pub fn diff_source(
    source: &str,
    cores: Option<usize>,
    max_cycles: u64,
) -> Result<DiffReport, DiffError> {
    diff_source_with(
        source,
        &CcOptions::default(),
        cores,
        max_cycles,
        &InterpOptions::default(),
    )
}

/// Differential check against an already-assembled image of `source`
/// (e.g. one compiled with sabotage injected): interprets the source,
/// simulates the image, compares every global word.
///
/// # Errors
///
/// Any [`DiffError`].
pub fn diff_compiled(
    source: &str,
    image: &lbp_asm::Image,
    cores: usize,
    max_cycles: u64,
    opts: &InterpOptions,
) -> Result<DiffReport, DiffError> {
    let cx = lbp_cc::front_end(source).map_err(DiffError::Compile)?;
    diff_checked(&cx, source, image, cores, max_cycles, opts)
}

fn diff_checked(
    cx: &Checked,
    _source: &str,
    image: &lbp_asm::Image,
    cores: usize,
    max_cycles: u64,
    opts: &InterpOptions,
) -> Result<DiffReport, DiffError> {
    let layout = Layout::from_image(cx, image);
    let outcome = interp::run(cx, &layout, opts).map_err(DiffError::Trap)?;

    let mut machine =
        Machine::new(LbpConfig::cores(cores), image).map_err(|e| DiffError::Sim(e.to_string()))?;
    let report = machine
        .run(max_cycles)
        .map_err(|e| DiffError::Sim(e.to_string()))?;
    if !report.exited {
        return Err(DiffError::Sim(format!(
            "no clean exit within {max_cycles} cycles"
        )));
    }

    for (name, words) in &outcome.globals {
        let base = image
            .symbol(name)
            .ok_or_else(|| DiffError::Sim(format!("image lacks symbol `{name}`")))?;
        for (i, &want) in words.iter().enumerate() {
            let got = machine
                .peek_shared(base + 4 * i as u32)
                .map_err(|e| DiffError::Sim(e.to_string()))? as i32;
            if got != want {
                return Err(DiffError::Divergence(format!(
                    "global {name}[{i}]: interpreter {want}, simulator {got}"
                )));
            }
        }
    }
    Ok(DiffReport {
        outcome,
        cycles: report.stats.cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbp_cc::CodegenSabotage;

    const SQUARES: &str = "int v[8];\nvoid main(void) {\nint t;\nomp_set_num_threads(8);\n#pragma omp parallel for\nfor (t = 0; t < 8; t++) { v[t] = (t + 1) * (t + 1); }\n}";

    #[test]
    fn squares_agree_between_interpreter_and_simulator() {
        let report = diff_source(SQUARES, None, 1_000_000).expect("diff");
        assert_eq!(
            report.outcome.global("v"),
            Some(&[1, 4, 9, 16, 25, 36, 49, 64][..])
        );
        assert!(report.cycles > 0);
    }

    #[test]
    fn required_cores_covers_the_widest_region() {
        let cx = lbp_cc::front_end(SQUARES).unwrap();
        assert_eq!(required_cores(&cx), 2);
        let cx = lbp_cc::front_end("void main(void) { }").unwrap();
        assert_eq!(required_cores(&cx), 1);
    }

    #[test]
    fn chunk_bounds_sabotage_diverges() {
        let opts = CcOptions {
            sabotage: Some(CodegenSabotage::ChunkBounds),
        };
        let err = diff_source_with(SQUARES, &opts, None, 1_000_000, &InterpOptions::default())
            .expect_err("sabotage must diverge");
        assert!(matches!(err, DiffError::Divergence(_)), "{err}");
    }

    #[test]
    fn index_shift_sabotage_diverges() {
        let opts = CcOptions {
            sabotage: Some(CodegenSabotage::IndexShift),
        };
        let err = diff_source_with(SQUARES, &opts, None, 1_000_000, &InterpOptions::default())
            .expect_err("sabotage must diverge");
        assert!(matches!(err, DiffError::Divergence(_)), "{err}");
    }

    #[test]
    fn const_fold_sabotage_diverges() {
        // `8 - 3` folds at compile time; mis-folded as `8 + 3` it lands
        // in the store where the interpreter (the spec) says 5.
        let src = "int g;\nvoid main(void) { g = 8 - 3; }";
        let opts = CcOptions {
            sabotage: Some(CodegenSabotage::ConstFold),
        };
        let err = diff_source_with(src, &opts, None, 1_000_000, &InterpOptions::default())
            .expect_err("sabotage must diverge");
        assert!(matches!(err, DiffError::Divergence(_)), "{err}");
    }
}
