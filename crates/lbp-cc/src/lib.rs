//! # lbp-cc — the Deterministic OpenMP translator
//!
//! A from-scratch mini-C compiler targeting the PISC ISA, implementing
//! the paper's source-to-source story: a Deterministic OpenMP program "is
//! quite not distinguishable from a classic OpenMP one" (its Fig. 1) —
//! the same `#pragma omp parallel for` / `parallel sections` source
//! compiles to ordered hart teams synchronized by hardware. (The paper
//! lists completing this translator as future work; it is implemented
//! here.)
//!
//! ## The subset
//!
//! `int` scalars, pointers and one-dimensional global arrays; functions;
//! `if`/`while`/`for`; the usual operators; `#define` object macros;
//! `omp_set_num_threads`; `#pragma omp parallel for` over the canonical
//! `for (t = 0; t < N; t++)` loop; and `#pragma omp parallel sections`.
//! Scalar locals live in registers (at most eight per function) and
//! cannot have their address taken. Parallel-region bodies may touch the
//! index variable, their own locals and globals — the shape of every
//! program in the paper.
//!
//! # Examples
//!
//! Compile and run the paper's Fig. 1 program:
//!
//! ```
//! use lbp_sim::{LbpConfig, Machine};
//!
//! let compiled = lbp_cc::compile(
//!     r#"
//! #define NUM_HART 8
//! #include <det_omp.h>
//! int v[NUM_HART];
//! void thread(int t) { v[t] = t + 1; }
//! void main(void) {
//!     int t;
//!     omp_set_num_threads(NUM_HART);
//! #pragma omp parallel for
//!     for (t = 0; t < NUM_HART; t++) thread(t);
//! }
//! "#,
//! )?;
//! let mut m = Machine::new(LbpConfig::cores(2), &compiled.image)?;
//! m.run(1_000_000)?;
//! let v = compiled.image.symbol("v").unwrap();
//! assert_eq!(m.peek_shared(v + 4 * 3)?, 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub mod ast;
mod codegen;
mod lex;
mod lint;
mod parse;
mod sema;

pub use sema::{MAX_ARGS, MAX_LOCALS};

/// A compilation error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CcError {
    /// 1-based source line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl CcError {
    /// Creates an error.
    pub fn new(line: usize, message: impl Into<String>) -> CcError {
        CcError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for CcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CcError {}

/// The output of a successful compilation.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The generated PISC assembly (inspectable, diffable against the
    /// paper's listings).
    pub asm: String,
    /// The assembled, loadable image.
    pub image: lbp_asm::Image,
}

/// Compiles a mini-C translation unit to a loadable LBP image.
///
/// # Errors
///
/// Returns the first lexical, syntactic, semantic or code-generation
/// error with its source line.
pub fn compile(source: &str) -> Result<Compiled, CcError> {
    let tokens = lex::lex(source)?;
    let unit = parse::parse(tokens)?;
    let checked = sema::check(unit)?;
    let asm = codegen::generate(&checked)?;
    let image = lbp_asm::assemble(&asm).map_err(|e| {
        // An assembler error on generated code is a compiler bug; point
        // at the generated line for debugging.
        CcError::new(
            0,
            format!("internal error: generated assembly rejected: {e}\n--- generated ---\n{asm}"),
        )
    })?;
    Ok(Compiled { asm, image })
}

/// Runs the determinism lint over a mini-C translation unit without
/// generating code: every parallel region is checked for races (see the
/// `lint` module docs) and the result is a batch of `lbp-diag-v1`
/// diagnostics. Semantic errors are reported — **all** of them, not just
/// the first — as `LBP-C001` diagnostics; the race analysis needs a
/// well-formed unit and is skipped when sema fails.
///
/// The program is acceptable iff [`lbp_verify::accepted`] holds on the
/// result.
///
/// # Errors
///
/// Returns an error only when the source cannot be parsed at all
/// (lexical or syntactic failure); everything later is a diagnostic.
pub fn lint(source: &str) -> Result<Vec<lbp_verify::Diag>, CcError> {
    let tokens = lex::lex(source)?;
    let unit = parse::parse(tokens)?;
    match sema::check_all(unit) {
        Err(errs) => Ok(errs
            .into_iter()
            .map(|e| {
                lbp_verify::Diag::new(
                    lbp_verify::DiagCode::CSema,
                    lbp_verify::Severity::Error,
                    e.line,
                    e.message,
                )
            })
            .collect()),
        Ok(checked) => Ok(lint::lint_unit(&checked)),
    }
}
