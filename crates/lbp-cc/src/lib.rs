//! # lbp-cc — the Deterministic OpenMP translator
//!
//! A from-scratch mini-C compiler targeting the PISC ISA, implementing
//! the paper's source-to-source story: a Deterministic OpenMP program "is
//! quite not distinguishable from a classic OpenMP one" (its Fig. 1) —
//! the same `#pragma omp parallel for` / `parallel sections` source
//! compiles to ordered hart teams synchronized by hardware. (The paper
//! lists completing this translator as future work; it is implemented
//! here.)
//!
//! ## The subset
//!
//! `int` scalars, pointers and one-dimensional global arrays; functions;
//! `if`/`while`/`for`; the usual operators; `#define` object macros;
//! `omp_set_num_threads`; `#pragma omp parallel for` over the canonical
//! `for (t = 0; t < N; t++)` loop; and `#pragma omp parallel sections`.
//! Scalar locals live in registers (at most eight per function) and
//! cannot have their address taken. Parallel-region bodies may touch the
//! index variable, their own locals and globals — the shape of every
//! program in the paper.
//!
//! # Examples
//!
//! Compile and run the paper's Fig. 1 program:
//!
//! ```
//! use lbp_sim::{LbpConfig, Machine};
//!
//! let compiled = lbp_cc::compile(
//!     r#"
//! #define NUM_HART 8
//! #include <det_omp.h>
//! int v[NUM_HART];
//! void thread(int t) { v[t] = t + 1; }
//! void main(void) {
//!     int t;
//!     omp_set_num_threads(NUM_HART);
//! #pragma omp parallel for
//!     for (t = 0; t < NUM_HART; t++) thread(t);
//! }
//! "#,
//! )?;
//! let mut m = Machine::new(LbpConfig::cores(2), &compiled.image)?;
//! m.run(1_000_000)?;
//! let v = compiled.image.symbol("v").unwrap();
//! assert_eq!(m.peek_shared(v + 4 * 3)?, 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub mod ast;
mod codegen;
pub mod lex;
mod lint;
pub mod parse;
pub mod sema;

pub use sema::{MAX_ARGS, MAX_LOCALS};

/// A compilation error with its 1-based source line (and column, when
/// the error is anchored to a concrete token).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CcError {
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column; 0 when unknown (statement-granular
    /// diagnostics from sema carry a line only).
    pub col: usize,
    /// Description.
    pub message: String,
}

impl CcError {
    /// Creates an error with a line but no column.
    pub fn new(line: usize, message: impl Into<String>) -> CcError {
        CcError {
            line,
            col: 0,
            message: message.into(),
        }
    }

    /// Creates an error anchored to a line *and* column.
    pub fn at(line: usize, col: usize, message: impl Into<String>) -> CcError {
        CcError {
            line,
            col,
            message: message.into(),
        }
    }
}

impl fmt::Display for CcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.col > 0 {
            write!(
                f,
                "compile error at line {}:{}: {}",
                self.line, self.col, self.message
            )
        } else {
            write!(f, "compile error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for CcError {}

/// A deliberate, named miscompilation the code generator can inject
/// (`lbp-cc --sabotage codegen:<kind>`). Each kind is designed to stay
/// *internally consistent* — the sabotaged binary runs deterministically,
/// races with nobody, and passes the whole lockstep battery — so only a
/// codegen-independent executable semantics (lbp-sema) can catch it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodegenSabotage {
    /// Off-by-one static chunk bounds: a team of `n > 1` spawns only
    /// `n - 1` members, silently dropping the last chunk.
    ChunkBounds,
    /// Every parallel-for member computes with index `t + 1` instead of
    /// `t`: the static schedule is shifted by one chunk.
    IndexShift,
    /// Constant folding treats `a - b` as `a + b` (runtime subtraction
    /// is untouched).
    ConstFold,
}

impl CodegenSabotage {
    /// All kinds, for enumeration in tests and CLIs.
    pub const ALL: [CodegenSabotage; 3] = [
        CodegenSabotage::ChunkBounds,
        CodegenSabotage::IndexShift,
        CodegenSabotage::ConstFold,
    ];

    /// The CLI name of this kind (without the `codegen:` prefix).
    pub fn name(self) -> &'static str {
        match self {
            CodegenSabotage::ChunkBounds => "chunk-bounds",
            CodegenSabotage::IndexShift => "index-shift",
            CodegenSabotage::ConstFold => "const-fold",
        }
    }

    /// Parses a kind name as spelled by [`CodegenSabotage::name`].
    pub fn parse(name: &str) -> Option<CodegenSabotage> {
        CodegenSabotage::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// Compilation options beyond the defaults of [`compile`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CcOptions {
    /// Inject a deliberate miscompilation (testing only).
    pub sabotage: Option<CodegenSabotage>,
}

/// The output of a successful compilation.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The generated PISC assembly (inspectable, diffable against the
    /// paper's listings).
    pub asm: String,
    /// The assembled, loadable image.
    pub image: lbp_asm::Image,
}

/// Compiles a mini-C translation unit to a loadable LBP image.
///
/// # Errors
///
/// Returns the first lexical, syntactic, semantic or code-generation
/// error with its source line.
pub fn compile(source: &str) -> Result<Compiled, CcError> {
    compile_with(source, &CcOptions::default())
}

/// [`compile`] with explicit [`CcOptions`] (e.g. codegen sabotage).
///
/// # Errors
///
/// Returns the first lexical, syntactic, semantic or code-generation
/// error with its source line.
pub fn compile_with(source: &str, opts: &CcOptions) -> Result<Compiled, CcError> {
    let checked = front_end(source)?;
    let asm = codegen::generate_with(&checked, opts.sabotage)?;
    let image = lbp_asm::assemble(&asm).map_err(|e| {
        // An assembler error on generated code is a compiler bug; point
        // at the generated line for debugging.
        CcError::new(
            0,
            format!("internal error: generated assembly rejected: {e}\n--- generated ---\n{asm}"),
        )
    })?;
    Ok(Compiled { asm, image })
}

/// Runs the front end only — lex, parse and semantic check — returning
/// the typed, checked AST both the code generator and the lbp-sema
/// reference interpreter consume.
///
/// # Errors
///
/// Returns the first lexical, syntactic or semantic error.
pub fn front_end(source: &str) -> Result<sema::Checked, CcError> {
    let tokens = lex::lex(source)?;
    let unit = parse::parse(tokens)?;
    sema::check(unit)
}

/// Runs the determinism lint over a mini-C translation unit without
/// generating code: every parallel region is checked for races (see the
/// `lint` module docs) and the result is a batch of `lbp-diag-v1`
/// diagnostics. Semantic errors are reported — **all** of them, not just
/// the first — as `LBP-C001` diagnostics; the race analysis needs a
/// well-formed unit and is skipped when sema fails.
///
/// The program is acceptable iff [`lbp_verify::accepted`] holds on the
/// result.
///
/// # Errors
///
/// Returns an error only when the source cannot be parsed at all
/// (lexical or syntactic failure); everything later is a diagnostic.
pub fn lint(source: &str) -> Result<Vec<lbp_verify::Diag>, CcError> {
    let tokens = lex::lex(source)?;
    let unit = parse::parse(tokens)?;
    match sema::check_all(unit) {
        Err(errs) => Ok(errs
            .into_iter()
            .map(|e| {
                lbp_verify::Diag::new(
                    lbp_verify::DiagCode::CSema,
                    lbp_verify::Severity::Error,
                    e.line,
                    e.message,
                )
            })
            .collect()),
        Ok(checked) => Ok(lint::lint_unit(&checked)),
    }
}
