//! Lexer for the mini-C subset, including a tiny preprocessor for
//! `#define` object macros, `#include` (recognized and skipped) and
//! `#pragma omp` lines (turned into tokens for the parser).

use std::collections::HashMap;
use std::fmt;

use crate::CcError;

/// A lexical token with its 1-based source line and column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind/payload.
    pub kind: Tok,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column of the token's first character (0 for
    /// tokens without a concrete column, e.g. pragma lines and EOF).
    pub col: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal (decimal, hex `0x`, or character constant).
    Int(i64),
    /// A punctuation or operator symbol, e.g. `"+"`, `"<<="`-free subset.
    Sym(&'static str),
    /// `#pragma omp parallel for`.
    PragmaParallelFor,
    /// `#pragma omp parallel sections`.
    PragmaParallelSections,
    /// `#pragma omp section`.
    PragmaSection,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v) => write!(f, "`{v}`"),
            Tok::Sym(s) => write!(f, "`{s}`"),
            Tok::PragmaParallelFor => write!(f, "`#pragma omp parallel for`"),
            Tok::PragmaParallelSections => write!(f, "`#pragma omp parallel sections`"),
            Tok::PragmaSection => write!(f, "`#pragma omp section`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// Multi-character symbols, longest first so maximal munch works.
const SYMBOLS: [&str; 34] = [
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "++", "--", "->",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~", "(", ")", "{", "}", ",",
];
// Note: `[`, `]`, `;` handled below (kept out of the array to stay at 34).

/// Lexes a full translation unit.
///
/// # Errors
///
/// Returns a [`CcError`] for unterminated comments, bad numbers, unknown
/// characters or malformed preprocessor lines.
pub fn lex(source: &str) -> Result<Vec<Token>, CcError> {
    let without_comments = strip_comments(source)?;
    let mut defines: HashMap<String, i64> = HashMap::new();
    let mut tokens = Vec::new();
    for (idx, raw_line) in without_comments.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.trim();
        if let Some(rest) = line.strip_prefix('#') {
            lex_preprocessor(rest.trim(), line_no, &mut defines, &mut tokens)?;
            continue;
        }
        // Columns are relative to the untrimmed line.
        let col0 = raw_line.len() - raw_line.trim_start().len();
        lex_line(line, line_no, col0, &defines, &mut tokens)?;
    }
    tokens.push(Token {
        kind: Tok::Eof,
        line: without_comments.lines().count() + 1,
        col: 0,
    });
    Ok(tokens)
}

/// Removes `/* */` and `//` comments, preserving line structure.
fn strip_comments(source: &str) -> Result<String, CcError> {
    let bytes = source.as_bytes();
    let mut out = String::with_capacity(source.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            let start_line = out.chars().filter(|&c| c == '\n').count() + 1;
            let mut j = i + 2;
            loop {
                if j + 1 >= bytes.len() {
                    return Err(CcError::new(start_line, "unterminated /* comment"));
                }
                if bytes[j] == b'*' && bytes[j + 1] == b'/' {
                    break;
                }
                if bytes[j] == b'\n' {
                    out.push('\n'); // keep line numbers aligned
                }
                j += 1;
            }
            i = j + 2;
        } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
        } else {
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    Ok(out)
}

fn lex_preprocessor(
    rest: &str,
    line: usize,
    defines: &mut HashMap<String, i64>,
    tokens: &mut Vec<Token>,
) -> Result<(), CcError> {
    if let Some(def) = rest.strip_prefix("define") {
        let mut parts = def.split_whitespace();
        let name = parts
            .next()
            .ok_or_else(|| CcError::new(line, "#define needs a name"))?;
        let value_text = parts.next().unwrap_or("");
        if parts.next().is_some() {
            return Err(CcError::new(
                line,
                "only simple `#define NAME value` object macros are supported",
            ));
        }
        let value = if let Some(prev) = defines.get(value_text) {
            *prev
        } else {
            parse_int(value_text)
                .ok_or_else(|| CcError::new(line, format!("bad #define value `{value_text}`")))?
        };
        defines.insert(name.to_owned(), value);
        return Ok(());
    }
    if rest.starts_with("include") {
        // The paper's programs include <det_omp.h>; the runtime is
        // provided by the compiler itself, so includes are no-ops.
        return Ok(());
    }
    if let Some(p) = rest.strip_prefix("pragma") {
        let words: Vec<&str> = p.split_whitespace().collect();
        let kind = match words.as_slice() {
            ["omp", "parallel", "for"] => Tok::PragmaParallelFor,
            ["omp", "parallel", "sections"] => Tok::PragmaParallelSections,
            ["omp", "section"] => Tok::PragmaSection,
            _ => return Err(CcError::new(line, format!("unsupported pragma `#{rest}`"))),
        };
        tokens.push(Token { kind, line, col: 0 });
        return Ok(());
    }
    Err(CcError::new(
        line,
        format!("unsupported directive `#{rest}`"),
    ))
}

fn parse_int(text: &str) -> Option<i64> {
    let (neg, t) = match text.strip_prefix('-') {
        Some(t) => (true, t),
        None => (false, text),
    };
    let v = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else if t.starts_with('(') && t.ends_with(')') {
        // Allow the paper's `#define SIZE (1<<16)` style.
        return parse_shift_expr(&t[1..t.len() - 1]);
    } else {
        t.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

fn parse_shift_expr(t: &str) -> Option<i64> {
    if let Some((a, b)) = t.split_once("<<") {
        return Some(a.trim().parse::<i64>().ok()? << b.trim().parse::<i64>().ok()?);
    }
    t.trim().parse().ok()
}

fn lex_line(
    line: &str,
    line_no: usize,
    col0: usize,
    defines: &HashMap<String, i64>,
    tokens: &mut Vec<Token>,
) -> Result<(), CcError> {
    let bytes = line.as_bytes();
    let mut i = 0;
    'outer: while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        let col = col0 + i + 1;
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_alphanumeric() {
                i += 1;
            }
            let text = &line[start..i];
            let v = parse_int(text)
                .ok_or_else(|| CcError::new(line_no, format!("bad number `{text}`")))?;
            tokens.push(Token {
                kind: Tok::Int(v),
                line: line_no,
                col,
            });
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            let word = &line[start..i];
            if let Some(&v) = defines.get(word) {
                tokens.push(Token {
                    kind: Tok::Int(v),
                    line: line_no,
                    col,
                });
            } else {
                tokens.push(Token {
                    kind: Tok::Ident(word.to_owned()),
                    line: line_no,
                    col,
                });
            }
            continue;
        }
        if c == '\'' {
            // Character constant.
            if i + 2 < bytes.len() && bytes[i + 2] == b'\'' {
                tokens.push(Token {
                    kind: Tok::Int(bytes[i + 1] as i64),
                    line: line_no,
                    col,
                });
                i += 3;
                continue;
            }
            return Err(CcError::new(line_no, "bad character constant"));
        }
        for sym in ["[", "]", ";", "."] {
            if line[i..].starts_with(sym) {
                tokens.push(Token {
                    kind: Tok::Sym(match sym {
                        "[" => "[",
                        "]" => "]",
                        ";" => ";",
                        // Only appears inside `[0 ... N-1]` designated
                        // initializers, which the parser skips.
                        _ => ".",
                    }),
                    line: line_no,
                    col,
                });
                i += 1;
                continue 'outer;
            }
        }
        for sym in SYMBOLS {
            if line[i..].starts_with(sym) {
                tokens.push(Token {
                    kind: Tok::Sym(sym),
                    line: line_no,
                    col,
                });
                i += sym.len();
                continue 'outer;
            }
        }
        return Err(CcError::new(line_no, format!("unexpected character `{c}`")));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("int x = 42;"),
            vec![
                Tok::Ident("int".into()),
                Tok::Ident("x".into()),
                Tok::Sym("="),
                Tok::Int(42),
                Tok::Sym(";"),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn maximal_munch() {
        assert_eq!(
            kinds("a <<= 1")[1..3],
            [Tok::Sym("<<"), Tok::Sym("=")] // no <<= in the subset
        );
        assert_eq!(kinds("a<=b")[1], Tok::Sym("<="));
        assert_eq!(kinds("a < =b")[1], Tok::Sym("<"));
    }

    #[test]
    fn defines_substitute() {
        let t = kinds("#define N 8\nint v[N];");
        assert!(t.contains(&Tok::Int(8)));
        // Chained defines.
        let t = kinds("#define A 4\n#define B A\nint x = B;");
        assert!(t.contains(&Tok::Int(4)));
    }

    #[test]
    fn define_with_shift() {
        let t = kinds("#define SIZE (1<<16)\nint v[SIZE];");
        assert!(t.contains(&Tok::Int(65536)));
    }

    #[test]
    fn pragmas_become_tokens() {
        let t = kinds("#pragma omp parallel for\nfor");
        assert_eq!(t[0], Tok::PragmaParallelFor);
        let t = kinds("#pragma omp parallel sections\n#pragma omp section");
        assert_eq!(t[0], Tok::PragmaParallelSections);
        assert_eq!(t[1], Tok::PragmaSection);
    }

    #[test]
    fn includes_are_skipped() {
        assert_eq!(kinds("#include <det_omp.h>\nint x;").len(), 4);
    }

    #[test]
    fn comments_stripped_lines_kept() {
        let toks = lex("int a; // one\n/* two\nlines */ int b;").unwrap();
        let b = toks
            .iter()
            .find(|t| t.kind == Tok::Ident("b".into()))
            .unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn tokens_carry_columns() {
        let toks = lex("  int x = 42;").unwrap();
        assert_eq!(toks[0].col, 3); // `int`
        assert_eq!(toks[1].col, 7); // `x`
        assert_eq!(toks[2].col, 9); // `=`
        assert_eq!(toks[3].col, 11); // `42`
    }

    #[test]
    fn unterminated_comment_is_an_error() {
        assert!(lex("/* nope").is_err());
    }

    #[test]
    fn hex_and_char_literals() {
        assert!(kinds("0xff").contains(&Tok::Int(255)));
        assert!(kinds("'A'").contains(&Tok::Int(65)));
    }
}
