//! Recursive-descent parser for the mini-C subset.

use crate::ast::*;
use crate::lex::{Tok, Token};
use crate::CcError;

/// Parses a token stream into a translation unit.
///
/// # Errors
///
/// Returns the first syntax error with its source line.
pub fn parse(tokens: Vec<Token>) -> Result<Unit, CcError> {
    let mut p = Parser { tokens, pos: 0 };
    p.unit()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// The three clauses of a `for (init; cond; step)` header, each optional.
type ForHeader = (Option<Stmt>, Option<Expr>, Option<Stmt>);

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn line(&self) -> usize {
        self.tokens[self.pos.min(self.tokens.len() - 1)].line
    }

    fn col(&self) -> usize {
        self.tokens[self.pos.min(self.tokens.len() - 1)].col
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)]
            .kind
            .clone();
        self.pos += 1;
        t
    }

    fn err(&self, msg: impl Into<String>) -> CcError {
        CcError::at(self.line(), self.col(), msg)
    }

    fn eat_sym(&mut self, sym: &str) -> Result<(), CcError> {
        match self.peek() {
            Tok::Sym(s) if *s == sym => {
                self.bump();
                Ok(())
            }
            other => Err(self.err(format!("expected `{sym}`, found {other}"))),
        }
    }

    fn at_sym(&self, sym: &str) -> bool {
        matches!(self.peek(), Tok::Sym(s) if *s == sym)
    }

    fn eat_ident(&mut self) -> Result<String, CcError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(CcError::new(
                self.tokens[self.pos - 1].line,
                format!("expected an identifier, found {other}"),
            )),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), CcError> {
        if self.at_keyword(kw) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found {}", self.peek())))
        }
    }

    fn unit(&mut self) -> Result<Unit, CcError> {
        let mut unit = Unit {
            globals: Vec::new(),
            functions: Vec::new(),
        };
        while *self.peek() != Tok::Eof {
            let line = self.line();
            let returns_value = if self.at_keyword("void") {
                self.bump();
                false
            } else {
                self.eat_keyword("int")
                    .map_err(|_| self.err("expected `int` or `void` at top level"))?;
                true
            };
            // Pointers on the declarator are accepted and erased (all
            // values are 32-bit words on LBP).
            while self.at_sym("*") {
                self.bump();
            }
            let name = self.eat_ident()?;
            if self.at_sym("(") {
                unit.functions
                    .push(self.function(name, returns_value, line)?);
            } else {
                self.global(&mut unit, name, line)?;
            }
        }
        Ok(unit)
    }

    fn global(&mut self, unit: &mut Unit, first: String, line: usize) -> Result<(), CcError> {
        // One or more comma-separated declarators of the same base type.
        let mut name = first;
        loop {
            let mut elems = 1u32;
            let mut is_array = false;
            if self.at_sym("[") {
                self.bump();
                elems = self.const_expr()?;
                is_array = true;
                self.eat_sym("]")?;
            }
            let mut fill = None;
            if self.at_sym("=") {
                self.bump();
                fill = Some(self.initializer(is_array)?);
            }
            unit.globals.push(Global {
                name,
                elems,
                is_array,
                fill,
                line,
            });
            if self.at_sym(",") {
                self.bump();
                name = self.eat_ident()?;
                continue;
            }
            self.eat_sym(";")?;
            return Ok(());
        }
    }

    /// A constant expression for array bounds (literals and `<<` only —
    /// `#define`s were already substituted by the lexer).
    fn const_expr(&mut self) -> Result<u32, CcError> {
        let v = match self.bump() {
            Tok::Int(v) => v,
            other => return Err(self.err(format!("expected a constant, found {other}"))),
        };
        let v = if self.at_sym("<<") {
            self.bump();
            match self.bump() {
                Tok::Int(s) => v << s,
                other => return Err(self.err(format!("expected a constant, found {other}"))),
            }
        } else if self.at_sym("*") {
            self.bump();
            match self.bump() {
                Tok::Int(s) => v * s,
                other => return Err(self.err(format!("expected a constant, found {other}"))),
            }
        } else {
            v
        };
        u32::try_from(v).map_err(|_| self.err(format!("bad array size {v}")))
    }

    /// `= 3` for scalars; for arrays, `= {[0 ... N-1] = 1}` (the paper's
    /// fill form) or an explicit list `= {1, 2, 3}` (remaining elements
    /// zero).
    fn initializer(&mut self, is_array: bool) -> Result<Init, CcError> {
        if !is_array {
            return match self.bump() {
                Tok::Int(v) => Ok(Init::Uniform(v)),
                other => Err(self.err(format!("expected a constant initializer, found {other}"))),
            };
        }
        self.eat_sym("{")?;
        if self.at_sym("[") {
            // `[0 ... N-1] = fill` — accept any range, use the fill value.
            while !self.at_sym("=") {
                if matches!(self.peek(), Tok::Eof) {
                    return Err(self.err("unterminated designated initializer"));
                }
                self.bump();
            }
            self.eat_sym("=")?;
            let v = match self.bump() {
                Tok::Int(v) => v,
                other => return Err(self.err(format!("expected a fill constant, found {other}"))),
            };
            self.eat_sym("}")?;
            return Ok(Init::Uniform(v));
        }
        let mut values = Vec::new();
        loop {
            let v = match self.bump() {
                Tok::Int(v) => v,
                Tok::Sym("-") => match self.bump() {
                    Tok::Int(v) => -v,
                    other => return Err(self.err(format!("expected a constant, found {other}"))),
                },
                other => return Err(self.err(format!("expected a constant, found {other}"))),
            };
            values.push(v);
            if self.at_sym(",") {
                self.bump();
            } else {
                break;
            }
        }
        self.eat_sym("}")?;
        Ok(Init::List(values))
    }

    fn function(
        &mut self,
        name: String,
        returns_value: bool,
        line: usize,
    ) -> Result<Function, CcError> {
        self.eat_sym("(")?;
        let mut params = Vec::new();
        if !self.at_sym(")") {
            loop {
                if self.at_keyword("void") && params.is_empty() && self.peek2() == &Tok::Sym(")") {
                    self.bump();
                    break;
                }
                self.eat_keyword("int")?;
                while self.at_sym("*") {
                    self.bump();
                }
                let pname = self.eat_ident()?;
                // Array parameters `int v[]` decay to pointers.
                if self.at_sym("[") {
                    self.bump();
                    if let Tok::Int(_) = self.peek() {
                        self.bump();
                    }
                    self.eat_sym("]")?;
                }
                params.push(pname);
                if self.at_sym(",") {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.eat_sym(")")?;
        let body = self.block()?;
        Ok(Function {
            name,
            params,
            returns_value,
            body,
            line,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CcError> {
        self.eat_sym("{")?;
        let mut stmts = Vec::new();
        while !self.at_sym("}") {
            if matches!(self.peek(), Tok::Eof) {
                return Err(self.err("unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        self.bump();
        Ok(stmts)
    }

    fn stmt_or_block(&mut self) -> Result<Vec<Stmt>, CcError> {
        if self.at_sym("{") {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn stmt(&mut self) -> Result<Stmt, CcError> {
        let line = self.line();
        if self.at_sym("{") {
            // A bare block statement (scoping is flat: locals are
            // function-wide registers).
            let body = self.block()?;
            return Ok(Stmt::If {
                cond: Expr::Int(1),
                then: body,
                els: Vec::new(),
                line,
            });
        }
        match self.peek().clone() {
            Tok::PragmaParallelFor => {
                self.bump();
                self.parallel_for(line)
            }
            Tok::PragmaParallelSections => {
                self.bump();
                self.parallel_sections(line)
            }
            Tok::PragmaSection => {
                Err(self.err("`#pragma omp section` outside a `parallel sections` block"))
            }
            Tok::Ident(kw) if kw == "int" => {
                self.bump();
                while self.at_sym("*") {
                    self.bump();
                }
                let name = self.eat_ident()?;
                if self.at_sym("[") {
                    // A stack-allocated local array: `int buf[16];`.
                    self.bump();
                    let elems = self.const_expr()?;
                    self.eat_sym("]")?;
                    self.eat_sym(";")?;
                    return Ok(Stmt::DeclArray { name, elems, line });
                }
                // Comma-separated scalar locals: `int i, j, k;`.
                let mut decls = Vec::new();
                let mut current = name;
                loop {
                    let init = if self.at_sym("=") {
                        self.bump();
                        Some(self.expr()?)
                    } else {
                        None
                    };
                    decls.push(Stmt::Decl {
                        name: current.clone(),
                        init,
                        line,
                    });
                    if self.at_sym(",") {
                        self.bump();
                        while self.at_sym("*") {
                            self.bump();
                        }
                        current = self.eat_ident()?;
                    } else {
                        break;
                    }
                }
                self.eat_sym(";")?;
                if decls.len() == 1 {
                    Ok(decls.pop().expect("one decl"))
                } else {
                    // Represent multi-decls as a flattened sequence via a
                    // zero-iteration-free `if (1)` block is ugly; instead
                    // nest them in an always-true If with empty else.
                    Ok(Stmt::If {
                        cond: Expr::Int(1),
                        then: decls,
                        els: Vec::new(),
                        line,
                    })
                }
            }
            Tok::Ident(kw) if kw == "if" => {
                self.bump();
                self.eat_sym("(")?;
                let cond = self.expr()?;
                self.eat_sym(")")?;
                let then = self.stmt_or_block()?;
                let els = if self.at_keyword("else") {
                    self.bump();
                    self.stmt_or_block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then,
                    els,
                    line,
                })
            }
            Tok::Ident(kw) if kw == "do" => {
                self.bump();
                let body = self.stmt_or_block()?;
                self.eat_keyword("while")?;
                self.eat_sym("(")?;
                let cond = self.expr()?;
                self.eat_sym(")")?;
                self.eat_sym(";")?;
                // Desugar to `while (1) { body; if (!cond) break; }`.
                // `break` binds correctly; `continue` would re-enter the
                // body instead of testing the condition, so reject it.
                if body_has_toplevel_continue(&body) {
                    return Err(CcError::new(
                        line,
                        "`continue` directly inside `do/while` is not supported",
                    ));
                }
                let mut looped = body;
                looped.push(Stmt::If {
                    cond,
                    then: Vec::new(),
                    els: vec![Stmt::Break(line)],
                    line,
                });
                Ok(Stmt::While {
                    cond: Expr::Int(1),
                    body: looped,
                    line,
                })
            }
            Tok::Ident(kw) if kw == "while" => {
                self.bump();
                self.eat_sym("(")?;
                let cond = self.expr()?;
                self.eat_sym(")")?;
                let body = self.stmt_or_block()?;
                Ok(Stmt::While { cond, body, line })
            }
            Tok::Ident(kw) if kw == "for" => {
                self.bump();
                let (init, cond, step) = self.for_header()?;
                let body = self.stmt_or_block()?;
                Ok(Stmt::For {
                    init: Box::new(init),
                    cond,
                    step: Box::new(step),
                    body,
                    line,
                })
            }
            Tok::Ident(kw) if kw == "break" => {
                self.bump();
                self.eat_sym(";")?;
                Ok(Stmt::Break(line))
            }
            Tok::Ident(kw) if kw == "continue" => {
                self.bump();
                self.eat_sym(";")?;
                Ok(Stmt::Continue(line))
            }
            Tok::Ident(kw) if kw == "return" => {
                self.bump();
                let value = if self.at_sym(";") {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.eat_sym(";")?;
                Ok(Stmt::Return(value, line))
            }
            _ => {
                let s = self.simple_stmt()?;
                self.eat_sym(";")?;
                Ok(s)
            }
        }
    }

    fn for_header(&mut self) -> Result<ForHeader, CcError> {
        self.eat_sym("(")?;
        let init = if self.at_sym(";") {
            None
        } else if self.at_keyword("int") {
            // `for (int i = 0; ...)`.
            self.bump();
            let line = self.line();
            let name = self.eat_ident()?;
            self.eat_sym("=")?;
            let e = self.expr()?;
            Some(Stmt::Decl {
                name,
                init: Some(e),
                line,
            })
        } else {
            Some(self.comma_stmts()?)
        };
        self.eat_sym(";")?;
        let cond = if self.at_sym(";") {
            None
        } else {
            Some(self.expr()?)
        };
        self.eat_sym(";")?;
        let step = if self.at_sym(")") {
            None
        } else {
            Some(self.comma_stmts()?)
        };
        self.eat_sym(")")?;
        Ok((init, cond, step))
    }

    /// One or more comma-separated simple statements (the paper's Fig. 18
    /// writes `for (l = 0, i = t; ...)`), folded into a single statement.
    fn comma_stmts(&mut self) -> Result<Stmt, CcError> {
        let line = self.line();
        let mut stmts = vec![self.simple_stmt()?];
        while self.at_sym(",") {
            self.bump();
            stmts.push(self.simple_stmt()?);
        }
        if stmts.len() == 1 {
            Ok(stmts.pop().expect("one statement"))
        } else {
            // An always-true If is the parser's statement-sequence node.
            Ok(Stmt::If {
                cond: Expr::Int(1),
                then: stmts,
                els: Vec::new(),
                line,
            })
        }
    }

    /// Assignment / compound assignment / increment / call — statements
    /// that also appear in `for` headers.
    fn simple_stmt(&mut self) -> Result<Stmt, CcError> {
        let line = self.line();
        let e = self.expr()?;
        // `x = e`, `x += e`, `x++`: rewrite the parsed lhs expression
        // into a place.
        for (sym, op) in [
            ("+=", Some(BinOp::Add)),
            ("-=", Some(BinOp::Sub)),
            ("*=", Some(BinOp::Mul)),
            ("/=", Some(BinOp::Div)),
            ("%=", Some(BinOp::Rem)),
            ("=", None),
        ] {
            if self.at_sym(sym) {
                self.bump();
                let place = expr_to_place(&e)
                    .ok_or_else(|| CcError::new(line, "left side is not assignable"))?;
                let rhs = self.expr()?;
                let rhs = match op {
                    Some(op) => Expr::Binary(op, Box::new(e), Box::new(rhs)),
                    None => rhs,
                };
                return Ok(Stmt::Assign {
                    lhs: place,
                    rhs,
                    line,
                });
            }
        }
        for (sym, op) in [("++", BinOp::Add), ("--", BinOp::Sub)] {
            if self.at_sym(sym) {
                self.bump();
                let place = expr_to_place(&e)
                    .ok_or_else(|| CcError::new(line, "operand of ++/-- is not assignable"))?;
                return Ok(Stmt::Assign {
                    lhs: place,
                    rhs: Expr::Binary(op, Box::new(e), Box::new(Expr::Int(1))),
                    line,
                });
            }
        }
        Ok(Stmt::Expr(e, line))
    }

    /// The canonical parallel-for form: `for (v = 0; v < N; v++) body`.
    fn parallel_for(&mut self, line: usize) -> Result<Stmt, CcError> {
        self.eat_keyword("for").map_err(|_| {
            CcError::new(line, "`#pragma omp parallel for` must precede a for loop")
        })?;
        let (init, cond, step) = self.for_header()?;
        let body = self.stmt_or_block()?;
        // Validate the canonical shape and extract (var, count).
        let (var, start) = match init {
            Some(Stmt::Assign {
                lhs: Place::Var(v),
                rhs: Expr::Int(s),
                ..
            })
            | Some(Stmt::Decl {
                name: v,
                init: Some(Expr::Int(s)),
                ..
            }) => (v, s),
            _ => {
                return Err(CcError::new(
                    line,
                    "parallel for must initialize its index to a constant (e.g. `t = 0`)",
                ))
            }
        };
        if start != 0 {
            return Err(CcError::new(line, "parallel for must start at 0"));
        }
        let count = match cond {
            Some(Expr::Binary(BinOp::Lt, lhs, rhs)) => match (*lhs, *rhs) {
                (Expr::Var(v), Expr::Int(n)) if v == var => n,
                _ => {
                    return Err(CcError::new(
                        line,
                        "parallel for condition must be `index < CONSTANT`",
                    ))
                }
            },
            _ => {
                return Err(CcError::new(
                    line,
                    "parallel for condition must be `index < CONSTANT`",
                ))
            }
        };
        match step {
            Some(Stmt::Assign {
                lhs: Place::Var(v),
                rhs: Expr::Binary(BinOp::Add, a, b),
                ..
            }) if v == var
                && matches!(*a, Expr::Var(ref x) if *x == var)
                && matches!(*b, Expr::Int(1)) => {}
            _ => {
                return Err(CcError::new(
                    line,
                    "parallel for step must be `index++` (or `index = index + 1`)",
                ))
            }
        }
        if count < 1 {
            return Err(CcError::new(
                line,
                "parallel for needs a positive trip count",
            ));
        }
        Ok(Stmt::ParallelFor {
            var,
            count,
            body,
            line,
        })
    }

    fn parallel_sections(&mut self, line: usize) -> Result<Stmt, CcError> {
        self.eat_sym("{")
            .map_err(|_| CcError::new(line, "`parallel sections` must be followed by a block"))?;
        let mut sections = Vec::new();
        while !self.at_sym("}") {
            match self.peek() {
                Tok::PragmaSection => {
                    self.bump();
                    sections.push(self.stmt_or_block()?);
                }
                Tok::Eof => return Err(self.err("unterminated parallel sections block")),
                other => {
                    return Err(self.err(format!("expected `#pragma omp section`, found {other}")))
                }
            }
        }
        self.bump();
        if sections.is_empty() {
            return Err(CcError::new(
                line,
                "parallel sections needs at least one section",
            ));
        }
        Ok(Stmt::ParallelSections { sections, line })
    }

    // ----- expressions (precedence climbing) -----

    fn expr(&mut self) -> Result<Expr, CcError> {
        self.binary(0)
    }

    fn binary(&mut self, min_tier: usize) -> Result<Expr, CcError> {
        const TIERS: [&[(&str, BinOp)]; 10] = [
            &[("||", BinOp::LOr)],
            &[("&&", BinOp::LAnd)],
            &[("|", BinOp::Or)],
            &[("^", BinOp::Xor)],
            &[("&", BinOp::And)],
            &[("==", BinOp::Eq), ("!=", BinOp::Ne)],
            &[
                ("<", BinOp::Lt),
                ("<=", BinOp::Le),
                (">", BinOp::Gt),
                (">=", BinOp::Ge),
            ],
            &[("<<", BinOp::Shl), (">>", BinOp::Shr)],
            &[("+", BinOp::Add), ("-", BinOp::Sub)],
            &[("*", BinOp::Mul), ("/", BinOp::Div), ("%", BinOp::Rem)],
        ];
        if min_tier >= TIERS.len() {
            return self.unary();
        }
        let mut lhs = self.binary(min_tier + 1)?;
        'outer: loop {
            for &(sym, op) in TIERS[min_tier] {
                if self.at_sym(sym) {
                    self.bump();
                    let rhs = self.binary(min_tier + 1)?;
                    lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn unary(&mut self) -> Result<Expr, CcError> {
        if self.at_sym("-") {
            self.bump();
            return Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary()?)));
        }
        if self.at_sym("!") {
            self.bump();
            return Ok(Expr::Unary(UnOp::Not, Box::new(self.unary()?)));
        }
        if self.at_sym("~") {
            self.bump();
            return Ok(Expr::Unary(UnOp::BitNot, Box::new(self.unary()?)));
        }
        if self.at_sym("*") {
            self.bump();
            return Ok(Expr::Deref(Box::new(self.unary()?)));
        }
        if self.at_sym("&") {
            self.bump();
            let e = self.unary()?;
            let place = expr_to_place(&e)
                .ok_or_else(|| self.err("`&` needs a variable or array element"))?;
            return Ok(Expr::AddrOf(Box::new(place)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, CcError> {
        match self.bump() {
            Tok::Int(v) => Ok(Expr::Int(v)),
            Tok::Sym("(") => {
                // Casts like `(int *)` or `(type_t *)` are erased. Only
                // type-looking names count, so `(a * b)` stays a product
                // (we have no typedef table to disambiguate with).
                if let Tok::Ident(id) = self.peek().clone() {
                    if (id == "int" || id.ends_with("_t")) && matches!(self.peek2(), Tok::Sym("*"))
                    {
                        self.bump();
                        self.bump();
                        self.eat_sym(")")?;
                        return self.unary();
                    }
                }
                let e = self.expr()?;
                self.eat_sym(")")?;
                // A parenthesized expression may be indexed.
                self.maybe_index_or_call_on(e)
            }
            Tok::Ident(name) => {
                if self.at_sym("(") {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at_sym(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.at_sym(",") {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.eat_sym(")")?;
                    return Ok(Expr::Call(name, args));
                }
                if self.at_sym("[") {
                    self.bump();
                    let idx = self.expr()?;
                    self.eat_sym("]")?;
                    return Ok(Expr::Index(name, Box::new(idx)));
                }
                Ok(Expr::Var(name))
            }
            other => Err(CcError::new(
                self.tokens[self.pos - 1].line,
                format!("expected an expression, found {other}"),
            )),
        }
    }

    fn maybe_index_or_call_on(&mut self, e: Expr) -> Result<Expr, CcError> {
        if self.at_sym("[") {
            self.bump();
            let idx = self.expr()?;
            self.eat_sym("]")?;
            // `(p)[i]` == `*(p + i)` in words: scale by 4 at codegen via
            // Deref of pointer arithmetic.
            return Ok(Expr::Deref(Box::new(Expr::Binary(
                BinOp::Add,
                Box::new(e),
                Box::new(Expr::Binary(
                    BinOp::Mul,
                    Box::new(idx),
                    Box::new(Expr::Int(4)),
                )),
            ))));
        }
        Ok(e)
    }
}

/// Whether a statement list contains a `continue` that would bind to the
/// enclosing loop (i.e. not nested inside a further loop).
fn body_has_toplevel_continue(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Continue(_) => true,
        Stmt::If { then, els, .. } => {
            body_has_toplevel_continue(then) || body_has_toplevel_continue(els)
        }
        _ => false,
    })
}

/// Rewrites an already-parsed expression into an assignable place.
fn expr_to_place(e: &Expr) -> Option<Place> {
    match e {
        Expr::Var(name) => Some(Place::Var(name.clone())),
        Expr::Index(name, idx) => Some(Place::Index(name.clone(), (**idx).clone())),
        Expr::Deref(inner) => Some(Place::Deref((**inner).clone())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn parse_src(src: &str) -> Unit {
        parse(lex(src).unwrap()).unwrap_or_else(|e| panic!("{e}"))
    }

    #[test]
    fn globals_and_arrays() {
        let u = parse_src("int x; int v[16]; int w[4] = {[0 ... 3] = 1}; int y = 7;");
        assert_eq!(u.globals.len(), 4);
        assert_eq!(u.globals[1].elems, 16);
        assert_eq!(u.globals[2].fill, Some(Init::Uniform(1)));
        assert_eq!(u.globals[3].fill, Some(Init::Uniform(7)));
        assert!(!u.globals[3].is_array);
    }

    #[test]
    fn function_with_control_flow() {
        let u = parse_src("int abs(int x) { if (x < 0) { return -x; } else { return x; } }");
        assert_eq!(u.functions[0].params, vec!["x"]);
        assert!(u.functions[0].returns_value);
    }

    #[test]
    fn for_loops_and_compound_assign() {
        let u = parse_src("void f(void) { int s = 0; int i; for (i = 0; i < 10; i++) s += i; }");
        let body = &u.functions[0].body;
        assert!(matches!(body[2], Stmt::For { .. }));
    }

    #[test]
    fn parallel_for_canonical_form() {
        let u = parse_src(
            "#define NUM_HART 8
void thread(int t) { }
void main(void) {
    int t;
#pragma omp parallel for
    for (t = 0; t < NUM_HART; t++) thread(t);
}",
        );
        let main = u.functions.iter().find(|f| f.name == "main").unwrap();
        let pf = main
            .body
            .iter()
            .find(|s| matches!(s, Stmt::ParallelFor { .. }));
        match pf {
            Some(Stmt::ParallelFor { var, count, .. }) => {
                assert_eq!(var, "t");
                assert_eq!(*count, 8);
            }
            other => panic!("expected parallel for, got {other:?}"),
        }
    }

    #[test]
    fn parallel_for_rejects_non_canonical() {
        let bad =
            "void main(void) { int t;\n#pragma omp parallel for\nfor (t = 1; t < 8; t++) { } }";
        assert!(parse(lex(bad).unwrap()).is_err());
        let bad2 =
            "void main(void) { int t;\n#pragma omp parallel for\nfor (t = 0; t < 8; t += 2) { } }";
        assert!(parse(lex(bad2).unwrap()).is_err());
    }

    #[test]
    fn parallel_sections() {
        let u = parse_src(
            "void main(void) {
#pragma omp parallel sections
{
#pragma omp section
    { }
#pragma omp section
    { }
}
}",
        );
        match &u.functions[0].body[0] {
            Stmt::ParallelSections { sections, .. } => assert_eq!(sections.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence() {
        let u = parse_src("int f(void) { return 1 + 2 * 3 < 8 && 1; }");
        match &u.functions[0].body[0] {
            Stmt::Return(Some(Expr::Binary(BinOp::LAnd, ..)), _) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pointers_and_casts_erase() {
        let u = parse_src("void f(int *p) { int x; x = *p; *p = x + 1; p[2] = 5; x = (int *)p; }");
        assert_eq!(u.functions[0].params, vec!["p"]);
    }

    #[test]
    fn sensible_errors() {
        let e = parse(lex("int f( { }").unwrap()).unwrap_err();
        assert!(e.to_string().contains("expected"));
    }
}
