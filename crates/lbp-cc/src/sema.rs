//! Semantic checks: name resolution, arity, and the Deterministic OpenMP
//! region restrictions.
//!
//! The walker collects *every* diagnosable problem instead of stopping at
//! the first ([`check_all`]); [`check`] keeps the original first-error
//! contract for the compile pipeline. Collecting everything is what the
//! `--lint` surface batches into one `lbp-diag-v1` report.

use std::collections::HashMap;

use crate::ast::*;
use crate::CcError;

/// Summary of the checked unit, consumed by the code generator.
#[derive(Debug, Clone)]
pub struct Checked {
    /// The unit itself.
    pub unit: Unit,
    /// Global name → is-array.
    pub globals: HashMap<String, bool>,
    /// Function name → (param count, returns value).
    pub signatures: HashMap<String, (usize, bool)>,
}

/// Functions the compiler provides (the `det_omp.h` API surface).
const BUILTINS: [(&str, usize, bool); 3] = [
    ("omp_set_num_threads", 1, false),
    // Region-of-interest markers: lowered to asm labels (plus an
    // anchoring nop) that hybrid fast-forward simulation stops at.
    ("__roi_start", 0, false),
    ("__roi_end", 0, false),
];

/// The register-allocatable local budget per function (locals + params
/// live in `s4`-`s11`).
pub const MAX_LOCALS: usize = 8;

/// Maximum call arguments (`a0`-`a5`; `a6`/`a7` are expression scratch).
pub const MAX_ARGS: usize = 6;

/// Checks a parsed unit.
///
/// # Errors
///
/// Returns the first semantic error with its source line.
pub fn check(unit: Unit) -> Result<Checked, CcError> {
    check_all(unit).map_err(|mut errs| errs.remove(0))
}

/// Checks a parsed unit, collecting **all** semantic errors in source
/// order rather than stopping at the first.
///
/// # Errors
///
/// Returns the (non-empty) list of every semantic error found.
pub fn check_all(unit: Unit) -> Result<Checked, Vec<CcError>> {
    let mut errs = Vec::new();
    let mut globals = HashMap::new();
    for g in &unit.globals {
        if globals.contains_key(&g.name) {
            errs.push(CcError::new(
                g.line,
                format!("duplicate global `{}`", g.name),
            ));
        } else {
            globals.insert(g.name.clone(), g.is_array);
        }
    }
    let mut signatures: HashMap<String, (usize, bool)> = BUILTINS
        .iter()
        .map(|&(n, a, r)| (n.to_owned(), (a, r)))
        .collect();
    for f in &unit.functions {
        if globals.contains_key(&f.name) {
            errs.push(CcError::new(
                f.line,
                format!("`{}` is both a global and a function", f.name),
            ));
        }
        if signatures.contains_key(&f.name) {
            errs.push(CcError::new(
                f.line,
                format!("duplicate function `{}`", f.name),
            ));
        } else {
            signatures.insert(f.name.clone(), (f.params.len(), f.returns_value));
        }
    }
    if !signatures.contains_key("main") {
        errs.push(CcError::new(1, "a program needs a `main` function"));
    }
    let checked = Checked {
        unit,
        globals,
        signatures,
    };
    for f in &checked.unit.functions {
        check_function(f, &checked, &mut errs);
    }
    if errs.is_empty() {
        Ok(checked)
    } else {
        Err(errs)
    }
}

fn check_function(f: &Function, cx: &Checked, errs: &mut Vec<CcError>) {
    let mut scope: HashMap<String, bool> = HashMap::new();
    for p in &f.params {
        if scope.insert(p.clone(), false).is_some() {
            errs.push(CcError::new(f.line, format!("duplicate parameter `{p}`")));
        }
    }
    let mut counter = f.params.len();
    check_block(&f.body, f, cx, &mut scope, &mut counter, false, errs);
    if counter > MAX_LOCALS {
        errs.push(CcError::new(
            f.line,
            format!(
                "function `{}` needs {counter} register locals; the compiler supports {MAX_LOCALS}",
                f.name
            ),
        ));
    }
}

#[allow(clippy::too_many_arguments)]
fn check_block(
    stmts: &[Stmt],
    f: &Function,
    cx: &Checked,
    scope: &mut HashMap<String, bool>,
    counter: &mut usize,
    in_region: bool,
    errs: &mut Vec<CcError>,
) {
    check_block_depth(stmts, f, cx, scope, counter, in_region, 0, errs);
}

#[allow(clippy::too_many_arguments)]
fn check_block_depth(
    stmts: &[Stmt],
    f: &Function,
    cx: &Checked,
    scope: &mut HashMap<String, bool>,
    counter: &mut usize,
    in_region: bool,
    loops: usize,
    errs: &mut Vec<CcError>,
) {
    for s in stmts {
        check_stmt_depth(s, f, cx, scope, counter, in_region, loops, errs);
    }
}

#[allow(clippy::too_many_arguments)]
fn check_stmt_depth(
    s: &Stmt,
    f: &Function,
    cx: &Checked,
    scope: &mut HashMap<String, bool>,
    counter: &mut usize,
    in_region: bool,
    loops: usize,
    errs: &mut Vec<CcError>,
) {
    match s {
        Stmt::Break(line) | Stmt::Continue(line) => {
            if loops == 0 {
                errs.push(CcError::new(*line, "`break`/`continue` outside a loop"));
            }
        }
        Stmt::Decl { name, init, line } => {
            if let Some(e) = init {
                check_expr(e, *line, cx, scope, errs);
            }
            if cx.globals.contains_key(name) {
                // Shadowing a global is allowed; it resolves to the local.
            }
            if scope.insert(name.clone(), false).is_some() {
                errs.push(CcError::new(*line, format!("duplicate local `{name}`")));
            }
            *counter += 1;
        }
        Stmt::DeclArray { name, elems, line } => {
            if *elems == 0 {
                errs.push(CcError::new(
                    *line,
                    format!("array `{name}` has zero elements"),
                ));
            }
            if *elems * 4 > 8192 {
                errs.push(CcError::new(
                    *line,
                    format!("local array `{name}` exceeds the 8 KiB frame budget"),
                ));
            }
            if scope.insert(name.clone(), true).is_some() {
                errs.push(CcError::new(*line, format!("duplicate local `{name}`")));
            }
            // Arrays live in the frame, not in the register-local budget.
        }
        Stmt::Assign { lhs, rhs, line } => {
            check_place(lhs, *line, cx, scope, errs);
            check_expr(rhs, *line, cx, scope, errs);
        }
        Stmt::Expr(e, line) => check_expr(e, *line, cx, scope, errs),
        Stmt::If {
            cond,
            then,
            els,
            line,
        } => {
            check_expr(cond, *line, cx, scope, errs);
            check_block_depth(then, f, cx, scope, counter, in_region, loops, errs);
            check_block_depth(els, f, cx, scope, counter, in_region, loops, errs);
        }
        Stmt::While { cond, body, line } => {
            check_expr(cond, *line, cx, scope, errs);
            check_block_depth(body, f, cx, scope, counter, in_region, loops + 1, errs);
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            line,
        } => {
            if let Some(i) = init.as_ref() {
                check_stmt_depth(i, f, cx, scope, counter, in_region, loops, errs);
            }
            if let Some(c) = cond {
                check_expr(c, *line, cx, scope, errs);
            }
            check_block_depth(body, f, cx, scope, counter, in_region, loops + 1, errs);
            if let Some(st) = step.as_ref() {
                check_stmt_depth(st, f, cx, scope, counter, in_region, loops + 1, errs);
            }
        }
        Stmt::Return(value, line) => {
            if in_region {
                errs.push(CcError::new(*line, "`return` inside a parallel region"));
            }
            match (value, f.returns_value) {
                (Some(e), true) => check_expr(e, *line, cx, scope, errs),
                (None, false) => {}
                (Some(_), false) => {
                    errs.push(CcError::new(
                        *line,
                        "returning a value from a void function",
                    ));
                }
                (None, true) => errs.push(CcError::new(*line, "missing return value")),
            }
        }
        Stmt::ParallelFor {
            var,
            body,
            line,
            count,
        } => {
            if f.name != "main" {
                errs.push(CcError::new(
                    *line,
                    "parallel regions are only supported in `main` (the paper's program shape)",
                ));
            }
            if in_region {
                errs.push(CcError::new(
                    *line,
                    "nested parallel regions are not supported",
                ));
            }
            if *count > 256 {
                errs.push(CcError::new(
                    *line,
                    format!("team of {count} exceeds 256 harts"),
                ));
            }
            // The member body sees only the index variable, its own
            // locals, and globals.
            let mut region_scope: HashMap<String, bool> = HashMap::new();
            region_scope.insert(var.clone(), false);
            let mut region_locals = 1usize;
            check_block(
                body,
                f,
                cx,
                &mut region_scope,
                &mut region_locals,
                true,
                errs,
            );
            if region_locals > MAX_LOCALS {
                errs.push(CcError::new(
                    *line,
                    format!(
                        "parallel body needs {region_locals} register locals; max {MAX_LOCALS}"
                    ),
                ));
            }
        }
        Stmt::ParallelSections { sections, line } => {
            if f.name != "main" {
                errs.push(CcError::new(
                    *line,
                    "parallel regions are only supported in `main`",
                ));
            }
            if in_region {
                errs.push(CcError::new(
                    *line,
                    "nested parallel regions are not supported",
                ));
            }
            for body in sections {
                let mut region_scope = HashMap::new();
                let mut region_locals = 0usize;
                check_block(
                    body,
                    f,
                    cx,
                    &mut region_scope,
                    &mut region_locals,
                    true,
                    errs,
                );
                if region_locals > MAX_LOCALS {
                    errs.push(CcError::new(
                        *line,
                        "section needs too many register locals",
                    ));
                }
            }
        }
    }
}

fn check_place(
    p: &Place,
    line: usize,
    cx: &Checked,
    scope: &HashMap<String, bool>,
    errs: &mut Vec<CcError>,
) {
    match p {
        Place::Var(name) => {
            if let Some(&is_array) = scope.get(name) {
                if is_array {
                    errs.push(CcError::new(
                        line,
                        format!("cannot assign to array `{name}`"),
                    ));
                }
                return;
            }
            match cx.globals.get(name) {
                Some(false) => {}
                Some(true) => errs.push(CcError::new(
                    line,
                    format!("cannot assign to array `{name}`"),
                )),
                None => errs.push(CcError::new(line, format!("undefined variable `{name}`"))),
            }
        }
        Place::Index(name, idx) => {
            if !scope.contains_key(name) && !cx.globals.contains_key(name) {
                errs.push(CcError::new(line, format!("undefined variable `{name}`")));
            }
            check_expr(idx, line, cx, scope, errs);
        }
        Place::Deref(e) => check_expr(e, line, cx, scope, errs),
    }
}

fn check_expr(
    e: &Expr,
    line: usize,
    cx: &Checked,
    scope: &HashMap<String, bool>,
    errs: &mut Vec<CcError>,
) {
    match e {
        Expr::Int(_) => {}
        Expr::Var(name) => {
            if !scope.contains_key(name) && !cx.globals.contains_key(name) {
                errs.push(CcError::new(line, format!("undefined variable `{name}`")));
            }
        }
        Expr::Index(name, idx) => {
            if !scope.contains_key(name) && !cx.globals.contains_key(name) {
                errs.push(CcError::new(line, format!("undefined variable `{name}`")));
            }
            check_expr(idx, line, cx, scope, errs);
        }
        Expr::Deref(inner) => check_expr(inner, line, cx, scope, errs),
        Expr::AddrOf(place) => match place.as_ref() {
            Place::Var(name) if scope.get(name) == Some(&false) => {
                errs.push(CcError::new(
                    line,
                    format!("cannot take the address of register local `{name}`"),
                ));
            }
            p => check_place(p, line, cx, scope, errs),
        },
        Expr::Unary(_, inner) => check_expr(inner, line, cx, scope, errs),
        Expr::Binary(_, a, b) => {
            check_expr(a, line, cx, scope, errs);
            check_expr(b, line, cx, scope, errs);
        }
        Expr::Call(name, args) => {
            match cx.signatures.get(name) {
                None => errs.push(CcError::new(
                    line,
                    format!("call to undefined function `{name}`"),
                )),
                Some((arity, _ret)) => {
                    if args.len() != *arity {
                        errs.push(CcError::new(
                            line,
                            format!("`{name}` takes {arity} argument(s), got {}", args.len()),
                        ));
                    }
                    if args.len() > MAX_ARGS {
                        errs.push(CcError::new(
                            line,
                            format!("calls support at most {MAX_ARGS} arguments"),
                        ));
                    }
                }
            }
            for a in args {
                check_expr(a, line, cx, scope, errs);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;
    use crate::parse::parse;

    fn check_src(src: &str) -> Result<Checked, CcError> {
        check(parse(lex(src).unwrap())?)
    }

    fn check_all_src(src: &str) -> Result<Checked, Vec<CcError>> {
        check_all(parse(lex(src).unwrap()).map_err(|e| vec![e])?)
    }

    #[test]
    fn accepts_a_paper_shaped_program() {
        check_src(
            "#define NUM_HART 8
int v[8];
void thread(int t) { v[t] = t; }
void main(void) {
    int t;
    omp_set_num_threads(NUM_HART);
#pragma omp parallel for
    for (t = 0; t < NUM_HART; t++) thread(t);
}",
        )
        .unwrap();
    }

    #[test]
    fn rejects_undefined_names() {
        assert!(check_src("void main(void) { x = 1; }").is_err());
        assert!(check_src("void main(void) { f(); }").is_err());
    }

    #[test]
    fn rejects_arity_mismatch() {
        let e = check_src("void f(int a) { } void main(void) { f(1, 2); }").unwrap_err();
        assert!(e.to_string().contains("takes 1"));
    }

    #[test]
    fn rejects_missing_main() {
        assert!(check_src("void f(void) { }").is_err());
    }

    #[test]
    fn region_capture_is_rejected() {
        let e = check_src(
            "void main(void) {
    int t; int secret;
    secret = 5;
#pragma omp parallel for
    for (t = 0; t < 4; t++) { int x; x = secret; }
}",
        )
        .unwrap_err();
        assert!(e.to_string().contains("undefined variable `secret`"));
    }

    #[test]
    fn regions_only_in_main() {
        let e = check_src(
            "void helper(void) {
    int t;
#pragma omp parallel for
    for (t = 0; t < 4; t++) { }
}
void main(void) { }",
        )
        .unwrap_err();
        assert!(e.to_string().contains("only supported in `main`"));
    }

    #[test]
    fn addr_of_register_local_rejected() {
        let e = check_src("void main(void) { int x; int p; p = &x; }").unwrap_err();
        assert!(e.to_string().contains("register local"));
    }

    #[test]
    fn too_many_locals_rejected() {
        let e = check_src(
            "void main(void) { int a; int b; int c; int d; int e; int f; int g; int h; int i; }",
        )
        .unwrap_err();
        assert!(e.to_string().contains("register locals"));
    }

    #[test]
    fn assigning_to_array_rejected() {
        let e = check_src("int v[4]; void main(void) { v = 1; }").unwrap_err();
        assert!(e.to_string().contains("cannot assign to array"));
    }

    #[test]
    fn all_errors_are_collected_in_source_order() {
        let errs = check_all_src(
            "void main(void) {
    x = 1;
    y = 2;
    f();
}",
        )
        .unwrap_err();
        assert_eq!(errs.len(), 3, "{errs:?}");
        assert!(errs[0].to_string().contains("`x`"));
        assert!(errs[1].to_string().contains("`y`"));
        assert!(errs[2].to_string().contains("`f`"));
    }

    #[test]
    fn first_collected_error_matches_check() {
        let src = "void main(void) { x = 1; y = 2; }";
        let first = check_src(src).unwrap_err();
        let all = check_all_src(src).unwrap_err();
        assert_eq!(first.to_string(), all[0].to_string());
    }

    #[test]
    fn control_flow_conditions_report_their_own_line() {
        // `if`/`while`/`for` conditions used to fall back to the
        // function's line; they must carry the statement's line so
        // lbp-sema trap messages can reuse the span.
        let errs = check_all_src(
            "void main(void) {
    int i;
    if (missing) { }
    while (also_missing) { }
    for (i = 0; i < bound; i++) { }
}",
        )
        .unwrap_err();
        assert_eq!(errs.len(), 3, "{errs:?}");
        assert_eq!(errs[0].line, 3, "{errs:?}");
        assert_eq!(errs[1].line, 4, "{errs:?}");
        assert_eq!(errs[2].line, 5, "{errs:?}");
    }

    #[test]
    fn errors_after_an_undefined_call_are_still_reported() {
        let errs = check_all_src("void main(void) { f(undefined_arg); }").unwrap_err();
        assert_eq!(errs.len(), 2, "{errs:?}");
    }
}
