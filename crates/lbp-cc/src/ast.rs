//! Abstract syntax for the mini-C subset.

/// A full translation unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Unit {
    /// Global declarations in source order.
    pub globals: Vec<Global>,
    /// Function definitions.
    pub functions: Vec<Function>,
}

/// One global variable.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Name.
    pub name: String,
    /// Number of `int` elements (1 for scalars).
    pub elems: u32,
    /// Whether declared as an array (affects how a bare name evaluates:
    /// arrays decay to their address).
    pub is_array: bool,
    /// Optional initializer: a uniform fill (the paper's
    /// `= {[0 ... N-1] = 1}` form) or an explicit element list.
    pub fill: Option<Init>,
    /// Source line.
    pub line: usize,
}

/// A global initializer.
#[derive(Debug, Clone, PartialEq)]
pub enum Init {
    /// Every element takes the same value (also scalars).
    Uniform(i64),
    /// Explicit leading elements (`{1, 2, 3}`); the rest are zero.
    List(Vec<i64>),
}

/// One function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Name.
    pub name: String,
    /// Parameter names (all parameters are `int` or `int*`).
    pub params: Vec<String>,
    /// Whether the declared return type is `int` (else `void`).
    pub returns_value: bool,
    /// Body.
    pub body: Vec<Stmt>,
    /// Source line.
    pub line: usize,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `int name = init;` (scalar locals only).
    Decl {
        /// Variable name.
        name: String,
        /// Optional initializer.
        init: Option<Expr>,
        /// Source line.
        line: usize,
    },
    /// `int name[N];` — a stack-allocated local array (uninitialized).
    DeclArray {
        /// Array name.
        name: String,
        /// Element count.
        elems: u32,
        /// Source line.
        line: usize,
    },
    /// An assignment `lhs = rhs;` (or compound `op=` already desugared).
    Assign {
        /// The place written.
        lhs: Place,
        /// The value.
        rhs: Expr,
        /// Source line.
        line: usize,
    },
    /// An expression evaluated for effect (a call).
    Expr(Expr, usize),
    /// `if (cond) { .. } else { .. }`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then: Vec<Stmt>,
        /// Else branch.
        els: Vec<Stmt>,
        /// Source line (of the `if` keyword).
        line: usize,
    },
    /// `while (cond) { .. }`.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
        /// Source line (of the `while` keyword).
        line: usize,
    },
    /// `for (init; cond; step) { .. }` (init/step are statements).
    For {
        /// Initialization.
        init: Box<Option<Stmt>>,
        /// Condition (empty = true).
        cond: Option<Expr>,
        /// Step.
        step: Box<Option<Stmt>>,
        /// Body.
        body: Vec<Stmt>,
        /// Source line (of the `for` keyword).
        line: usize,
    },
    /// `return e;` / `return;`.
    Return(Option<Expr>, usize),
    /// `break;` out of the innermost loop.
    Break(usize),
    /// `continue;` to the innermost loop's step/condition.
    Continue(usize),
    /// A `#pragma omp parallel for` region: the canonical
    /// `for (v = 0; v < n; v++) ...` loop, parallelized.
    ParallelFor {
        /// The loop/member-index variable.
        var: String,
        /// Team size (must be a compile-time constant).
        count: i64,
        /// The member body (sees `var` as its index).
        body: Vec<Stmt>,
        /// Source line.
        line: usize,
    },
    /// A `#pragma omp parallel sections` region.
    ParallelSections {
        /// One body per section.
        sections: Vec<Vec<Stmt>>,
        /// Source line.
        line: usize,
    },
}

/// A place an assignment can write.
#[derive(Debug, Clone, PartialEq)]
pub enum Place {
    /// A named variable (local, param or scalar global).
    Var(String),
    /// `arr[index]` (global array or pointer).
    Index(String, Expr),
    /// `*ptr`.
    Deref(Expr),
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Variable read (array names decay to their address).
    Var(String),
    /// `arr[index]` load.
    Index(String, Box<Expr>),
    /// `*ptr` load.
    Deref(Box<Expr>),
    /// `&arr[index]` / `&var`.
    AddrOf(Box<Place>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Function call.
    Call(String, Vec<Expr>),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!`).
    Not,
    /// Bitwise not (`~`).
    BitNot,
}

/// Binary operators (in increasing precedence tiers; see the parser).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `||` (short-circuit).
    LOr,
    /// `&&` (short-circuit).
    LAnd,
    /// `|`.
    Or,
    /// `^`.
    Xor,
    /// `&`.
    And,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `<<`.
    Shl,
    /// `>>` (arithmetic).
    Shr,
    /// `+`.
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/` (signed).
    Div,
    /// `%` (signed).
    Rem,
}
